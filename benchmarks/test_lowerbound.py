"""Lemma 3.6 / Appendix B: the Omega(n log h) bound as a scaling check.

Timing benchmarks measure the optimal algorithms on the star-of-stars
instance across the h sweep; the shape test asserts that their measured
work tracks n log h (bounded normalized spread) while SeqUF's normalized
work grows for small h.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.bench.lowerbound import run as run_lowerbound
from repro.core.api import ALGORITHMS
from repro.trees.generators import star_of_stars


@pytest.mark.parametrize("h", [8, 64, 512])
@pytest.mark.parametrize("algorithm", ["paruf", "tree-contraction"])
def test_time_star_of_stars(benchmark, bn, h, algorithm):
    if h > bn:
        pytest.skip("h exceeds bench size")
    tree, _ = star_of_stars(bn, h, seed=0)
    benchmark.group = f"lowerbound:h={h}"
    run_once(benchmark, ALGORITHMS[algorithm], tree)


def test_lowerbound_shape(benchmark, bn):
    hs = tuple(h for h in (4, 16, 64, 256) if h <= bn // 4)
    result = benchmark.pedantic(
        run_lowerbound, kwargs={"n": bn, "hs": hs}, rounds=1, iterations=1
    )
    # Optimal algorithms: normalized work W/(n log h) bounded by a small
    # constant factor across the sweep.
    assert result["spread"]["paruf"] < 6.0
    assert result["spread"]["tree-contraction"] < 6.0
    # SeqUF pays its sort everywhere: its normalized cost must *grow* as h
    # shrinks (log n / log h), by at least ~2x from largest to smallest h.
    rows = result["rows"]
    sequf_norm = [r["normalized"]["sequf"] for r in rows]
    assert sequf_norm[0] > 1.5 * sequf_norm[-1]
