"""Figure 6: thread-scaling curves on the synthetic inputs.

Timing benchmarks cover the per-algorithm single-thread runs the curves
are anchored at; the shape test asserts the paper's scaling claims (SeqUF
nearly flat, ParUF/RCTT strong scaling, crossover at moderate thread
counts, ParUF weakest on knuth-perm).
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.bench.fig6 import FIG6_INPUTS, run as run_fig6
from repro.bench.inputs import make_input
from repro.core.api import ALGORITHMS


@pytest.mark.parametrize("family", FIG6_INPUTS)
def test_time_rctt_anchor_runs(benchmark, bn, family):
    tree = make_input(family, bn, seed=0)
    benchmark.group = f"fig6:{family}"
    run_once(benchmark, ALGORITHMS["rctt"], tree)


def test_fig6_shape(benchmark, bn):
    result = benchmark.pedantic(run_fig6, kwargs={"n": bn}, rounds=1, iterations=1)
    series = {(s["family"], s["algorithm"]): s for s in result["series"]}
    threads = result["threads"]

    for family in FIG6_INPUTS:
        sequf = series[(family, "sequf")]
        paruf = series[(family, "paruf")]
        rctt = series[(family, "rctt")]
        # simulated times never increase with more threads
        for s in (sequf, paruf, rctt):
            assert all(
                a >= b - 1e-12 for a, b in zip(s["times"], s["times"][1:])
            ), (family, s["algorithm"])
        # SeqUF nearly flat; the parallel algorithms scale away from it
        assert sequf["self_speedup"] < 4.0, family
        assert rctt["self_speedup"] > sequf["self_speedup"], family
        # crossover: at full threads both parallel algorithms beat SeqUF
        assert rctt["times"][-1] < sequf["times"][-1], family

    # geomean ordering matches the paper: RCTT > ParUF > SeqUF
    g = result["self_speedup_geomean"]
    assert g["rctt"] > g["sequf"]
    assert g["paruf"] > g["sequf"]

    # ParUF's weak spots (paper Fig. 6 / Table 1): both knuth-perm (deep
    # dendrogram, Async-bound) and star-perm (preprocess-bound; the paper's
    # Table 1 also shows ParUF clearly behind RCTT there) scale worse than
    # path-perm, ParUF's best permuted input.
    paruf_speedups = {
        fam: series[(fam, "paruf")]["self_speedup"]
        for fam in ("path-perm", "star-perm", "knuth-perm")
    }
    assert paruf_speedups["knuth-perm"] < 0.7 * paruf_speedups["path-perm"]
    assert paruf_speedups["star-perm"] < 0.7 * paruf_speedups["path-perm"]


def test_fig6_crossover_threads(benchmark, bn):
    """The paper: ParUF/RCTT typically overtake SeqUF beyond ~8 threads.
    We assert the crossover exists and is at most 32 threads on permuted
    inputs."""
    result = benchmark.pedantic(
        run_fig6,
        kwargs={"n": bn, "inputs": ("path-perm", "star-perm")},
        rounds=1,
        iterations=1,
    )
    series = {(s["family"], s["algorithm"]): s for s in result["series"]}
    threads = result["threads"]
    for family in ("path-perm", "star-perm"):
        sequf = series[(family, "sequf")]["times"]
        rctt = series[(family, "rctt")]["times"]
        crossover = next(
            (p for p, (ts, tr) in zip(threads, zip(sequf, rctt)) if tr < ts), None
        )
        assert crossover is not None and crossover <= 32, family
