"""Shared configuration for the pytest-benchmark targets.

Each file under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md section 3).  Timing tests use the ``benchmark``
fixture; shape-verification tests *also* route through the fixture (one
timed harness run, then assertions on its result) so the whole suite runs
under ``pytest benchmarks/ --benchmark-only``.

``REPRO_BENCHMARK_N`` scales the input size (default 4000 vertices; the
printable harnesses in :mod:`repro.bench` use larger defaults).
"""

from __future__ import annotations

import os

import pytest


def benchmark_n() -> int:
    try:
        return max(100, int(os.environ.get("REPRO_BENCHMARK_N", "4000")))
    except ValueError:
        return 4000


@pytest.fixture
def bn() -> int:
    return benchmark_n()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` under the benchmark fixture with single-shot rounds.

    The dendrogram algorithms take 10ms-1s at benchmark sizes; pedantic
    mode keeps total bench time bounded while still reporting stable
    medians over a few rounds.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=3, iterations=1, warmup_rounds=1)
