"""Figure 7: phase breakdowns of RCTT and ParUF.

Timing benchmarks isolate each RCTT phase cost (via the full run and the
contraction-only run); the shape test asserts the paper's breakdown claims.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.bench.fig7 import run as run_fig7
from repro.bench.inputs import make_input
from repro.contraction.schedule import build_rc_tree
from repro.core.api import ALGORITHMS


@pytest.mark.parametrize("family", ["path-perm", "knuth-perm"])
def test_time_rc_tree_build_only(benchmark, bn, family):
    """The Build step in isolation (the paper's dominant RCTT cost)."""
    tree = make_input(family, bn, seed=0)
    benchmark.group = f"fig7:{family}"
    run_once(benchmark, build_rc_tree, tree)


@pytest.mark.parametrize("family", ["path-perm", "knuth-perm"])
def test_time_rctt_full(benchmark, bn, family):
    tree = make_input(family, bn, seed=0)
    benchmark.group = f"fig7:{family}"
    run_once(benchmark, ALGORITHMS["rctt"], tree)


def test_fig7_shape(benchmark, bn):
    # Wall-clock phase fractions jitter under machine load; average two
    # independent runs before asserting on them.
    result = benchmark.pedantic(
        run_fig7, kwargs={"n": bn, "include_realworld": False}, rounds=1, iterations=1
    )
    second = run_fig7(n=bn, include_realworld=False)
    rows = {}
    for r1, r2 in zip(result["rows"], second["rows"]):
        assert r1["input"] == r2["input"]
        merged = {
            "input": r1["input"],
            "rctt": {k: (r1["rctt"][k] + r2["rctt"][k]) / 2 for k in r1["rctt"]},
            "paruf": {k: (r1["paruf"][k] + r2["paruf"][k]) / 2 for k in r1["paruf"]},
        }
        rows[merged["input"]] = merged

    # Paper: RC-tree construction dominates RCTT on every input; the trace
    # step never exceeds ~a quarter of the time there.  Our pure-Python
    # trace loop carries a higher constant than the C++ one, so the bound
    # is relaxed to "build strictly dominates, trace stays a minority".
    for name, r in rows.items():
        assert r["rctt"]["build"] > r["rctt"]["trace"], name
        assert r["rctt"]["trace"] <= 0.55, name

    # Paper: ParUF on knuth-perm is dominated by the Async step...
    assert rows["knuth-perm"]["paruf"]["async"] > 0.5
    # ...while the post-processing-friendly inputs spend little time there.
    assert rows["path"]["paruf"]["async"] < rows["knuth-perm"]["paruf"]["async"]
