"""Table 1: SeqUF / ParUF / RCTT wall times and simulated speedups.

Timing benchmarks cover the full family x algorithm grid at one size; the
shape test reruns the Table 1 harness and asserts the paper's qualitative
claims (RCTT never loses, low-par hurts only ParUF, permuted weights give
the largest wins).
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.bench.inputs import SYNTHETIC_FAMILIES, make_input
from repro.bench.table1 import run as run_table1
from repro.core.api import ALGORITHMS


@pytest.mark.parametrize("family", SYNTHETIC_FAMILIES)
@pytest.mark.parametrize("algorithm", ["sequf", "paruf", "rctt"])
def test_time_algorithm(benchmark, bn, family, algorithm):
    tree = make_input(family, bn, seed=0)
    benchmark.group = f"table1:{family}"
    parents = run_once(benchmark, ALGORITHMS[algorithm], tree)
    assert parents.shape == (tree.m,)


def test_table1_shape(benchmark, bn):
    """The paper's Table 1 claims, at reproduction scale."""
    result = benchmark.pedantic(
        run_table1, kwargs={"sizes": (bn,)}, rounds=1, iterations=1
    )
    summary = result["summary"]
    assert summary["rctt_never_loses"], "paper: RCTT never slower than SeqUF"
    assert summary["lowpar_paruf_pathological"], "paper: ParUF loses on path-low-par"
    rows = {r["family"]: r for r in result["rows"]}
    # Permuted weights must beat unit weights for ParUF (paper: 61.7x vs 2.1x)
    assert rows["path-perm"]["speedup_paruf"] > rows["path"]["speedup_paruf"]
    # Both parallel algorithms win clearly on permuted inputs
    for fam in ("path-perm", "star-perm", "knuth-perm"):
        assert rows[fam]["speedup_rctt"] > 2.0
    # ParUF must beat SeqUF on every non-adversarial input (paper: 2.1-150x)
    for fam, row in rows.items():
        if fam != "path-low-par":
            assert row["speedup_paruf"] > 1.0, fam
