"""Release gate: the algorithm agreement matrix at benchmark scale."""

from __future__ import annotations

from repro.bench.selfcheck import run as run_selfcheck


def test_selfcheck_matrix(benchmark, bn):
    result = benchmark.pedantic(run_selfcheck, kwargs={"n": bn}, rounds=1, iterations=1)
    assert result["all_ok"], [
        (r["family"], [a for a, ok in r["status"].items() if not ok])
        for r in result["rows"]
        if not all(r["status"].values())
    ]
