"""Micro-benchmarks of the substrates (not tied to a paper table/figure).

These quantify the constants behind the design choices: heap operation
costs by implementation, union-find throughput, RC-tree construction, MST
methods, and the brute oracle's quadratic wall (why it is test-only).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import benchmark_n, run_once
from repro.contraction.schedule import build_rc_tree
from repro.structures import make_heap
from repro.structures.unionfind import UnionFind
from repro.trees.boruvka import boruvka_mst
from repro.trees.generators import knuth_tree
from repro.trees.mst import kruskal_mst, prim_mst
from repro.trees.weights import apply_scheme


@pytest.mark.parametrize("kind", ["binomial", "pairing", "skew"])
def test_time_heap_insert_delete(benchmark, kind):
    n = min(benchmark_n(), 4000)
    keys = np.random.default_rng(0).permutation(n)
    benchmark.group = "micro:heap-ops"

    def run():
        h = make_heap(kind)
        for k in keys:
            h.insert(int(k), int(k))
        while not h.is_empty:
            h.delete_min()

    run_once(benchmark, run)


@pytest.mark.parametrize("kind", ["binomial", "pairing", "skew"])
def test_time_heap_meld_tournament(benchmark, kind):
    """Meld n singleton heaps pairwise (the SLD-TC reduce pattern)."""
    n = min(benchmark_n(), 4000)
    benchmark.group = "micro:heap-meld"

    def run():
        heaps = [make_heap(kind) for _ in range(n)]
        for i, h in enumerate(heaps):
            h.insert(i, i)
        while len(heaps) > 1:
            nxt = []
            for i in range(0, len(heaps) - 1, 2):
                nxt.append(heaps[i].meld(heaps[i + 1]))
            if len(heaps) % 2:
                nxt.append(heaps[-1])
            heaps = nxt
        assert len(heaps[0]) == n

    run_once(benchmark, run)


def test_time_binomial_filter(benchmark):
    n = min(benchmark_n(), 4000)
    benchmark.group = "micro:heap-filter"

    def run():
        h = make_heap("binomial")
        for k in range(n):
            h.insert(k, k)
        removed = h.filter(n // 2)
        assert len(removed) == n // 2

    run_once(benchmark, run)


def test_time_unionfind(benchmark):
    n = benchmark_n()
    rng = np.random.default_rng(0)
    order = rng.permutation(n - 1)
    benchmark.group = "micro:unionfind"

    def run():
        uf = UnionFind(n)
        for i in order:
            uf.union(int(i), int(i) + 1)
        assert uf.num_sets == 1

    run_once(benchmark, run)


def test_time_rc_tree_build(benchmark):
    n = benchmark_n()
    tree = knuth_tree(n, seed=0).with_weights(apply_scheme("perm", n - 1, seed=1))
    benchmark.group = "micro:rc-tree"
    run_once(benchmark, build_rc_tree, tree)


def test_time_rc_tree_build_fast(benchmark):
    from repro.contraction.fast import build_rc_tree_fast

    n = benchmark_n()
    tree = knuth_tree(n, seed=0).with_weights(apply_scheme("perm", n - 1, seed=1))
    benchmark.group = "micro:rc-tree"
    run_once(benchmark, build_rc_tree_fast, tree, record_events=False)


@pytest.mark.parametrize("method", ["kruskal", "prim", "boruvka"])
def test_time_mst_methods(benchmark, method):
    rng = np.random.default_rng(0)
    n = min(benchmark_n(), 2000)
    # random tree + 4n extra edges
    edges = [(int(rng.integers(i)), i) for i in range(1, n)]
    seen = {(min(u, v), max(u, v)) for u, v in edges}
    while len(edges) < 5 * n:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v and (min(u, v), max(u, v)) not in seen:
            seen.add((min(u, v), max(u, v)))
            edges.append((u, v))
    edge_arr = np.array(edges, dtype=np.int64)
    weights = rng.permutation(len(edges)).astype(np.float64)
    fn = {"kruskal": kruskal_mst, "prim": prim_mst, "boruvka": boruvka_mst}[method]
    benchmark.group = "micro:mst"
    ids = run_once(benchmark, fn, n, edge_arr, weights)
    assert len(ids) == n - 1


def test_time_brute_oracle_quadratic(benchmark):
    """Document why the oracle is test-only: quadratic even at small n."""
    from repro.core.brute import brute_force_sld

    tree = knuth_tree(800, seed=0).with_weights(apply_scheme("perm", 799, seed=1))
    benchmark.group = "micro:oracle"
    run_once(benchmark, brute_force_sld, tree)
