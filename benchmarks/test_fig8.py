"""Figure 8: thread scaling on the real-world tree stand-ins.

Timing benchmarks cover the three stand-in pipelines end to end (graph ->
triangle/knn weights -> MST already materialized by the input registry;
here we time the dendrogram stage).  The shape test asserts the paper's
Section 5.1 real-world claims.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.bench.fig8 import run as run_fig8
from repro.bench.inputs import realworld_inputs
from repro.core.api import ALGORITHMS


@pytest.fixture(scope="module")
def trees(bn_module):
    return realworld_inputs(bn_module, seed=0)


@pytest.fixture(scope="module")
def bn_module():
    from conftest import benchmark_n

    return benchmark_n()


@pytest.mark.parametrize("name", ["rmat-social", "powerlaw-follow", "knn-points"])
@pytest.mark.parametrize("algorithm", ["sequf", "paruf", "rctt"])
def test_time_realworld(benchmark, trees, name, algorithm):
    tree = trees[name]
    benchmark.group = f"fig8:{name}"
    run_once(benchmark, ALGORITHMS[algorithm], tree)


def test_fig8_shape(benchmark, bn):
    result = benchmark.pedantic(run_fig8, kwargs={"n": bn}, rounds=1, iterations=1)
    by_input: dict[str, dict[str, dict]] = {}
    for s in result["series"]:
        by_input.setdefault(s["input"], {})[s["algorithm"]] = s

    for name, algs in by_input.items():
        # Paper: SeqUF self-speedup modest (1.2-1.8x band; we allow < 4x),
        # both parallel algorithms scale far better.
        assert algs["sequf"]["self_speedup"] < 4.0, name
        assert algs["paruf"]["self_speedup"] > algs["sequf"]["self_speedup"], name
        assert algs["rctt"]["self_speedup"] > algs["sequf"]["self_speedup"], name
        # Paper: at all threads both beat SeqUF on every real-world input.
        assert algs["paruf"].get("speedup_over_sequf", 0) > 1.0, name
        assert algs["rctt"].get("speedup_over_sequf", 0) > 1.0, name
