"""Dynamic SLD maintenance (extension experiment, beyond the paper).

Times updates at different rank quantiles and asserts the locality shape:
recompute size shrinks monotonically as the updated edge's rank rises.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import run_once
from repro.core.dynamic import DynamicSLD
from repro.trees.generators import knuth_tree


def _dyn(bn):
    rng = np.random.default_rng(0)
    tree = knuth_tree(bn, seed=1).with_weights(rng.permutation(bn - 1).astype(float))
    return DynamicSLD(tree)


@pytest.mark.parametrize("quantile", [0.99, 0.5, 0.1], ids=["q99", "q50", "q10"])
def test_time_update_at_quantile(benchmark, bn, quantile):
    dyn = _dyn(bn)
    order = np.argsort(dyn.ranks)
    e = int(order[int(quantile * (bn - 2))])
    benchmark.group = "dynamic:update"
    # Toggle across one neighboring rank: a rank-preserving nudge is now an
    # early-out no-op, so each timed update must genuinely move the rank.
    w0 = float(dyn.weights[e])
    state = [False]

    def update():
        state[0] = not state[0]
        dyn.update_weight(e, w0 + 1.5 if state[0] else w0)

    run_once(benchmark, update)


def test_dynamic_locality_shape(benchmark, bn):
    def measure():
        dyn = _dyn(bn)
        order = np.argsort(dyn.ranks)
        sizes = {}
        for q in (0.99, 0.9, 0.5, 0.1):
            e = int(order[int(q * (bn - 2))])
            # +1.5 crosses exactly one integer-valued neighbor, so the
            # suffix recompute starts at the edge's own rank (~q * m).
            sizes[q] = dyn.update_weight(e, float(dyn.weights[e]) + 1.5)
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    # higher-rank updates recompute fewer edges, roughly (1-q) * m
    assert sizes[0.99] < sizes[0.9] < sizes[0.5] < sizes[0.1]
    assert sizes[0.99] <= 0.05 * (bn - 1)
    assert sizes[0.1] >= 0.8 * (bn - 1)
