"""Dynamic SLD maintenance (extension experiment, beyond the paper).

Times updates at different rank quantiles and asserts the locality shape:
recompute size shrinks monotonically as the updated edge's rank rises.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import run_once
from repro.core.dynamic import DynamicSLD
from repro.trees.generators import knuth_tree


def _dyn(bn):
    rng = np.random.default_rng(0)
    tree = knuth_tree(bn, seed=1).with_weights(rng.permutation(bn - 1).astype(float))
    return DynamicSLD(tree)


@pytest.mark.parametrize("quantile", [0.99, 0.5, 0.1], ids=["q99", "q50", "q10"])
def test_time_update_at_quantile(benchmark, bn, quantile):
    dyn = _dyn(bn)
    order = np.argsort(dyn.ranks)
    e = int(order[int(quantile * (bn - 2))])
    benchmark.group = "dynamic:update"
    w = [float(dyn.weights[e])]

    def update():
        w[0] += 0.125  # stay in the same rank neighborhood
        dyn.update_weight(e, w[0])

    run_once(benchmark, update)


def test_dynamic_locality_shape(benchmark, bn):
    def measure():
        dyn = _dyn(bn)
        order = np.argsort(dyn.ranks)
        sizes = {}
        for q in (0.99, 0.9, 0.5, 0.1):
            e = int(order[int(q * (bn - 2))])
            sizes[q] = dyn.update_weight(e, float(dyn.weights[e]) + 0.125)
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    # higher-rank updates recompute fewer edges, roughly (1-q) * m
    assert sizes[0.99] < sizes[0.9] < sizes[0.5] < sizes[0.1]
    assert sizes[0.99] <= 0.05 * (bn - 1)
    assert sizes[0.1] >= 0.8 * (bn - 1)
