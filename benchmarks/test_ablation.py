"""Ablations: heap choice, post-processing, spine containers, RCTT steps."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.bench.ablation import run as run_ablation
from repro.bench.inputs import make_input
from repro.core.paruf import paruf
from repro.core.tree_contraction_sld import sld_tree_contraction


@pytest.mark.parametrize("heap_kind", ["pairing", "binomial", "skew"])
def test_time_paruf_heap_kinds(benchmark, bn, heap_kind):
    tree = make_input("knuth-perm", bn, seed=0)
    benchmark.group = "ablation:heap-kind"
    run_once(benchmark, paruf, tree, heap_kind=heap_kind)


@pytest.mark.parametrize("postprocess", [True, False], ids=["post-on", "post-off"])
def test_time_paruf_postprocess(benchmark, bn, postprocess):
    tree = make_input("knuth", bn, seed=0)
    benchmark.group = "ablation:postprocess"
    run_once(benchmark, paruf, tree, postprocess=postprocess)


@pytest.mark.parametrize("mode", ["heap", "list"])
def test_time_tree_contraction_modes(benchmark, bn, mode):
    # Star inputs expose the O(nh) list cost; cap the size so the list
    # variant stays tractable.
    tree = make_input("star-perm", min(bn, 4000), seed=0)
    benchmark.group = "ablation:spine-container"
    run_once(benchmark, sld_tree_contraction, tree, mode=mode)


def test_ablation_shape(benchmark, bn):
    result = benchmark.pedantic(
        run_ablation, kwargs={"n": min(bn, 4000)}, rounds=1, iterations=1
    )
    # (b) post-processing: on the unit-weight path the optimization removes
    # nearly all async work -> dramatically lower charged depth... that
    # input is not in the grid, but low-par shows the converse: identical
    # depth with and without (the optimization cannot fire).
    post = {r["input"]: r for r in result["postprocess"]}
    lowpar = post["path-low-par"]
    assert lowpar["on_depth"] >= 0.8 * lowpar["off_depth"]
    perm = post["path-perm"]
    assert perm["on_depth"] <= perm["off_depth"] + 1e-9

    # (c) the sorted-list spine must charge asymptotically more work than
    # the filterable heap on the star input (O(nh) vs O(n log h)).
    spine = {r["input"]: r for r in result["spine_container"]}
    assert spine["star-perm"]["work_ratio"] > 5.0

    # (d) RCTT is build-dominated on every ablation input.
    for r in result["rctt_steps"]:
        assert r["build_frac"] > r["trace_frac"], r["input"]
