"""Image segmentation via single linkage (the "alpha-tree" application).

The paper's related work (Appendix A) notes that the image-analysis
community studies SLDs as *alpha-trees*: build the 4-connectivity grid
graph of an image with edge weights ``|pixel(u) - pixel(v)|``, and the
single-linkage hierarchy is exactly the alpha-tree whose alpha-cut gives
the flat zones at tolerance alpha.  This module implements that pipeline
on top of the package's dendrogram algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import single_linkage_dendrogram
from repro.dendrogram.linkage import cut_height
from repro.dendrogram.structure import Dendrogram
from repro.errors import InvalidGraphError
from repro.trees.mst import minimum_spanning_tree
from repro.trees.wtree import WeightedTree

__all__ = ["grid_graph", "alpha_tree", "AlphaTreeResult"]


def grid_graph(image: np.ndarray) -> tuple[int, np.ndarray, np.ndarray]:
    """4-connectivity graph of a 2-D image; returns ``(n, edges, weights)``.

    Vertices are pixels in row-major order; edge weights are absolute
    intensity differences.  Multi-channel images (H, W, C) use the L2
    difference across channels.
    """
    img = np.asarray(image, dtype=np.float64)
    if img.ndim == 2:
        img = img[:, :, None]
    if img.ndim != 3 or img.shape[0] < 1 or img.shape[1] < 1:
        raise InvalidGraphError(f"image must be (H, W) or (H, W, C), got {image.shape}")
    h, w, _ = img.shape
    ids = np.arange(h * w).reshape(h, w)

    horiz_u = ids[:, :-1].reshape(-1)
    horiz_v = ids[:, 1:].reshape(-1)
    horiz_w = np.sqrt(((img[:, :-1] - img[:, 1:]) ** 2).sum(axis=2)).reshape(-1)

    vert_u = ids[:-1, :].reshape(-1)
    vert_v = ids[1:, :].reshape(-1)
    vert_w = np.sqrt(((img[:-1, :] - img[1:, :]) ** 2).sum(axis=2)).reshape(-1)

    edges = np.concatenate(
        [np.stack([horiz_u, horiz_v], 1), np.stack([vert_u, vert_v], 1)]
    ).astype(np.int64)
    weights = np.concatenate([horiz_w, vert_w])
    return h * w, edges, weights


@dataclass
class AlphaTreeResult:
    """Alpha-tree of an image: MST + dendrogram + segmentation helpers."""

    shape: tuple[int, int]
    mst: WeightedTree
    dendrogram: Dendrogram

    def segment(self, alpha: float) -> np.ndarray:
        """Flat zones at tolerance ``alpha``: the labeled (H, W) image whose
        regions are maximal components with all internal steps <= alpha."""
        labels = cut_height(self.mst, alpha)
        return labels.reshape(self.shape)

    def n_segments(self, alpha: float) -> int:
        return int(np.unique(self.segment(alpha)).size)


def alpha_tree(image: np.ndarray, algorithm: str = "rctt", **options) -> AlphaTreeResult:
    """Build the alpha-tree (single-linkage hierarchy) of an image."""
    img = np.asarray(image)
    n, edges, weights = grid_graph(img)
    if n == 1:
        tree = WeightedTree(1, np.zeros((0, 2), dtype=np.int64), np.zeros(0))
    else:
        tree = minimum_spanning_tree(n, edges, weights, method="kruskal")
    dend = single_linkage_dendrogram(tree, algorithm=algorithm, **options)
    return AlphaTreeResult(shape=(img.shape[0], img.shape[1]), mst=tree, dendrogram=dend)
