"""HDBSCAN*-style density clustering on top of the SLD algorithms.

The paper cites SLD computation as a sub-step of HDBSCAN* (Campello et
al.).  This lightweight variant implements the standard pipeline:

1. core distance of each point = distance to its ``min_samples``-th
   nearest neighbor;
2. mutual-reachability weight of an edge ``(u, v)`` =
   ``max(core(u), core(v), d(u, v))``;
3. MST of the mutual-reachability graph, then its single-linkage
   dendrogram;
4. flat clusters by cutting at ``cut_distance`` and discarding clusters
   smaller than ``min_cluster_size`` as noise (label ``-1``).

It is intentionally a simplification of full HDBSCAN* (no condensed-tree
stability selection); its role here is exercising the dendrogram stack on
a density-based workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.knn import pairwise_distances
from repro.core.api import single_linkage_dendrogram
from repro.dendrogram.structure import Dendrogram
from repro.errors import InvalidGraphError
from repro.structures.unionfind import UnionFind
from repro.trees.mst import minimum_spanning_tree
from repro.trees.wtree import WeightedTree

__all__ = ["hdbscan_lite", "HDBSCANResult"]


@dataclass
class HDBSCANResult:
    labels: np.ndarray  # -1 = noise
    core_distances: np.ndarray
    mst: WeightedTree
    dendrogram: Dendrogram
    n_clusters: int


def hdbscan_lite(
    points: np.ndarray,
    min_samples: int = 5,
    min_cluster_size: int = 5,
    cut_distance: float | None = None,
    algorithm: str = "rctt",
) -> HDBSCANResult:
    """Density-based clustering via mutual-reachability single linkage.

    When ``cut_distance`` is ``None``, the cut is placed automatically at
    the largest gap in the sorted MST edge weights (a common heuristic for
    separating intra-cluster from inter-cluster links).
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n < 2:
        raise InvalidGraphError(f"need at least two points, got {n}")
    if not 1 <= min_samples < n:
        raise InvalidGraphError(f"min_samples must be in [1, {n - 1}], got {min_samples}")

    dists = pairwise_distances(pts)
    np.fill_diagonal(dists, np.inf)
    core = np.partition(dists, min_samples - 1, axis=1)[:, min_samples - 1]

    iu, ju = np.triu_indices(n, k=1)
    edges = np.stack([iu, ju], axis=1).astype(np.int64)
    mreach = np.maximum(np.maximum(core[iu], core[ju]), dists[iu, ju])

    mst = minimum_spanning_tree(n, edges, mreach, method="kruskal")
    dend = single_linkage_dendrogram(mst, algorithm=algorithm)

    if cut_distance is None:
        w = np.sort(mst.weights)
        if w.size >= 2:
            gaps = np.diff(w)
            cut_distance = float((w[np.argmax(gaps)] + w[np.argmax(gaps) + 1]) / 2.0)
        else:
            cut_distance = float(w[0]) if w.size else 0.0

    uf = UnionFind(n)
    for e in range(mst.m):
        if mst.weights[e] <= cut_distance:
            u, v = int(mst.edges[e, 0]), int(mst.edges[e, 1])
            if uf.find(u) != uf.find(v):
                uf.union(u, v)
    roots = np.array([uf.find(v) for v in range(n)])
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    for r in np.unique(roots):
        members = np.flatnonzero(roots == r)
        if members.size >= min_cluster_size:
            labels[members] = next_label
            next_label += 1
    return HDBSCANResult(
        labels=labels,
        core_distances=core,
        mst=mst,
        dendrogram=dend,
        n_clusters=next_label,
    )
