"""Nearest-neighbor-chain hierarchical agglomerative clustering.

ParUF (paper Section 4.1) is "inspired by the nearest-neighbor chain
algorithm, a well-known technique for HAC that obtains good parallelism in
practice for other linkage criteria such as average-linkage and
complete-linkage".  This module implements that classic algorithm for the
*reducible* Lance-Williams linkages (single, complete, average, weighted),
both as a baseline to compare ParUF against conceptually and as a usable
general-purpose HAC.

The chain invariant: follow nearest-neighbor pointers until a reciprocal
pair is found; reducibility guarantees merging a reciprocal pair never
invalidates the rest of the chain.  Merges may be discovered out of height
order, so the linkage matrix is sorted and relabeled afterwards (the same
post-processing SciPy's ``nn_chain`` performs).

For ``method="single"`` this is the quadratic general-purpose route; the
package's MST + dendrogram pipeline (:mod:`repro.cluster.single_linkage`)
is the right tool for large single-linkage inputs.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.knn import pairwise_distances
from repro.errors import InvalidGraphError
from repro.structures.unionfind import UnionFind

__all__ = ["nn_chain_linkage", "LINKAGE_METHODS"]

LINKAGE_METHODS = ("single", "complete", "average", "weighted")


def _lance_williams(method: str, d_ax: float, d_bx: float, na: int, nb: int) -> float:
    if method == "single":
        return min(d_ax, d_bx)
    if method == "complete":
        return max(d_ax, d_bx)
    if method == "average":
        return (na * d_ax + nb * d_bx) / (na + nb)
    # weighted (McQuitty)
    return 0.5 * (d_ax + d_bx)


def nn_chain_linkage(points: np.ndarray, method: str = "average") -> np.ndarray:
    """SciPy-compatible linkage matrix by the nearest-neighbor chain.

    Parameters
    ----------
    points:
        ``(n, d)`` coordinates (Euclidean distances).
    method:
        One of :data:`LINKAGE_METHODS` (all reducible, so the chain
        algorithm is exact for them).
    """
    if method not in LINKAGE_METHODS:
        raise ValueError(f"unknown linkage {method!r}; expected one of {LINKAGE_METHODS}")
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise InvalidGraphError(f"points must be 2-D (n, d), got shape {pts.shape}")
    n = pts.shape[0]
    if n < 2:
        raise InvalidGraphError(f"need at least two points, got {n}")

    dist = pairwise_distances(pts)
    np.fill_diagonal(dist, np.inf)
    active = np.ones(n, dtype=bool)
    size = np.ones(n, dtype=np.int64)
    merges: list[tuple[int, int, float]] = []  # (slot_a, slot_b, height)

    chain: list[int] = []
    remaining = n
    while remaining > 1:
        if not chain:
            chain.append(int(np.flatnonzero(active)[0]))
        a = chain[-1]
        row = np.where(active, dist[a], np.inf)
        row[a] = np.inf
        b = int(np.argmin(row))
        # Prefer the chain predecessor on ties: guarantees reciprocal pairs
        # terminate even with duplicate distances.
        if len(chain) >= 2 and row[chain[-2]] == row[b]:
            b = chain[-2]
        if len(chain) >= 2 and b == chain[-2]:
            height = float(dist[a, b])
            merges.append((a, b, height))
            chain.pop()
            chain.pop()
            # Merge b into a's slot via Lance-Williams updates.
            na, nb = int(size[a]), int(size[b])
            others = np.flatnonzero(active)
            for x in others:
                if x == a or x == b:
                    continue
                dist[a, x] = dist[x, a] = _lance_williams(
                    method, float(dist[a, x]), float(dist[b, x]), na, nb
                )
            active[b] = False
            size[a] = na + nb
            remaining -= 1
        else:
            chain.append(b)

    return _merges_to_linkage(n, merges)


def _merges_to_linkage(n: int, merges: list[tuple[int, int, float]]) -> np.ndarray:
    """Sort chain merges by height and relabel with SciPy cluster ids."""
    order = sorted(range(len(merges)), key=lambda i: (merges[i][2], i))
    Z = np.zeros((n - 1, 4), dtype=np.float64)
    uf = UnionFind(n)
    cluster_id = np.arange(n, dtype=np.int64)
    for out_row, i in enumerate(order):
        a, b, height = merges[i]
        ra, rb = uf.find(a), uf.find(b)
        ca, cb = int(cluster_id[ra]), int(cluster_id[rb])
        if ca > cb:
            ca, cb = cb, ca
        r = uf.union(ra, rb)
        Z[out_row, 0] = ca
        Z[out_row, 1] = cb
        Z[out_row, 2] = height
        Z[out_row, 3] = uf.set_size(r)
        cluster_id[r] = n + out_row
    return Z
