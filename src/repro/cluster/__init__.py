"""Single-linkage clustering pipelines built on the dendrogram algorithms.

The paper motivates SLD computation as the core of single-linkage HAC and
of HDBSCAN*-style density clustering.  These modules provide the full
points-to-clusters path: k-NN (or complete) graph construction, MST
reduction, dendrogram computation with any of the package's algorithms,
and flat-cluster extraction.
"""

from repro.cluster.evaluation import davies_bouldin, purity, silhouette_score
from repro.cluster.graph_linkage import GraphLinkageResult, graph_single_linkage
from repro.cluster.hac import LINKAGE_METHODS, nn_chain_linkage
from repro.cluster.hdbscan_lite import hdbscan_lite
from repro.cluster.image import AlphaTreeResult, alpha_tree, grid_graph
from repro.cluster.knn import complete_graph, knn_graph
from repro.cluster.single_linkage import SingleLinkageResult, single_linkage

__all__ = [
    "knn_graph",
    "complete_graph",
    "single_linkage",
    "SingleLinkageResult",
    "hdbscan_lite",
    "graph_single_linkage",
    "GraphLinkageResult",
    "nn_chain_linkage",
    "LINKAGE_METHODS",
    "alpha_tree",
    "grid_graph",
    "AlphaTreeResult",
    "silhouette_score",
    "davies_bouldin",
    "purity",
]
