"""Internal and external cluster-quality metrics.

Complements :mod:`repro.dendrogram.compare` (pair-counting agreement
between two labelings) with the standard quality scores used to pick a
cut level or compare linkage methods:

* :func:`silhouette_score` -- mean silhouette coefficient (internal);
* :func:`davies_bouldin` -- average worst-case cluster similarity
  (internal, lower is better);
* :func:`purity` -- majority-class fraction against ground truth
  (external).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.knn import pairwise_distances
from repro.errors import InvalidGraphError

__all__ = ["silhouette_score", "davies_bouldin", "purity"]


def _check_labels(points: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pts = np.asarray(points, dtype=np.float64)
    lab = np.asarray(labels)
    if pts.ndim != 2:
        raise InvalidGraphError(f"points must be 2-D (n, d), got shape {pts.shape}")
    if lab.shape != (pts.shape[0],):
        raise ValueError(
            f"labels must be 1-D with one entry per point; got {lab.shape} for {pts.shape[0]} points"
        )
    return pts, lab


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient ``(b - a) / max(a, b)`` over all points.

    ``a`` is the mean intra-cluster distance, ``b`` the mean distance to
    the nearest other cluster.  Singleton clusters score 0 (the standard
    convention).  Requires at least 2 clusters and at least 2 points.
    """
    pts, lab = _check_labels(points, labels)
    n = pts.shape[0]
    uniq = np.unique(lab)
    if uniq.size < 2 or uniq.size >= n + 1:
        raise ValueError("silhouette requires 2 <= #clusters and n >= 2")
    dists = pairwise_distances(pts)
    scores = np.zeros(n, dtype=np.float64)
    masks = {c: lab == c for c in uniq}
    sizes = {c: int(masks[c].sum()) for c in uniq}
    for i in range(n):
        c = lab[i]
        if sizes[c] <= 1:
            scores[i] = 0.0
            continue
        a = dists[i, masks[c]].sum() / (sizes[c] - 1)
        b = min(
            dists[i, masks[o]].mean() for o in uniq if o != c
        )
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def davies_bouldin(points: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin index (lower = tighter, better-separated clusters)."""
    pts, lab = _check_labels(points, labels)
    uniq = np.unique(lab)
    if uniq.size < 2:
        raise ValueError("Davies-Bouldin requires at least 2 clusters")
    centroids = np.stack([pts[lab == c].mean(axis=0) for c in uniq])
    scatter = np.array(
        [
            float(np.linalg.norm(pts[lab == c] - centroids[k], axis=1).mean())
            for k, c in enumerate(uniq)
        ]
    )
    k = uniq.size
    worst = np.zeros(k)
    for i in range(k):
        ratios = [
            (scatter[i] + scatter[j]) / np.linalg.norm(centroids[i] - centroids[j])
            for j in range(k)
            if j != i
        ]
        worst[i] = max(ratios)
    return float(worst.mean())


def purity(labels: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of points whose cluster's majority ground-truth class they
    share (external metric; 1.0 = every cluster is class-pure)."""
    lab = np.asarray(labels)
    tru = np.asarray(truth)
    if lab.shape != tru.shape or lab.ndim != 1:
        raise ValueError("labels and truth must be 1-D and equal length")
    if lab.size == 0:
        return 1.0
    total = 0
    for c in np.unique(lab):
        members = tru[lab == c]
        total += int(np.bincount(members - members.min()).max()) if members.size else 0
    return total / lab.size
