"""End-to-end single-linkage clustering of point clouds.

The classic pipeline the paper's Section 2.3 describes: build a weighted
graph over the points, reduce to its minimum spanning tree (Gower & Ross),
compute the MST's single-linkage dendrogram with any of the package's
algorithms, and cut for flat clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.knn import complete_graph, knn_graph
from repro.core.api import single_linkage_dendrogram
from repro.dendrogram.linkage import cut_height, cut_k, to_scipy_linkage
from repro.dendrogram.structure import Dendrogram
from repro.trees.mst import minimum_spanning_tree
from repro.trees.wtree import WeightedTree

__all__ = ["SingleLinkageResult", "single_linkage"]


@dataclass
class SingleLinkageResult:
    """Everything the pipeline produced, from graph to dendrogram."""

    points: np.ndarray
    mst: WeightedTree
    dendrogram: Dendrogram

    def linkage_matrix(self) -> np.ndarray:
        """SciPy-compatible ``(n-1, 4)`` linkage matrix."""
        return to_scipy_linkage(self.mst)

    def labels_at(self, threshold: float) -> np.ndarray:
        """Flat cluster labels merging all links of distance <= threshold."""
        return cut_height(self.mst, threshold)

    def labels_k(self, k: int) -> np.ndarray:
        """Flat cluster labels with exactly ``k`` clusters."""
        return cut_k(self.mst, k)


def single_linkage(
    points: np.ndarray,
    k: int | None = None,
    algorithm: str = "rctt",
    mst_method: str = "kruskal",
    backend: str = "auto",
    **algorithm_options,
) -> SingleLinkageResult:
    """Single-linkage clustering of ``points``.

    Parameters
    ----------
    points:
        ``(n, d)`` array of coordinates.
    k:
        Use a symmetrized exact ``k``-NN graph (the scalable choice, and
        the paper's BigANN pipeline shape); ``None`` uses the complete
        graph (exact single linkage, quadratic).
    algorithm:
        Dendrogram algorithm name (see :data:`repro.core.api.ALGORITHMS`).
    mst_method:
        ``kruskal`` / ``prim`` / ``scipy`` / ``boruvka``.
    backend:
        Forwarded to both the MST stage and the dendrogram stage
        (``"auto"`` / ``"reference"`` / ``"array"``, see
        :func:`repro.core.api.single_linkage_dendrogram`); every backend
        returns a bit-identical result.
    """
    pts = np.asarray(points, dtype=np.float64)
    if k is None:
        n, edges, weights = complete_graph(pts)
    else:
        n, edges, weights = knn_graph(pts, k)
    mst = minimum_spanning_tree(n, edges, weights, method=mst_method, backend=backend)
    dend = single_linkage_dendrogram(
        mst, algorithm=algorithm, backend=backend, **algorithm_options
    )
    return SingleLinkageResult(points=pts, mst=mst, dendrogram=dend)
