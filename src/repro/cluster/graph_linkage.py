"""Single-linkage clustering of arbitrary weighted graphs.

The general form of the Gower-Ross reduction (paper Section 2.3): the
single-linkage hierarchy of a weighted graph equals that of its minimum
spanning tree, and disconnected graphs are clustered per component.  This
module handles the disconnected case explicitly by bridging components
with ``+inf``-like weights (heavier than everything else), so component
structure is preserved at every finite cut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import single_linkage_dendrogram
from repro.dendrogram.structure import Dendrogram
from repro.errors import InvalidGraphError
from repro.structures.unionfind import UnionFind
from repro.trees.mst import minimum_spanning_tree
from repro.trees.boruvka import boruvka_tree
from repro.trees.wtree import WeightedTree

__all__ = ["graph_single_linkage", "GraphLinkageResult"]


@dataclass
class GraphLinkageResult:
    """Dendrogram of a weighted graph plus its spanning structure."""

    mst: WeightedTree
    dendrogram: Dendrogram
    n_components: int
    bridge_edges: np.ndarray  # ids (within mst) of artificial bridges

    def labels_at(self, threshold: float) -> np.ndarray:
        """Flat clusters at ``threshold``; bridges never merge below it."""
        from repro.dendrogram.linkage import cut_height

        return cut_height(self.mst, threshold)


def graph_single_linkage(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    algorithm: str = "rctt",
    mst_method: str = "kruskal",
    **algorithm_options,
) -> GraphLinkageResult:
    """Single-linkage dendrogram of a (possibly disconnected) graph.

    Components are bridged by artificial edges weighted above every real
    edge, so cutting the hierarchy at any real weight recovers the per-
    component clusterings and the top ``n_components - 1`` merges are the
    bridges.
    """
    edges = np.asarray(edges, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
        raise InvalidGraphError(f"edges must have shape (m, 2), got {edges.shape}")
    if weights.shape != (edges.shape[0],):
        raise InvalidGraphError("need exactly one weight per edge")

    uf = UnionFind(n)
    for u, v in edges:
        if uf.find(int(u)) != uf.find(int(v)):
            uf.union(int(u), int(v))
    n_components = uf.num_sets

    bridge_rows: list[list[int]] = []
    if n_components > 1:
        reps = sorted(int(r) for r in uf.roots())
        base = float(weights.max()) + 1.0 if weights.size else 1.0
        for i, (a, b) in enumerate(zip(reps[:-1], reps[1:])):
            bridge_rows.append([a, b])
        bridge_edges = np.asarray(bridge_rows, dtype=np.int64)
        bridge_weights = base + np.arange(len(bridge_rows), dtype=np.float64)
        edges = np.concatenate([edges, bridge_edges]) if edges.size else bridge_edges
        weights = np.concatenate([weights, bridge_weights])

    if mst_method == "boruvka":
        mst = boruvka_tree(n, edges, weights)
    else:
        mst = minimum_spanning_tree(n, edges, weights, method=mst_method)
    dend = single_linkage_dendrogram(mst, algorithm=algorithm, **algorithm_options)

    if bridge_rows:
        bridge_set = {tuple(sorted(r)) for r in bridge_rows}
        ids = [
            e
            for e in range(mst.m)
            if (min(int(mst.edges[e, 0]), int(mst.edges[e, 1])),
                max(int(mst.edges[e, 0]), int(mst.edges[e, 1]))) in bridge_set
        ]
        bridges = np.asarray(ids, dtype=np.int64)
    else:
        bridges = np.zeros(0, dtype=np.int64)
    return GraphLinkageResult(
        mst=mst, dendrogram=dend, n_components=n_components, bridge_edges=bridges
    )
