"""Single-linkage clustering of arbitrary weighted graphs.

The general form of the Gower-Ross reduction (paper Section 2.3): the
single-linkage hierarchy of a weighted graph equals that of its minimum
spanning tree, and disconnected graphs are clustered per component.  This
module handles the disconnected case explicitly by bridging components
with ``+inf``-like weights (heavier than everything else), so component
structure is preserved at every finite cut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import single_linkage_dendrogram
from repro.dendrogram.structure import Dendrogram
from repro.errors import InvalidGraphError
from repro.structures.unionfind import UnionFind
from repro.trees.mst import minimum_spanning_tree
from repro.trees.wtree import WeightedTree

__all__ = ["graph_single_linkage", "GraphLinkageResult"]


@dataclass
class GraphLinkageResult:
    """Dendrogram of a weighted graph plus its spanning structure."""

    mst: WeightedTree
    dendrogram: Dendrogram
    n_components: int
    bridge_edges: np.ndarray  # ids (within mst) of artificial bridges

    def labels_at(self, threshold: float) -> np.ndarray:
        """Flat clusters at ``threshold``; bridges never merge below it."""
        from repro.dendrogram.linkage import cut_height

        return cut_height(self.mst, threshold)


def graph_single_linkage(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    algorithm: str = "rctt",
    mst_method: str = "kruskal",
    backend: str = "auto",
    **algorithm_options,
) -> GraphLinkageResult:
    """Single-linkage dendrogram of a (possibly disconnected) graph.

    Components are bridged by artificial edges weighted above every real
    edge, so cutting the hierarchy at any real weight recovers the per-
    component clusterings and the top ``n_components - 1`` merges are the
    bridges.  ``backend`` is forwarded to the MST and dendrogram stages
    (every backend returns a bit-identical result).
    """
    edges = np.asarray(edges, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
        raise InvalidGraphError(f"edges must have shape (m, 2), got {edges.shape}")
    if weights.shape != (edges.shape[0],):
        raise InvalidGraphError("need exactly one weight per edge")

    uf = UnionFind(n)
    _union_components(uf, edges)
    n_components = uf.num_sets

    bridge_rows: list[list[int]] = []
    if n_components > 1:
        reps = sorted(int(r) for r in uf.roots())
        base = float(weights.max()) + 1.0 if weights.size else 1.0
        for i, (a, b) in enumerate(zip(reps[:-1], reps[1:])):
            bridge_rows.append([a, b])
        bridge_edges = np.asarray(bridge_rows, dtype=np.int64)
        bridge_weights = base + np.arange(len(bridge_rows), dtype=np.float64)
        edges = np.concatenate([edges, bridge_edges]) if edges.size else bridge_edges
        weights = np.concatenate([weights, bridge_weights])

    mst = minimum_spanning_tree(n, edges, weights, method=mst_method, backend=backend)
    dend = single_linkage_dendrogram(
        mst, algorithm=algorithm, backend=backend, **algorithm_options
    )

    if bridge_rows:
        # Bridge recovery, vectorized: match the MST's undirected endpoint
        # keys against the artificial rows (keys are unique -- the input
        # may not duplicate a bridge pair, bridges join distinct
        # components).
        lo = np.minimum(mst.edges[:, 0], mst.edges[:, 1])
        hi = np.maximum(mst.edges[:, 0], mst.edges[:, 1])
        keys = lo * n + hi
        brows = np.asarray(bridge_rows, dtype=np.int64)
        bkeys = np.sort(brows[:, 0] * n + brows[:, 1])
        pos = np.minimum(np.searchsorted(bkeys, keys), bkeys.size - 1)
        bridges = np.flatnonzero(bkeys[pos] == keys).astype(np.int64)
    else:
        bridges = np.zeros(0, dtype=np.int64)
    return GraphLinkageResult(
        mst=mst, dendrogram=dend, n_components=n_components, bridge_edges=bridges
    )


def _union_components(uf: UnionFind, edges: np.ndarray) -> None:
    """Union every edge's endpoints, in batches (connectivity only).

    Component structure is order-independent, so a vectorized
    ``find_many`` pre-filter drops the bulk of each batch and only the
    surviving (possibly stale) candidates hit the scalar union loop.
    """
    chunk = 8192
    for start in range(0, edges.shape[0], chunk):
        batch = edges[start : start + chunk]
        ru = uf.find_many(batch[:, 0])
        rv = uf.find_many(batch[:, 1])
        cross = ru != rv
        for a, b in zip(ru[cross].tolist(), rv[cross].tolist()):
            if uf.find(a) != uf.find(b):
                uf.union(a, b)
