"""Neighborhood-graph construction for point clouds.

The paper's BigANN input is an approximate k-NN graph over SIFT
descriptors built with DiskANN; the single-core substitute here is an
exact, vectorized k-NN over synthetic point clouds (DESIGN.md Section 1).
Distances are Euclidean; the k-NN graph is symmetrized (an edge appears if
either endpoint selects the other) and, when requested, made connected by
bridging components at their closest point pairs -- the same guarantee an
ANN-graph + MST pipeline needs.
"""

from __future__ import annotations

import numpy as np

from repro.checkers.ownership import owns
from repro.errors import InvalidGraphError
from repro.structures.unionfind import UnionFind

__all__ = ["knn_graph", "complete_graph", "pairwise_distances"]


def pairwise_distances(
    points: np.ndarray, chunk: int = 1024, workers: int | None = 1
) -> np.ndarray:
    """Dense Euclidean distance matrix, computed in row chunks.

    ``workers > 1`` computes chunks on a thread pool: the matmul/sqrt
    kernels release the GIL, so this is the one place in the package where
    OS threads yield real speedup on multicore hosts (the rest of the
    parallelism story runs through the cost model; see DESIGN.md §1).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise InvalidGraphError(f"points must be 2-D (n, d), got shape {pts.shape}")
    n = pts.shape[0]
    sq = np.einsum("ij,ij->i", pts, pts)
    out = np.empty((n, n), dtype=np.float64)

    # Each pool worker owns the disjoint row partition out[lo:hi]; the
    # declaration is what licenses running fill on concurrent threads.
    @owns("out[lo:hi]")
    def fill(lo: int, hi: int) -> None:
        for block_lo in range(lo, hi, chunk):
            block_hi = min(block_lo + chunk, hi)
            block = sq[block_lo:block_hi, None] + sq[None, :] - 2.0 * (
                pts[block_lo:block_hi] @ pts.T
            )
            np.maximum(block, 0.0, out=block)
            np.sqrt(block, out=out[block_lo:block_hi])

    from repro.runtime.pool import parallel_for

    parallel_for(fill, n, workers=workers, grain=chunk)
    # The expansion x^2+y^2-2xy leaves O(eps) noise on the diagonal; pin it.
    np.fill_diagonal(out, 0.0)
    return out


def complete_graph(points: np.ndarray) -> tuple[int, np.ndarray, np.ndarray]:
    """All-pairs graph ``(n, edges, weights)`` with Euclidean weights."""
    dists = pairwise_distances(points)
    n = dists.shape[0]
    iu, ju = np.triu_indices(n, k=1)
    edges = np.stack([iu, ju], axis=1).astype(np.int64)
    return n, edges, dists[iu, ju]


def knn_graph(
    points: np.ndarray,
    k: int,
    ensure_connected: bool = True,
) -> tuple[int, np.ndarray, np.ndarray]:
    """Symmetrized exact k-NN graph ``(n, edges, weights)``.

    Each point contributes edges to its ``k`` nearest neighbors; duplicate
    (mutual) pairs are merged.  With ``ensure_connected`` (default), any
    remaining components are bridged at their closest point pairs so the
    MST reduction can span the cloud.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n < 2:
        raise InvalidGraphError(f"need at least two points, got {n}")
    if not 1 <= k < n:
        raise InvalidGraphError(f"k must be in [1, {n - 1}], got {k}")
    dists = pairwise_distances(pts)
    np.fill_diagonal(dists, np.inf)
    nbrs = np.argpartition(dists, k, axis=1)[:, :k]

    # Symmetrize + dedupe in one vectorized pass: undirected pair keys
    # a*n+b (a < b) over all n*k selections, np.unique for the sorted
    # distinct pairs.  Matches the dict-based reference exactly -- its
    # iteration over sorted keys is the same ascending key order, and the
    # distance matrix is symmetric so either orientation's weight agrees.
    rows = np.repeat(np.arange(n, dtype=np.int64), k)
    cols = np.ascontiguousarray(nbrs, dtype=np.int64).ravel()
    keys = np.unique(np.minimum(rows, cols) * n + np.maximum(rows, cols))
    ea = keys // n
    eb = keys - ea * n
    edges = np.stack([ea, eb], axis=1)
    weights = dists[ea, eb]

    if ensure_connected:
        extra_e, extra_w = _bridge_components(n, edges, dists)
        if extra_e:
            edges = np.concatenate([edges, np.asarray(extra_e, dtype=np.int64)])
            weights = np.concatenate([weights, np.asarray(extra_w, dtype=np.float64)])
    return n, edges, weights


def _knn_pairs_reference(
    n: int, nbrs: np.ndarray, dists: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The original dict-based pair build (kept as the test oracle for the
    vectorized symmetrize/dedupe in :func:`knn_graph`)."""
    pair_weight: dict[tuple[int, int], float] = {}
    for i in range(n):
        for j in nbrs[i]:
            j = int(j)
            key = (i, j) if i < j else (j, i)
            pair_weight[key] = float(dists[i, j])
    edges = np.array(sorted(pair_weight), dtype=np.int64).reshape(-1, 2)
    weights = np.array([pair_weight[tuple(p)] for p in edges], dtype=np.float64)
    return edges, weights


def _bridge_components(
    n: int, edges: np.ndarray, dists: np.ndarray
) -> tuple[list[list[int]], list[float]]:
    """Closest-pair bridges between connected components.

    The roots pass is one vectorized ``find_many`` batch per bridge (the
    loop runs once per component, not per vertex);
    :func:`_bridge_components_reference` keeps the scalar original as the
    test oracle.
    """
    uf = UnionFind(n)
    all_vertices = np.arange(n, dtype=np.int64)
    for start in range(0, edges.shape[0], 8192):
        batch = edges[start : start + 8192]
        ru = uf.find_many(batch[:, 0])
        rv = uf.find_many(batch[:, 1])
        cross = ru != rv
        for a, b in zip(ru[cross].tolist(), rv[cross].tolist()):
            if uf.find(a) != uf.find(b):
                uf.union(a, b)
    extra_e: list[list[int]] = []
    extra_w: list[float] = []
    while uf.num_sets > 1:
        roots = uf.find_many(all_vertices)
        comp0 = np.flatnonzero(roots == roots[0])
        rest = np.flatnonzero(roots != roots[0])
        block = dists[np.ix_(comp0, rest)]
        a, b = np.unravel_index(np.argmin(block), block.shape)
        u, v = int(comp0[a]), int(rest[b])
        extra_e.append([u, v])
        extra_w.append(float(dists[u, v]))
        uf.union(u, v)
    return extra_e, extra_w


def _bridge_components_reference(
    n: int, edges: np.ndarray, dists: np.ndarray
) -> tuple[list[list[int]], list[float]]:
    """The original per-vertex bridging loop (test oracle)."""
    uf = UnionFind(n)
    for u, v in edges:
        if uf.find(int(u)) != uf.find(int(v)):
            uf.union(int(u), int(v))
    extra_e: list[list[int]] = []
    extra_w: list[float] = []
    while uf.num_sets > 1:
        roots = np.array([uf.find(v) for v in range(n)])
        comp0 = np.flatnonzero(roots == roots[0])
        rest = np.flatnonzero(roots != roots[0])
        block = dists[np.ix_(comp0, rest)]
        a, b = np.unravel_index(np.argmin(block), block.shape)
        u, v = int(comp0[a]), int(rest[b])
        extra_e.append([u, v])
        extra_w.append(float(dists[u, v]))
        uf.union(u, v)
    return extra_e, extra_w
