"""Persistence: save/load trees and dendrograms as ``.npz`` archives.

The formats are intentionally plain -- raw arrays plus a format tag -- so
downstream tooling in any language can read them with a NumPy-compatible
loader.

* tree archive:        ``kind="tree"``, ``n``, ``edges (m,2)``, ``weights (m,)``
* dendrogram archive:  ``kind="dendrogram"``, the tree fields, ``parents (m,)``
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.dendrogram.structure import Dendrogram
from repro.errors import ReproError
from repro.trees.wtree import WeightedTree

__all__ = [
    "save_tree",
    "load_tree",
    "save_dendrogram",
    "load_dendrogram",
    "export_linkage_csv",
    "load_edges_csv",
]


class FormatError(ReproError):
    """The archive is not in the expected repro format."""


def save_tree(path: str | Path, tree: WeightedTree) -> None:
    """Write a weighted tree to ``path`` (``.npz``)."""
    np.savez_compressed(
        path,
        kind=np.array("tree"),
        n=np.array(tree.n, dtype=np.int64),
        edges=tree.edges,
        weights=tree.weights,
    )


def load_tree(path: str | Path) -> WeightedTree:
    """Read a weighted tree saved by :func:`save_tree`."""
    with np.load(path, allow_pickle=False) as data:
        _expect_kind(data, "tree", path)
        return WeightedTree(int(data["n"]), data["edges"], data["weights"])


def save_dendrogram(path: str | Path, dend: Dendrogram) -> None:
    """Write a dendrogram (tree + parents) to ``path`` (``.npz``)."""
    tree = dend.tree
    np.savez_compressed(
        path,
        kind=np.array("dendrogram"),
        n=np.array(tree.n, dtype=np.int64),
        edges=tree.edges,
        weights=tree.weights,
        parents=dend.parents,
    )


def load_dendrogram(path: str | Path) -> Dendrogram:
    """Read a dendrogram saved by :func:`save_dendrogram` (validated)."""
    with np.load(path, allow_pickle=False) as data:
        _expect_kind(data, "dendrogram", path)
        tree = WeightedTree(int(data["n"]), data["edges"], data["weights"])
        return Dendrogram(tree, data["parents"], validate=True)


def export_linkage_csv(path: str | Path, dend: Dendrogram) -> None:
    """Write the SciPy-style linkage matrix as CSV with a header row."""
    Z = dend.to_linkage()
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["cluster_a", "cluster_b", "distance", "size"])
        for row in Z:
            writer.writerow([int(row[0]), int(row[1]), repr(float(row[2])), int(row[3])])


def load_edges_csv(
    path: str | Path, has_header: bool | None = None
) -> tuple[int, np.ndarray, np.ndarray]:
    """Read a weighted edge list from CSV: rows of ``u,v[,weight]``.

    Returns ``(n, edges, weights)`` with ``n = max vertex id + 1`` and unit
    weights where the column is absent.  ``has_header=None`` auto-detects a
    header row (non-numeric first cell).  Feed the result to
    :func:`repro.trees.mst.minimum_spanning_tree` or
    :func:`repro.cluster.graph_linkage.graph_single_linkage`.
    """
    rows: list[tuple[int, int, float]] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        for i, row in enumerate(reader):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if i == 0 and has_header is not False:
                try:
                    int(row[0])
                except ValueError:
                    continue  # header row
            if len(row) < 2:
                raise FormatError(f"{path}: row {i + 1} has fewer than two columns")
            u, v = int(row[0]), int(row[1])
            w = float(row[2]) if len(row) >= 3 and row[2].strip() else 1.0
            rows.append((u, v, w))
    if not rows:
        raise FormatError(f"{path}: no edges found")
    edges = np.array([(u, v) for u, v, _ in rows], dtype=np.int64)
    weights = np.array([w for _, _, w in rows], dtype=np.float64)
    if edges.min() < 0:
        raise FormatError(f"{path}: negative vertex id")
    n = int(edges.max()) + 1
    return n, edges, weights


def _expect_kind(data, kind: str, path) -> None:
    if "kind" not in data or str(data["kind"]) != kind:
        found = str(data["kind"]) if "kind" in data else "<missing>"
        raise FormatError(f"{path}: expected a {kind!r} archive, found kind={found!r}")
