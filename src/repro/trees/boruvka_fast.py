"""Fully vectorized Boruvka rounds: the flat-array backend for the MST loop.

GBBS-style filter/contract rounds (PAPERS.md: "Theoretically Efficient
Parallel Graph Algorithms Can Be Fast and Scalable") over flat slabs.
Each round runs three vectorized phases and no per-edge Python work:

1. **Selection** -- every component picks its minimum-rank incident edge
   with a single lexsort over ``(component, rank)`` pairs covering both
   edge directions; first-occurrence rows are the winners.
2. **Star contraction** -- the selected edges form a functional graph
   ``parent[c] = partner(c)`` over component labels whose only cycles are
   mutual selections (two components picking the *same* edge, see below);
   breaking each 2-cycle toward the smaller label leaves a forest that
   pointer doubling collapses to roots in ``O(log)`` gathers.
3. **Filter + positional relabel** -- intra-component edges drop out, and
   the surviving component labels are renamed to their first position in
   the surviving endpoint list by one reversed scatter (the
   ``sequf_fast`` window idiom), so every per-round slab is sized by the
   live frontier, not ``n``.

Bit-identity with the reference rounds
(:func:`repro.trees.boruvka._boruvka_loop`): ranks are a permutation (no
ties), so each component's min-rank incident edge is unique, and a
selection cycle longer than 2 is impossible -- along any directed cycle
of components the selected-edge rank would have to strictly decrease.
The only repeats are mutual selections, and mutuality forces the *same*
edge (each side's minimum bounds the other).  Deduplicated, every
selected edge therefore merges exactly two distinct components -- which
is why the reference's sequential union loop never skips a selected edge
and this kernel may apply them all at once.  Chosen ids and round counts
match the reference exactly.
"""

from __future__ import annotations

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.checkers.contracts import slab_contract

__all__ = ["boruvka_select_contract"]


@cost_bound(
    work="m * log(n)",
    depth="log(n)**2",
    vars=("m", "n"),
    kind="helper",
    theorem="O(log n) Boruvka rounds; each round is one lexsort over the "
    "surviving edges plus O(log) pointer-doubling gathers",
)
@slab_contract(
    dtypes={"edges": "int64", "ranks": "int64"},
    contiguous=("ranks",),
)
def boruvka_select_contract(
    n: int, edges: np.ndarray, ranks: np.ndarray
) -> tuple[np.ndarray, int, int]:
    """Vectorized Boruvka rounds over a validated edge list.

    Returns ``(chosen, rounds, num_sets)``: the sorted MST edge ids, the
    round count (matching the reference loop exactly), and the number of
    connected components left (1 iff the graph spans ``n`` vertices).
    The caller owns graph validation and the connectivity check.
    """
    m = int(edges.shape[0])
    chosen_parts: list[np.ndarray] = []
    ncomp = n
    eid = np.arange(m, dtype=np.int64)
    cu = np.ascontiguousarray(edges[:, 0]) if m else np.empty(0, dtype=np.int64)
    cv = np.ascontiguousarray(edges[:, 1]) if m else np.empty(0, dtype=np.int64)
    dom = n  # current component-label domain: [0, dom)
    rounds = 0
    while ncomp > 1:  # noqa: RPR102 -- O(log n) Boruvka rounds by Lemma
        rounds += 1
        k = int(eid.size)
        if k == 0:
            break
        # Phase 1 -- selection.  Both directions of every edge, sorted by
        # (component, rank); the first row of each component group is its
        # min-rank incident edge.  Per-round concatenations are frontier-
        # sized and the frontier shrinks geometrically: no quadratic churn.
        rk = ranks[eid]
        comp2 = np.concatenate([cu, cv])  # noqa: RPR204 -- fresh frontier slab
        rk2 = np.concatenate([rk, rk])  # noqa: RPR204 -- fresh frontier slab
        order = np.lexsort((rk2, comp2))
        comp_s = comp2[order]
        first = np.empty(comp_s.size, dtype=bool)
        first[0] = True
        first[1:] = comp_s[1:] != comp_s[:-1]
        selpos = order[first]
        winners = comp_s[first]
        from_v = selpos >= k
        j = np.where(from_v, selpos - k, selpos)
        partner = np.where(from_v, cu[j], cv[j])
        sel_eid = eid[j]
        # Phase 2 -- star contraction.  parent[c] = partner(c); the only
        # cycles are mutual selections, broken toward the smaller label.
        parent = np.arange(dom, dtype=np.int64)
        parent[winners] = partner
        back = parent[partner] == winners
        keep_root = back & (winners < partner)
        parent[winners[keep_root]] = winners[keep_root]
        while True:  # noqa: RPR102 -- pointer doubling, O(log) gathers
            nxt = parent[parent]
            if np.array_equal(nxt, parent):
                break
            parent = nxt
        applied = np.unique(sel_eid)
        chosen_parts.append(applied)
        ncomp -= int(applied.size)
        # Phase 3 -- filter intra-component edges, relabel survivors to
        # positional ids (first occurrence among the surviving endpoints,
        # via the reversed scatter) so next round's slabs stay frontier-
        # sized.
        cu = parent[cu]
        cv = parent[cv]
        cross = cu != cv
        eid = eid[cross]
        cu = cu[cross]
        cv = cv[cross]
        k2 = int(eid.size)
        if k2:
            both = np.concatenate([cu, cv])  # noqa: RPR204 -- fresh frontier slab
            a2 = np.arange(2 * k2, dtype=np.int64)
            firstpos = np.empty(dom, dtype=np.int64)
            firstpos[both[::-1]] = a2[::-1]
            lbl = firstpos[both]
            cu = lbl[:k2]
            cv = lbl[k2:]
            dom = 2 * k2
    if chosen_parts:
        chosen = np.sort(np.concatenate(chosen_parts))
    else:
        chosen = np.empty(0, dtype=np.int64)
    return chosen, rounds, ncomp
