"""Euler tours and list ranking: the classic parallel tree substrate.

Wang et al.'s SLD algorithm (the prior state of the art, Appendix A)
implements its divide-and-conquer contraction with the Euler Tour
Technique.  This module provides that substrate from scratch:

* :func:`euler_tour` -- the arc-successor cycle of a tree (each edge
  contributes two arcs; the successor of arc ``u -> v`` is the next arc out
  of ``v`` after ``v -> u`` in ``v``'s adjacency order);
* :func:`list_rank` -- Wyllie's pointer-jumping list ranking
  (``O(n log n)`` work, ``O(log n)`` depth, charged accordingly);
* :func:`root_tree` -- parents, depths, and subtree sizes of a rooted
  tree derived from tour positions, the standard Euler-tour application.

``root_tree`` doubles as an independently-implemented reference for
anything the contraction machinery computes about tree structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.cost_model import CostTracker, WorkDepth
from repro.trees.wtree import WeightedTree
from repro.util import log2ceil

__all__ = ["EulerTour", "euler_tour", "list_rank", "root_tree", "RootedTree"]


@dataclass
class EulerTour:
    """The arc structure of a tree's Euler tour.

    Arc ``2*e`` is ``edges[e, 0] -> edges[e, 1]``; arc ``2*e + 1`` is the
    reverse.  ``succ`` is the cyclic successor; ``first_arc[v]`` is an
    arbitrary arc leaving ``v`` (the tour entry point used for rooting).
    """

    n: int
    arc_tail: np.ndarray  # arc id -> source vertex
    arc_head: np.ndarray  # arc id -> target vertex
    succ: np.ndarray  # arc id -> next arc id on the tour
    first_arc: np.ndarray  # vertex -> some outgoing arc (-1 if isolated)


def euler_tour(tree: WeightedTree) -> EulerTour:
    """Build the Euler-tour successor cycle of ``tree``.

    ``succ[twin(a)]`` is the arc after ``a``'s reversal at ``a``'s source:
    the tour traverses every arc exactly once and forms a single cycle of
    length ``2m``.
    """
    m = tree.m
    n = tree.n
    arc_tail = np.empty(2 * m, dtype=np.int64)
    arc_head = np.empty(2 * m, dtype=np.int64)
    if m:
        arc_tail[0::2] = tree.edges[:, 0]
        arc_head[0::2] = tree.edges[:, 1]
        arc_tail[1::2] = tree.edges[:, 1]
        arc_head[1::2] = tree.edges[:, 0]
    succ = np.full(2 * m, -1, dtype=np.int64)
    first_arc = np.full(n, -1, dtype=np.int64)
    if m == 0:
        return EulerTour(n, arc_tail, arc_head, succ, first_arc)
    # Group outgoing arcs by source; next-in-cyclic-order within a group.
    order = np.argsort(arc_tail, kind="stable")
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(arc_tail, minlength=n), out=offsets[1:])
    group_starts = offsets[:-1][np.diff(offsets) > 0]  # one per non-isolated vertex
    first_arc[arc_tail[order[group_starts]]] = order[group_starts]
    # position of each arc within its source group: ``order`` is stable-
    # sorted by source, so slot ``j`` of the sort sits ``j - offsets[src]``
    # entries into its group -- one vectorized subtraction, no per-vertex loop.
    pos_in_group = np.empty(2 * m, dtype=np.int64)
    pos_in_group[order] = np.arange(2 * m, dtype=np.int64) - offsets[arc_tail[order]]
    # succ[twin(a)] = next arc out of source(a) after a (cyclically)
    twin = np.arange(2 * m, dtype=np.int64) ^ 1
    src = arc_tail
    group_lo = offsets[src]
    group_sz = offsets[src + 1] - group_lo
    next_within = order[group_lo + (pos_in_group + 1) % group_sz]
    succ[twin] = next_within
    return EulerTour(n, arc_tail, arc_head, succ, first_arc)


def list_rank(
    succ: np.ndarray, head: int, tracker: CostTracker | None = None
) -> np.ndarray:
    """Distance of every element from ``head`` along the successor list.

    ``succ`` must describe a single cycle (as :func:`euler_tour` produces)
    or a terminated list whose last element points to itself.  The cycle is
    cut at ``head``: ranks are ``0`` at ``head``, increasing along ``succ``.

    Implementation: Wyllie's pointer jumping -- ``ceil(log2 k)`` vectorized
    rounds of ``rank += rank[next]; next = next[next]`` -- charged at
    ``O(k log k)`` work and ``O(log k)`` depth.
    """
    succ = np.asarray(succ, dtype=np.int64)
    k = succ.shape[0]
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    if not 0 <= head < k:
        raise ValueError(f"head {head} out of range [0, {k})")
    # Cut the cycle: head's predecessor becomes a self-looping terminator
    # with rank 0; every other element starts with rank 1 (one hop).
    nxt = succ.copy()
    rank = np.ones(k, dtype=np.int64)
    preds = np.flatnonzero(succ == head)
    if preds.size != 1:
        raise ValueError("succ must describe a single cycle through head")
    p = int(preds[0])
    rank[p] = 0
    nxt[p] = p
    # Wyllie's pointer jumping: distances double each round, so
    # ceil(log2 k) rounds reach the terminator from everywhere.  The
    # terminator self-loops with rank 0, making extra folds no-ops.
    rounds = log2ceil(k) + 1
    for _ in range(rounds):
        rank = rank + rank[nxt]
        nxt = nxt[nxt]
    if tracker is not None:
        tracker.add(WorkDepth(float(k * rounds), float(2 * rounds)))
    # rank[i] = steps from i to the terminator; position from head is the
    # complement within the k-1-step list.
    return int(rank[head]) - rank


@dataclass
class RootedTree:
    """Rooted-tree structure derived from an Euler tour."""

    root: int
    parent_vertex: np.ndarray  # root's parent is itself
    parent_edge: np.ndarray  # edge to parent; -1 for the root
    depth: np.ndarray
    subtree_size: np.ndarray  # vertices in each subtree (incl. self)


def root_tree(
    tree: WeightedTree, root: int = 0, tracker: CostTracker | None = None
) -> RootedTree:
    """Parents, depths, subtree sizes via Euler tour positions.

    An arc ``u -> v`` is a *tree arc* (``v`` child of ``u``) iff it appears
    before its twin in the tour started at ``root``; a vertex's subtree
    spans the tour interval between its discovery arc and that arc's twin.
    """
    n = tree.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    parent_vertex = np.arange(n, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    if tree.m == 0:
        return RootedTree(root, parent_vertex, parent_edge, depth, size)
    tour = euler_tour(tree)
    head = int(tour.first_arc[root])
    pos = list_rank(tour.succ, head, tracker=tracker)
    twin = np.arange(2 * tree.m, dtype=np.int64) ^ 1
    is_tree_arc = pos < pos[twin]  # first traversal: u -> v discovers v
    heads = tour.arc_head[is_tree_arc]
    parent_vertex[heads] = tour.arc_tail[is_tree_arc]
    parent_edge[heads] = np.flatnonzero(is_tree_arc) >> 1
    # depth: prefix sum of +1 (tree arc) / -1 (back arc) in tour order
    delta = np.where(is_tree_arc, 1, -1)
    by_pos = np.empty(2 * tree.m, dtype=np.int64)
    by_pos[pos] = np.arange(2 * tree.m)
    depths_along = np.cumsum(delta[by_pos])
    arc_depth = np.empty(2 * tree.m, dtype=np.int64)
    arc_depth[by_pos] = depths_along
    depth[tour.arc_head[is_tree_arc]] = arc_depth[is_tree_arc]
    depth[root] = 0
    # subtree size: (pos[twin] - pos + 1) / 2 vertices under the tree arc
    ta = np.flatnonzero(is_tree_arc)
    size[tour.arc_head[ta]] = (pos[twin[ta]] - pos[ta] + 1) // 2
    size[root] = n
    if tracker is not None:
        tracker.add(WorkDepth(float(2 * tree.m), float(2 * log2ceil(max(2 * tree.m, 2)))))
    return RootedTree(root, parent_vertex, parent_edge, depth, size)
