"""Structural validation of tree inputs.

Raises the typed exceptions from :mod:`repro.errors` with messages that name
the first offending edge/vertex, so pipeline failures are diagnosable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidTreeError, InvalidWeightsError

__all__ = ["validate_tree_edges", "validate_weights"]


def validate_tree_edges(n: int, edges: np.ndarray) -> None:
    """Verify that ``edges`` is a spanning tree of ``{0..n-1}``.

    Checks, in order: vertex-count sanity, edge cardinality ``n-1``,
    endpoint range, self loops, duplicate edges, and acyclicity/connectivity
    (via a union-find sweep -- ``n-1`` acyclic edges on ``n`` vertices are
    necessarily spanning).
    """
    if n <= 0:
        raise InvalidTreeError(f"vertex count must be positive, got {n}")
    edges = np.asarray(edges, dtype=np.int64)
    m = edges.shape[0]
    if m != n - 1:
        raise InvalidTreeError(f"a tree on {n} vertices needs {n - 1} edges, got {m}")
    if m == 0:
        return
    if edges.min() < 0 or edges.max() >= n:
        bad = int(np.argmax((edges < 0).any(axis=1) | (edges >= n).any(axis=1)))
        raise InvalidTreeError(f"edge {bad} = {tuple(edges[bad])} has endpoint outside [0, {n})")
    loops = edges[:, 0] == edges[:, 1]
    if loops.any():
        bad = int(np.argmax(loops))
        raise InvalidTreeError(f"edge {bad} is a self loop at vertex {edges[bad, 0]}")
    canon = np.sort(edges, axis=1)
    keys = canon[:, 0] * np.int64(n) + canon[:, 1]
    uniq, counts = np.unique(keys, return_counts=True)
    if (counts > 1).any():
        dup_key = int(uniq[np.argmax(counts > 1)])
        raise InvalidTreeError(
            f"duplicate edge between vertices {dup_key // n} and {dup_key % n}"
        )
    # Acyclicity via union-find (Python loop; n-1 iterations).
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    for i in range(m):
        ra, rb = find(int(edges[i, 0])), find(int(edges[i, 1]))
        if ra == rb:
            raise InvalidTreeError(f"edge {i} = {tuple(edges[i])} creates a cycle")
        parent[ra] = rb


def validate_weights(weights: np.ndarray) -> None:
    """Verify weights are finite real numbers."""
    weights = np.asarray(weights)
    if weights.ndim != 1:
        raise InvalidWeightsError(f"weights must be 1-D, got shape {weights.shape}")
    if weights.size == 0:
        return
    if not np.issubdtype(weights.dtype, np.number):
        raise InvalidWeightsError(f"weights must be numeric, got dtype {weights.dtype}")
    finite = np.isfinite(weights)
    if not finite.all():
        bad = int(np.argmax(~finite))
        raise InvalidWeightsError(f"weight {bad} is not finite: {weights[bad]}")
