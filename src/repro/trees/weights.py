"""Edge-weight schemes and rank computation (paper Section 5, "Weight Schemes").

Schemes
-------
``unit``
    All edges weigh 1.  Merges happen in edge-id order (ties broken by id),
    giving SeqUF its best-case sequential locality.
``perm``
    A uniformly random permutation of ``0..m-1`` as weights -- the paper's
    cache-adversarial scheme where SeqUF touches two random cache lines per
    merge and the parallel algorithms win by up to 150x.
``low-par``
    Adversarial for ParUF on paths: weights increase along the first half of
    the edge sequence and decrease along the second half, so at every moment
    only ~2 edges are local minima and the dendrogram is a deep ladder that
    defeats the single-chain post-processing optimization.
``uniform``
    I.i.d. uniform(0,1) weights.
``sorted`` / ``reversed``
    Monotone weights along the edge-id order.
"""

from __future__ import annotations

import numpy as np

from repro.util import check_random_state

__all__ = ["ranks_of", "apply_scheme", "WEIGHT_SCHEMES"]


def ranks_of(weights: np.ndarray) -> np.ndarray:
    """Rank of each edge in the weight-sorted order, ties broken by edge id.

    ``ranks[i]`` is the position of edge ``i`` when edges are sorted by
    ``(weight, edge_id)``; all algorithms compare edges by this value
    (paper Section 2.3).
    """
    weights = np.asarray(weights)
    order = np.argsort(weights, kind="stable")
    ranks = np.empty(weights.shape[0], dtype=np.int64)
    ranks[order] = np.arange(weights.shape[0], dtype=np.int64)
    return ranks


def _unit(m: int, rng: np.random.Generator) -> np.ndarray:
    return np.ones(m, dtype=np.float64)


def _perm(m: int, rng: np.random.Generator) -> np.ndarray:
    return rng.permutation(m).astype(np.float64)


def _low_par(m: int, rng: np.random.Generator) -> np.ndarray:
    """First half increasing, second half decreasing (paper's low-par)."""
    half = m // 2
    out = np.empty(m, dtype=np.float64)
    out[:half] = np.arange(half, dtype=np.float64)
    out[half:] = np.arange(m - 1, half - 1, -1, dtype=np.float64)
    return out


def _uniform(m: int, rng: np.random.Generator) -> np.ndarray:
    return rng.random(m)


def _sorted(m: int, rng: np.random.Generator) -> np.ndarray:
    return np.arange(m, dtype=np.float64)


def _reversed(m: int, rng: np.random.Generator) -> np.ndarray:
    return np.arange(m, 0, -1, dtype=np.float64)


WEIGHT_SCHEMES = {
    "unit": _unit,
    "perm": _perm,
    "low-par": _low_par,
    "uniform": _uniform,
    "sorted": _sorted,
    "reversed": _reversed,
}


def apply_scheme(
    name: str, m: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Generate a weight vector of length ``m`` under scheme ``name``."""
    try:
        fn = WEIGHT_SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown weight scheme {name!r}; expected one of {sorted(WEIGHT_SCHEMES)}"
        ) from None
    if m < 0:
        raise ValueError(f"edge count must be non-negative, got {m}")
    return fn(m, check_random_state(seed))
