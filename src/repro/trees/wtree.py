"""The :class:`WeightedTree` input representation.

A tree on ``n`` vertices is stored as flat NumPy arrays: an ``(n-1, 2)``
edge array and a length ``n-1`` weight array.  Adjacency is materialized
lazily in CSR form (offsets + per-slot neighbor vertex and edge id), the
cache-friendly layout the optimization guides recommend and the same layout
the paper's C++ implementation uses.
"""

from __future__ import annotations

import numpy as np

from repro.checkers import access as _access
from repro.errors import InvalidTreeError, InvalidWeightsError
from repro.trees.validation import validate_tree_edges, validate_weights
from repro.trees.weights import ranks_of

__all__ = ["WeightedTree"]


class WeightedTree:
    """An edge-weighted undirected tree on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        ``(n-1, 2)`` integer array; row ``i`` is the endpoints of edge ``i``.
        Edge ids are positions in this array and are the identities used by
        every dendrogram algorithm.
    weights:
        Length ``n-1`` float array of edge weights (dissimilarities; lower
        weight merges earlier).
    validate:
        When true (default), verify the edge set really is a spanning tree.
    """

    __slots__ = ("n", "edges", "weights", "_ranks", "_adj_offsets", "_adj_vertex", "_adj_edge")

    def __init__(
        self,
        n: int,
        edges: np.ndarray,
        weights: np.ndarray,
        validate: bool = True,
    ) -> None:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim == 1 and edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
            raise InvalidTreeError(f"edges must have shape (n-1, 2), got {edges.shape}")
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.shape[0] != edges.shape[0]:
            raise InvalidWeightsError(
                f"weights must be 1-D with one entry per edge; got shape "
                f"{weights.shape} for {edges.shape[0]} edges"
            )
        if validate:
            validate_tree_edges(n, edges)
            validate_weights(weights)
        self.n = int(n)
        self.edges = edges
        self.weights = weights
        self._ranks: np.ndarray | None = None
        self._adj_offsets: np.ndarray | None = None
        self._adj_vertex: np.ndarray | None = None
        self._adj_edge: np.ndarray | None = None

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls, pairs, weights=None, n: int | None = None, validate: bool = True
    ) -> "WeightedTree":
        """Build from a Python list of ``(u, v)`` pairs and optional weights."""
        edges = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
        if n is None:
            n = int(edges.max()) + 1 if edges.size else 1
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.float64)
        return cls(n, edges, np.asarray(weights, dtype=np.float64), validate=validate)

    def with_weights(self, weights: np.ndarray) -> "WeightedTree":
        """Same topology with a different weight vector (revalidates weights)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.m,):
            raise InvalidWeightsError(
                f"expected {self.m} weights, got shape {weights.shape}"
            )
        validate_weights(weights)
        tree = WeightedTree(self.n, self.edges, weights, validate=False)
        # Topology is unchanged; share the adjacency cache.
        tree._adj_offsets = self._adj_offsets
        tree._adj_vertex = self._adj_vertex
        tree._adj_edge = self._adj_edge
        return tree

    # -- properties -------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of edges (``n - 1`` for a nonempty tree)."""
        return self.edges.shape[0]

    @property
    def ranks(self) -> np.ndarray:
        """Rank of each edge in weight-sorted order (ties broken by edge id).

        All algorithms in this package compare edges by rank, matching the
        paper's deterministic tie-breaking assumption.
        """
        _access.record_read(self, "ranks")
        if self._ranks is None:
            # Idempotent lazy fill: same-value construction is benign under
            # the round model (a real implementation guards it with a
            # once-flag), so it is deliberately not recorded as a write.
            self._ranks = ranks_of(self.weights)
        return self._ranks

    def degrees(self) -> np.ndarray:
        """Vertex degree array."""
        offsets, _, _ = self.adjacency()
        return np.diff(offsets)

    # -- adjacency ----------------------------------------------------------------
    def adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR adjacency: ``(offsets, nbr_vertex, nbr_edge)``.

        Vertex ``v``'s incident slots are ``offsets[v]:offsets[v+1]``;
        ``nbr_vertex[s]`` is the neighbor and ``nbr_edge[s]`` the edge id.
        """
        _access.record_read(self, "adjacency")
        if self._adj_offsets is None:
            m = self.m
            endpoints = self.edges.reshape(-1)  # u0,v0,u1,v1,...
            counts = np.bincount(endpoints, minlength=self.n)
            offsets = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            nbr_vertex = np.empty(2 * m, dtype=np.int64)
            nbr_edge = np.empty(2 * m, dtype=np.int64)
            # stable fill: sort slot owners; the "other" endpoint sits at the
            # paired position (xor 1) in the flattened endpoint array.
            order = np.argsort(endpoints, kind="stable")
            nbr_vertex[:] = endpoints[order ^ 1]
            nbr_edge[:] = order >> 1
            self._adj_offsets = offsets
            self._adj_vertex = nbr_vertex
            self._adj_edge = nbr_edge
        return self._adj_offsets, self._adj_vertex, self._adj_edge  # type: ignore[return-value]

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbor_vertices, incident_edge_ids)`` of vertex ``v``."""
        offsets, nbr_vertex, nbr_edge = self.adjacency()
        lo, hi = offsets[v], offsets[v + 1]
        return nbr_vertex[lo:hi], nbr_edge[lo:hi]

    def adjacency_lists(self) -> list[list[tuple[int, int]]]:
        """Python-list adjacency ``adj[v] = [(neighbor, edge_id), ...]``.

        Mutable form consumed by the contraction scheduler, which deletes
        and rewires entries as the tree contracts.
        """
        offsets, nbr_vertex, nbr_edge = self.adjacency()
        out: list[list[tuple[int, int]]] = []
        for v in range(self.n):
            lo, hi = int(offsets[v]), int(offsets[v + 1])
            out.append(
                [(int(nbr_vertex[s]), int(nbr_edge[s])) for s in range(lo, hi)]
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedTree(n={self.n}, m={self.m})"
