"""Minimum spanning trees: the graph -> tree reduction for single linkage.

Single-linkage clustering of a weighted connected graph equals single
linkage on its MST (Gower & Ross 1969; paper Section 2.3), so the
clustering pipelines in :mod:`repro.cluster` and the real-world-input
benchmarks (Figure 8) run one of these MST routines before the dendrogram
algorithms.

Two from-scratch implementations (Kruskal with union-find, Prim with a
binary heap) plus a SciPy-backed routine for cross-checking and for large
inputs; ties are broken by edge id everywhere so all three return the same
tree on distinct-weight inputs and a *consistent* tree otherwise.
"""

from __future__ import annotations

import heapq
import tempfile
from pathlib import Path

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import minimum_spanning_tree as _scipy_mst

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound
from repro.checkers.contracts import slab_contract
from repro.errors import InvalidGraphError, NotConnectedError
from repro.primitives.sort import comparison_sort_cost
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker
from repro.structures.unionfind import UnionFind
from repro.trees.weights import ranks_of
from repro.trees.wtree import WeightedTree

__all__ = [
    "kruskal_mst",
    "prim_mst",
    "scipy_mst",
    "streaming_kruskal_mst",
    "minimum_spanning_tree",
]

#: Edges per vectorized Kruskal batch (the fast-path inner-loop grain).
_KRUSKAL_CHUNK = 4096


def _check_graph(n: int, edges: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    edges = np.asarray(edges, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
        raise InvalidGraphError(f"edges must have shape (m, 2), got {edges.shape}")
    if weights.shape != (edges.shape[0],):
        raise InvalidGraphError("need exactly one weight per edge")
    if edges.size:
        if edges.min() < 0 or edges.max() >= n:
            raise InvalidGraphError(f"edge endpoints must lie in [0, {n})")
        if (edges[:, 0] == edges[:, 1]).any():
            raise InvalidGraphError("self loops are not allowed")
    if not np.isfinite(weights).all():
        raise InvalidGraphError("weights must be finite")
    return edges, weights


def kruskal_mst(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    tracker: CostTracker | None = None,
) -> np.ndarray:
    """Edge ids of the MST, by Kruskal's algorithm (rank order, union-find).

    Raises :class:`NotConnectedError` if the graph does not span ``n``
    vertices.

    With instrumentation inactive (no enabled ``tracker``, no shadow-access
    recorder) the scan runs the batched fast path: edges are processed in
    chunks, each chunk's endpoints are resolved by one vectorized
    :meth:`~repro.structures.unionfind.UnionFind.find_many` batch, and the
    not-yet-scanned edge list is periodically compacted by dropping
    intra-component edges the same way.  The instrumented path keeps the
    classic per-edge scan so charged find steps stay exact per element.
    """
    edges, weights = _check_graph(n, edges, weights)
    ranks = ranks_of(weights)
    order = np.argsort(ranks)
    tracker = active_tracker(tracker)
    uf = UnionFind(n)
    if tracker is None and _access.RECORDER is None:
        chosen = _kruskal_scan_batched(uf, edges, order, n)
    else:
        chosen, scanned = _kruskal_scan(uf, edges, order, n)
        if tracker is not None:
            tracker.add(comparison_sort_cost(edges.shape[0]))
            # The scan is inherently sequential: one O(1)-amortized
            # union-find step per scanned edge (true find steps counted).
            loop_work = float(scanned + uf.find_steps)
            tracker.add(WorkDepth(loop_work, loop_work))
    if len(chosen) != n - 1:
        raise NotConnectedError(
            f"graph has {uf.num_sets} connected components; cannot span {n} vertices"
        )
    return np.asarray(chosen, dtype=np.int64)


def _kruskal_scan(
    uf: UnionFind, edges: np.ndarray, order: np.ndarray, n: int
) -> tuple[list[int], int]:
    """The classic per-edge Kruskal scan (instrumented/recorded path)."""
    chosen: list[int] = []
    scanned = 0
    for e in order:
        scanned += 1
        u, v = int(edges[e, 0]), int(edges[e, 1])
        if uf.find(u) != uf.find(v):
            uf.union(u, v)
            chosen.append(int(e))
            if len(chosen) == n - 1:
                break
    return chosen, scanned


def _kruskal_scan_batched(
    uf: UnionFind, edges: np.ndarray, order: np.ndarray, n: int
) -> list[int]:
    """Chunked Kruskal scan over vectorized batch finds (fast path).

    Chooses exactly the edge set of :func:`_kruskal_scan`: a chunk's batch
    roots only *pre-filter* obviously intra-component edges; survivors are
    re-checked per edge (an earlier in-chunk union may have connected
    them) before being taken.
    """
    chosen: list[int] = []
    need = n - 1
    remaining = order
    since_compact = 0
    while remaining.size and len(chosen) < need:
        batch = remaining[:_KRUSKAL_CHUNK]
        remaining = remaining[_KRUSKAL_CHUNK:]
        since_compact += batch.size
        ru = uf.find_many(edges[batch, 0])
        rv = uf.find_many(edges[batch, 1])
        cross = ru != rv
        for e, a, b in zip(batch[cross].tolist(), ru[cross].tolist(), rv[cross].tolist()):
            if uf.find(a) != uf.find(b):
                uf.union(a, b)
                chosen.append(e)
                if len(chosen) == need:
                    break
        # Compact the tail: one batch find pass drops every edge already
        # known to be intra-component, so later chunks scan only
        # survivors.  Amortized: each O(remaining) pass runs only after
        # at least that many edges were scanned since the last one, so
        # total compaction work stays within a constant factor of the
        # scan (compacting after every chunk is quadratic at 10**7
        # edges).  Dropped edges are exactly those the per-edge recheck
        # would skip, so the chosen set is unchanged.
        if remaining.size > 2 * _KRUSKAL_CHUNK and since_compact >= remaining.size:
            ru = uf.find_many(edges[remaining, 0])
            rv = uf.find_many(edges[remaining, 1])
            remaining = remaining[ru != rv]
            since_compact = 0
    return chosen


def prim_mst(n: int, edges: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Edge ids of the MST, by Prim's algorithm with a binary heap."""
    edges, weights = _check_graph(n, edges, weights)
    ranks = ranks_of(weights)
    # adjacency as CSR over both directions
    m = edges.shape[0]
    endpoints = edges.reshape(-1)
    order = np.argsort(endpoints, kind="stable")
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(endpoints, minlength=n), out=offsets[1:])
    nbr_vertex = endpoints[order ^ 1]
    nbr_edge = order >> 1
    in_tree = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    heap: list[tuple[int, int, int]] = []  # (rank, edge_id, far_vertex)

    def push_incident(v: int) -> None:
        for s in range(int(offsets[v]), int(offsets[v + 1])):
            w = int(nbr_vertex[s])
            if not in_tree[w]:
                e = int(nbr_edge[s])
                heapq.heappush(heap, (int(ranks[e]), e, w))

    in_tree[0] = True
    push_incident(0)
    while heap and len(chosen) < n - 1:
        _, e, w = heapq.heappop(heap)
        if in_tree[w]:
            continue
        in_tree[w] = True
        chosen.append(e)
        push_incident(w)
    if len(chosen) != n - 1:
        raise NotConnectedError(
            f"graph is not connected: reached {int(in_tree.sum())} of {n} vertices"
        )
    return np.asarray(chosen, dtype=np.int64)


def scipy_mst(n: int, edges: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Edge ids of an MST computed by SciPy's csgraph (cross-check backend).

    SciPy breaks weight ties arbitrarily, so on tied inputs this may return
    a different (equal-weight) tree than Kruskal/Prim; dendrogram *heights*
    are identical either way.
    """
    edges, weights = _check_graph(n, edges, weights)
    # Encode edge ids so they can be recovered from the csgraph output:
    # shift weights to strictly positive values and use data = weight only;
    # match returned coordinates back to input edges via a dict.
    lookup: dict[tuple[int, int], int] = {}
    for e in range(edges.shape[0]):
        u, v = int(edges[e, 0]), int(edges[e, 1])
        key = (min(u, v), max(u, v))
        prev = lookup.get(key)
        if prev is None or weights[e] < weights[prev]:
            lookup[key] = e
    graph = coo_matrix(
        (weights - weights.min() + 1.0, (edges[:, 0], edges[:, 1])), shape=(n, n)
    )
    mst = _scipy_mst(graph).tocoo()
    if mst.nnz != n - 1:
        raise NotConnectedError(f"graph is not connected: MST has {mst.nnz} edges, need {n - 1}")
    chosen = []
    for u, v in zip(mst.row, mst.col):
        key = (min(int(u), int(v)), max(int(u), int(v)))
        chosen.append(lookup[key])
    return np.asarray(sorted(chosen), dtype=np.int64)


@cost_bound(
    work="m * log(m)",
    depth="m",
    vars=("m",),
    kind="helper",
    theorem="external sort: O(m/chunk) sorted spill runs, bounded k-way "
    "merge, then the sequential Kruskal scan with batched pre-filtering",
)
def streaming_kruskal_mst(
    path: "str | Path",
    chunk: int = 262144,
    merge_block: int | None = None,
    spill_dir: "str | Path | None" = None,
) -> tuple[int, np.ndarray]:
    """Out-of-core Kruskal over a REDG1 edge file; returns ``(n, ids)``.

    The filter-Kruskal pipeline for graphs larger than RAM: the file is
    externally sorted by the ``(weight, edge-id)`` rank key in runs of
    ``chunk`` edges (written to ``spill_dir``, a fresh temp directory by
    default), the runs are k-way merged back in exact global rank order
    holding only ``merge_block`` records per run (default: ``chunk``
    split evenly across runs, so the merge never holds more than one
    chunk of candidates), and each merged batch passes a vectorized
    union-find pre-filter before the per-edge scan.  Once ``n - 1``
    edges are chosen the merge stops -- unread spill data is never
    touched.

    The chosen ids are **bit-identical** to in-memory
    :func:`kruskal_mst` on the same ``(n, edges, weights)`` for every
    ``chunk``/``merge_block``: both scan edges in the unique rank order
    and apply the same union rule.  Peak memory is ``O(chunk)`` records
    regardless of ``m``.  Raises :class:`NotConnectedError` when the
    graph does not span ``n`` vertices,
    :class:`~repro.io.FormatError` / :class:`InvalidGraphError` for
    malformed files.
    """
    from repro.io.edgefile import merge_runs, read_edge_header, spill_runs

    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    n, _ = read_edge_header(path)
    uf = UnionFind(n)
    chosen: list[int] = []
    need = n - 1
    with tempfile.TemporaryDirectory(prefix="repro-spill-") if spill_dir is None else _keep_dir(
        spill_dir
    ) as sdir:
        runs = spill_runs(path, sdir, chunk)
        if merge_block is None:
            merge_block = max(1, chunk // max(1, len(runs)))
        for batch in merge_runs(runs, merge_block):
            _scan_rank_batch(
                uf,
                np.ascontiguousarray(batch["id"]),
                np.ascontiguousarray(batch["u"]),
                np.ascontiguousarray(batch["v"]),
                chosen,
                need,
            )
            if len(chosen) == need:
                break
    if len(chosen) != need:
        raise NotConnectedError(
            f"graph has {uf.num_sets} connected components; cannot span {n} vertices"
        )
    return n, np.asarray(chosen, dtype=np.int64)


class _keep_dir:
    """Context manager handing back a caller-owned spill directory."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def __enter__(self) -> "Path":
        self.path.mkdir(parents=True, exist_ok=True)
        return self.path

    def __exit__(self, *exc: object) -> None:
        return None


@slab_contract(
    dtypes={"ids": "int64", "eu": "int64", "ev": "int64"},
    contiguous=("ids", "eu", "ev"),
)
def _scan_rank_batch(
    uf: UnionFind,
    ids: np.ndarray,
    eu: np.ndarray,
    ev: np.ndarray,
    chosen: list[int],
    need: int,
) -> None:
    """One rank-ordered batch through the Kruskal scan (mirrors
    :func:`_kruskal_scan_batched`: batched pre-filter, per-edge recheck)."""
    ru = uf.find_many(eu)
    rv = uf.find_many(ev)
    cross = ru != rv
    for e, a, b in zip(
        ids[cross].tolist(), ru[cross].tolist(), rv[cross].tolist()
    ):  # noqa: RPR205 -- scalar union scan by design (matches kruskal_mst)
        if uf.find(a) != uf.find(b):
            uf.union(a, b)
            chosen.append(e)
            if len(chosen) == need:
                return


_METHODS = {"kruskal": kruskal_mst, "prim": prim_mst, "scipy": scipy_mst}

#: ``backend=`` values accepted by :func:`minimum_spanning_tree` (mirrors
#: ``repro.core.api.BACKENDS``; local to avoid the registry import cycle).
_MST_BACKENDS = ("auto", "reference", "array")


def minimum_spanning_tree(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    method: str = "kruskal",
    backend: str = "auto",
) -> WeightedTree:
    """MST of a weighted graph as a :class:`WeightedTree`.

    The returned tree's edges keep their graph weights; edge ids are
    renumbered 0..n-2 in increasing original-edge-id order.  ``method``
    is one of ``"kruskal"``, ``"prim"``, ``"scipy"``, or ``"boruvka"``
    (the parallel-friendly round algorithm, see
    :mod:`repro.trees.boruvka`).  ``backend`` selects the Boruvka round
    implementation (``"reference"`` scalar loop vs the vectorized
    ``"array"``/``"auto"`` kernel); the other methods pick their fast
    path from instrumentation state and accept but ignore it.
    """
    if backend not in _MST_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(_MST_BACKENDS)}"
        )
    edge_arr = np.asarray(edges, dtype=np.int64)
    weight_arr = np.asarray(weights, dtype=np.float64)
    if method == "boruvka":
        from repro.trees.boruvka import boruvka_mst  # mst <-> boruvka cycle

        ids = boruvka_mst(n, edge_arr, weight_arr, backend=backend)  # already sorted
    else:
        try:
            fn = _METHODS[method]
        except KeyError:
            raise ValueError(
                f"unknown MST method {method!r}; expected one of "
                f"{sorted([*_METHODS, 'boruvka'])}"
            ) from None
        ids = np.sort(fn(n, edge_arr, weight_arr))
    return WeightedTree(n, edge_arr[ids], weight_arr[ids], validate=False)
