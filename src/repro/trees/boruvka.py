"""Boruvka's MST algorithm (the classic parallel-friendly MST).

The paper's pipelines reduce graphs to trees via an MST (Section 2.3);
Kruskal and Prim (in :mod:`repro.trees.mst`) are inherently sequential,
while Boruvka proceeds in ``O(log n)`` rounds -- in each round every
component selects its minimum-rank incident edge and components merge
along the selected edges.  This is the MST algorithm a parallel SLD
pipeline would actually pair with, so it is instrumented with the same
work/depth charges as the dendrogram algorithms.

Ties are broken by edge id (rank order), which also guarantees the
selected edge set is acyclic without needing the usual
symmetry-breaking tricks.
"""

from __future__ import annotations

import numpy as np

from repro.checkers import access as _access
from repro.errors import NotConnectedError
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker
from repro.structures.unionfind import UnionFind
from repro.trees.mst import _check_graph
from repro.trees.weights import ranks_of
from repro.trees.wtree import WeightedTree
from repro.util import log2ceil

__all__ = ["boruvka_mst", "boruvka_rounds"]


def boruvka_mst(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    tracker: CostTracker | None = None,
) -> np.ndarray:
    """Edge ids of the MST, by Boruvka's algorithm."""
    ids, _ = boruvka_rounds(n, edges, weights, tracker=tracker)
    return ids


def boruvka_rounds(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    tracker: CostTracker | None = None,
) -> tuple[np.ndarray, int]:
    """As :func:`boruvka_mst`, additionally returning the round count.

    With instrumentation inactive (no enabled ``tracker``, no shadow-access
    recorder) each round resolves component roots with one vectorized
    :meth:`~repro.structures.unionfind.UnionFind.find_many` batch and picks
    every component's min-rank incident edge by a single lexsort instead of
    the per-edge dict scan.  Both paths select identical edges in identical
    rounds (ranks are a permutation, so min-edge selection has no ties).
    """
    edges, weights = _check_graph(n, edges, weights)
    ranks = ranks_of(weights)
    uf = UnionFind(n)
    tracker = active_tracker(tracker)
    if tracker is None and _access.RECORDER is None:
        chosen, rounds = _boruvka_loop_fast(uf, edges, ranks, n)
    else:
        chosen, rounds = _boruvka_loop(uf, edges, ranks, n, tracker)
    if uf.num_sets > 1:
        raise NotConnectedError(
            f"graph has {uf.num_sets} connected components; cannot span {n} vertices"
        )
    return np.asarray(sorted(chosen), dtype=np.int64), rounds


def _boruvka_loop(
    uf: UnionFind,
    edges: np.ndarray,
    ranks: np.ndarray,
    n: int,
    tracker: CostTracker | None,
) -> tuple[list[int], int]:
    """The per-edge round loop (instrumented/recorded path)."""
    chosen: list[int] = []
    alive = np.arange(edges.shape[0], dtype=np.int64)
    rounds = 0
    while uf.num_sets > 1:
        rounds += 1
        # Drop intra-component edges (vectorized roots via repeated finds).
        roots_u = np.fromiter(
            (uf.find(int(u)) for u in edges[alive, 0]), dtype=np.int64, count=alive.size
        )
        roots_v = np.fromiter(
            (uf.find(int(v)) for v in edges[alive, 1]), dtype=np.int64, count=alive.size
        )
        cross = roots_u != roots_v
        alive = alive[cross]
        roots_u = roots_u[cross]
        roots_v = roots_v[cross]
        if alive.size == 0:
            break
        # Every component selects its min-rank incident edge.
        best: dict[int, int] = {}
        for e, ru, rv in zip(alive, roots_u, roots_v):
            re = int(ranks[e])
            for r in (int(ru), int(rv)):
                cur = best.get(r)
                if cur is None or re < ranks[cur]:
                    best[r] = int(e)
        # Merge along selected edges (rank tie-breaking makes this acyclic).
        added = 0
        for e in sorted(set(best.values()), key=lambda e: int(ranks[e])):
            u, v = int(edges[e, 0]), int(edges[e, 1])
            if uf.find(u) != uf.find(v):
                uf.union(u, v)
                chosen.append(e)
                added += 1
        if tracker is not None:
            tracker.add(WorkDepth(float(alive.size), float(log2ceil(n) + 1)))
        if added == 0:
            break
    return chosen, rounds


def _boruvka_loop_fast(
    uf: UnionFind, edges: np.ndarray, ranks: np.ndarray, n: int
) -> tuple[list[int], int]:
    """Vectorized round loop (fast path): batch finds + lexsort selection.

    Must select the same edges in the same rounds as :func:`_boruvka_loop`
    (``ranks`` is a permutation, so each component's min-rank incident edge
    is unique) -- the instrumented loop remains the reference.
    """
    chosen: list[int] = []
    alive = np.arange(edges.shape[0], dtype=np.int64)
    rounds = 0
    while uf.num_sets > 1:
        rounds += 1
        roots_u = uf.find_many(edges[alive, 0])
        roots_v = uf.find_many(edges[alive, 1])
        cross = roots_u != roots_v
        alive = alive[cross]
        roots_u = roots_u[cross]
        roots_v = roots_v[cross]
        if alive.size == 0:
            break
        # Min-rank incident edge per component: sort (component, rank) pairs
        # over both endpoint directions and keep each component's first row.
        comp = np.concatenate([roots_u, roots_v])
        eid = np.concatenate([alive, alive])
        order = np.lexsort((ranks[eid], comp))
        comp_s = comp[order]
        first = np.r_[True, comp_s[1:] != comp_s[:-1]]
        sel = np.unique(eid[order[first]])
        sel = sel[np.argsort(ranks[sel])]
        added = 0
        for e in sel.tolist():
            u, v = int(edges[e, 0]), int(edges[e, 1])
            if uf.find(u) != uf.find(v):
                uf.union(u, v)
                chosen.append(e)
                added += 1
        if added == 0:
            break
    return chosen, rounds


def boruvka_tree(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    tracker: CostTracker | None = None,
) -> WeightedTree:
    """Boruvka MST packaged as a :class:`~repro.trees.wtree.WeightedTree`."""
    edge_arr = np.asarray(edges, dtype=np.int64)
    weight_arr = np.asarray(weights, dtype=np.float64)
    ids = boruvka_mst(n, edge_arr, weight_arr, tracker=tracker)
    return WeightedTree(n, edge_arr[ids], weight_arr[ids], validate=False)
