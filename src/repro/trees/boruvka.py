"""Boruvka's MST algorithm (the classic parallel-friendly MST).

The paper's pipelines reduce graphs to trees via an MST (Section 2.3);
Kruskal and Prim (in :mod:`repro.trees.mst`) are inherently sequential,
while Boruvka proceeds in ``O(log n)`` rounds -- in each round every
component selects its minimum-rank incident edge and components merge
along the selected edges.  This is the MST algorithm a parallel SLD
pipeline would actually pair with, so it is instrumented with the same
work/depth charges as the dendrogram algorithms.

Ties are broken by edge id (rank order), which also guarantees the
selected edge set is acyclic without needing the usual
symmetry-breaking tricks.
"""

from __future__ import annotations

import numpy as np

from repro.checkers import access as _access
from repro.errors import AlgorithmError, NotConnectedError
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker
from repro.structures.unionfind import UnionFind
from repro.trees.boruvka_fast import boruvka_select_contract
from repro.trees.mst import _check_graph
from repro.trees.weights import ranks_of
from repro.trees.wtree import WeightedTree
from repro.util import log2ceil

__all__ = ["boruvka_mst", "boruvka_rounds", "boruvka_tree"]

#: Recognized ``backend=`` values (mirrors ``repro.core.api.BACKENDS``;
#: kept local to avoid an import cycle through the algorithm registry).
_BACKENDS = ("auto", "reference", "array")


def boruvka_mst(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    tracker: CostTracker | None = None,
    backend: str = "auto",
) -> np.ndarray:
    """Edge ids of the MST, by Boruvka's algorithm."""
    ids, _ = boruvka_rounds(n, edges, weights, tracker=tracker, backend=backend)
    return ids


def boruvka_rounds(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    tracker: CostTracker | None = None,
    backend: str = "auto",
) -> tuple[np.ndarray, int]:
    """As :func:`boruvka_mst`, additionally returning the round count.

    ``backend`` selects the round-loop implementation: ``"reference"``
    forces the instrumented per-edge loop, ``"array"``/``"auto"`` run the
    fully vectorized filter/contract kernel
    (:func:`repro.trees.boruvka_fast.boruvka_select_contract`) whenever
    instrumentation is inactive and delegate to the reference otherwise
    (the fast-twin convention, so cost accounting is never lost).  All
    backends select identical edges in identical rounds: ranks are a
    permutation, so min-edge selection has no ties.
    """
    if backend not in _BACKENDS:
        raise AlgorithmError(
            f"unknown backend {backend!r}; expected one of {sorted(_BACKENDS)}"
        )
    edges, weights = _check_graph(n, edges, weights)
    ranks = ranks_of(weights)
    tracker = active_tracker(tracker)
    instrumented = tracker is not None or _access.RECORDER is not None
    if backend == "reference" or instrumented:
        uf = UnionFind(n)
        chosen, rounds = _boruvka_loop(uf, edges, ranks, n, tracker)
        chosen_arr = np.asarray(sorted(chosen), dtype=np.int64)
        num_sets = uf.num_sets
    else:
        chosen_arr, rounds, num_sets = boruvka_select_contract(n, edges, ranks)
    if num_sets > 1:
        raise NotConnectedError(
            f"graph has {num_sets} connected components; cannot span {n} vertices"
        )
    return chosen_arr, rounds


def _boruvka_loop(
    uf: UnionFind,
    edges: np.ndarray,
    ranks: np.ndarray,
    n: int,
    tracker: CostTracker | None,
) -> tuple[list[int], int]:
    """The per-edge round loop (instrumented/recorded path)."""
    chosen: list[int] = []
    alive = np.arange(edges.shape[0], dtype=np.int64)
    rounds = 0
    while uf.num_sets > 1:
        rounds += 1
        # Drop intra-component edges (vectorized roots via repeated finds).
        roots_u = np.fromiter(
            (uf.find(int(u)) for u in edges[alive, 0]), dtype=np.int64, count=alive.size
        )
        roots_v = np.fromiter(
            (uf.find(int(v)) for v in edges[alive, 1]), dtype=np.int64, count=alive.size
        )
        cross = roots_u != roots_v
        alive = alive[cross]
        roots_u = roots_u[cross]
        roots_v = roots_v[cross]
        if alive.size == 0:
            break
        # Every component selects its min-rank incident edge.
        best: dict[int, int] = {}
        for e, ru, rv in zip(alive, roots_u, roots_v):
            re = int(ranks[e])
            for r in (int(ru), int(rv)):
                cur = best.get(r)
                if cur is None or re < ranks[cur]:
                    best[r] = int(e)
        # Merge along selected edges (rank tie-breaking makes this acyclic).
        added = 0
        for e in sorted(set(best.values()), key=lambda e: int(ranks[e])):
            u, v = int(edges[e, 0]), int(edges[e, 1])
            if uf.find(u) != uf.find(v):
                uf.union(u, v)
                chosen.append(e)
                added += 1
        if tracker is not None:
            tracker.add(WorkDepth(float(alive.size), float(log2ceil(n) + 1)))
        if added == 0:
            break
    return chosen, rounds


def _boruvka_loop_fast(
    uf: UnionFind, edges: np.ndarray, ranks: np.ndarray, n: int
) -> tuple[list[int], int]:
    """Half-vectorized round loop: batch finds + lexsort selection.

    Superseded as the production fast path by the fully vectorized
    :func:`repro.trees.boruvka_fast.boruvka_select_contract`; kept as a
    mid-level differential oracle (tests/fuzz) sitting between the scalar
    reference and the slab kernel.  Must select the same edges in the same
    rounds as :func:`_boruvka_loop` (``ranks`` is a permutation, so each
    component's min-rank incident edge is unique).
    """
    chosen: list[int] = []
    alive = np.arange(edges.shape[0], dtype=np.int64)
    rounds = 0
    while uf.num_sets > 1:
        rounds += 1
        roots_u = uf.find_many(edges[alive, 0])
        roots_v = uf.find_many(edges[alive, 1])
        cross = roots_u != roots_v
        alive = alive[cross]
        roots_u = roots_u[cross]
        roots_v = roots_v[cross]
        if alive.size == 0:
            break
        # Min-rank incident edge per component: sort (component, rank) pairs
        # over both endpoint directions and keep each component's first row.
        comp = np.concatenate([roots_u, roots_v])
        eid = np.concatenate([alive, alive])
        order = np.lexsort((ranks[eid], comp))
        comp_s = comp[order]
        first = np.r_[True, comp_s[1:] != comp_s[:-1]]
        sel = np.unique(eid[order[first]])
        sel = sel[np.argsort(ranks[sel])]
        added = 0
        for e in sel.tolist():
            u, v = int(edges[e, 0]), int(edges[e, 1])
            if uf.find(u) != uf.find(v):
                uf.union(u, v)
                chosen.append(e)
                added += 1
        if added == 0:
            break
    return chosen, rounds


def boruvka_tree(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    tracker: CostTracker | None = None,
    backend: str = "auto",
) -> WeightedTree:
    """Boruvka MST packaged as a :class:`~repro.trees.wtree.WeightedTree`."""
    edge_arr = np.asarray(edges, dtype=np.int64)
    weight_arr = np.asarray(weights, dtype=np.float64)
    ids = boruvka_mst(n, edge_arr, weight_arr, tracker=tracker, backend=backend)
    return WeightedTree(n, edge_arr[ids], weight_arr[ids], validate=False)
