"""Tree generators for the paper's synthetic inputs and test adversaries.

The paper's evaluation (Section 5) uses three synthetic families -- *path*,
*star*, and *knuth* (Fisher-Yates-Knuth-shuffle dependence structure:
vertex ``i`` attaches to a uniform vertex in ``[0, i-1]``).  We add shapes
used by the tests, the ablations, and the lower-bound experiment
(Appendix B's star-of-stars input).

Every generator returns edge arrays with unit weights; combine with
:func:`repro.trees.weights.apply_scheme` (or ``tree.with_weights``) for the
paper's weight schemes.
"""

from __future__ import annotations

import numpy as np

from repro.trees.wtree import WeightedTree
from repro.util import check_random_state

__all__ = [
    "path_tree",
    "star_tree",
    "knuth_tree",
    "random_tree",
    "balanced_binary",
    "caterpillar",
    "broom",
    "star_of_stars",
]


def _tree(n: int, edges: np.ndarray) -> WeightedTree:
    weights = np.ones(max(n - 1, 0), dtype=np.float64)
    return WeightedTree(n, edges, weights, validate=False)


def path_tree(n: int) -> WeightedTree:
    """A path ``0 - 1 - ... - n-1``; edge ``i`` connects ``i`` and ``i+1``."""
    if n < 1:
        raise ValueError(f"need at least one vertex, got {n}")
    idx = np.arange(n - 1, dtype=np.int64)
    edges = np.stack([idx, idx + 1], axis=1)
    return _tree(n, edges)


def star_tree(n: int, center: int = 0) -> WeightedTree:
    """A star: ``center`` adjacent to every other vertex."""
    if n < 1:
        raise ValueError(f"need at least one vertex, got {n}")
    if not 0 <= center < n:
        raise ValueError(f"center {center} out of range [0, {n})")
    others = np.concatenate(
        [np.arange(center, dtype=np.int64), np.arange(center + 1, n, dtype=np.int64)]
    )
    edges = np.stack([np.full(n - 1, center, dtype=np.int64), others], axis=1)
    return _tree(n, edges)


def knuth_tree(n: int, seed: int | np.random.Generator | None = None) -> WeightedTree:
    """Random recursive tree: vertex ``i > 0`` attaches to uniform ``[0, i-1]``.

    This is the paper's *knuth* input (the dependence structure of the
    Fisher-Yates-Knuth shuffle).
    """
    if n < 1:
        raise ValueError(f"need at least one vertex, got {n}")
    rng = check_random_state(seed)
    children = np.arange(1, n, dtype=np.int64)
    # parent of vertex i is uniform in [0, i-1]
    parents = (rng.random(max(n - 1, 0)) * children).astype(np.int64)
    edges = np.stack([parents, children], axis=1)
    return _tree(n, edges)


def random_tree(n: int, seed: int | np.random.Generator | None = None) -> WeightedTree:
    """Uniformly random labeled tree via a random Pruefer sequence."""
    if n < 1:
        raise ValueError(f"need at least one vertex, got {n}")
    if n <= 2:
        return path_tree(n)
    rng = check_random_state(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.bincount(prufer, minlength=n) + 1
    edges = np.empty((n - 1, 2), dtype=np.int64)
    # min-heap free list of degree-1 vertices
    import heapq

    free = [int(v) for v in range(n) if degree[v] == 1]
    heapq.heapify(free)
    for i, p in enumerate(prufer):
        leaf = heapq.heappop(free)
        edges[i, 0] = leaf
        edges[i, 1] = p
        degree[p] -= 1
        if degree[p] == 1:
            heapq.heappush(free, int(p))
    u = heapq.heappop(free)
    v = heapq.heappop(free)
    edges[n - 2, 0] = u
    edges[n - 2, 1] = v
    return _tree(n, edges)


def balanced_binary(n: int) -> WeightedTree:
    """Complete-binary-tree shape: vertex ``i > 0`` attaches to ``(i-1)//2``."""
    if n < 1:
        raise ValueError(f"need at least one vertex, got {n}")
    children = np.arange(1, n, dtype=np.int64)
    parents = (children - 1) // 2
    edges = np.stack([parents, children], axis=1)
    return _tree(n, edges)


def caterpillar(n: int, spine: int | None = None) -> WeightedTree:
    """A spine path with the remaining vertices hung as legs (round-robin)."""
    if n < 1:
        raise ValueError(f"need at least one vertex, got {n}")
    if spine is None:
        spine = max(1, n // 2)
    if not 1 <= spine <= n:
        raise ValueError(f"spine length {spine} out of range [1, {n}]")
    edges = np.empty((n - 1, 2), dtype=np.int64)
    idx = np.arange(spine - 1, dtype=np.int64)
    edges[: spine - 1, 0] = idx
    edges[: spine - 1, 1] = idx + 1
    legs = np.arange(spine, n, dtype=np.int64)
    edges[spine - 1 :, 0] = (legs - spine) % spine
    edges[spine - 1 :, 1] = legs
    return _tree(n, edges)


def broom(n: int, handle: int | None = None) -> WeightedTree:
    """A path (*handle*) ending in a star (*brush*) -- mixed rake/compress load."""
    if n < 1:
        raise ValueError(f"need at least one vertex, got {n}")
    if handle is None:
        handle = n // 2
    if not 0 <= handle < n:
        raise ValueError(f"handle length {handle} out of range [0, {n})")
    edges = np.empty((n - 1, 2), dtype=np.int64)
    idx = np.arange(handle, dtype=np.int64)
    edges[:handle, 0] = idx
    edges[:handle, 1] = idx + 1
    brush = np.arange(handle + 1, n, dtype=np.int64)
    edges[handle:, 0] = handle
    edges[handle:, 1] = brush
    return _tree(n, edges)


def star_of_stars(
    n: int, h: int, seed: int | np.random.Generator | None = None
) -> tuple[WeightedTree, np.ndarray]:
    """Appendix B's lower-bound input: ``~n/h`` stars of size ``h`` on a path.

    Each star's internal edges get random weights drawn from a per-star
    window; the path edges connecting star centers get weights above every
    star weight, so each star's dendrogram is an independent sorting
    instance (forcing ``Omega((n/h) * h log h) = Omega(n log h)`` work).

    Returns ``(tree, weights)``; the tree carries the weights already.
    """
    if h < 2:
        raise ValueError(f"star size h must be >= 2, got {h}")
    if n < h:
        raise ValueError(f"need n >= h, got n={n}, h={h}")
    rng = check_random_state(seed)
    k = n // h  # number of stars
    n = k * h  # trim to a whole number of stars
    edges = []
    weights = []
    centers = [s * h for s in range(k)]
    for s in range(k):
        c = centers[s]
        star_w = rng.permutation(h - 1).astype(np.float64)
        for j in range(1, h):
            edges.append((c, c + j))
            weights.append(star_w[j - 1])
    big = float(h)  # all path weights exceed every star weight (h-2 max)
    for s in range(k - 1):
        edges.append((centers[s], centers[s + 1]))
        weights.append(big + s)
    tree = WeightedTree(
        n,
        np.asarray(edges, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
        validate=False,
    )
    return tree, tree.weights
