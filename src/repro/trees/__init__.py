"""Edge-weighted trees: representation, generators, weights, MST reduction.

The SLD problem's input is an edge-weighted tree (paper Section 2.3);
single-linkage clustering of a general weighted graph reduces to the SLD of
its minimum spanning tree (Gower & Ross), which :mod:`repro.trees.mst`
implements.
"""

from repro.trees.generators import (
    balanced_binary,
    broom,
    caterpillar,
    knuth_tree,
    path_tree,
    random_tree,
    star_of_stars,
    star_tree,
)
from repro.trees.boruvka import boruvka_mst, boruvka_tree
from repro.trees.euler import euler_tour, list_rank, root_tree
from repro.trees.mst import kruskal_mst, minimum_spanning_tree, prim_mst
from repro.trees.validation import validate_tree_edges, validate_weights
from repro.trees.weights import apply_scheme, ranks_of, WEIGHT_SCHEMES
from repro.trees.wtree import WeightedTree

__all__ = [
    "WeightedTree",
    "path_tree",
    "star_tree",
    "knuth_tree",
    "random_tree",
    "balanced_binary",
    "caterpillar",
    "broom",
    "star_of_stars",
    "ranks_of",
    "apply_scheme",
    "WEIGHT_SCHEMES",
    "validate_tree_edges",
    "validate_weights",
    "minimum_spanning_tree",
    "kruskal_mst",
    "prim_mst",
    "boruvka_mst",
    "boruvka_tree",
    "euler_tour",
    "list_rank",
    "root_tree",
]
