"""Work-depth runtime: cost accounting, Brent's-law simulation, timers.

The paper analyzes its algorithms in the binary-forking work-depth model
(Blelloch et al., SPAA 2020) and evaluates them on a 96-core machine.  In
this pure-Python reproduction the machine is replaced by an *instrumented
cost model*: algorithms charge their true operation counts (work) and
critical-path lengths (depth) to a :class:`~repro.runtime.cost_model.CostTracker`,
and :mod:`repro.runtime.brent` converts the measured ``(W, D)`` pair into a
simulated ``T(P)`` curve anchored at the measured single-thread wall time.

See DESIGN.md section 1 for why this substitution preserves the paper's
experimental shape.
"""

from repro.runtime.brent import brent_time, calibrated_times, self_speedup, speedup_curve
from repro.runtime.cost_model import CostTracker, WorkDepth, combine_parallel, combine_serial
from repro.runtime.instrumentation import PhaseTimer
from repro.runtime.pool import parallel_for, parallel_map
from repro.runtime.scheduler import Scheduler

__all__ = [
    "CostTracker",
    "WorkDepth",
    "combine_parallel",
    "combine_serial",
    "brent_time",
    "speedup_curve",
    "calibrated_times",
    "self_speedup",
    "PhaseTimer",
    "Scheduler",
    "parallel_for",
    "parallel_map",
]
