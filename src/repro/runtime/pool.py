"""Best-effort real parallelism helpers.

CPython's GIL prevents the fine-grained shared-memory parallelism the paper
exploits (this is the documented reproduction gate), so the package's
performance story runs through the cost model in :mod:`repro.runtime.brent`.
These helpers still provide *real* thread-pool execution for coarse-grained
independent tasks -- useful when task bodies release the GIL (NumPy kernels)
and for exercising the same round-structured code paths the simulated
scheduler accounts for.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Sequence
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "parallel_for", "default_workers"]


def default_workers() -> int:
    """Worker count used when none is specified (``os.cpu_count()``)."""
    return max(1, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, preserving order.

    Runs sequentially when ``workers`` resolves to 1 or there is at most one
    item, avoiding pool overhead on single-core machines.
    """
    n = len(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or n <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=min(workers, n)) as pool:
        return list(pool.map(fn, items))


def parallel_for(
    fn: Callable[[int, int], None],
    n: int,
    workers: int | None = None,
    grain: int = 1024,
) -> None:
    """Run ``fn(lo, hi)`` over a blocked decomposition of ``range(n)``.

    ``fn`` receives half-open index ranges; blocks are at least ``grain``
    long so per-task overhead stays bounded.
    """
    if n <= 0:
        return
    if workers is None:
        workers = default_workers()
    if workers <= 1 or n <= grain:
        fn(0, n)
        return
    block = max(grain, (n + workers - 1) // workers)
    ranges = [(lo, min(lo + block, n)) for lo in range(0, n, block)]
    with ThreadPoolExecutor(max_workers=min(workers, len(ranges))) as pool:
        futures = [pool.submit(fn, lo, hi) for lo, hi in ranges]
        for fut in futures:
            fut.result()
