"""Best-effort real parallelism helpers.

CPython's GIL prevents the fine-grained shared-memory parallelism the paper
exploits (this is the documented reproduction gate), so the package's
performance story runs through the cost model in :mod:`repro.runtime.brent`.
These helpers still provide *real* thread-pool execution for coarse-grained
independent tasks -- useful when task bodies release the GIL (NumPy kernels)
and for exercising the same round-structured code paths the simulated
scheduler accounts for.
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from functools import partial
from typing import Any, TypeVar

from repro.runtime import interleave

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "parallel_for", "default_workers"]


def default_workers() -> int:
    """Worker count used when none is specified (``os.cpu_count()``)."""
    return max(1, os.cpu_count() or 1)


def _run_windowed(
    pool: ThreadPoolExecutor,
    thunks: Iterable[Callable[[], R]],
    window: int,
) -> list[R]:
    """Submit thunks with a bounded in-flight window; collect in order.

    At most ``window`` futures are outstanding at a time: before each new
    submission the oldest outstanding future is drained, so a worker
    exception propagates promptly -- nothing further is submitted after a
    failure, and the still-queued futures are cancelled on the way out.
    """
    results: list[R] = []
    inflight: deque[Future[R]] = deque()
    try:
        for thunk in thunks:
            if len(inflight) >= window:
                results.append(inflight.popleft().result())
            inflight.append(pool.submit(thunk))
        while inflight:
            results.append(inflight.popleft().result())
    except BaseException:
        for fut in inflight:
            fut.cancel()
        raise
    return results


def _run_hostile(
    pool: ThreadPoolExecutor,
    thunks: Sequence[Callable[[], R]],
    schedule: interleave.HostileSchedule,
) -> list[R]:
    """Submit thunks in a hostile permutation; collect in submission order.

    The adversarial-interleaving sanitizer's pool path: tasks are handed
    to the executor in a seeded permutation and each task start is
    preceded by an injected delay, but results are still gathered by
    *original* index -- merging in completion order would itself be the
    RPR307 hazard this machinery exists to catch.  Exceptions propagate in
    original-index order, so a failing schedule reports deterministically.
    """
    order = schedule.permutation(len(thunks))

    def run(thunk: Callable[[], R]) -> R:
        interleave.maybe_delay("pool task start")
        return thunk()

    futures: dict[int, Future[R]] = {}
    for i in order:
        futures[i] = pool.submit(run, thunks[i])
    results: list[R] = []
    try:
        for i in range(len(thunks)):
            results.append(futures[i].result())
    except BaseException:
        for fut in futures.values():
            fut.cancel()
        raise
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, preserving order.

    Runs sequentially when ``workers`` resolves to 1 or there is at most one
    item, avoiding pool overhead on single-core machines.  The first worker
    exception propagates promptly: submission stops at the failure instead
    of continuing through the remaining items.
    """
    n = len(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or n <= 1:
        return [fn(x) for x in items]
    workers = min(workers, n)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        schedule = interleave.current()
        if schedule is not None:
            return _run_hostile(pool, [partial(fn, x) for x in items], schedule)
        return _run_windowed(pool, (partial(fn, x) for x in items), 2 * workers)


def parallel_for(
    fn: Callable[[int, int], None],
    n: int,
    workers: int | None = None,
    grain: int = 1024,
) -> None:
    """Run ``fn(lo, hi)`` over a blocked decomposition of ``range(n)``.

    ``fn`` receives half-open index ranges; blocks are at least ``grain``
    long so per-task overhead stays bounded.  As in :func:`parallel_map`,
    the first block exception propagates promptly and stops submission.
    """
    if n <= 0:
        return
    if workers is None:
        workers = default_workers()
    if workers <= 1 or n <= grain:
        fn(0, n)
        return
    block = max(grain, (n + workers - 1) // workers)
    ranges = [(lo, min(lo + block, n)) for lo in range(0, n, block)]
    workers = min(workers, len(ranges))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        schedule = interleave.current()
        if schedule is not None:
            _run_hostile(pool, [partial(fn, lo, hi) for lo, hi in ranges], schedule)
            return
        thunks: Iterable[Callable[[], Any]] = (
            partial(fn, lo, hi) for lo, hi in ranges
        )
        _run_windowed(pool, thunks, 2 * workers)
