"""Wall-clock phase timers for breakdown experiments (paper Figure 7).

A :class:`PhaseTimer` optionally *binds* a
:class:`~repro.runtime.cost_model.CostTracker`: entering a phase snapshots
the tracker, so per-phase work/depth is recorded alongside per-phase wall
time.  The Brent simulation in :mod:`repro.bench.harness` needs this split
because phases scale very differently -- SeqUF's edge sort parallelizes
while its merge loop does not, and collapsing them into one global (W, D)
pair would let the sort's work mask the loop's sequential depth.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from collections.abc import Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cost_model import CostTracker

__all__ = ["PhaseTimer", "PhaseCost"]


class PhaseCost:
    """Wall seconds plus charged work/depth of one named phase."""

    __slots__ = ("seconds", "work", "depth")

    def __init__(self, seconds: float = 0.0, work: float = 0.0, depth: float = 0.0) -> None:
        self.seconds = seconds
        self.work = work
        self.depth = depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseCost(seconds={self.seconds:.4f}, work={self.work:.0f}, depth={self.depth:.0f})"


class PhaseTimer:
    """Accumulates wall time (and, if bound, work/depth) per named phase.

    Example::

        tracker = CostTracker()
        timer = PhaseTimer(tracker=tracker)
        with timer.phase("build"):
            build()          # charges tracker
        timer.phase_costs["build"].work  # work charged during build
    """

    def __init__(self, tracker: "CostTracker | None" = None) -> None:
        self._elapsed: dict[str, float] = {}
        self._order: list[str] = []
        self._tracker = tracker
        self._work: dict[str, float] = {}
        self._depth: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        w0 = d0 = 0.0
        if self._tracker is not None:
            w0, d0 = self._tracker.work, self._tracker.depth
        try:
            yield
        finally:
            dt = time.perf_counter() - start
            if name not in self._elapsed:
                self._elapsed[name] = 0.0
                self._work[name] = 0.0
                self._depth[name] = 0.0
                self._order.append(name)
            self._elapsed[name] += dt
            if self._tracker is not None:
                self._work[name] += self._tracker.work - w0
                self._depth[name] += self._tracker.depth - d0

    def add(self, name: str, seconds: float, work: float = 0.0, depth: float = 0.0) -> None:
        """Record a phase contribution directly (for merged timers)."""
        if name not in self._elapsed:
            self._elapsed[name] = 0.0
            self._work[name] = 0.0
            self._depth[name] = 0.0
            self._order.append(name)
        self._elapsed[name] += seconds
        self._work[name] += work
        self._depth[name] += depth

    @property
    def phases(self) -> dict[str, float]:
        """Elapsed seconds per phase, in first-seen order."""
        return {name: self._elapsed[name] for name in self._order}

    @property
    def phase_costs(self) -> dict[str, PhaseCost]:
        """Per-phase ``(seconds, work, depth)`` records."""
        return {
            name: PhaseCost(self._elapsed[name], self._work[name], self._depth[name])
            for name in self._order
        }

    def total(self) -> float:
        return sum(self._elapsed.values())

    def fractions(self) -> dict[str, float]:
        """Per-phase fraction of total time (zeros if nothing timed)."""
        total = self.total()
        if total == 0:
            return {name: 0.0 for name in self._order}
        return {name: self._elapsed[name] / total for name in self._order}

    def merge(self, other: "PhaseTimer") -> None:
        for name, cost in other.phase_costs.items():
            self.add(name, cost.seconds, cost.work, cost.depth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in self.phases.items())
        return f"PhaseTimer({parts})"
