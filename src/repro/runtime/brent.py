"""Brent's-law machine simulation.

Given measured work ``W`` and depth ``D`` of an instrumented run, a greedy
scheduler on ``P`` processors finishes in time

    ``T(P) <= W / P + D``            (Brent's theorem)

We use this bound as the simulated running time, anchored so that the
simulated one-processor time equals the *measured* single-thread wall time
``t1``.  One processor executes all the work -- its depth is *covered* by
the work, not added to it -- so the anchor is ``T(1) = W``, and:

    ``T(P) = t1 * min(1, (W / P + D) / W)``

The clamp at 1 keeps extra processors from ever slowing a greedy schedule
down (a purely sequential phase, ``W == D``, correctly gains nothing).

This reproduces the paper's thread-scaling experiments (Figures 6 and 8) on
hardware without shared-memory parallelism: speedup curves, crossover
points, and who-wins orderings are all functions of the ``W``/``D`` ratio,
which we measure rather than guess.  Absolute times are reported for the
measured 1-thread runs only.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.util import geomean

__all__ = [
    "brent_time",
    "time_scale",
    "speedup_curve",
    "calibrated_times",
    "self_speedup",
    "geomean_speedup",
]


def brent_time(work: float, depth: float, p: int) -> float:
    """Greedy-scheduler time bound ``W/P + D`` (abstract units)."""
    if p < 1:
        raise ValueError(f"processor count must be >= 1, got {p}")
    return work / p + depth


def time_scale(work: float, depth: float, p: int) -> float:
    """Fraction of the one-processor time that ``p`` processors need.

    One processor executes all the work, so ``T(1) = W`` (depth is *covered*
    by the work, not added to it); ``p`` processors obey Brent's bound
    ``T(p) <= W/p + D``.  The ratio is clamped at 1 -- more processors never
    slow a greedy schedule down -- which makes a purely sequential phase
    (``W == D``) correctly gain nothing.
    """
    if p < 1:
        raise ValueError(f"processor count must be >= 1, got {p}")
    if work <= 0:
        return 1.0
    return min(1.0, (work / p + depth) / work)


def speedup_curve(work: float, depth: float, ps: Sequence[int]) -> list[float]:
    """Predicted speedup ``T(1)/T(P)`` for each processor count in ``ps``."""
    return [1.0 / time_scale(work, depth, p) for p in ps]


def calibrated_times(
    t1_seconds: float, work: float, depth: float, ps: Sequence[int]
) -> list[float]:
    """Simulated wall times for ``ps`` processors, anchored at ``t1_seconds``.

    ``t1_seconds`` is the measured single-thread wall time of the same run
    that produced ``work`` and ``depth``.
    """
    if t1_seconds < 0:
        raise ValueError("t1_seconds must be non-negative")
    return [t1_seconds * time_scale(work, depth, p) for p in ps]


def self_speedup(work: float, depth: float, p: int) -> float:
    """Simulated self-relative speedup on ``p`` processors."""
    return 1.0 / time_scale(work, depth, p)


def geomean_speedup(speedups: Sequence[float]) -> float:
    """Geometric-mean speedup, as reported in the paper's Section 5."""
    return geomean(list(speedups))
