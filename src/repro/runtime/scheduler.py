"""Round-structured task scheduler with cost accounting.

:class:`Scheduler` executes a *round* of independent tasks (callables that
return ``(value, WorkDepth)``) and charges the round's parallel composition
to a :class:`~repro.runtime.cost_model.CostTracker`.  Execution order within
a round is deterministic by default but may be permuted (``shuffle=True``)
to demonstrate order-insensitivity of the round-structured algorithms, the
same role the hardware scheduler's nondeterminism plays in the paper's
implementation.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.runtime.cost_model import CostTracker, WorkDepth, combine_parallel
from repro.util import check_random_state

__all__ = ["Scheduler"]

Task = Callable[[], tuple[Any, WorkDepth]]


class Scheduler:
    """Executes rounds of independent cost-reporting tasks."""

    def __init__(
        self,
        tracker: CostTracker | None = None,
        shuffle: bool = False,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.tracker = tracker if tracker is not None else CostTracker(enabled=False)
        self.shuffle = shuffle
        self._rng = check_random_state(seed)
        self.rounds_run = 0

    def run_round(self, tasks: Sequence[Task]) -> list[Any]:
        """Run all ``tasks``; return their values in the original task order."""
        n = len(tasks)
        if n == 0:
            return []
        order = np.arange(n)
        if self.shuffle and n > 1:
            self._rng.shuffle(order)
        values: list[Any] = [None] * n
        costs: list[WorkDepth] = [WorkDepth.zero()] * n
        for idx in order:
            value, cost = tasks[int(idx)]()
            values[int(idx)] = value
            costs[int(idx)] = cost
        self.tracker.add(combine_parallel(costs))
        self.rounds_run += 1
        return values
