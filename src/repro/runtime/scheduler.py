"""Round-structured task scheduler with cost accounting and race checking.

:class:`Scheduler` executes a *round* of independent tasks (callables that
return ``(value, WorkDepth)``) and charges the round's parallel composition
to a :class:`~repro.runtime.cost_model.CostTracker`.  Execution order within
a round is deterministic by default but may be permuted (``shuffle=True``)
to demonstrate order-insensitivity of the round-structured algorithms, the
same role the hardware scheduler's nondeterminism plays in the paper's
implementation.

With ``race_check=True`` every round additionally runs under the shadow
access recorder of :mod:`repro.checkers.access`: instrumented structures
(union-find, the meldable heaps, :class:`~repro.trees.wtree.WeightedTree`)
and annotated algorithm code report per-task read/write sets, and after the
round the sets are intersected.  Any write-write, read-write, or
atomic/plain conflict between two tasks raises
:class:`~repro.errors.RaceConditionError` -- the machine check that the
round's tasks really were independent, i.e. that the sequential execution
is a legal linearization of a race-free parallel round (and hence that
``shuffle`` cannot change the result).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.checkers import access as _access
from repro.checkers.races import check_recorder
from repro.runtime import interleave
from repro.runtime.cost_model import CostTracker, WorkDepth, combine_parallel
from repro.util import check_random_state

__all__ = ["Scheduler"]

Task = Callable[[], tuple[Any, WorkDepth]]


class Scheduler:
    """Executes rounds of independent cost-reporting tasks.

    Parameters
    ----------
    tracker:
        Cost accumulator charged with each round's parallel composition
        (a disabled tracker is used when omitted).
    shuffle:
        Permute execution order within each round (results are still
        returned in task order).
    seed:
        Seed for the shuffle permutation; the same seed replays the same
        sequence of permutations.
    race_check:
        Record per-task shadow access sets and raise
        :class:`~repro.errors.RaceConditionError` on conflicts.
    """

    def __init__(
        self,
        tracker: CostTracker | None = None,
        shuffle: bool = False,
        seed: int | np.random.Generator | None = None,
        race_check: bool = False,
    ) -> None:
        self.tracker = tracker if tracker is not None else CostTracker(enabled=False)
        self.shuffle = shuffle
        self.race_check = race_check
        self._rng = check_random_state(seed)
        self.rounds_run = 0
        #: Execution order of the most recent round (task indices).
        self.last_order: np.ndarray | None = None

    def run_round(self, tasks: Sequence[Task], where: str | None = None) -> list[Any]:
        """Run all ``tasks``; return their values in the original task order.

        ``where`` labels the round in race reports (e.g. ``"rake round 3"``).
        """
        n = len(tasks)
        if n == 0:
            return []
        order = np.arange(n)
        if self.shuffle and n > 1:
            self._rng.shuffle(order)
        elif n > 1:
            # Under an adversarial-interleaving sanitizer, a scheduler that
            # was not explicitly asked to shuffle still executes the round
            # in a hostile permutation: round tasks claim independence, so
            # no order may change the result.
            hostile = interleave.current()
            if hostile is not None:
                order = np.asarray(hostile.permutation(n), dtype=order.dtype)
        self.last_order = order
        values: list[Any] = [None] * n
        costs: list[WorkDepth] = [WorkDepth.zero()] * n
        recorder = None
        if self.race_check:
            recorder = _access.RoundRecorder(where=where or f"round {self.rounds_run}")
            _access.install(recorder)
        try:
            for idx in order:
                i = int(idx)
                if recorder is not None:
                    recorder.begin_task(i, label=f"task {i}")
                value, cost = tasks[i]()
                values[i] = value
                costs[i] = cost
            if recorder is not None:
                recorder.end_task()
        finally:
            if recorder is not None:
                _access.uninstall(recorder)
        self.tracker.add(combine_parallel(costs))
        self.rounds_run += 1
        if recorder is not None:
            check_recorder(recorder)
        return values
