"""Adversarial-interleaving sanitizer: hostile schedules on demand.

The round-structured algorithms claim order-insensitivity (Lemma 4.1 and
the ``Scheduler(shuffle=True)`` tests machine-check it per round), and the
threaded ParUF claims its CAS protocol tolerates *any* thread interleaving.
Both claims are usually tested under the friendliest possible schedule --
FIFO submission order on an idle machine.  This module supplies the
opposite: a seeded *hostile schedule* that

* permutes task execution order wherever the runtime has a choice
  (:func:`repro.runtime.pool.parallel_map` / ``parallel_for`` submission,
  :class:`~repro.runtime.scheduler.Scheduler` round order), and
* injects tiny randomized delays at the marked interleaving points of the
  threaded paths (:func:`maybe_delay`), widening race windows the way a
  preemption-happy OS scheduler would.

A correct kernel produces **bit-identical** output under every hostile
schedule; the parsafe battery (:func:`repro.checkers.parsafe.run_interleaving_battery`)
asserts exactly that across >= 20 seeds, and the fuzz selftest proves the
machinery has teeth by resurrecting a lost-update mutant it must catch.

Activation
----------
Scoped: ``with hostile_schedule(seed): ...`` (re-entrant; the innermost
schedule wins).  Process-wide: set ``REPRO_HOSTILE_SCHEDULE=<seed>`` in
the environment before import -- this is how CI runs a whole fuzz shard
under adversarial interleaving.  When no schedule is active every hook is
a cheap no-op, so the marks can stay in production paths.

Determinism
-----------
Permutations are drawn from a per-schedule ``random.Random(seed)`` under a
lock, so a fixed seed replays the same sequence of permutations for a
fixed sequence of ``permutation(n)`` calls.  Delays perturb *timing* only;
any output change they provoke is by definition a race in the kernel, not
nondeterminism of the sanitizer.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "HostileSchedule",
    "hostile_schedule",
    "active",
    "current",
    "maybe_delay",
    "ENV_FLAG",
]

#: Environment variable holding an integer seed for a process-wide schedule.
ENV_FLAG = "REPRO_HOSTILE_SCHEDULE"

#: Fraction of :func:`maybe_delay` calls that actually sleep.
_DELAY_PROBABILITY = 0.5

#: Upper bound of one injected delay, in seconds (~50 microseconds).
_MAX_DELAY_S = 50e-6


class HostileSchedule:
    """One seeded adversarial schedule (permutation + delay source)."""

    __slots__ = ("seed", "delays", "_rng", "_lock")

    def __init__(self, seed: int, delays: bool = True) -> None:
        self.seed = int(seed)
        self.delays = delays
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def permutation(self, n: int) -> list[int]:
        """A fresh hostile execution order for ``n`` tasks."""
        if n <= 1:
            return list(range(n))
        with self._lock:
            return self._rng.sample(range(n), n)

    def draw_delay(self) -> float:
        """The next injected delay in seconds (0.0 means no sleep)."""
        if not self.delays:
            return 0.0
        with self._lock:
            r = self._rng.random()
        if r >= _DELAY_PROBABILITY:
            return 0.0
        return (r / _DELAY_PROBABILITY) * _MAX_DELAY_S

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HostileSchedule(seed={self.seed}, delays={self.delays})"


def _from_env() -> list[HostileSchedule]:
    raw = os.environ.get(ENV_FLAG, "").strip()
    if not raw:
        return []
    try:
        seed = int(raw)
    except ValueError:
        return []
    return [HostileSchedule(seed)]


#: Innermost-wins stack of active schedules (index -1 is current).
_STACK: list[HostileSchedule] = _from_env()


def active() -> bool:
    """Whether a hostile schedule is currently in force."""
    return bool(_STACK)


def current() -> HostileSchedule | None:
    """The innermost active schedule, or ``None``."""
    return _STACK[-1] if _STACK else None


@contextmanager
def hostile_schedule(seed: int, delays: bool = True) -> Iterator[HostileSchedule]:
    """Activate a seeded hostile schedule for the duration of the block."""
    schedule = HostileSchedule(seed, delays=delays)
    _STACK.append(schedule)
    try:
        yield schedule
    finally:
        _STACK.remove(schedule)


def maybe_delay(point: str = "") -> None:
    """Marked interleaving point: sleep briefly under a hostile schedule.

    ``point`` labels the location for humans reading the call site; the
    sanitizer itself only needs the timing perturbation.  A no-op (one
    list truth test) when no schedule is active, so threaded hot paths can
    carry the mark permanently.
    """
    if not _STACK:
        return
    delay = _STACK[-1].draw_delay()
    if delay > 0.0:
        time.sleep(delay)
