"""Work-depth cost accounting in the binary-forking model.

Two pieces:

* :class:`WorkDepth` -- an immutable ``(work, depth)`` pair with the usual
  series/parallel composition algebra:

  - series:   ``work = w1 + w2``, ``depth = d1 + d2``
  - parallel: ``work = sum(w_i)``, ``depth = max(d_i) + ceil(log2(k))``
    (the log term is the binary-forking spawn overhead for ``k`` tasks).

* :class:`CostTracker` -- a mutable accumulator that algorithms charge as
  they run.  Round-structured algorithms (tree contraction, ParUF levels)
  use :meth:`CostTracker.parallel_round`; recursive divide-and-conquer code
  composes :class:`WorkDepth` values functionally via
  :func:`combine_parallel` / :func:`combine_serial` and deposits the result
  with :meth:`CostTracker.add`.

Charging conventions used throughout the package (matching the paper's
analysis in Sections 3-4):

- a heap insert/delete-min/meld on a heap of size ``s`` charges
  ``log2(s)+1`` work,
- a heap filter extracting ``k`` of ``s`` items charges ``k*(log2(s)+1)``
  work and ``(log2(s)+1)**2`` depth,
- a comparison sort of ``n`` items charges ``n*log2(n)`` work and
  ``log2(n)**2`` depth, a counting sort over range ``M`` charges ``n + M``
  work and ``log2(n) + M`` depth,
- a sequential scan of ``n`` items charges ``n`` work / ``n`` depth, a
  parallel scan ``n`` work / ``2*log2(n)`` depth.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SchedulerError
from repro.util import log2ceil

if TYPE_CHECKING:
    from repro.checkers.access import RoundRecorder

__all__ = [
    "WorkDepth",
    "CostTracker",
    "active_tracker",
    "combine_parallel",
    "combine_serial",
    "log_cost",
]


def log_cost(size: int) -> float:
    """Cost charged for one ``O(log s)`` heap operation on ``s`` elements."""
    return math.log2(size) + 1.0 if size > 1 else 1.0


@dataclass(frozen=True)
class WorkDepth:
    """An immutable work/depth pair."""

    work: float = 0.0
    depth: float = 0.0

    def then(self, other: "WorkDepth") -> "WorkDepth":
        """Series composition: ``self`` followed by ``other``."""
        return WorkDepth(self.work + other.work, self.depth + other.depth)

    def __add__(self, other: "WorkDepth") -> "WorkDepth":
        return self.then(other)

    @staticmethod
    def zero() -> "WorkDepth":
        return WorkDepth(0.0, 0.0)

    @staticmethod
    def seq(work: float) -> "WorkDepth":
        """A sequential segment: depth equals work."""
        return WorkDepth(work, work)


def combine_serial(parts: Iterable[WorkDepth]) -> WorkDepth:
    """Series composition of ``parts``."""
    w = 0.0
    d = 0.0
    for p in parts:
        w += p.work
        d += p.depth
    return WorkDepth(w, d)


def combine_parallel(parts: Sequence[WorkDepth]) -> WorkDepth:
    """Parallel composition with binary-forking spawn overhead."""
    if not parts:
        return WorkDepth.zero()
    w = sum(p.work for p in parts)
    d = max(p.depth for p in parts)
    return WorkDepth(w, d + log2ceil(len(parts)))


class _Round:
    """Accumulator handed out by :meth:`CostTracker.parallel_round`."""

    __slots__ = ("_work", "_depth", "_count", "_recorder")

    def __init__(self, recorder: "RoundRecorder | None" = None) -> None:
        self._work = 0.0
        self._depth = 0.0
        self._count = 0
        self._recorder = recorder

    def task(self, work: float, depth: float | None = None) -> None:
        """Record one parallel task of the round.

        ``depth`` defaults to ``work`` (a sequential task body).  Under a
        race-checking tracker each ``task()`` call also closes the current
        shadow-access segment: the accesses made since the previous call
        belong to the task whose cost is charged here.
        """
        if depth is None:
            depth = work
        self._work += work
        if depth > self._depth:
            self._depth = depth
        self._count += 1
        rec = self._recorder
        if rec is not None:
            rec.end_task()
            rec.begin_task(self._count, label=f"task {self._count}")

    def as_workdepth(self) -> WorkDepth:
        if self._count == 0:
            return WorkDepth.zero()
        return WorkDepth(self._work, self._depth + log2ceil(self._count))


class CostTracker:
    """Mutable work/depth accumulator charged by instrumented algorithms.

    A disabled tracker (``CostTracker(enabled=False)``) accepts all calls as
    cheap no-ops so production paths can keep their instrumentation calls.

    With ``race_check=True`` every :meth:`parallel_round` additionally runs
    under the shadow access recorder of :mod:`repro.checkers.access`.  The
    round's ``task(cost)`` calls double as task boundaries: the accesses
    made since the previous ``task()`` call form the shadow set of the task
    whose cost is being charged, accesses after the final ``task()`` call
    are the round's (exempt) commit tail, and conflicting sets raise
    :class:`~repro.errors.RaceConditionError` when the round closes.
    """

    __slots__ = ("enabled", "race_check", "_work", "_depth", "_open_rounds")

    def __init__(self, enabled: bool = True, race_check: bool = False) -> None:
        self.enabled = enabled
        self.race_check = race_check
        self._work = 0.0
        self._depth = 0.0
        self._open_rounds = 0

    # -- read API ---------------------------------------------------------
    @property
    def work(self) -> float:
        return self._work

    @property
    def depth(self) -> float:
        return self._depth

    def snapshot(self) -> WorkDepth:
        return WorkDepth(self._work, self._depth)

    # -- write API --------------------------------------------------------
    def sequential(self, work: float, depth: float | None = None) -> None:
        """Charge a sequential segment (depth defaults to work)."""
        if not self.enabled:
            return
        self._work += work
        self._depth += work if depth is None else depth

    def add(self, cost: WorkDepth) -> None:
        """Deposit a pre-composed :class:`WorkDepth` (series with history)."""
        if not self.enabled:
            return
        self._work += cost.work
        self._depth += cost.depth

    def parallel_round(self) -> "_RoundContext":
        """Context manager collecting one synchronous parallel round."""
        return _RoundContext(self)

    def reset(self) -> None:
        if self._open_rounds:
            raise SchedulerError("cannot reset tracker inside an open parallel round")
        self._work = 0.0
        self._depth = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostTracker(work={self._work:.0f}, depth={self._depth:.0f})"


class _RoundContext:
    __slots__ = ("_tracker", "_round", "_recorder")

    def __init__(self, tracker: CostTracker) -> None:
        self._tracker = tracker
        self._round: _Round | None = None
        self._recorder: "RoundRecorder | None" = None

    def __enter__(self) -> _Round:
        recorder = None
        if self._tracker.race_check:
            from repro.checkers import access as _access

            # A recorder already installed (nested round) keeps recording
            # into the outer round's open task.
            if _access.RECORDER is None:
                recorder = _access.RoundRecorder(where="parallel_round")
                _access.install(recorder)
                recorder.begin_task(0, label="task 0")
        self._recorder = recorder
        self._round = _Round(recorder)
        self._tracker._open_rounds += 1
        return self._round

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        assert self._round is not None
        self._tracker._open_rounds -= 1
        recorder = self._recorder
        if recorder is not None:
            from repro.checkers import access as _access
            from repro.checkers.races import check_recorder

            # The segment opened after the final task() charge is the
            # round's commit tail: exempt by the round model.
            recorder.drop_open_task()
            _access.uninstall(recorder)
        if exc_type is None:
            self._tracker.add(self._round.as_workdepth())
            if recorder is not None:
                check_recorder(recorder)


def active_tracker(tracker: CostTracker | None) -> CostTracker | None:
    """``tracker`` if it will actually record charges, else ``None``.

    The disabled-instrumentation fast-path gate: a disabled tracker (or
    :data:`NULL_TRACKER`) accepts every charge as a no-op, but each no-op
    still costs a Python method call.  Algorithms normalize once at entry
    (``tracker = active_tracker(tracker)``) so their per-operation charge
    sites can test ``tracker is not None`` and skip both the call *and* the
    cost-expression arithmetic feeding it when instrumentation is off.
    """
    if tracker is not None and tracker.enabled:
        return tracker
    return None


#: A shared always-disabled tracker for hot paths that want zero accounting.
NULL_TRACKER = CostTracker(enabled=False)
