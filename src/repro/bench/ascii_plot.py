"""Terminal charts for the figure-reproduction harnesses.

The paper's Figures 6 and 8 are log-log running-time-vs-threads plots;
these helpers render the same series as Unicode charts so
``python -m repro.bench.fig6`` produces an actual *figure*, not only a
table.
"""

from __future__ import annotations

import math

__all__ = ["sparkline", "line_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """One-line block-character sketch of a series."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _BLOCKS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / (hi - lo) * (len(_BLOCKS) - 1) + 0.5)
        out.append(_BLOCKS[idx])
    return "".join(out)


def line_chart(
    series: dict[str, list[float]],
    x_labels: list,
    height: int = 10,
    log_y: bool = True,
    title: str | None = None,
) -> str:
    """Multi-series scatter chart on a character grid.

    Each series gets a marker (its name's first letter); the y axis is
    logarithmic by default, matching the paper's plots.  Collisions show
    the later series' marker with a ``*`` when two coincide.
    """
    names = list(series)
    if not names:
        return ""
    width = len(x_labels)
    if any(len(v) != width for v in series.values()):
        raise ValueError("all series must have one value per x label")

    def transform(v: float) -> float:
        if log_y:
            return math.log10(max(v, 1e-12))
        return v

    flat = [transform(v) for vals in series.values() for v in vals]
    lo, hi = min(flat), max(flat)
    span = hi - lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for name in names:
        marker = name[0].upper()
        while marker in markers.values():
            marker = chr(ord(marker) + 1)
        markers[name] = marker
    for name in names:
        for x, v in enumerate(series[name]):
            y = int((transform(v) - lo) / span * (height - 1) + 0.5)
            row = height - 1 - y
            cell = grid[row][x]
            grid[row][x] = markers[name] if cell == " " else "*"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{10 ** hi:.3g}s" if log_y else f"{hi:.3g}"
    bot_label = f"{10 ** lo:.3g}s" if log_y else f"{lo:.3g}"
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bot_label
        else:
            label = ""
        lines.append(f"{label:>9} |" + "".join(row))
    axis = "".join(str(x)[0] for x in x_labels)
    lines.append(" " * 9 + " +" + "-" * width)
    lines.append(" " * 11 + axis + "   (threads: " + ",".join(str(x) for x in x_labels) + ")")
    lines.append(
        " " * 11 + "legend: " + ", ".join(f"{m}={n}" for n, m in markers.items())
    )
    return "\n".join(lines)
