"""Table 1 reproduction: SeqUF / ParUF / RCTT times and speedups.

For every input family and size the harness runs all three algorithms,
then reports the simulated 192-thread times (the paper's all-threads
column) and the speedup ratios SeqUF/ParUF and SeqUF/RCTT.  The paper's
qualitative shape to verify (Section 5 / Table 1):

* permuted-weight inputs give the largest speedups (paper: up to 150x);
* ``path-low-par`` makes ParUF *much slower* than SeqUF (paper: ~0.007x,
  i.e. 151x worse) while RCTT still wins;
* RCTT wins or ties everywhere, never losing to SeqUF.
"""

from __future__ import annotations

import sys

from repro.bench.harness import AlgoRun, format_table, fmt_seconds, run_algorithm, simulated_time
from repro.bench.inputs import PAPER_SIZE_LABELS, SYNTHETIC_FAMILIES, bench_sizes, make_input
from repro.util import geomean

__all__ = ["run", "main"]

#: Simulated machine size: the paper's 96 cores with two-way hyperthreading.
PAPER_THREADS = 192


def run(
    sizes: tuple[int, ...] | None = None,
    families: tuple[str, ...] = SYNTHETIC_FAMILIES,
    threads: int = PAPER_THREADS,
    seed: int = 0,
) -> dict:
    """Execute the Table 1 grid; returns rows plus summary statistics."""
    sizes = sizes if sizes is not None else bench_sizes()
    rows = []
    for family in families:
        for si, n in enumerate(sizes):
            tree = make_input(family, n, seed=seed)
            runs: dict[str, AlgoRun] = {}
            for alg in ("sequf", "paruf", "rctt"):
                # rctt: profile the reference-structured builder (the fast
                # vectorized builder is quantified in the ablations instead)
                opts = {"builder": "reference"} if alg == "rctt" else {}
                runs[alg] = run_algorithm(alg, tree, **opts)
            sim = {alg: simulated_time(r, threads) for alg, r in runs.items()}
            rows.append(
                {
                    "family": family,
                    "n": n,
                    "size_label": PAPER_SIZE_LABELS[si] if si < len(PAPER_SIZE_LABELS) else str(n),
                    "wall": {alg: r.wall_seconds for alg, r in runs.items()},
                    "sim": sim,
                    "speedup_paruf": sim["sequf"] / sim["paruf"],
                    "speedup_rctt": sim["sequf"] / sim["rctt"],
                }
            )
    largest = [r for r in rows if r["n"] == max(sizes)]
    # The low-par pathology criterion: at every size, path-low-par is
    # ParUF's worst input by a clear margin and sits near/below break-even.
    # (The paper's 151x-worse magnitude needs real cross-core chain latency
    # that a Brent simulation does not charge; the *selective* collapse on
    # exactly this input is the reproducible signature.)
    lowpar_ok = True
    if "path-low-par" in families:
        for n in sizes:
            at_n = [r for r in rows if r["n"] == n]
            lp = next(r for r in at_n if r["family"] == "path-low-par")
            others = [r["speedup_paruf"] for r in at_n if r["family"] != "path-low-par"]
            lowpar_ok &= lp["speedup_paruf"] < 1.5
            if others:
                lowpar_ok &= lp["speedup_paruf"] <= min(others)
    summary = {
        "geomean_speedup_paruf_largest": geomean(
            [r["speedup_paruf"] for r in largest if r["family"] != "path-low-par"]
        ),
        "geomean_speedup_rctt_largest": geomean([r["speedup_rctt"] for r in largest]),
        "rctt_never_loses": all(r["speedup_rctt"] >= 1.0 for r in rows),
        "lowpar_paruf_pathological": lowpar_ok,
        "threads": threads,
    }
    return {"rows": rows, "summary": summary}


def main(argv: list[str] | None = None) -> dict:
    result = run()
    headers = [
        "Type",
        "n",
        "(paper)",
        "SeqUF",
        "ParUF",
        "RCTT",
        "SeqUF/ParUF",
        "SeqUF/RCTT",
    ]
    table_rows = []
    for r in result["rows"]:
        table_rows.append(
            [
                r["family"],
                str(r["n"]),
                r["size_label"],
                fmt_seconds(r["sim"]["sequf"]),
                fmt_seconds(r["sim"]["paruf"]),
                fmt_seconds(r["sim"]["rctt"]),
                f"{r['speedup_paruf']:.2f}",
                f"{r['speedup_rctt']:.2f}",
            ]
        )
    print(
        format_table(
            headers,
            table_rows,
            title=(
                f"Table 1 (reproduction): simulated {result['summary']['threads']}-thread "
                "times (s) and speedups over SeqUF"
            ),
        )
    )
    s = result["summary"]
    print()
    print(f"geomean SeqUF/ParUF at largest size (excl. low-par): {s['geomean_speedup_paruf_largest']:.2f}x  (paper: 5.92x)")
    print(f"geomean SeqUF/RCTT  at largest size:                 {s['geomean_speedup_rctt_largest']:.2f}x  (paper: 16.9x)")
    print(f"RCTT never loses to SeqUF: {s['rctt_never_loses']}  (paper: true)")
    print(
        "ParUF selectively collapses on path-low-par (its worst input, "
        f"near/below break-even): {s['lowpar_paruf_pathological']}  "
        "(paper: true, with ~151x magnitude on real hardware)"
    )
    return result


if __name__ == "__main__":
    main(sys.argv[1:])
