"""Ablations for the design choices DESIGN.md calls out.

(a) **ParUF neighbor-heap choice** -- pairing vs binomial vs skew heaps
    (the paper uses meldable heaps without prescribing one for ParUF;
    pairing's O(1) meld is the practical winner).
(b) **ParUF post-processing optimization** -- on vs off, including the
    low-par input where it cannot fire (the paper's 151x pathology) and
    the unit-weight inputs where it does nearly all the work.
(c) **SLD-TreeContraction spine container** -- filterable binomial heaps
    (O(n log h)) vs plain sorted lists (O(nh), Section 3.2.1), measured in
    both wall time and charged work.
(d) **RCTT step costs** -- trace work vs build work (the paper notes trace
    is the theoretical bottleneck but cheap in practice).
(e) **Prior state of the art** -- the Wang-et-al-style weight
    divide-and-conquer vs the paper's algorithms (the comparison the paper
    could not run directly because only the SeqUF code was released).
(f) **RC-tree builder** -- the adjacency-list reference scheduler vs the
    vectorized accumulator-based builder (identical schedules; the paper's
    "optimizing this step... is an interesting direction for future work").
"""

from __future__ import annotations

import sys

from repro.bench.harness import format_table, fmt_seconds, run_algorithm
from repro.bench.inputs import bench_sizes, make_input

__all__ = ["run", "main"]

ABLATION_INPUTS = ("path-perm", "path-low-par", "star-perm", "knuth-perm")


def run(n: int | None = None, seed: int = 0) -> dict:
    n = n if n is not None else bench_sizes()[0]
    trees = {name: make_input(name, n, seed=seed) for name in ABLATION_INPUTS}

    heap_rows = []
    for name, tree in trees.items():
        row = {"input": name}
        for kind in ("pairing", "binomial", "skew"):
            r = run_algorithm("paruf", tree, heap_kind=kind)
            row[kind] = r.wall_seconds
        heap_rows.append(row)

    post_rows = []
    for name, tree in trees.items():
        on = run_algorithm("paruf", tree, postprocess=True)
        off = run_algorithm("paruf", tree, postprocess=False)
        post_rows.append(
            {
                "input": name,
                "on_wall": on.wall_seconds,
                "off_wall": off.wall_seconds,
                "on_depth": on.depth,
                "off_depth": off.depth,
            }
        )

    spine_rows = []
    for name, tree in trees.items():
        heap = run_algorithm("tree-contraction", tree)
        lst = run_algorithm("tree-contraction-list", tree)
        spine_rows.append(
            {
                "input": name,
                "heap_work": heap.work,
                "list_work": lst.work,
                "work_ratio": lst.work / heap.work if heap.work else float("nan"),
                "heap_wall": heap.wall_seconds,
                "list_wall": lst.wall_seconds,
            }
        )

    rctt_rows = []
    for name, tree in trees.items():
        r = run_algorithm("rctt", tree, builder="reference")  # paper-profile build
        total = sum(r.phases.values()) or 1.0
        rctt_rows.append(
            {
                "input": name,
                "build_frac": r.phases.get("build", 0.0) / total,
                "trace_frac": r.phases.get("trace", 0.0) / total,
                "sort_frac": r.phases.get("sort", 0.0) / total,
            }
        )

    prior_rows = []
    for name, tree in trees.items():
        wdc = run_algorithm("weight-dc", tree)
        rctt = run_algorithm("rctt", tree)
        prior_rows.append(
            {
                "input": name,
                "weight_dc_wall": wdc.wall_seconds,
                "rctt_wall": rctt.wall_seconds,
                "weight_dc_parallelism": wdc.parallelism,
                "rctt_parallelism": rctt.parallelism,
            }
        )

    builder_rows = []
    for name, tree in trees.items():
        ref = run_algorithm("rctt", tree, builder="reference")
        fast = run_algorithm("rctt", tree, builder="fast")
        builder_rows.append(
            {
                "input": name,
                "reference_wall": ref.wall_seconds,
                "fast_wall": fast.wall_seconds,
                "speedup": ref.wall_seconds / fast.wall_seconds if fast.wall_seconds else 1.0,
            }
        )

    return {
        "n": n,
        "heap_kind": heap_rows,
        "postprocess": post_rows,
        "spine_container": spine_rows,
        "rctt_steps": rctt_rows,
        "prior_sota": prior_rows,
        "builder": builder_rows,
    }


def main(argv: list[str] | None = None) -> dict:
    result = run()
    n = result["n"]

    print(
        format_table(
            ["input", "pairing (s)", "binomial (s)", "skew (s)"],
            [
                [r["input"], fmt_seconds(r["pairing"]), fmt_seconds(r["binomial"]), fmt_seconds(r["skew"])]
                for r in result["heap_kind"]
            ],
            title=f"Ablation (a): ParUF neighbor-heap implementation, n={n}",
        )
    )
    print()
    print(
        format_table(
            ["input", "post=on (s)", "post=off (s)", "depth on", "depth off"],
            [
                [
                    r["input"],
                    fmt_seconds(r["on_wall"]),
                    fmt_seconds(r["off_wall"]),
                    f"{r['on_depth']:.0f}",
                    f"{r['off_depth']:.0f}",
                ]
                for r in result["postprocess"]
            ],
            title="Ablation (b): ParUF post-processing optimization",
        )
    )
    print()
    print(
        format_table(
            ["input", "heap work", "list work", "list/heap", "heap (s)", "list (s)"],
            [
                [
                    r["input"],
                    f"{r['heap_work']:.2e}",
                    f"{r['list_work']:.2e}",
                    f"{r['work_ratio']:.1f}x",
                    fmt_seconds(r["heap_wall"]),
                    fmt_seconds(r["list_wall"]),
                ]
                for r in result["spine_container"]
            ],
            title="Ablation (c): SLD-TreeContraction heap vs sorted-list spines (O(n log h) vs O(nh))",
        )
    )
    print()
    print(
        format_table(
            ["input", "build %", "trace %", "sort %"],
            [
                [
                    r["input"],
                    f"{100 * r['build_frac']:.1f}",
                    f"{100 * r['trace_frac']:.1f}",
                    f"{100 * r['sort_frac']:.1f}",
                ]
                for r in result["rctt_steps"]
            ],
            title="Ablation (d): RCTT step cost split (paper: build dominates)",
        )
    )
    print()
    print(
        format_table(
            ["input", "weight-dc (s)", "RCTT (s)", "weight-dc W/D", "RCTT W/D"],
            [
                [
                    r["input"],
                    fmt_seconds(r["weight_dc_wall"]),
                    fmt_seconds(r["rctt_wall"]),
                    f"{r['weight_dc_parallelism']:.0f}",
                    f"{r['rctt_parallelism']:.0f}",
                ]
                for r in result["prior_sota"]
            ],
            title="Ablation (e): prior SOTA (weight divide-and-conquer) vs RCTT",
        )
    )
    print()
    print(
        format_table(
            ["input", "reference build (s)", "vectorized build (s)", "speedup"],
            [
                [
                    r["input"],
                    fmt_seconds(r["reference_wall"]),
                    fmt_seconds(r["fast_wall"]),
                    f"{r['speedup']:.1f}x",
                ]
                for r in result["builder"]
            ],
            title=(
                "Ablation (f): RCTT contraction builder -- the paper's "
                "'optimize RC-tree construction' future-work item"
            ),
        )
    )
    return result


if __name__ == "__main__":
    main(sys.argv[1:])
