"""Shared benchmark machinery: timed, instrumented algorithm runs.

``run_algorithm`` executes one dendrogram algorithm with a fresh
:class:`~repro.runtime.cost_model.CostTracker` and
:class:`~repro.runtime.instrumentation.PhaseTimer`, measuring wall time.
``simulated_time`` converts the run into a Brent's-law time at P
processors, anchored at the measured single-thread wall time (DESIGN.md
Section 1 explains why this substitution preserves the paper's
experimental shape on a machine without shared-memory parallelism).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.api import ALGORITHMS
from repro.runtime.brent import calibrated_times, time_scale
from repro.runtime.cost_model import CostTracker
from repro.runtime.instrumentation import PhaseTimer
from repro.trees.wtree import WeightedTree

__all__ = [
    "AlgoRun",
    "run_algorithm",
    "simulated_time",
    "model_time",
    "format_table",
    "KernelResult",
    "bench_kernel",
    "calibrate",
]


@dataclass
class AlgoRun:
    """One instrumented algorithm execution."""

    algorithm: str
    n: int
    wall_seconds: float
    work: float
    depth: float
    phases: dict[str, float] = field(default_factory=dict)
    phase_costs: dict[str, object] = field(default_factory=dict)
    parents: np.ndarray | None = None

    @property
    def parallelism(self) -> float:
        """Average available parallelism ``W / D``."""
        return self.work / self.depth if self.depth else float("inf")


def run_algorithm(
    algorithm: str,
    tree: WeightedTree,
    keep_parents: bool = False,
    **options,
) -> AlgoRun:
    """Run ``algorithm`` on ``tree`` with full instrumentation."""
    fn = ALGORITHMS[algorithm]
    tracker = CostTracker()
    timer = PhaseTimer(tracker=tracker)
    start = time.perf_counter()
    parents = fn(tree, tracker=tracker, timer=timer, **options)
    wall = time.perf_counter() - start
    return AlgoRun(
        algorithm=algorithm,
        n=tree.n,
        wall_seconds=wall,
        work=tracker.work,
        depth=tracker.depth,
        phases=timer.phases,
        phase_costs=timer.phase_costs,
        parents=parents if keep_parents else None,
    )


def simulated_time(run: AlgoRun, p: int) -> float:
    """Simulated wall time of ``run`` on ``p`` processors (seconds).

    Each phase's measured wall time scales by its own Brent's-law factor
    :func:`repro.runtime.brent.time_scale` -- SeqUF's parallel sort speeds
    up while its sequential merge loop does not, matching the paper's
    observed per-phase behaviour.  Wall time in phases with no charged work
    (or outside any phase) is treated as perfectly sequential.
    """
    if not run.phase_costs:
        return calibrated_times(run.wall_seconds, run.work, run.depth, [p])[0]
    total = 0.0
    covered = 0.0
    for cost in run.phase_costs.values():
        covered += cost.seconds
        total += cost.seconds * time_scale(cost.work, cost.depth, p)
    total += max(0.0, run.wall_seconds - covered)  # uninstrumented residue
    return total


def model_time(run: AlgoRun, p: int, seconds_per_op: float) -> float:
    """Abstract-machine time: ``seconds_per_op * (W/p + D)``.

    Unlike :func:`simulated_time`, this ignores each algorithm's Python
    wall time and prices every charged operation identically, the way the
    paper's C++ implementations relate to each other.  Calibrate
    ``seconds_per_op`` from the baseline's run on the same input
    (``run.wall_seconds / run.work`` of SeqUF).
    """
    return seconds_per_op * (run.work / p + run.depth)


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Plain-text aligned table (the harnesses' printable output)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "  "
    lines.append(sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in rows:
        lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class KernelResult:
    """Timing + accounting for one perf-regression kernel."""

    kernel: str
    size: int
    repeats: int
    min_s: float
    median_s: float
    p90_s: float
    instrumented_s: float
    work: float
    depth: float

    @property
    def speedup(self) -> float:
        """Instrumented-over-fast wall ratio: what the fast path buys.

        Computed from the per-path minima -- the least noise-contaminated
        samples -- so the ratio reflects code, not scheduler jitter.
        """
        return self.instrumented_s / self.min_s if self.min_s > 0 else float("inf")


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted samples (q in [0, 1])."""
    idx = min(len(sorted_samples) - 1, max(0, round(q * (len(sorted_samples) - 1))))
    return sorted_samples[idx]


def bench_kernel(kernel, repeats: int = 5, quick: bool = False) -> KernelResult:
    """Time one kernel: fast-path wall stats + instrumented work/depth.

    The fast path (``tracker=None``, no recorder) runs ``repeats`` times
    for min/median/p90 wall seconds -- the minimum is the regression-gate
    statistic (least contaminated by scheduler jitter), median/p90 describe
    the observed spread.  The instrumented path (enabled
    :class:`CostTracker`) runs ``min(3, repeats)`` times; its minimum wall
    time is the speedup reference, and its work/depth totals -- identical
    across runs by determinism -- are recorded for the comparison gate.
    One warmup run is discarded.

    Array-backend kernels (``kernel.ref_run`` set) replace the
    instrumented pass with uninstrumented runs of the reference twin, so
    the ``speedup`` column is the honest reference/array wall ratio on
    the same input.  Work/depth are recorded as ``0.0``: the accounting
    belongs to the reference kernel entry, and an instrumented run of an
    array backend would delegate to the reference anyway.
    """
    payload = kernel.input_for(quick)
    kernel.run(payload, None)  # warmup (also JITs numpy caches, imports)
    samples: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        kernel.run(payload, None)
        samples.append(time.perf_counter() - start)
    samples.sort()

    inst_samples: list[float] = []
    work = depth = 0.0
    if kernel.ref_run is not None:
        for _ in range(min(3, repeats)):
            start = time.perf_counter()
            kernel.ref_run(payload, None)
            inst_samples.append(time.perf_counter() - start)
    else:
        for _ in range(min(3, repeats)):
            tracker = CostTracker()
            start = time.perf_counter()
            kernel.run(payload, tracker)
            inst_samples.append(time.perf_counter() - start)
            work, depth = tracker.work, tracker.depth
    inst_samples.sort()

    return KernelResult(
        kernel=kernel.name,
        size=kernel.quick_size if quick else kernel.size,
        repeats=repeats,
        min_s=samples[0],
        median_s=_percentile(samples, 0.5),
        p90_s=_percentile(samples, 0.9),
        instrumented_s=inst_samples[0],
        work=work,
        depth=depth,
    )


def calibrate(scale: int = 400_000, rounds: int = 3) -> float:
    """Machine-speed probe: seconds for a fixed numpy workload (median).

    Stored in every ``BENCH_*.json``; :func:`repro.bench.baseline.compare`
    scales the baseline's wall times by the calibration ratio so the 15%
    regression gate tolerates machine-speed differences between the
    machine that committed the baseline and the one running the gate.
    """
    rng = np.random.default_rng(0)
    data = rng.random(scale)
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        order = np.argsort(data, kind="stable")
        acc = np.cumsum(data[order])
        float(acc[-1])
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def fmt_seconds(s: float) -> str:
    """Compact seconds formatting used across the harness tables."""
    if s >= 100:
        return f"{s:.0f}"
    if s >= 1:
        return f"{s:.2f}"
    return f"{s:.3f}"
