"""Scale experiments for the array pipeline (``python -m repro bench scale``).

Two measurements back the end-to-end claims the kernel registry's quick
sizes cannot reach:

* **speedup** -- one full ``graph_single_linkage`` run (Boruvka MST +
  dendrogram) at ``m >= 10**6`` edges, timed with ``backend="reference"``
  and ``backend="array"``; the acceptance bar is a >= 2x wall-clock
  ratio (the outputs are bit-identical by construction, and the run
  re-checks that here).
* **streaming** -- one out-of-core :func:`streaming_kruskal_mst` run at
  ``m = 10**7`` edges, executed in a *child process* so its
  ``ru_maxrss`` reflects only the streaming consumer, never the
  generator that wrote the edge file.  The acceptance bar is completion
  (``n - 1`` edges chosen) with peak RSS under
  :data:`STREAM_RSS_BUDGET_MB` -- a fixed ceiling sized to the chunk
  budget, far below what materializing the edge list in memory costs.

``--merge PATH`` injects the results as a top-level ``"scale"`` section
into an existing ``BENCH_*.json`` (the baseline schema tolerates extra
top-level keys and the regression gate ignores them), which is how the
numbers are pinned in-repo and gated by ``tests/test_bench_perf.py``.
``--smoke`` runs only the streaming leg at ``m = 10**6`` -- the CI job
that exercises the out-of-core path under slab contracts on every push.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

__all__ = [
    "SPEEDUP_EDGES",
    "STREAM_CHUNK",
    "STREAM_EDGES",
    "STREAM_RSS_BUDGET_MB",
    "main",
    "random_connected_graph",
    "run_speedup",
    "run_streaming",
    "write_random_edge_file",
]

#: Edge counts for the two legs (the ISSUE's acceptance sizes).
SPEEDUP_EDGES = 1_000_000
STREAM_EDGES = 10_000_000
#: Spill/merge chunk for the out-of-core leg: 2**18 records (~6 MiB of
#: raw edge payload per chunk).
STREAM_CHUNK = 262_144
#: Peak-RSS ceiling for the streaming child process.  Interpreter +
#: numpy cost ~60 MiB before any work; the spill/merge path holds
#: O(chunk) records across a handful of buffers plus the O(n)
#: union-find arrays (~240 MiB total measured at m=10**7, n=2.5*10**6,
#: chunk=2**18).  320 MiB leaves CI headroom while staying well under
#: the measured in-memory materialization peak, which the run records
#: alongside for an apples-to-apples gate.
STREAM_RSS_BUDGET_MB = 320.0


def random_connected_graph(
    m: int, seed: int = 0
) -> tuple[int, np.ndarray, np.ndarray]:
    """Connected graph with exactly ``m`` edges, built vectorized.

    A Hamiltonian path guarantees connectivity; the remaining edges are
    uniform random non-self-loop pairs (parallel edges allowed -- both
    MST paths handle them).  ``n = max(2, m // 4)`` keeps the density of
    the kernel registry's preferential-attachment inputs.
    """
    if m < 1:
        raise ValueError(f"need at least one edge, got {m}")
    n = max(2, m // 4)
    rng = np.random.default_rng(seed)
    path_edges = np.column_stack(
        [np.arange(n - 1, dtype=np.int64), np.arange(1, n, dtype=np.int64)]
    )
    extra = max(0, m - (n - 1))
    u = rng.integers(0, n, size=extra, dtype=np.int64)
    # v = u + delta (mod n) with delta in [1, n): never a self loop.
    v = (u + rng.integers(1, n, size=extra, dtype=np.int64)) % n
    edges = np.concatenate([path_edges, np.column_stack([u, v])])[:m]
    weights = rng.random(edges.shape[0], dtype=np.float64)
    return n, edges, weights


def run_speedup(m: int = SPEEDUP_EDGES, repeats: int = 2, seed: int = 0) -> dict:
    """Time the end-to-end pipeline, reference vs array, at ``m`` edges."""
    from repro.cluster.graph_linkage import graph_single_linkage

    n, edges, weights = random_connected_graph(m, seed=seed)
    walls: dict[str, float] = {}
    parents: dict[str, np.ndarray] = {}
    for backend in ("reference", "array"):
        best = np.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = graph_single_linkage(
                n, edges, weights, mst_method="boruvka", backend=backend
            )
            best = min(best, time.perf_counter() - t0)
        walls[backend] = best
        parents[backend] = result.dendrogram.parents
    bit_identical = bool(np.array_equal(parents["reference"], parents["array"]))
    return {
        "m": int(edges.shape[0]),
        "n": int(n),
        "repeats": int(repeats),
        "reference_s": walls["reference"],
        "array_s": walls["array"],
        "speedup": walls["reference"] / walls["array"],
        "bit_identical": bit_identical,
    }


def write_random_edge_file(
    path: str | Path, m: int, seed: int = 1, slice_size: int = 1 << 20
) -> int:
    """Write an ``m``-edge connected REDG1 file in slices; returns ``n``.

    Same shape as :func:`random_connected_graph` (Hamiltonian path +
    uniform extras, ``n = max(2, m // 4)``) but generated and written
    ``slice_size`` records at a time, so the writer's RSS stays at
    O(slice), never O(m).  REDG1 stores the edge block and the weight
    block separately, so each slice is two positioned writes.
    """
    from repro.io.edgefile import EDGEFILE_HEADER_BYTES, EDGEFILE_MAGIC

    if m < 1:
        raise ValueError(f"need at least one edge, got {m}")
    n = max(2, m // 4)
    weight_off = EDGEFILE_HEADER_BYTES + 16 * m
    with open(path, "wb") as fh:
        fh.write(EDGEFILE_MAGIC)
        fh.write(np.int64(n).tobytes())
        fh.write(np.int64(m).tobytes())
        for start in range(0, m, slice_size):
            stop = min(m, start + slice_size)
            rng = np.random.default_rng((seed, start))
            count = stop - start
            u = rng.integers(0, n, size=count, dtype=np.int64)
            v = (u + rng.integers(1, n, size=count, dtype=np.int64)) % n
            # Records 0..n-2 are the connectivity path (i, i+1).
            idx = np.arange(start, stop, dtype=np.int64)
            on_path = idx < n - 1
            u[on_path] = idx[on_path]
            v[on_path] = idx[on_path] + 1
            weights = rng.random(count, dtype=np.float64)
            fh.seek(EDGEFILE_HEADER_BYTES + 16 * start)
            np.column_stack([u, v]).tofile(fh)
            fh.seek(weight_off + 8 * start)
            weights.tofile(fh)
    return n


# Executed via ``python -c`` in a fresh process.  ``ru_maxrss`` survives
# fork+exec, so the child would inherit the parent's peak; instead the
# child resets the kernel high-water mark (``/proc/self/clear_refs``)
# after imports and reports ``VmHWM``, which then covers exactly the
# streaming run (plus the resident interpreter/numpy baseline).
_CHILD_SOURCE = """\
import json, resource, sys, time

import numpy as np

from repro.io.edgefile import iter_edge_chunks, read_edge_header
from repro.trees.mst import kruskal_mst, streaming_kruskal_mst


def peak_mb():
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


path, chunk, mode = sys.argv[1], int(sys.argv[2]), sys.argv[3]
try:
    with open("/proc/self/clear_refs", "w") as fh:
        fh.write("5")
except OSError:
    pass
baseline = peak_mb()
t0 = time.perf_counter()
if mode == "stream":
    n, ids = streaming_kruskal_mst(path, chunk=chunk)
else:
    edge_parts, weight_parts = [], []
    for _, e, w in iter_edge_chunks(path, 1 << 20):
        edge_parts.append(e)
        weight_parts.append(w)
    edges = np.concatenate(edge_parts)
    weights = np.concatenate(weight_parts)
    del edge_parts, weight_parts
    n, _ = read_edge_header(path)
    ids = kruskal_mst(n, edges, weights)
wall = time.perf_counter() - t0
print(json.dumps({
    "n": int(n),
    "chosen": int(ids.shape[0]),
    "wall_s": wall,
    "baseline_rss_mb": baseline,
    "peak_rss_mb": peak_mb(),
}))
"""


def run_streaming(
    m: int = STREAM_EDGES, chunk: int = STREAM_CHUNK, seed: int = 1
) -> dict:
    """Out-of-core MST over an ``m``-edge REDG1 file, RSS-metered.

    The edge file is written here in slices (the parent never
    materializes the graph), then two child processes consume it -- one
    streaming, one materializing everything for in-memory
    :func:`kruskal_mst` -- each reporting wall time and its own peak
    RSS, so the recorded memory saving is measured, not estimated.
    """
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")

    def child(path: Path, mode: str) -> dict:
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_SOURCE, str(path), str(chunk), mode],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"{mode} child failed:\n{proc.stderr}")
        return json.loads(proc.stdout)

    with tempfile.TemporaryDirectory(prefix="repro-scale-") as tmp:
        path = Path(tmp) / "graph.redg"
        write_random_edge_file(path, m, seed=seed)
        stream = child(path, "stream")
        in_memory = child(path, "inmemory")
    if stream["chosen"] != in_memory["chosen"]:
        raise RuntimeError(
            f"streaming chose {stream['chosen']} edges, "
            f"in-memory chose {in_memory['chosen']}"
        )
    return {
        "m": int(m),
        "chunk": int(chunk),
        "rss_budget_mb": STREAM_RSS_BUDGET_MB,
        "completed": stream["chosen"] == stream["n"] - 1,
        "in_memory_wall_s": in_memory["wall_s"],
        "in_memory_peak_rss_mb": in_memory["peak_rss_mb"],
        **stream,
    }


def merge_into(baseline_path: str | Path, scale: dict) -> None:
    """Attach ``scale`` as a top-level section of an existing baseline."""
    from repro.bench.baseline import load_baseline, save_baseline

    payload = load_baseline(baseline_path)
    payload["scale"] = scale
    save_baseline(baseline_path, payload)


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(prog="repro bench scale")
    parser.add_argument("--m-speedup", type=int, default=SPEEDUP_EDGES)
    parser.add_argument("--m-stream", type=int, default=STREAM_EDGES)
    parser.add_argument("--chunk", type=int, default=STREAM_CHUNK)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="streaming leg only, at 10**6 edges (the CI smoke job)",
    )
    parser.add_argument(
        "--merge",
        metavar="BENCH_JSON",
        help="inject the results as the 'scale' section of this baseline",
    )
    args = parser.parse_args(argv if argv is not None else [])

    scale: dict = {}
    if not args.smoke:
        speedup = run_speedup(m=args.m_speedup, repeats=args.repeats)
        scale["speedup"] = speedup
        print(
            f"speedup   m={speedup['m']} n={speedup['n']}: "
            f"reference {speedup['reference_s']:.2f}s, "
            f"array {speedup['array_s']:.2f}s "
            f"-> {speedup['speedup']:.2f}x "
            f"(bit-identical: {speedup['bit_identical']})"
        )
    m_stream = 1_000_000 if args.smoke else args.m_stream
    streaming = run_streaming(m=m_stream, chunk=args.chunk)
    scale["streaming"] = streaming
    print(
        f"streaming m={streaming['m']} chunk={streaming['chunk']}: "
        f"{streaming['wall_s']:.2f}s, peak RSS {streaming['peak_rss_mb']:.0f} MiB "
        f"(budget {streaming['rss_budget_mb']:.0f} MiB, "
        f"in-memory twin {streaming['in_memory_wall_s']:.2f}s "
        f"at {streaming['in_memory_peak_rss_mb']:.0f} MiB, "
        f"completed: {streaming['completed']})"
    )
    if args.merge:
        merge_into(args.merge, scale)
        print(f"merged 'scale' section into {args.merge}")
    return scale


if __name__ == "__main__":
    main(sys.argv[1:])
