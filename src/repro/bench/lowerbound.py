"""Lemma 3.6 / Appendix B: the Omega(n log h) lower bound, empirically.

The lower-bound instance is ``n/h`` stars of ``h`` vertices each (the SLD
of a star totally orders its edges, i.e. solves a sorting instance).  The
experiment fixes ``n`` and sweeps ``h``, measuring the *work counters* of
the two optimal algorithms (ParUF and SLD-TreeContraction); optimality
predicts ``work / (n log2 h)`` stays bounded by a constant across the
sweep, while the ``O(n log n)`` SeqUF baseline's normalized cost grows as
``log n / log h`` for small ``h``.
"""

from __future__ import annotations

import math
import sys

from repro.bench.harness import format_table, run_algorithm
from repro.bench.inputs import bench_sizes
from repro.trees.generators import star_of_stars

__all__ = ["run", "main"]


def run(
    n: int | None = None,
    hs: tuple[int, ...] = (4, 16, 64, 256, 1024),
    seed: int = 0,
) -> dict:
    n = n if n is not None else bench_sizes()[0]
    rows = []
    for h in hs:
        if h > n:
            continue
        tree, _ = star_of_stars(n, h, seed=seed)
        row = {"h": h, "n": tree.n, "height": None, "normalized": {}}
        for alg in ("paruf", "tree-contraction", "sequf"):
            r = run_algorithm(alg, tree)
            row["normalized"][alg] = r.work / (tree.n * math.log2(h))
        rows.append(row)
    # Optimality check: the normalized work of the optimal algorithms should
    # vary by at most a small constant factor across the h sweep.
    ratios = {}
    for alg in ("paruf", "tree-contraction"):
        vals = [row["normalized"][alg] for row in rows]
        ratios[alg] = max(vals) / min(vals)
    return {"n": n, "rows": rows, "spread": ratios}


def main(argv: list[str] | None = None) -> dict:
    result = run()
    headers = ["h", "n", "ParUF W/(n lg h)", "SLD-TC W/(n lg h)", "SeqUF W/(n lg h)"]
    rows = [
        [
            str(r["h"]),
            str(r["n"]),
            f"{r['normalized']['paruf']:.2f}",
            f"{r['normalized']['tree-contraction']:.2f}",
            f"{r['normalized']['sequf']:.2f}",
        ]
        for r in result["rows"]
    ]
    print(
        format_table(
            headers,
            rows,
            title=(
                "Lemma 3.6 (reproduction): measured work normalized by the "
                f"Omega(n log h) bound, star-of-stars inputs, n~{result['n']}"
            ),
        )
    )
    print()
    for alg, spread in result["spread"].items():
        print(f"normalized-work spread across h sweep, {alg}: {spread:.2f}x (optimal => small constant)")
    return result


if __name__ == "__main__":
    main(sys.argv[1:])
