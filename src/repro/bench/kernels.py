"""The perf-regression kernel registry (``python -m repro bench``).

Each :class:`Kernel` is one named hot path the trajectory tracks across
PRs: a deterministic input builder plus a runner that accepts the
``tracker`` argument.  The harness times the runner with instrumentation
fully disabled (``tracker=None``) for the wall-clock numbers, and once
with an enabled :class:`~repro.runtime.cost_model.CostTracker` for the
work/depth totals -- the instrumented wall time doubles as the
pre-fast-path reference, so ``instrumented / median`` is the speedup the
disabled-instrumentation fast paths buy.

Inputs come from the :mod:`repro.datasets` generators (the ladder
families for the dendrogram kernels, preferential-attachment graphs for
the MST kernels), always seeded, so work/depth totals are bit-stable
across machines and the regression gate can compare them exactly.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.api import ALGORITHMS
from repro.datasets.ladders import FAMILY_BUILDERS
from repro.datasets.synthetic_graphs import preferential_attachment_graph
from repro.runtime.cost_model import CostTracker
from repro.trees.boruvka import boruvka_mst
from repro.trees.mst import kruskal_mst

__all__ = ["Kernel", "KERNELS", "kernel_names"]


@dataclass(frozen=True)
class Kernel:
    """One tracked hot path: deterministic input + tracker-aware runner."""

    name: str
    #: Input size used at full scale / with ``--quick``.
    size: int
    quick_size: int
    build: Callable[[int], Any]
    run: Callable[[Any, CostTracker | None], np.ndarray]
    #: Reference twin for array-backend kernels.  When set, the harness
    #: times this (uninstrumented) in place of the instrumented pass, so
    #: the reported speedup is the honest reference/array wall ratio; the
    #: reference kernel entry keeps the work/depth accounting.
    ref_run: Callable[[Any, CostTracker | None], np.ndarray] | None = None
    #: Backend family the kernel belongs to (``repro bench --backend``).
    backend: str = "reference"

    def input_for(self, quick: bool) -> Any:
        return self.build(self.quick_size if quick else self.size)


def _algo_runner(name: str, **options: Any) -> Callable[[Any, CostTracker | None], np.ndarray]:
    fn = ALGORITHMS[name]

    def run(tree: Any, tracker: CostTracker | None) -> np.ndarray:
        return fn(tree, tracker=tracker, **options)

    return run


def _ladder_tree(n: int) -> Any:
    return FAMILY_BUILDERS["random"](n)


def _pa_graph(n: int) -> tuple[int, np.ndarray, np.ndarray]:
    nn, edges = preferential_attachment_graph(n, m_attach=4, seed=1)
    weights = np.random.default_rng(1).random(edges.shape[0], dtype=np.float64)
    return nn, edges, weights


def _run_paruf_threaded(tree: Any, tracker: CostTracker | None) -> np.ndarray:
    from repro.core.paruf_threaded import paruf_threaded

    # The OS thread schedule admits no deterministic charged bound, so the
    # tracker is deliberately unused; work/depth report as a stable zero
    # and the regression gate tracks the wall numbers only.
    return paruf_threaded(tree, num_threads=4)


def _query_payload(n: int) -> Any:
    """Engine + query mix for the ``dendro-query`` kernel.

    A seeded batch of ``4n`` vertex pairs plus five weight-quantile cut
    thresholds over the random ladder tree's dendrogram.  The engine's
    cut-cache is disabled so every timed run recomputes its cuts.
    """
    from repro.core.api import single_linkage_dendrogram
    from repro.dendrogram.lca import DendrogramIndex
    from repro.dendrogram.query import QueryEngine

    tree = _ladder_tree(n)
    dend = single_linkage_dendrogram(tree, algorithm="sequf")
    engine = QueryEngine.from_dendrogram(dend, cut_cache_size=0)
    index = DendrogramIndex(dend)
    pairs = np.random.default_rng(2).integers(0, n, size=(4 * n, 2))
    thresholds = np.quantile(tree.weights, [0.1, 0.3, 0.5, 0.7, 0.9])
    return tree, engine, index, pairs, thresholds


def _run_dendro_query(payload: Any, tracker: CostTracker | None) -> np.ndarray:
    # Pure numpy batch queries: no charged abstract ops, so the tracker is
    # deliberately unused and work/depth report as a stable zero (the
    # paruf-threaded precedent); the gate tracks the wall numbers.
    tree, engine, _, pairs, thresholds = payload
    heights = engine.merge_heights(pairs)
    for t in thresholds:
        engine.cut_at(float(t))
    return heights


def _ref_dendro_query(payload: Any, tracker: CostTracker | None) -> np.ndarray:
    # The pre-vectorization serving path: one scalar O(log h) lift per
    # pair and a union-find sweep per cut.
    from repro.dendrogram.linkage import cut_height

    tree, _, index, pairs, thresholds = payload
    heights = np.array(
        [index.merge_height(int(u), int(v)) for u, v in pairs], dtype=np.float64
    )
    for t in thresholds:
        cut_height(tree, float(t))
    return heights


def _dynamic_payload(n: int) -> Any:
    """Engine + batched insert streams for the ``dynamic-update`` kernel.

    A preferential-attachment graph behind a :class:`DynamicSLD`, plus 16
    seeded batches of 8 fresh edges each.  The runner applies every batch
    and then deletes the same edges, so the payload returns to its start
    state after each timed run (weights are distinct, so the MST -- and
    hence the amount of repair work -- is identical run to run).
    """
    from repro.core.dynamic import DynamicSLD

    nn, edges, weights = _pa_graph(n)
    engine = DynamicSLD.from_graph(nn, edges, weights)
    present = {tuple(sorted(map(int, pair))) for pair in edges}
    rng = np.random.default_rng(3)
    batches: list[list[tuple[int, int, float]]] = []
    for _ in range(16):
        batch: list[tuple[int, int, float]] = []
        while len(batch) < 8:
            u, v = (int(x) for x in rng.integers(0, nn, size=2))
            key = (min(u, v), max(u, v))
            if u == v or key in present:
                continue
            present.add(key)
            batch.append((u, v, float(rng.random())))
        batches.append(batch)
    for batch in batches:
        for u, v, _w in batch:
            present.discard((min(u, v), max(u, v)))
    return nn, edges, weights, engine, batches


def _run_dynamic_update(payload: Any, tracker: CostTracker | None) -> np.ndarray:
    # The batch-update hot path itself charges no abstract ops at the
    # tracker layer (the paruf-threaded precedent): work/depth report as a
    # stable zero and the gate tracks the wall numbers against ref_run.
    _nn, _edges, _weights, engine, batches = payload
    for batch in batches:
        engine.apply_batch(inserts=batch)
        engine.apply_batch(deletes=[(u, v) for u, v, _w in batch])
    return engine.parents.copy()


def _ref_dynamic_update(payload: Any, tracker: CostTracker | None) -> np.ndarray:
    # The pre-dynamic-engine answer to the same update stream: rebuild the
    # MST and dendrogram from scratch after every batch (do and undo).
    from repro.core.sequf import sequf
    from repro.trees.wtree import WeightedTree

    nn, edges, weights, _engine, batches = payload

    def recompute(es: np.ndarray, ws: np.ndarray) -> np.ndarray:
        ids = np.sort(kruskal_mst(nn, es, ws))
        tree = WeightedTree(nn, es[ids].copy(), ws[ids].copy(), validate=False)
        return sequf(tree)

    k = len(batches[0])
    combined_e = np.concatenate([edges, np.zeros((k, 2), dtype=np.int64)])
    combined_w = np.concatenate([weights, np.zeros(k, dtype=np.float64)])
    parents = np.empty(0, dtype=np.int64)
    for batch in batches:
        combined_e[-k:] = np.array([[u, v] for u, v, _w in batch], dtype=np.int64)
        combined_w[-k:] = np.array([w for _u, _v, w in batch], dtype=np.float64)
        recompute(combined_e, combined_w)
        parents = recompute(edges, weights)
    return parents


def _run_kruskal(
    payload: tuple[int, np.ndarray, np.ndarray], tracker: CostTracker | None
) -> np.ndarray:
    n, edges, weights = payload
    return kruskal_mst(n, edges, weights, tracker=tracker)


def _run_boruvka(
    payload: tuple[int, np.ndarray, np.ndarray], tracker: CostTracker | None
) -> np.ndarray:
    n, edges, weights = payload
    return boruvka_mst(n, edges, weights, tracker=tracker)


def _point_cloud(n: int) -> np.ndarray:
    return np.random.default_rng(5).random((n, 4))


def _pipeline_points_runner(backend: str) -> Callable[[Any, CostTracker | None], np.ndarray]:
    def run(pts: Any, tracker: CostTracker | None) -> np.ndarray:
        from repro.cluster.single_linkage import single_linkage

        # End-to-end: k-NN graph -> Boruvka MST -> dendrogram, one backend
        # throughout.  No charged abstract ops at this layer (the stage
        # kernels carry the accounting), so the tracker is unused.
        result = single_linkage(pts, k=8, mst_method="boruvka", backend=backend)
        return result.dendrogram.parents

    return run


def _pipeline_graph_runner(backend: str) -> Callable[[Any, CostTracker | None], np.ndarray]:
    def run(payload: Any, tracker: CostTracker | None) -> np.ndarray:
        from repro.cluster.graph_linkage import graph_single_linkage

        n, edges, weights = payload
        result = graph_single_linkage(
            n, edges, weights, mst_method="boruvka", backend=backend
        )
        return result.dendrogram.parents

    return run


def _streaming_payload(m_target: int) -> Any:
    """A REDG1 edge file of roughly ``m_target`` edges plus the in-memory
    arrays (the reference twin runs plain Kruskal on them)."""
    import tempfile
    from pathlib import Path

    from repro.io.edgefile import write_edge_file

    n, edges, weights = _pa_graph(max(2, m_target // 4))
    path = Path(tempfile.mkdtemp(prefix="repro-bench-")) / "graph.redg"
    write_edge_file(path, n, edges, weights)
    return path, n, edges, weights


def _run_streaming(payload: Any, tracker: CostTracker | None) -> np.ndarray:
    from repro.trees.mst import streaming_kruskal_mst

    path, _, _, _ = payload
    return streaming_kruskal_mst(path, chunk=1 << 16)[1]


def _ref_streaming(payload: Any, tracker: CostTracker | None) -> np.ndarray:
    # The in-memory scan: the honest "cost of going out of core" ratio
    # (expected < 1x -- the gate tracks the wall numbers, not the ratio).
    _, n, edges, weights = payload
    return kruskal_mst(n, edges, weights)


#: The tracked kernels, in report order.  Sizes are tuned so a full run
#: stays in CI budget; ``--quick`` quarters them.
KERNELS: tuple[Kernel, ...] = (
    Kernel("sequf", 8192, 2048, _ladder_tree, _algo_runner("sequf")),
    Kernel("paruf", 2048, 512, _ladder_tree, _algo_runner("paruf", seed=0)),
    Kernel("paruf-threaded", 2048, 512, _ladder_tree, _run_paruf_threaded),
    Kernel("rctt", 4096, 1024, _ladder_tree, _algo_runner("rctt", seed=0)),
    Kernel(
        "tree-contraction",
        2048,
        512,
        _ladder_tree,
        _algo_runner("tree-contraction", seed=0),
    ),
    Kernel("sld-merge", 2048, 512, _ladder_tree, _algo_runner("divide-conquer")),
    Kernel("mst-kruskal", 30000, 6000, _pa_graph, _run_kruskal),
    Kernel("mst-boruvka", 30000, 6000, _pa_graph, _run_boruvka),
    # Array-backend kernels: 4-16x larger inputs than their reference
    # twins (the batching only pays off at scale), timed against the twin.
    Kernel(
        "sequf-fast",
        262144,
        16384,
        _ladder_tree,
        _algo_runner("sequf-fast"),
        ref_run=_algo_runner("sequf"),
        backend="array",
    ),
    Kernel(
        "tree-contraction-fast",
        16384,
        4096,
        _ladder_tree,
        _algo_runner("tree-contraction-fast", seed=0),
        ref_run=_algo_runner("tree-contraction", seed=0),
        backend="array",
    ),
    Kernel(
        "rctt-fast",
        65536,
        8192,
        _ladder_tree,
        _algo_runner("rctt-fast", seed=0),
        ref_run=_algo_runner("rctt", seed=0),
        backend="array",
    ),
    # The serving layer: batched merge-height + threshold-cut queries via
    # the snapshot/query engine, timed against the scalar per-query path.
    Kernel(
        "dendro-query",
        16384,
        2048,
        _query_payload,
        _run_dendro_query,
        ref_run=_ref_dendro_query,
        backend="array",
    ),
    # The batch-dynamic engine: 16 insert batches (and their undos)
    # through apply_batch, timed against recompute-from-scratch.
    Kernel(
        "dynamic-update",
        8192,
        1024,
        _dynamic_payload,
        _run_dynamic_update,
        ref_run=_ref_dynamic_update,
        backend="array",
    ),
    # End-to-end pipelines, array vs. reference backend throughout
    # (points: k-NN -> Boruvka -> dendrogram; graph: Boruvka -> dendrogram).
    Kernel(
        "pipeline-points",
        4096,
        1024,
        _point_cloud,
        _pipeline_points_runner("array"),
        ref_run=_pipeline_points_runner("reference"),
        backend="array",
    ),
    Kernel(
        "pipeline-graph",
        50000,
        4096,
        _pa_graph,
        _pipeline_graph_runner("array"),
        ref_run=_pipeline_graph_runner("reference"),
        backend="array",
    ),
    # Out-of-core filter-Kruskal over a REDG1 file (size = edge count);
    # the reference twin is the in-memory scan of the same edges.
    Kernel(
        "mst-streaming",
        1000000,
        65536,
        _streaming_payload,
        _run_streaming,
        ref_run=_ref_streaming,
        backend="array",
    ),
)


def kernel_names() -> list[str]:
    return [k.name for k in KERNELS]


def kernels_for_backend(backend: str) -> list[Kernel]:
    """The kernels of one backend family (``"both"`` selects all)."""
    if backend == "both":
        return list(KERNELS)
    if backend not in ("reference", "array"):
        raise ValueError(
            f"unknown backend {backend!r}; expected 'reference', 'array' or 'both'"
        )
    return [k for k in KERNELS if k.backend == backend]
