"""Benchmark harness reproducing every table and figure of the paper.

Each experiment module exposes ``run(...) -> dict`` (machine-readable
results) and ``main()`` (prints the paper-style table).  The pytest
wrappers under ``benchmarks/`` time the same code paths with
pytest-benchmark; the printable harnesses are what EXPERIMENTS.md records.

Run e.g.::

    python -m repro.bench.table1
    python -m repro.bench.fig6
    python -m repro.bench.fig7
    python -m repro.bench.fig8
    python -m repro.bench.lowerbound
    python -m repro.bench.ablation

Sizes scale with the ``REPRO_BENCH_SCALE`` environment variable
(default 1).
"""

from repro.bench.baseline import SCHEMA as BENCH_SCHEMA
from repro.bench.baseline import compare, load_baseline, results_to_payload, save_baseline
from repro.bench.harness import (
    AlgoRun,
    KernelResult,
    bench_kernel,
    calibrate,
    format_table,
    run_algorithm,
    simulated_time,
)
from repro.bench.inputs import (
    BENCH_THREADS,
    SYNTHETIC_FAMILIES,
    bench_sizes,
    make_input,
    realworld_inputs,
)
from repro.bench.kernels import KERNELS, Kernel, kernel_names

__all__ = [
    "AlgoRun",
    "run_algorithm",
    "simulated_time",
    "format_table",
    "SYNTHETIC_FAMILIES",
    "BENCH_THREADS",
    "make_input",
    "bench_sizes",
    "realworld_inputs",
    "BENCH_SCHEMA",
    "Kernel",
    "KERNELS",
    "kernel_names",
    "KernelResult",
    "bench_kernel",
    "calibrate",
    "results_to_payload",
    "save_baseline",
    "load_baseline",
    "compare",
]
