"""Figure 8 reproduction: thread scaling on real-world tree stand-ins.

The paper runs the three algorithms on Friendster, Twitter, and BigANN
MSTs; here the same pipelines run on the synthetic stand-ins (DESIGN.md
Section 1).  Shape to verify (Section 5.1, "Real-World Inputs"):

* SeqUF self-speedup is modest (paper: 1.2-1.8x, like the permuted-weight
  synthetic inputs);
* ParUF self-speedup 36-52x, RCTT 48.7-84x;
* at all threads ParUF is 18.4-39.8x and RCTT 21.1-34.4x faster than
  SeqUF.
"""

from __future__ import annotations

import sys

from repro.bench.harness import format_table, fmt_seconds, run_algorithm, simulated_time
from repro.bench.inputs import BENCH_THREADS, bench_sizes, realworld_inputs

__all__ = ["run", "main"]


def run(
    n: int | None = None,
    threads: tuple[int, ...] = BENCH_THREADS,
    algorithms: tuple[str, ...] = ("sequf", "paruf", "rctt"),
    seed: int = 0,
) -> dict:
    n = n if n is not None else bench_sizes()[0]
    trees = realworld_inputs(n, seed=seed)
    series = []
    for name, tree in trees.items():
        per_alg = {}
        for alg in algorithms:
            opts = {"builder": "reference"} if alg == "rctt" else {}
            r = run_algorithm(alg, tree, **opts)
            times = [simulated_time(r, p) for p in threads]
            per_alg[alg] = times
            series.append(
                {
                    "input": name,
                    "algorithm": alg,
                    "n": tree.n,
                    "threads": list(threads),
                    "times": times,
                    "self_speedup": times[0] / times[-1],
                }
            )
        for alg in algorithms:
            if alg != "sequf":
                for s in series:
                    if s["input"] == name and s["algorithm"] == alg:
                        s["speedup_over_sequf"] = per_alg["sequf"][-1] / per_alg[alg][-1]
    return {"threads": list(threads), "series": series}


def main(argv: list[str] | None = None) -> dict:
    result = run()
    threads = result["threads"]
    headers = ["input", "algorithm", "n"] + [f"P={p}" for p in threads] + [
        "self-speedup",
        "vs SeqUF@192",
    ]
    rows = []
    for s in result["series"]:
        rows.append(
            [s["input"], s["algorithm"], str(s["n"])]
            + [fmt_seconds(t) for t in s["times"]]
            + [
                f"{s['self_speedup']:.1f}x",
                f"{s.get('speedup_over_sequf', 1.0):.1f}x",
            ]
        )
    print(
        format_table(
            headers,
            rows,
            title="Figure 8 (reproduction): simulated time (s) vs threads, real-world stand-ins",
        )
    )
    from repro.bench.ascii_plot import line_chart

    by_input: dict[str, dict[str, list[float]]] = {}
    for s in result["series"]:
        by_input.setdefault(s["input"], {})[s["algorithm"]] = s["times"]
    for name, series in by_input.items():
        print()
        print(line_chart(series, threads, title=f"[{name}] time vs threads (log y)"))
    print()
    print("paper bands: SeqUF self-speedup 1.2-1.8x; ParUF 36-52x; RCTT 48.7-84x;")
    print("             at 192 threads ParUF 18.4-39.8x and RCTT 21.1-34.4x over SeqUF")
    return result


if __name__ == "__main__":
    main(sys.argv[1:])
