"""Figure 7 reproduction: phase breakdowns of RCTT and ParUF.

The paper decomposes billion-scale runs into RCTT = Build / Trace / Sort
and ParUF = Preprocess / Async / Postprocess, observing that RCTT is
dominated by RC-tree construction (Trace at most ~23%, usually a few
percent) and that ParUF on knuth-perm is dominated by the Async step.
The same phase timers instrument this reproduction's wall-clock runs.
"""

from __future__ import annotations

import sys

from repro.bench.harness import format_table, run_algorithm
from repro.bench.inputs import SYNTHETIC_FAMILIES, bench_sizes, make_input, realworld_inputs

__all__ = ["run", "main"]

RCTT_PHASES = ("build", "trace", "sort")
PARUF_PHASES = ("preprocess", "async", "postprocess")


def run(
    n: int | None = None,
    include_realworld: bool = True,
    seed: int = 0,
) -> dict:
    n = n if n is not None else bench_sizes()[1]
    inputs: dict[str, object] = {
        family: make_input(family, n, seed=seed) for family in SYNTHETIC_FAMILIES
    }
    if include_realworld:
        inputs.update(realworld_inputs(n, seed=seed))
    rows = []
    for name, tree in inputs.items():
        # The reference contraction builder mirrors the cost structure of
        # the paper's implementation, which is what Figure 7 profiles; the
        # production default (vectorized builder) shrinks Build so far that
        # the paper's breakdown question stops being meaningful.
        rctt_run = run_algorithm("rctt", tree, builder="reference")
        paruf_run = run_algorithm("paruf", tree)
        rt = sum(rctt_run.phases.values()) or 1.0
        pt = sum(paruf_run.phases.values()) or 1.0
        rows.append(
            {
                "input": name,
                "n": tree.n,
                "rctt_total": rctt_run.wall_seconds,
                "paruf_total": paruf_run.wall_seconds,
                "rctt": {ph: rctt_run.phases.get(ph, 0.0) / rt for ph in RCTT_PHASES},
                "paruf": {ph: paruf_run.phases.get(ph, 0.0) / pt for ph in PARUF_PHASES},
            }
        )
    summary = {
        "max_trace_fraction": max(r["rctt"]["trace"] for r in rows),
        "build_dominates": all(
            r["rctt"]["build"] >= max(r["rctt"]["trace"], r["rctt"]["sort"]) for r in rows
        ),
    }
    return {"n": n, "rows": rows, "summary": summary}


def main(argv: list[str] | None = None) -> dict:
    result = run()
    headers = (
        ["input", "n"]
        + [f"RCTT {p}%" for p in RCTT_PHASES]
        + [f"ParUF {p}%" for p in PARUF_PHASES]
    )
    rows = []
    for r in result["rows"]:
        rows.append(
            [r["input"], str(r["n"])]
            + [f"{100 * r['rctt'][p]:.1f}" for p in RCTT_PHASES]
            + [f"{100 * r['paruf'][p]:.1f}" for p in PARUF_PHASES]
        )
    print(
        format_table(
            headers,
            rows,
            title=f"Figure 7 (reproduction): phase breakdown fractions, n={result['n']}",
        )
    )
    s = result["summary"]
    print()
    print(f"max RCTT trace fraction: {100 * s['max_trace_fraction']:.1f}%  (paper: at most ~23%)")
    print(f"RCTT build dominates on every input: {s['build_dominates']}  (paper: true)")
    return result


if __name__ == "__main__":
    main(sys.argv[1:])
