"""Benchmark input registry: the paper's input families, geometrically scaled.

The paper evaluates on {path, star, knuth} x {unit, perm} plus the
ParUF-adversarial path-low-par, at 10M / 100M / 1B vertices, and on three
real-world trees.  This registry provides the same seven synthetic
families at sizes scaled for a single-core Python run (default 10K / 40K /
160K; multiply with ``REPRO_BENCH_SCALE``), and the three real-world
stand-ins of DESIGN.md Section 1.
"""

from __future__ import annotations

import os

from repro.cluster.knn import knn_graph
from repro.datasets.points import gaussian_blobs
from repro.datasets.synthetic_graphs import (
    preferential_attachment_graph,
    rmat_graph,
    social_mst,
)
from repro.trees.generators import knuth_tree, path_tree, star_tree
from repro.trees.mst import minimum_spanning_tree
from repro.trees.weights import apply_scheme
from repro.trees.wtree import WeightedTree

__all__ = [
    "SYNTHETIC_FAMILIES",
    "BENCH_THREADS",
    "bench_sizes",
    "make_input",
    "realworld_inputs",
]

#: The seven synthetic input families of Table 1, in the paper's order.
SYNTHETIC_FAMILIES = (
    "path",
    "path-perm",
    "path-low-par",
    "star",
    "star-perm",
    "knuth",
    "knuth-perm",
)

#: Thread counts swept in Figures 6 and 8 (the paper's x-axis, 1..192).
BENCH_THREADS = (1, 2, 4, 8, 16, 32, 64, 96, 192)

_BASE_SIZES = (10_000, 40_000, 160_000)

#: Paper-scale labels the scaled sizes stand in for (Table 1 rows).
PAPER_SIZE_LABELS = ("10M", "100M", "1B")


def bench_scale() -> int:
    """Multiplier from the ``REPRO_BENCH_SCALE`` environment variable."""
    try:
        scale = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
    except ValueError:
        scale = 1
    return max(1, scale)


def bench_sizes() -> tuple[int, ...]:
    """The three geometric input sizes (paper: 10M / 100M / 1B)."""
    s = bench_scale()
    return tuple(n * s for n in _BASE_SIZES)


def make_input(family: str, n: int, seed: int = 0) -> WeightedTree:
    """Build one synthetic input: topology family + weight scheme."""
    if family not in SYNTHETIC_FAMILIES:
        raise ValueError(
            f"unknown input family {family!r}; expected one of {SYNTHETIC_FAMILIES}"
        )
    base, _, scheme = family.partition("-")
    scheme = scheme or "unit"
    if scheme == "low":  # "path-low-par" splits awkwardly
        scheme = "low-par"
    if base == "path":
        tree = path_tree(n)
    elif base == "star":
        tree = star_tree(n)
    else:
        tree = knuth_tree(n, seed=seed)
    return tree.with_weights(apply_scheme(scheme, tree.m, seed=seed + 1))


def realworld_inputs(n: int, seed: int = 0) -> dict[str, WeightedTree]:
    """The three real-world stand-ins (Figure 8), each ending in an MST.

    * ``rmat-social``: RMAT graph -> triangle weights -> MST (Friendster);
    * ``powerlaw-follow``: preferential attachment -> triangle weights ->
      MST (Twitter);
    * ``knn-points``: Gaussian-mixture cloud -> exact k-NN graph -> MST
      (BigANN/DiskANN).
    """
    out: dict[str, WeightedTree] = {}
    scale = max(6, n.bit_length() - 1)
    gn, gedges = rmat_graph(scale, edge_factor=8, seed=seed)
    out["rmat-social"] = social_mst(gn, gedges, seed=seed)
    pn, pedges = preferential_attachment_graph(n, m_attach=4, seed=seed + 1)
    out["powerlaw-follow"] = social_mst(pn, pedges, seed=seed + 1)
    pts, _ = gaussian_blobs(min(n, 4000), centers=8, dim=4, seed=seed + 2)
    kn, kedges, kweights = knn_graph(pts, k=6)
    out["knn-points"] = minimum_spanning_tree(kn, kedges, kweights)
    return out
