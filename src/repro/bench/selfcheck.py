"""Conformance matrix: every algorithm vs every input family, at scale.

Not a paper table -- a release gate.  The unit tests prove agreement on
small random trees; this experiment re-proves it at benchmark scale
(where, e.g., recursion-depth or contraction-round bugs would first
appear) and prints the algorithm x input matrix.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.bench.harness import format_table
from repro.bench.inputs import SYNTHETIC_FAMILIES, bench_sizes, make_input
from repro.core.api import ALGORITHMS

__all__ = ["run", "main"]

CHECK_ALGORITHMS = (
    "sequf",
    "paruf",
    "paruf-sync",
    "rctt",
    "tree-contraction",
    "tree-contraction-list",
    "divide-conquer",
    "weight-dc",
)


def run(n: int | None = None, seed: int = 0) -> dict:
    n = n if n is not None else bench_sizes()[0]
    rows = []
    all_ok = True
    for family in SYNTHETIC_FAMILIES:
        tree = make_input(family, n, seed=seed)
        reference = ALGORITHMS["sequf"](tree)
        statuses = {}
        for alg in CHECK_ALGORITHMS:
            if alg == "sequf":
                statuses[alg] = True
                continue
            got = ALGORITHMS[alg](tree)
            ok = bool(np.array_equal(got, reference))
            statuses[alg] = ok
            all_ok &= ok
        rows.append({"family": family, "n": tree.n, "status": statuses})
    return {"n": n, "rows": rows, "all_ok": all_ok}


def main(argv: list[str] | None = None) -> dict:
    result = run()
    headers = ["input"] + list(CHECK_ALGORITHMS)
    table = [
        [r["family"]] + ["ok" if r["status"][a] else "FAIL" for a in CHECK_ALGORITHMS]
        for r in result["rows"]
    ]
    print(
        format_table(
            headers,
            table,
            title=f"Self-check: algorithm agreement matrix, n={result['n']}",
        )
    )
    print()
    print(f"all algorithms agree on all inputs: {result['all_ok']}")
    return result


if __name__ == "__main__":
    main(sys.argv[1:])
