"""Schema-versioned benchmark baselines and the regression gate.

``BENCH_*.json`` files record one full run of the perf kernels (see
:mod:`repro.bench.kernels`): per-kernel median/p90 wall seconds, charged
work/depth, input size, and repeat count, plus a machine-speed
calibration probe.  The schema::

    {
      "schema": "repro-bench/1",
      "calibration_s": <seconds for the fixed numpy probe>,
      "quick": <bool>,
      "kernels": {
        "<name>": {
          "size": int, "repeats": int,
          "min_s": float, "median_s": float, "p90_s": float,
          "instrumented_s": float,
          "work": float, "depth": float
        }, ...
      }
    }

The gate (:func:`compare`) fails (exit 1 from the CLI) when any kernel's
calibration-normalized *minimum* wall time regresses more than
``tolerance`` (default 15%, plus a small absolute slack for scheduler
jitter) against the baseline, or when charged work/depth drift at all --
accounting is deterministic, so any drift is a real accounting change
that must come with a refreshed baseline.  The minimum, not the median,
is gated: on shared CI machines interference only ever adds time, so the
fastest observed sample is the most faithful estimate of the code's true
cost, while median/p90 are recorded to describe the spread.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.bench.harness import KernelResult

__all__ = [
    "SCHEMA",
    "DEFAULT_TOLERANCE",
    "results_to_payload",
    "save_baseline",
    "load_baseline",
    "validate_payload",
    "compare",
]

SCHEMA = "repro-bench/1"

#: Default wall-time regression tolerance of the gate (fraction).
DEFAULT_TOLERANCE = 0.15

#: Kernels faster than this are pure noise at CI timer resolution; the
#: wall-time gate skips them (work/depth are still checked).
MIN_GATED_SECONDS = 1e-3

#: Absolute slack added on top of the relative tolerance (seconds).  On a
#: shared runner even best-of-N samples of a few-ms kernel carry this much
#: scheduler jitter; it is negligible against any real hot-path regression.
ABS_SLACK_SECONDS = 5e-3

_REQUIRED_KERNEL_KEYS = {
    "size": (int,),
    "repeats": (int,),
    "min_s": (int, float),
    "median_s": (int, float),
    "p90_s": (int, float),
    "instrumented_s": (int, float),
    "work": (int, float),
    "depth": (int, float),
}


def results_to_payload(
    results: list[KernelResult], calibration_s: float, quick: bool
) -> dict[str, Any]:
    """Assemble the schema-versioned JSON payload for ``results``."""
    return {
        "schema": SCHEMA,
        "calibration_s": calibration_s,
        "quick": quick,
        "kernels": {
            r.kernel: {
                "size": r.size,
                "repeats": r.repeats,
                "min_s": r.min_s,
                "median_s": r.median_s,
                "p90_s": r.p90_s,
                "instrumented_s": r.instrumented_s,
                "work": r.work,
                "depth": r.depth,
            }
            for r in results
        },
    }


def validate_payload(payload: Any, where: str = "payload") -> dict[str, Any]:
    """Check ``payload`` against the ``repro-bench/1`` schema; return it."""
    if not isinstance(payload, dict):
        raise ValueError(f"{where}: expected a JSON object, got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"{where}: schema {schema!r} is not {SCHEMA!r}")
    cal = payload.get("calibration_s")
    if not isinstance(cal, (int, float)) or not math.isfinite(cal) or cal <= 0:
        raise ValueError(f"{where}: calibration_s must be a positive number, got {cal!r}")
    kernels = payload.get("kernels")
    if not isinstance(kernels, dict) or not kernels:
        raise ValueError(f"{where}: kernels must be a non-empty object")
    for name, entry in kernels.items():
        if not isinstance(entry, dict):
            raise ValueError(f"{where}: kernel {name!r} entry must be an object")
        for key, types in _REQUIRED_KERNEL_KEYS.items():
            value = entry.get(key)
            if not isinstance(value, types) or isinstance(value, bool):
                raise ValueError(
                    f"{where}: kernel {name!r} field {key!r} must be "
                    f"{'/'.join(t.__name__ for t in types)}, got {value!r}"
                )
            if isinstance(value, (int, float)) and not math.isfinite(float(value)):
                raise ValueError(f"{where}: kernel {name!r} field {key!r} is not finite")
    return payload


def save_baseline(path: str | Path, payload: dict[str, Any]) -> None:
    """Write a validated payload to ``path`` (pretty-printed, trailing \\n)."""
    validate_payload(payload, where=str(path))
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Load and schema-validate a ``BENCH_*.json`` file."""
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    return validate_payload(payload, where=str(path))


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[bool, list[str]]:
    """Gate ``current`` against ``baseline``; return ``(ok, report lines)``.

    Wall-time check: a kernel regresses when its best-of-repeats minimum
    exceeds the baseline minimum -- scaled by the calibration ratio of the
    two machines -- by more than ``tolerance`` plus ``ABS_SLACK_SECONDS``.
    Kernels below ``MIN_GATED_SECONDS`` in both runs are reported but not
    gated (timer noise).

    Accounting check: charged work/depth must match the baseline exactly
    (same size input, deterministic charges); any drift fails the gate.

    Kernels present only on one side are reported but do not fail the
    gate -- adding a kernel must not require rewriting history, and a
    removed kernel's history simply ends.
    """
    ok = True
    lines: list[str] = []
    cal_ratio = float(current["calibration_s"]) / float(baseline["calibration_s"])
    lines.append(
        f"calibration: current {current['calibration_s']:.6f}s / "
        f"baseline {baseline['calibration_s']:.6f}s (ratio {cal_ratio:.3f})"
    )
    cur_kernels = current["kernels"]
    base_kernels = baseline["kernels"]
    for name in sorted(set(cur_kernels) | set(base_kernels)):
        if name not in base_kernels:
            lines.append(f"  {name}: NEW (no baseline entry; not gated)")
            continue
        if name not in cur_kernels:
            lines.append(f"  {name}: MISSING from current run (not gated)")
            continue
        cur = cur_kernels[name]
        base = base_kernels[name]
        if cur["size"] != base["size"]:
            lines.append(
                f"  {name}: size changed {base['size']} -> {cur['size']}; "
                "wall gate skipped, refresh the baseline"
            )
            continue
        drift = []
        if float(cur["work"]) != float(base["work"]):
            drift.append(f"work {base['work']:.0f} -> {cur['work']:.0f}")
        if float(cur["depth"]) != float(base["depth"]):
            drift.append(f"depth {base['depth']:.0f} -> {cur['depth']:.0f}")
        if drift:
            ok = False
            lines.append(f"  {name}: FAIL accounting drift ({', '.join(drift)})")
            continue
        normalized_base = float(base["min_s"]) * cal_ratio
        allowed = normalized_base * (1.0 + tolerance) + ABS_SLACK_SECONDS
        cur_min = float(cur["min_s"])
        rel = cur_min / normalized_base if normalized_base > 0 else float("inf")
        if cur_min < MIN_GATED_SECONDS and float(base["min_s"]) < MIN_GATED_SECONDS:
            lines.append(f"  {name}: ok (sub-millisecond, not gated; x{rel:.2f})")
        elif cur_min > allowed:
            ok = False
            lines.append(
                f"  {name}: FAIL wall regression x{rel:.2f} "
                f"(min {cur_min:.4f}s > allowed {allowed:.4f}s)"
            )
        else:
            lines.append(f"  {name}: ok (x{rel:.2f} of normalized baseline)")
    lines.append("gate: " + ("PASS" if ok else "FAIL"))
    return ok, lines
