"""Figure 6 reproduction: running time vs thread count, synthetic inputs.

The paper plots SeqUF / ParUF / RCTT running times against 1..192 threads
on 100M-vertex inputs.  Here each algorithm runs once (instrumented); the
thread sweep is the Brent's-law simulation anchored at the measured
single-thread time.  Shape to verify (Section 5.1):

* SeqUF stays nearly flat (only its sort parallelizes; paper self-speedup
  1.36-11.6x, geomean 2.94x);
* ParUF and RCTT scale strongly (paper geomeans 30.1x and 52.1x) and
  overtake SeqUF at moderate thread counts (~8 in the paper);
* ParUF scales worst on knuth-perm (deep dendrogram, Async-bound).
"""

from __future__ import annotations

import sys

from repro.bench.harness import format_table, fmt_seconds, run_algorithm, simulated_time
from repro.bench.inputs import BENCH_THREADS, bench_sizes, make_input
from repro.util import geomean

__all__ = ["run", "main", "FIG6_INPUTS"]

#: The representative inputs plotted in Figure 6.
FIG6_INPUTS = ("path", "path-perm", "star", "star-perm", "knuth", "knuth-perm")


def run(
    n: int | None = None,
    inputs: tuple[str, ...] = FIG6_INPUTS,
    threads: tuple[int, ...] = BENCH_THREADS,
    algorithms: tuple[str, ...] = ("sequf", "paruf", "rctt"),
    seed: int = 0,
) -> dict:
    """Thread-scaling series for each input and algorithm."""
    n = n if n is not None else bench_sizes()[1]  # the middle (paper: 100M) size
    series: list[dict] = []
    for family in inputs:
        tree = make_input(family, n, seed=seed)
        for alg in algorithms:
            opts = {"builder": "reference"} if alg == "rctt" else {}
            r = run_algorithm(alg, tree, **opts)
            times = [simulated_time(r, p) for p in threads]
            series.append(
                {
                    "family": family,
                    "algorithm": alg,
                    "n": n,
                    "threads": list(threads),
                    "times": times,
                    "self_speedup": times[0] / times[-1],
                    "parallelism": r.parallelism,
                }
            )
    summary = {
        alg: geomean([s["self_speedup"] for s in series if s["algorithm"] == alg])
        for alg in algorithms
    }
    return {"n": n, "threads": list(threads), "series": series, "self_speedup_geomean": summary}


def main(argv: list[str] | None = None) -> dict:
    from repro.bench.ascii_plot import line_chart

    result = run()
    threads = result["threads"]
    headers = ["input", "algorithm"] + [f"P={p}" for p in threads] + ["self-speedup"]
    rows = []
    for s in result["series"]:
        rows.append(
            [s["family"], s["algorithm"]]
            + [fmt_seconds(t) for t in s["times"]]
            + [f"{s['self_speedup']:.1f}x"]
        )
    print(
        format_table(
            headers,
            rows,
            title=f"Figure 6 (reproduction): simulated time (s) vs threads, n={result['n']}",
        )
    )
    by_family: dict[str, dict[str, list[float]]] = {}
    for s in result["series"]:
        by_family.setdefault(s["family"], {})[s["algorithm"]] = s["times"]
    for family, series in by_family.items():
        print()
        print(line_chart(series, threads, title=f"[{family}] time vs threads (log y)"))
    print()
    for alg, g in result["self_speedup_geomean"].items():
        paper = {"sequf": "2.94x (range 1.36-11.6x)", "paruf": "30.1x", "rctt": "52.1x"}.get(alg, "-")
        print(f"self-speedup geomean {alg}: {g:.1f}x   (paper: {paper})")
    return result


if __name__ == "__main__":
    main(sys.argv[1:])
