"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``generate``
    Build a synthetic tree (topology family + weight scheme) and save it.
``compute``
    Compute the SLD of a tree (generated inline or loaded from ``.npz``),
    print summary metrics, optionally save/render/export it.
``cluster``
    Run the points pipeline on a synthetic cloud and print cluster sizes.
``bench``
    Run one of the paper-reproduction experiment harnesses.
``snapshot``
    Precompute the query-ready serving artifact (mmap-able ``.npz``) of a
    tree's dendrogram.
``serve`` / ``query``
    Answer dendrogram queries over a snapshot: ``serve`` is a line-oriented
    REPL on stdin, ``query`` executes a batch file (grouping vectorizable
    queries) and can self-check the snapshot against the brute-force
    oracle.
``info``
    Describe a saved tree or dendrogram archive.
``check``
    Run the repo invariant lint (RPR codes) and the round-race battery.
``fuzz``
    Differential + metamorphic fuzzing of the dendrogram algorithms and
    the io loaders (``--selftest`` injects known mutants; ``--replay``
    re-runs the regression corpus).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro._version import __version__

__all__ = ["main", "build_parser"]

_GENERATORS = ("path", "star", "knuth", "random", "caterpillar", "broom", "binary")
_EXPERIMENTS = (
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "lowerbound",
    "ablation",
    "selfcheck",
    "scale",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal parallel single-linkage dendrogram computation (SPAA 2024 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic weighted tree")
    gen.add_argument("--kind", choices=_GENERATORS, default="knuth")
    gen.add_argument("--n", type=int, default=1000, help="number of vertices")
    gen.add_argument("--scheme", default="perm", help="weight scheme (see repro.trees.weights)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output .npz path")

    comp = sub.add_parser("compute", help="compute a single-linkage dendrogram")
    src = comp.add_mutually_exclusive_group()
    src.add_argument("--input", help="tree .npz saved by 'generate' or repro.io")
    src.add_argument("--kind", choices=_GENERATORS, help="generate inline instead")
    comp.add_argument("--n", type=int, default=1000)
    comp.add_argument("--scheme", default="perm")
    comp.add_argument("--seed", type=int, default=0)
    comp.add_argument("--algorithm", default="rctt")
    comp.add_argument("--validate", action="store_true", help="run structural validation")
    comp.add_argument("--render", action="store_true", help="print ASCII dendrogram (small inputs)")
    comp.add_argument("--out", help="save dendrogram .npz")
    comp.add_argument("--linkage-csv", help="export the SciPy linkage matrix as CSV")

    clus = sub.add_parser("cluster", help="cluster a synthetic point cloud")
    clus.add_argument("--dataset", choices=("blobs", "rings"), default="blobs")
    clus.add_argument("--n", type=int, default=300)
    clus.add_argument("--clusters", type=int, default=4, help="blob centers / ring count, and the cut k")
    clus.add_argument("--knn", type=int, default=0, help="k-NN graph degree (0 = complete graph)")
    clus.add_argument("--algorithm", default="rctt")
    clus.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser(
        "bench",
        help="run the perf-regression kernels (default) or a paper experiment",
    )
    bench.add_argument(
        "experiment",
        nargs="?",
        choices=_EXPERIMENTS,
        help="run one paper-reproduction experiment instead of the perf kernels",
    )
    bench.add_argument(
        "--quick", action="store_true", help="small inputs / few repeats (CI mode)"
    )
    bench.add_argument(
        "--compare",
        metavar="BASELINE.json",
        help="gate against a committed BENCH_*.json; exit 1 on >tolerance "
        "wall regression or any work/depth drift",
    )
    bench.add_argument(
        "--out",
        default="BENCH_pr10.json",
        metavar="PATH",
        help="where to write the fresh benchmark JSON (default: BENCH_pr10.json)",
    )
    bench.add_argument(
        "--backend",
        choices=("reference", "array", "both"),
        default="both",
        help="kernel family to run: reference kernels, array-backend "
        "kernels (the *-fast twins), or both (default)",
    )
    bench.add_argument(
        "--repeats", type=int, default=None, help="wall-time repeats per kernel"
    )
    bench.add_argument(
        "--kernels",
        default=None,
        metavar="NAMES",
        help="comma-separated subset of kernels to run (default: all)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="wall regression tolerance for --compare (default: 0.15)",
    )

    snap = sub.add_parser(
        "snapshot", help="write the mmap-able query snapshot of a dendrogram"
    )
    src3 = snap.add_mutually_exclusive_group()
    src3.add_argument("--input", help="tree .npz saved by 'generate' or repro.io")
    src3.add_argument("--kind", choices=_GENERATORS, help="generate inline instead")
    snap.add_argument("--n", type=int, default=1000)
    snap.add_argument("--scheme", default="perm")
    snap.add_argument("--seed", type=int, default=0)
    snap.add_argument("--algorithm", default="rctt")
    snap.add_argument("--out", required=True, help="output snapshot .npz path")

    serve = sub.add_parser(
        "serve", help="answer dendrogram queries line by line on stdin"
    )
    serve.add_argument("snapshot", help="snapshot .npz written by 'snapshot'")
    serve.add_argument(
        "--no-mmap", action="store_true", help="materialize slabs instead of mmap"
    )
    serve.add_argument(
        "--cache", type=int, default=32, help="LRU cut-cache entries (0 disables)"
    )

    query = sub.add_parser(
        "query", help="execute a batch of dendrogram queries against a snapshot"
    )
    query.add_argument("snapshot", help="snapshot .npz written by 'snapshot'")
    query.add_argument(
        "--batch",
        metavar="FILE",
        help="protocol lines to execute ('-' for stdin); see repro.dendrogram.service",
    )
    query.add_argument(
        "--selfcheck",
        action="store_true",
        help="verify the mmap-loaded snapshot against the brute-force oracle "
        "(batched heights/cuts vs scalar recomputation); exit 1 on mismatch",
    )
    query.add_argument(
        "--queries",
        type=int,
        default=10_000,
        help="random height queries for --selfcheck (default: 10000)",
    )
    query.add_argument("--seed", type=int, default=0, help="--selfcheck query seed")
    query.add_argument(
        "--no-mmap", action="store_true", help="materialize slabs instead of mmap"
    )

    ana = sub.add_parser(
        "analyze", help="parallelism profile + dendrogram metrics of an input"
    )
    src2 = ana.add_mutually_exclusive_group()
    src2.add_argument("--input", help="tree .npz saved by 'generate' or repro.io")
    src2.add_argument("--kind", choices=_GENERATORS, help="generate inline instead")
    ana.add_argument("--n", type=int, default=1000)
    ana.add_argument("--scheme", default="perm")
    ana.add_argument("--seed", type=int, default=0)

    cmp_ = sub.add_parser("compare", help="compare two saved dendrograms")
    cmp_.add_argument("left")
    cmp_.add_argument("right")
    cmp_.add_argument("--ks", default="2,4,8", help="comma-separated cut sizes for the B_k curve")

    info = sub.add_parser("info", help="describe a saved archive")
    info.add_argument("path")

    check = sub.add_parser(
        "check", help="run the repo invariant lint and the round-race battery"
    )
    check.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (and .py build_round() fixtures to "
        "race-check); default: the repro package source + built-in battery",
    )
    check.add_argument("--no-lint", action="store_true", help="skip the RPR lint pass")
    check.add_argument(
        "--no-races", action="store_true", help="skip the dynamic race checks"
    )
    check.add_argument(
        "--bounds",
        action="store_true",
        help="run the empirical cost-bound fit gate over registered algorithms",
    )
    check.add_argument(
        "--slabs",
        action="store_true",
        help="run the RPR2xx slab/effect lint over the array-backend layers "
        "(or over the given paths)",
    )
    check.add_argument(
        "--parsafe",
        action="store_true",
        help="run the RPR3xx parallel-safety lint over the concurrency "
        "layers (or over the given paths) plus, in the default run, the "
        "adversarial-interleaving battery",
    )
    check.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit one JSON report object instead of line-oriented output",
    )
    check.add_argument(
        "--bounds-report",
        default=None,
        metavar="PATH",
        help="where --bounds writes its JSON artifact "
        "(default: results/bounds_report.json)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential + metamorphic fuzzing of the algorithms and io loaders",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="base seed; case i is f(seed, i)")
    fuzz.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECS",
        help="wall-clock budget; only truncates the deterministic case stream",
    )
    fuzz.add_argument(
        "--cases", type=int, default=None, help="exact number of cases to run"
    )
    fuzz.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="where shrunken failures are written "
        "(default: tests/fixtures/corpus)",
    )
    fuzz.add_argument(
        "--replay",
        metavar="CORPUS",
        default=None,
        help="replay a regression corpus directory instead of fuzzing; "
        "exits 1 if any entry finds its bug again",
    )
    fuzz.add_argument(
        "--selftest",
        action="store_true",
        help="inject known mutants and fail unless the fuzzer catches every one",
    )
    fuzz.add_argument(
        "--threads",
        type=int,
        default=4,
        help="worker threads for the paruf-threaded differential runs",
    )
    fuzz.add_argument(
        "--domains",
        default=None,
        metavar="NAMES",
        help="comma-separated case domains to draw from "
        "(tree, dynamic, csv, npz; default: the full weighted wheel)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true", help="skip minimization of failing cases"
    )
    return parser


def _make_tree(kind: str, n: int, scheme: str, seed: int):
    from repro.trees.generators import (
        balanced_binary,
        broom,
        caterpillar,
        knuth_tree,
        path_tree,
        random_tree,
        star_tree,
    )
    from repro.trees.weights import apply_scheme

    makers = {
        "path": lambda: path_tree(n),
        "star": lambda: star_tree(n),
        "knuth": lambda: knuth_tree(n, seed=seed),
        "random": lambda: random_tree(n, seed=seed),
        "caterpillar": lambda: caterpillar(n),
        "broom": lambda: broom(n),
        "binary": lambda: balanced_binary(n),
    }
    tree = makers[kind]()
    return tree.with_weights(apply_scheme(scheme, tree.m, seed=seed + 1))


def _cmd_generate(args) -> int:
    from repro.io import save_tree

    tree = _make_tree(args.kind, args.n, args.scheme, args.seed)
    save_tree(args.out, tree)
    print(f"wrote {args.kind}/{args.scheme} tree with n={tree.n} to {args.out}")
    return 0


def _cmd_compute(args) -> int:
    from repro.core.api import single_linkage_dendrogram
    from repro.io import export_linkage_csv, load_tree, save_dendrogram

    if args.input:
        tree = load_tree(args.input)
        source = args.input
    else:
        kind = args.kind or "knuth"
        tree = _make_tree(kind, args.n, args.scheme, args.seed)
        source = f"generated {kind}/{args.scheme} n={args.n}"
    start = time.perf_counter()  # noqa: RPR001 -- user-facing timing report
    dend = single_linkage_dendrogram(tree, algorithm=args.algorithm, validate=args.validate)
    elapsed = time.perf_counter() - start  # noqa: RPR001
    print(f"input:      {source}")
    print(f"algorithm:  {args.algorithm}")
    print(f"time:       {elapsed * 1e3:.1f} ms")
    print(f"nodes:      {dend.m}")
    if dend.m:
        print(f"height h:   {dend.height}")
        print(f"root edge:  {dend.root}")
        widths = dend.level_widths()
        print(f"max level width: {int(widths.max())}")
    if args.render:
        print()
        print(dend.render())
    if args.out:
        save_dendrogram(args.out, dend)
        print(f"saved dendrogram to {args.out}")
    if args.linkage_csv:
        export_linkage_csv(args.linkage_csv, dend)
        print(f"exported linkage matrix to {args.linkage_csv}")
    return 0


def _cmd_cluster(args) -> int:
    from repro.cluster.single_linkage import single_linkage
    from repro.datasets.points import gaussian_blobs, noisy_rings

    if args.dataset == "blobs":
        pts, truth = gaussian_blobs(args.n, centers=args.clusters, seed=args.seed)
    else:
        pts, truth = noisy_rings(args.n, rings=args.clusters, seed=args.seed)
    res = single_linkage(pts, k=args.knn or None, algorithm=args.algorithm)
    labels = res.labels_k(args.clusters)
    sizes = np.bincount(labels)
    same_ours = labels[:, None] == labels[None, :]
    same_true = truth[:, None] == truth[None, :]
    agreement = float((same_ours == same_true).mean())
    print(f"dataset:   {args.dataset} (n={args.n}, target clusters={args.clusters})")
    print(f"graph:     {'complete' if not args.knn else f'{args.knn}-NN'}")
    print(f"algorithm: {args.algorithm}")
    print(f"cluster sizes: {sorted(sizes.tolist(), reverse=True)}")
    print(f"pairwise agreement with ground truth: {agreement:.3f}")
    return 0


def _cmd_bench(args) -> int:
    import importlib

    if args.experiment:
        module = importlib.import_module(f"repro.bench.{args.experiment}")
        module.main([])
        return 0

    from repro.bench.baseline import (
        DEFAULT_TOLERANCE,
        compare,
        load_baseline,
        results_to_payload,
        save_baseline,
    )
    from repro.bench.harness import bench_kernel, calibrate
    from repro.bench.kernels import kernel_names, kernels_for_backend
    from repro.bench.report import format_bench_results

    selected = kernels_for_backend(args.backend)
    if args.kernels:
        wanted = [k.strip() for k in args.kernels.split(",") if k.strip()]
        unknown = sorted(set(wanted) - set(kernel_names()))
        if unknown:
            print(f"unknown kernels {unknown}; available: {kernel_names()}")
            return 2
        selected = [k for k in selected if k.name in wanted]

    repeats = args.repeats if args.repeats else (3 if args.quick else 5)
    # Load (and validate) the baseline up front: --compare against the file
    # being overwritten must gate on its *previous* contents.
    baseline = load_baseline(args.compare) if args.compare else None

    calibration = calibrate()
    results = [bench_kernel(k, repeats=repeats, quick=args.quick) for k in selected]
    print(format_bench_results(results, calibration))

    payload = results_to_payload(results, calibration, quick=args.quick)
    save_baseline(args.out, payload)
    print(f"wrote {args.out}")

    if baseline is not None:
        tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        ok, lines = compare(payload, baseline, tolerance=tolerance)
        print(f"comparing against {args.compare} (tolerance {tolerance:.0%}):")
        print("\n".join(lines))
        if not ok:
            return 1
    return 0


def _cmd_snapshot(args) -> int:
    from repro.core.api import single_linkage_dendrogram
    from repro.dendrogram.snapshot import build_snapshot, save_snapshot
    from repro.io import load_tree

    if args.input:
        tree = load_tree(args.input)
        source = args.input
    else:
        kind = args.kind or "knuth"
        tree = _make_tree(kind, args.n, args.scheme, args.seed)
        source = f"generated {kind}/{args.scheme} n={args.n}"
    dend = single_linkage_dendrogram(tree, algorithm=args.algorithm)
    snap = build_snapshot(dend)
    save_snapshot(args.out, snap)
    print(f"input:    {source}")
    print(
        f"snapshot: n={snap.n} nodes={snap.m} levels={snap.levels} "
        f"payload={snap.nbytes / 1024:.1f} KiB"
    )
    print(f"wrote {args.out}")
    return 0


def _load_engine(path: str, mmap: bool, cache: int = 32):
    from repro.dendrogram.query import QueryEngine
    from repro.dendrogram.snapshot import load_snapshot

    return QueryEngine(load_snapshot(path, mmap=mmap), cut_cache_size=cache)


def _cmd_serve(args) -> int:
    from repro.dendrogram.service import serve_lines
    from repro.io import FormatError

    try:
        engine = _load_engine(args.snapshot, mmap=not args.no_mmap, cache=args.cache)
    except FormatError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    for response in serve_lines(engine, sys.stdin):
        print(response, flush=True)
    return 0


def _cmd_query(args) -> int:
    from repro.io import FormatError

    if not args.batch and not args.selfcheck:
        print("repro query: nothing to do (pass --batch FILE and/or --selfcheck)")
        return 2
    try:
        engine = _load_engine(args.snapshot, mmap=not args.no_mmap)
    except FormatError as exc:
        print(f"repro query: {exc}", file=sys.stderr)
        return 2

    if args.batch:
        from repro.dendrogram.service import execute_batch

        if args.batch == "-":
            lines = sys.stdin.read().splitlines()
        else:
            with open(args.batch) as fh:
                lines = fh.read().splitlines()
        try:
            responses = execute_batch(engine, lines)
        except ValueError as exc:
            print(f"repro query: {exc}", file=sys.stderr)
            return 2
        for response in responses:
            print(response)

    if args.selfcheck:
        failures = _snapshot_selfcheck(engine, queries=args.queries, seed=args.seed)
        if failures:
            for line in failures:
                print(f"selfcheck FAIL: {line}", file=sys.stderr)
            return 1
        print(
            f"selfcheck OK: {args.queries} height queries + threshold/k cuts "
            "match the brute-force oracle"
        )
    return 0


def _snapshot_selfcheck(engine, queries: int, seed: int) -> list[str]:
    """Compare batched snapshot answers against brute-force recomputation.

    The oracle path shares nothing with the engine: the dendrogram is
    recomputed from the snapshot's tree slabs with the O(n^2) brute
    algorithm and queried with the scalar O(h) spine walks and union-find
    cuts.  Returns human-readable mismatch descriptions (empty = pass).
    """
    from repro.core.api import single_linkage_dendrogram
    from repro.dendrogram.cophenet import cophenetic_distance
    from repro.dendrogram.linkage import cut_height, cut_k

    snap = engine.snapshot
    tree = snap.to_dendrogram().tree
    oracle = single_linkage_dendrogram(tree, algorithm="brute", validate=True)
    failures: list[str] = []
    if not np.array_equal(
        np.asarray(snap.parents, dtype=np.int64), oracle.parents
    ):
        failures.append("snapshot parent array disagrees with the brute oracle")
    rng = np.random.default_rng(seed)
    n = snap.n
    pairs = rng.integers(0, n, size=(queries, 2))
    got = engine.merge_heights(pairs)
    # Scalar-oracle a seeded subsample (full 10k O(h) walks would dominate
    # CI); every batched answer still comes from the mmap-loaded slabs.
    sample = rng.choice(queries, size=min(queries, 512), replace=False)
    for i in sample:
        u, v = int(pairs[i, 0]), int(pairs[i, 1])
        want = cophenetic_distance(oracle, u, v)
        if got[i] != want:
            failures.append(f"merge_height({u}, {v}) = {got[i]!r}, oracle {want!r}")
    thresholds = (
        np.quantile(np.asarray(snap.weights), [0.0, 0.25, 0.5, 0.75, 1.0])
        if snap.m
        else np.zeros(1)
    )
    for t in thresholds:
        if not np.array_equal(engine.cut_at(float(t)), cut_height(tree, float(t))):
            failures.append(f"cut_at({float(t)!r}) disagrees with cut_height")
    for k in sorted({1, max(1, n // 3), max(1, n // 2), n}):
        if not np.array_equal(engine.cut_k(k), cut_k(tree, k)):
            failures.append(f"cut_k({k}) disagrees with linkage.cut_k")
    return failures


def _cmd_analyze(args) -> int:
    from repro.core.api import single_linkage_dendrogram
    from repro.dendrogram.analysis import parallelism_profile
    from repro.io import load_tree

    if args.input:
        tree = load_tree(args.input)
        source = args.input
    else:
        kind = args.kind or "knuth"
        tree = _make_tree(kind, args.n, args.scheme, args.seed)
        source = f"generated {kind}/{args.scheme} n={args.n}"
    dend = single_linkage_dendrogram(tree, algorithm="rctt")
    prof = parallelism_profile(tree)
    widths = dend.level_widths()
    print(f"input:            {source}")
    print(f"dendrogram height h: {dend.height}  (bounds: {tree.m and 1} .. {tree.m})")
    print(f"max level width:  {int(widths.max()) if widths.size else 0}")
    print(f"parallelism profile: {prof.summary()}")
    if prof.rounds:
        head = ", ".join(str(int(x)) for x in prof.ready_per_round[:12])
        print(f"ready-per-round (first 12): {head}{'...' if prof.rounds > 12 else ''}")
    verdict = (
        "postprocess-friendly (sort handles the tail)"
        if prof.postprocess_tail > tree.m // 2
        else "chain-bound (ParUF adversarial)"
        if prof.max_ready <= 2 and prof.rounds > max(32, tree.m // 8)
        else "wide frontier (ParUF-friendly)"
    )
    print(f"ParUF outlook:    {verdict}")
    return 0


def _cmd_compare(args) -> int:
    from repro.dendrogram.compare import fowlkes_mallows_curve
    from repro.dendrogram.validate import check_same_dendrogram
    from repro.io import load_dendrogram

    left = load_dendrogram(args.left)
    right = load_dendrogram(args.right)
    if left.tree.n != right.tree.n:
        print(f"point counts differ: {left.tree.n} vs {right.tree.n}")
        return 1
    identical = check_same_dendrogram(left.parents, right.parents)
    print(f"identical parent arrays: {identical}")
    print(f"heights: {left.height} vs {right.height}")
    ks = [int(x) for x in args.ks.split(",") if x.strip()]
    ks = [k for k in ks if 1 <= k <= left.tree.n]
    if ks:
        ks_arr, scores = fowlkes_mallows_curve(left.tree, right.tree, ks=ks)
        for k, s in zip(ks_arr, scores):
            print(f"B_{int(k)} (Fowlkes-Mallows at {int(k)} clusters): {s:.4f}")
    return 0


def _cmd_info(args) -> int:
    with np.load(args.path, allow_pickle=False) as data:
        kind = str(data["kind"]) if "kind" in data else "<unknown>"
        print(f"{args.path}: kind={kind}")
        for key in data.files:
            if key == "kind":
                continue
            arr = data[key]
            print(f"  {key}: shape={arr.shape} dtype={arr.dtype}")
        if kind == "dendrogram":
            from repro.io import load_dendrogram

            dend = load_dendrogram(args.path)
            print(f"  height h = {dend.height}, root = edge {dend.root}")
        if "schema" in data.files:
            print(f"  schema = {str(data['schema'])}")
        if "generation" in data.files:
            gen = int(data["generation"])
            stamp = "unstamped" if gen < 0 else f"generation {gen}"
            print(f"  dynamic-engine stamp: {stamp}")
    return 0


def _cmd_check(args) -> int:
    from repro.checkers.runner import DEFAULT_BOUNDS_REPORT, run_check

    return run_check(
        paths=list(args.paths) or None,
        lint=not args.no_lint,
        races=not args.no_races,
        bounds=args.bounds,
        slabs=args.slabs,
        parsafe=args.parsafe,
        json_output=args.json_output,
        bounds_report=args.bounds_report or DEFAULT_BOUNDS_REPORT,
    )


def _cmd_fuzz(args) -> int:
    from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, replay_corpus
    from repro.fuzz.runner import run_fuzz
    from repro.fuzz.selftest import run_selftest

    if args.selftest:
        report = run_selftest(seed=args.seed, shrink=not args.no_shrink)
        print("\n".join(report.format_lines()))
        return 0 if report.ok else 1

    if args.replay is not None:
        from pathlib import Path

        corpus = Path(args.replay)
        if not corpus.is_dir():
            print(f"repro fuzz: no such corpus directory: {corpus}")
            return 2
        results = replay_corpus(corpus)
        failures = 0
        for path, findings in results:
            if findings:
                failures += 1
                print(f"FAIL {path.name}: " + "; ".join(f.describe() for f in findings))
            else:
                print(f"ok   {path.name}")
        print(
            f"fuzz replay: {len(results)} entr(y/ies), {failures} regression(s)"
            if results
            else "fuzz replay: empty corpus"
        )
        return 1 if failures else 0

    corpus_dir = args.corpus if args.corpus is not None else DEFAULT_CORPUS_DIR
    domains = None
    if args.domains is not None:
        domains = tuple(d.strip() for d in args.domains.split(",") if d.strip())
        unknown = set(domains) - {"tree", "dynamic", "csv", "npz"}
        if unknown or not domains:
            print(f"repro fuzz: unknown domain(s): {sorted(unknown) or args.domains}")
            return 2
    report = run_fuzz(
        seed=args.seed,
        budget_s=args.budget,
        max_cases=args.cases,
        corpus_dir=corpus_dir,
        num_threads=args.threads,
        domains=domains,
        shrink=not args.no_shrink,
        progress=print,
    )
    print("\n".join(report.format_lines()))
    return 0 if report.ok else 1


_COMMANDS = {
    "generate": _cmd_generate,
    "compute": _cmd_compute,
    "cluster": _cmd_cluster,
    "bench": _cmd_bench,
    "snapshot": _cmd_snapshot,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "analyze": _cmd_analyze,
    "compare": _cmd_compare,
    "info": _cmd_info,
    "check": _cmd_check,
    "fuzz": _cmd_fuzz,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
