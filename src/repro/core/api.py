"""One-call public entry point for dendrogram computation."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.core.brute import brute_force_sld
from repro.core.cartesian import sld_path
from repro.core.merge import sld_divide_and_conquer
from repro.core.paruf import paruf
from repro.core.paruf_sync import paruf_sync
from repro.core.rctt import rctt
from repro.core.sequf import sequf
from repro.core.tree_contraction_sld import sld_tree_contraction
from repro.core.weight_dc import sld_weight_dc
from repro.dendrogram.structure import Dendrogram
from repro.errors import AlgorithmError
from repro.trees.wtree import WeightedTree

__all__ = ["ALGORITHMS", "single_linkage_dendrogram"]


def _tc_heap(tree: WeightedTree, **kw: Any) -> np.ndarray:
    return sld_tree_contraction(tree, mode="heap", **kw)


def _tc_list(tree: WeightedTree, **kw: Any) -> np.ndarray:
    return sld_tree_contraction(tree, mode="list", **kw)


#: Algorithm registry: name -> callable(tree, **options) -> parent array.
ALGORITHMS: dict[str, Callable[..., np.ndarray]] = {
    "sequf": sequf,
    "paruf": paruf,
    "paruf-sync": paruf_sync,
    "rctt": rctt,
    "tree-contraction": _tc_heap,
    "tree-contraction-list": _tc_list,
    "divide-conquer": sld_divide_and_conquer,
    "weight-dc": sld_weight_dc,
    "cartesian": sld_path,
    "brute": brute_force_sld,
}


@cost_bound(
    work="n * h",
    depth="n * h",
    vars=("n", "h"),
    kind="dispatcher",
    theorem="sup over the selectable ALGORITHMS (the brute oracle dominates); "
    "per-algorithm bounds live on the algorithm functions",
)
def single_linkage_dendrogram(
    tree: WeightedTree,
    algorithm: str = "rctt",
    validate: bool = False,
    **options: Any,
) -> Dendrogram:
    """Compute the single-linkage dendrogram of an edge-weighted tree.

    Parameters
    ----------
    tree:
        The input :class:`~repro.trees.wtree.WeightedTree`.
    algorithm:
        One of :data:`ALGORITHMS`:

        - ``"sequf"`` -- sequential union-find baseline;
        - ``"paruf"`` -- activation-based parallel algorithm
          (options: ``heap_kind``, ``postprocess``, ``order``, ``seed``);
        - ``"paruf-sync"`` -- its round-synchronous NN-chain-style variant;
        - ``"rctt"`` -- RC-tree tracing (option: ``seed``);
        - ``"tree-contraction"`` -- optimal heap-based algorithm;
        - ``"tree-contraction-list"`` -- its sub-optimal list ablation;
        - ``"divide-conquer"`` -- centroid SLD-Merge divide and conquer;
        - ``"weight-dc"`` -- divide-and-conquer over weights (Wang et al.
          style, the prior state of the art; option: ``base_size``);
        - ``"cartesian"`` -- path inputs only (option: ``method``);
        - ``"brute"`` -- O(n^2) definitional oracle (tests/small inputs).
    validate:
        Run structural validation on the result before returning.
    options:
        Forwarded to the algorithm (e.g. ``tracker=`` for work/depth
        accounting, ``timer=`` for phase breakdowns).

    Returns
    -------
    Dendrogram
        Parent-array dendrogram over the tree's edges.
    """
    try:
        fn = ALGORITHMS[algorithm]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHMS)}"
        ) from None
    parents = fn(tree, **options)
    return Dendrogram(tree, parents, validate=validate)
