"""One-call public entry point for dendrogram computation.

Backends
--------
Four of the registered algorithms ship a flat-array *fast backend* -- a
wall-clock twin producing bit-identical output (the SLD is unique under
the deterministic (weight, edge-id) rank order):

=================== ==============================================
algorithm           array backend
=================== ==============================================
``sequf``           :func:`repro.core.fast.sequf_fast`
``tree-contraction``:func:`repro.core.fast_contraction.tree_contraction_fast`
``rctt``            :func:`repro.core.fast_contraction.rctt_fast`
``divide-conquer``  :func:`repro.core.fast_merge.sld_merge_fast`
=================== ==============================================

:func:`single_linkage_dendrogram` selects between them with ``backend=``:
``"reference"`` always runs the instrumented implementation,
``"array"`` requires a fast twin (:class:`~repro.errors.AlgorithmError`
if the algorithm has none), and ``"auto"`` (the default) picks the array
backend when one exists.  The twins themselves delegate to the reference
whenever instrumentation is active (enabled tracker or shadow-access
recorder), so ``"auto"`` never loses cost accounting.  The fast twins are
also registered first-class under ``<name>-fast`` so benchmarks, fuzzing
and the CLI can address them directly.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.core.brute import brute_force_sld
from repro.core.cartesian import sld_path
from repro.core.fast import sequf_fast
from repro.core.fast_contraction import rctt_fast, tree_contraction_fast
from repro.core.fast_merge import sld_merge_fast
from repro.core.merge import sld_divide_and_conquer
from repro.core.paruf import paruf
from repro.core.paruf_sync import paruf_sync
from repro.core.rctt import rctt
from repro.core.sequf import sequf
from repro.core.tree_contraction_sld import sld_tree_contraction
from repro.core.weight_dc import sld_weight_dc
from repro.dendrogram.structure import Dendrogram
from repro.errors import AlgorithmError
from repro.trees.wtree import WeightedTree

__all__ = [
    "ALGORITHMS",
    "FAST_ALGORITHMS",
    "BACKENDS",
    "resolve_algorithm",
    "single_linkage_dendrogram",
]


def _tc_heap(tree: WeightedTree, **kw: Any) -> np.ndarray:
    return sld_tree_contraction(tree, mode="heap", **kw)


def _tc_list(tree: WeightedTree, **kw: Any) -> np.ndarray:
    return sld_tree_contraction(tree, mode="list", **kw)


#: Algorithm registry: name -> callable(tree, **options) -> parent array.
ALGORITHMS: dict[str, Callable[..., np.ndarray]] = {
    "sequf": sequf,
    "sequf-fast": sequf_fast,
    "paruf": paruf,
    "paruf-sync": paruf_sync,
    "rctt": rctt,
    "rctt-fast": rctt_fast,
    "tree-contraction": _tc_heap,
    "tree-contraction-fast": tree_contraction_fast,
    "tree-contraction-list": _tc_list,
    "divide-conquer": sld_divide_and_conquer,
    "divide-conquer-fast": sld_merge_fast,
    "weight-dc": sld_weight_dc,
    "cartesian": sld_path,
    "brute": brute_force_sld,
}

#: Reference algorithm name -> its array-backend twin.
FAST_ALGORITHMS: dict[str, Callable[..., np.ndarray]] = {
    "sequf": sequf_fast,
    "rctt": rctt_fast,
    "tree-contraction": tree_contraction_fast,
    "divide-conquer": sld_merge_fast,
}

#: Recognized values of the ``backend=`` selector.
BACKENDS = ("auto", "reference", "array")


def resolve_algorithm(algorithm: str, backend: str = "auto") -> Callable[..., np.ndarray]:
    """The callable that ``single_linkage_dendrogram`` would dispatch to.

    ``backend="reference"`` returns the registered (instrumented)
    implementation; ``"array"`` returns the fast twin and raises
    :class:`~repro.errors.AlgorithmError` for algorithms without one;
    ``"auto"`` returns the twin when it exists, the reference otherwise.
    ``<name>-fast`` registry entries resolve like their base name with
    ``backend="array"``.
    """
    if backend not in BACKENDS:
        raise AlgorithmError(
            f"unknown backend {backend!r}; expected one of {sorted(BACKENDS)}"
        )
    try:
        fn = ALGORITHMS[algorithm]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHMS)}"
        ) from None
    if backend == "reference":
        if algorithm.endswith("-fast"):
            return ALGORITHMS[algorithm[: -len("-fast")]]
        return fn
    twin = FAST_ALGORITHMS.get(algorithm)
    if twin is not None:
        return twin
    if algorithm.endswith("-fast"):  # already an array backend
        return fn
    if backend == "array":
        raise AlgorithmError(
            f"algorithm {algorithm!r} has no array backend; available twins: "
            f"{sorted(FAST_ALGORITHMS)}"
        )
    return fn


@cost_bound(
    work="n * h",
    depth="n * h",
    vars=("n", "h"),
    kind="dispatcher",
    theorem="sup over the selectable ALGORITHMS (the brute oracle dominates); "
    "per-algorithm bounds live on the algorithm functions",
)
def single_linkage_dendrogram(
    tree: WeightedTree,
    algorithm: str = "rctt",
    validate: bool = False,
    backend: str = "auto",
    **options: Any,
) -> Dendrogram:
    """Compute the single-linkage dendrogram of an edge-weighted tree.

    Parameters
    ----------
    tree:
        The input :class:`~repro.trees.wtree.WeightedTree`.
    algorithm:
        One of :data:`ALGORITHMS`:

        - ``"sequf"`` -- sequential union-find baseline;
        - ``"paruf"`` -- activation-based parallel algorithm
          (options: ``heap_kind``, ``postprocess``, ``order``, ``seed``);
        - ``"paruf-sync"`` -- its round-synchronous NN-chain-style variant;
        - ``"rctt"`` -- RC-tree tracing (option: ``seed``);
        - ``"tree-contraction"`` -- optimal heap-based algorithm;
        - ``"tree-contraction-list"`` -- its sub-optimal list ablation;
        - ``"divide-conquer"`` -- centroid SLD-Merge divide and conquer
          (array twin: the level-synchronous segment sweep);
        - ``"weight-dc"`` -- divide-and-conquer over weights (Wang et al.
          style, the prior state of the art; option: ``base_size``);
        - ``"cartesian"`` -- path inputs only (option: ``method``);
        - ``"brute"`` -- O(n^2) definitional oracle (tests/small inputs);
        - ``"sequf-fast"``/``"rctt-fast"``/``"tree-contraction-fast"`` --
          the array backends, addressable directly.
    validate:
        Run structural validation on the result before returning.
    backend:
        ``"auto"`` (default) runs the flat-array fast backend when the
        algorithm has one and instrumentation allows it; ``"reference"``
        forces the instrumented implementation; ``"array"`` requires a
        fast twin.  All backends return bit-identical dendrograms.
    options:
        Forwarded to the algorithm (e.g. ``tracker=`` for work/depth
        accounting, ``timer=`` for phase breakdowns).

    Returns
    -------
    Dendrogram
        Parent-array dendrogram over the tree's edges.
    """
    fn = resolve_algorithm(algorithm, backend)
    parents = fn(tree, **options)
    return Dendrogram(tree, parents, validate=validate)
