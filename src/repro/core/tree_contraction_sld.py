"""SLD-TreeContraction: the optimal merge-based algorithm (Section 3.2).

Replays the tree-contraction schedule of
:func:`repro.contraction.schedule.build_rc_tree`, maintaining one spine
container per live cluster:

* ``mode="heap"`` -- parallel binomial heaps with ``filter_and_insert`` and
  ``meld`` (Algorithms 3-4); ``O(n log h)`` work, polylog depth.  Nodes
  filtered out of a heap are *protected* (Claims 3.8/3.9): their parents
  are finalized immediately by chaining the sorted filtered set under the
  merging edge.
* ``mode="list"`` -- the sub-optimal Section 3.2.1 variant: the spine is a
  plain sorted list and every merge is a full ``O(h)`` list merge/split.
  Same output, ``O(nh)`` work -- the ablation baseline quantifying what the
  filterable heaps buy.

Rakes/compresses onto the same target in one round are combined exactly as
the paper prescribes: filter-and-insert at each contracted cluster in
parallel, then a parallel reduce of melds into the target's heap
(Lemma 3.3 guarantees the union of those spines is itself a spine).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Any

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.contraction.rctree import RCTree
from repro.contraction.schedule import RakeEvent, build_rc_tree
from repro.errors import AlgorithmError
from repro.primitives.sort import comparison_sort_cost
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker, log_cost
from repro.runtime.instrumentation import PhaseTimer
from repro.structures.binomial_heap import BinomialHeap
from repro.trees.wtree import WeightedTree
from repro.util import log2ceil

__all__ = ["sld_tree_contraction", "SpineList"]


class SpineList:
    """A spine as a plain ascending-sorted list (the Section 3.2.1 variant).

    Supports the same interface the driver needs -- ``filter_and_insert``,
    ``meld``, ``items`` -- with linear-cost operations, standing in for the
    naive linked-list SLD-Merge.
    """

    __slots__ = ("_keys", "_vals")

    def __init__(self) -> None:
        self._keys: list[int] = []
        self._vals: list[int] = []

    def __len__(self) -> int:
        return len(self._keys)

    def filter_and_insert(self, key: int, item: int) -> list[tuple[int, int]]:
        """Split below ``key``; keep ``(key, item)`` plus the upper part."""
        cut = bisect_left(self._keys, key)
        removed = list(zip(self._keys[:cut], self._vals[:cut]))
        self._keys = [key] + self._keys[cut:]
        self._vals = [item] + self._vals[cut:]
        return removed

    def meld(self, other: "SpineList") -> "SpineList":
        """Destructive two-way sorted merge (the standard list merge)."""
        ka, va, kb, vb = self._keys, self._vals, other._keys, other._vals
        keys: list[int] = []
        vals: list[int] = []
        i = j = 0
        while i < len(ka) and j < len(kb):
            if ka[i] < kb[j]:
                keys.append(ka[i])
                vals.append(va[i])
                i += 1
            else:
                keys.append(kb[j])
                vals.append(vb[j])
                j += 1
        keys.extend(ka[i:])
        vals.extend(va[i:])
        keys.extend(kb[j:])
        vals.extend(vb[j:])
        self._keys, self._vals = keys, vals
        other._keys, other._vals = [], []
        return self

    def items(self) -> list[tuple[int, int]]:
        return list(zip(self._keys, self._vals))


@cost_bound(
    work="n * log(h)",
    depth="(log(n) * log(h))**2",
    vars=("n", "h"),
    theorem="Theorem 3.7 (mode='heap'): work-optimal O(n log h), polylog "
    "depth; mode='list' is the sub-optimal O(nh) Section 3.2.1 ablation",
)
def sld_tree_contraction(
    tree: WeightedTree,
    mode: str = "heap",
    seed: int | np.random.Generator | None = 0,
    tracker: CostTracker | None = None,
    timer: PhaseTimer | None = None,
    protected_log: dict | None = None,
) -> np.ndarray:
    """Parent array of the SLD, by tree contraction with spine containers.

    ``protected_log``, if given, receives ``contracted_vertex -> sorted
    edge ids filtered (protected) at that contraction`` plus the final
    spine under key ``-1`` -- the exact sets RCTT's trace buckets must
    reproduce (the Section 4.2 correspondence; see
    ``tests/test_rctt_tc_correspondence.py``).
    """
    if mode not in ("heap", "list"):
        raise AlgorithmError(f"unknown mode {mode!r}; expected 'heap' or 'list'")
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    timer = timer if timer is not None else PhaseTimer()
    tracker = active_tracker(tracker)
    ranks = tree.ranks

    with timer.phase("contract"):
        rct: RCTree = build_rc_tree(tree, seed=seed, tracker=tracker)

    make = BinomialHeap if mode == "heap" else SpineList
    spines: dict[int, object] = {}

    def spine_of(v: int) -> Any:  # BinomialHeap | SpineList (meld is homogeneous)
        s = spines.get(v)
        if s is None:
            s = make()
            spines[v] = s
        return s

    with timer.phase("merge"):
        for kind, events in rct.rounds:
            by_target: dict[int, list] = defaultdict(list)
            for ev in events:
                by_target[ev.u].append(ev)
            round_work = 0.0
            round_depth = 0.0
            for u, evs in by_target.items():
                target_work = 0.0
                target_depth = 0.0
                incoming = []
                for ev in evs:
                    e = ev.e if isinstance(ev, RakeEvent) else ev.e1
                    sp = spine_of(ev.v)
                    size_before = len(sp) + 1
                    removed = sp.filter_and_insert(int(ranks[e]), int(e))
                    if protected_log is not None and removed:
                        protected_log[ev.v] = sorted(item for _, item in removed)
                    k = len(removed)
                    if tracker is not None:
                        if mode == "heap":
                            fw = (k + 1) * log_cost(size_before)
                            fd = log_cost(size_before) ** 2
                        else:
                            fw = fd = float(size_before)
                        chain = _chain_cost(k)
                        target_work += fw + chain.work
                        target_depth = max(target_depth, fd + chain.depth)
                    _assign_chain(parents, removed, int(e))
                    incoming.append(sp)
                    del spines[ev.v]
                # Parallel reduce of melds: union of the incident spines is
                # itself a spine (Lemma 3.3), so any meld order is valid.
                combined = incoming[0]
                for sp in incoming[1:]:
                    combined = combined.meld(sp)
                meld_unit = 0.0
                if tracker is not None:
                    merged_size = max(len(combined), 2)
                    if mode == "heap":
                        meld_unit = log_cost(merged_size)
                    else:
                        meld_unit = float(merged_size)
                    # d melds as a log-depth reduction tree
                    target_work += meld_unit * len(evs)
                    target_depth += meld_unit * (log2ceil(len(evs)) + 1)
                base = spines.get(u)
                if base is None or len(base) == 0:  # type: ignore[arg-type]
                    spines[u] = combined
                else:
                    spines[u] = base.meld(combined)  # type: ignore[union-attr]
                    target_work += meld_unit
                    target_depth += meld_unit
                round_work += target_work
                round_depth = max(round_depth, target_depth)
            if tracker is not None:
                tracker.add(WorkDepth(round_work, round_depth + log2ceil(max(len(by_target), 1))))

    with timer.phase("finalize"):
        final = spines.get(rct.root)
        leftover = sorted(final.items()) if final is not None else []  # type: ignore[union-attr]
        if protected_log is not None and leftover:
            protected_log[-1] = sorted(item for _, item in leftover)
        if leftover:
            ids = [item for _, item in leftover]
            # Final spine chain: O(h) host loop charged as one parallel
            # comparison sort below (the paper's closing sort step).
            for a, b in zip(ids, ids[1:]):  # noqa: RPR102
                parents[a] = b
            parents[ids[-1]] = ids[-1]
            if tracker is not None:
                tracker.add(comparison_sort_cost(len(ids)))
    return parents


@cost_bound(
    work="k * log(k)",
    depth="log(k)**2",
    vars=("k",),
    kind="helper",
    theorem="Claims 3.8/3.9: protected nodes finalize by one parallel sort",
)
def _assign_chain(parents: np.ndarray, removed: list[tuple[int, int]], top: int) -> None:
    """Finalize parents of a protected set: sorted chain ending at ``top``."""
    if not removed:
        return
    removed = sorted(removed)
    for (_, a), (_, b) in zip(removed, removed[1:]):
        parents[a] = b
    parents[removed[-1][1]] = top


def _chain_cost(k: int) -> WorkDepth:
    """Cost of sorting and chaining ``k`` protected nodes."""
    if k <= 1:
        return WorkDepth(float(k), float(min(k, 1)))
    lg = log2ceil(k)
    return WorkDepth(float(k * lg), float(lg * lg))
