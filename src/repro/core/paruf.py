"""ParUF: the activation-based bottom-up algorithm (Section 4.1, Alg. 5).

Every edge that is a *local minimum* -- minimum rank among all edges
incident to the clusters of its endpoints -- can be merged safely
(Lemma 4.1), and the parent of a merged edge is the new minimum-rank edge
incident to the merged cluster (Lemma 4.2).  Each cluster keeps its
incident edges in a meldable *neighbor-heap*; an edge's ``status`` counts
at how many of its two endpoint heaps it currently sits on top (2 = ready,
the paper's CAS-guarded activation condition).

Concurrency simulation.  The paper's implementation is asynchronous: each
thread that merges an edge follows the activation chain upward while other
ready edges are claimed by other threads.  Here the scheduler is an
explicit worklist of ready edges, processed **one activation step at a
time** -- a thread's chain continuation is pushed back instead of being
followed to completion.  Any pop order is a legal linearization of the
asynchronous execution (the tests shuffle it); the default FIFO order is
the fair schedule, so the worklist length faithfully tracks the instantaneous
ready count.  That matters for two reproduced behaviours:

* the **post-processing optimization**: when the ready count drops to 1 it
  can never grow again (a merge retires one ready edge and activates at
  most one -- the merged heap's single new top), so the remaining edges
  merge in globally sorted rank order and can be finished with one sort;
* the **low-par pathology** (Table 1): on the adversarial path the ready
  count sits at 2 for almost the whole run, the optimization never fires,
  and the activation chains are Theta(n) deep.

Work/depth accounting follows Theorem 4.3: each processed edge charges its
true union-find and heap-operation costs; depth is the greedy schedule's
sum over activation rounds of the round's maximum per-edge cost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.errors import AlgorithmError
from repro.primitives.sort import comparison_sort_cost
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker, log_cost
from repro.runtime.instrumentation import PhaseTimer
from repro.structures import make_heap
from repro.structures.unionfind import UnionFind
from repro.trees.wtree import WeightedTree
from repro.util import check_random_state, log2ceil

__all__ = ["paruf", "ParUFStats"]

_ORDERS = ("fifo", "lifo", "random")


@dataclass
class ParUFStats:
    """Execution statistics of one ParUF run (feeds Fig. 7 and ablations)."""

    processed_async: int = 0
    postprocessed: int = 0
    max_round: int = 0
    initial_ready: int = 0
    heap_kind: str = "pairing"
    used_postprocess: bool = False
    round_max_cost: dict[int, float] = field(default_factory=dict)


@cost_bound(
    work="n * log(n)",
    depth="n * log(n)",
    vars=("n",),
    theorem="Theorem 4.3: O(n log n) work; depth is schedule-dependent "
    "(Theta(n) activation chains on the adversarial path, Section 4.1)",
)
def paruf(
    tree: WeightedTree,
    heap_kind: str = "pairing",
    postprocess: bool = True,
    order: str = "fifo",
    seed: int | np.random.Generator | None = None,
    tracker: CostTracker | None = None,
    timer: PhaseTimer | None = None,
    stats: ParUFStats | None = None,
) -> np.ndarray:
    """Parent array of the SLD, by the activation-based ParUF algorithm.

    Parameters
    ----------
    heap_kind:
        Neighbor-heap implementation (``pairing``/``binomial``/``skew``) --
        the ablation axis of ``benchmarks/test_ablation.py``.
    postprocess:
        Enable the ready-count-1 sort optimization (paper Section 4.1).
    order:
        Worklist schedule: ``fifo`` (fair, default), ``lifo`` (depth-first
        chains), or ``random`` (adversarial linearization for tests).
    """
    if order not in _ORDERS:
        raise AlgorithmError(f"unknown worklist order {order!r}; expected one of {_ORDERS}")
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    timer = timer if timer is not None else PhaseTimer()
    stats = stats if stats is not None else ParUFStats()
    stats.heap_kind = heap_kind
    tracker = active_tracker(tracker)
    rng = check_random_state(seed)
    ranks = tree.ranks

    # ---- Preprocess: neighbor heaps + initial local minima -----------------
    with timer.phase("preprocess"):
        offsets, _, nbr_edge = tree.adjacency()
        heaps = []
        for v in range(tree.n):
            heap = make_heap(heap_kind)
            for s in range(int(offsets[v]), int(offsets[v + 1])):
                e = int(nbr_edge[s])
                heap.insert(int(ranks[e]), e)
            heaps.append(heap)
        status = np.zeros(m, dtype=np.int64)
        for v in range(tree.n):
            if not heaps[v].is_empty:
                _, e = heaps[v].find_min()
                status[e] += 1
        ready = [int(e) for e in np.flatnonzero(status == 2)]
        stats.initial_ready = len(ready)
        if tracker is not None:
            # Rank computation (parallel sort) + neighbor-heap init.  Heaps
            # are meldable, so a vertex's heap builds by a pairwise-meld
            # reduction: O(deg) work and O(log^2 deg) depth per vertex (the
            # paper's O(Delta log Delta) sequential-init depth bound is
            # pessimistic; its own Table 1 star-perm speedups require the
            # parallel build, which is what we charge).
            tracker.add(comparison_sort_cost(m))
            max_deg = int(np.diff(offsets).max()) if tree.n else 1
            tracker.add(WorkDepth(float(2 * m), log_cost(max_deg) ** 2))

    # ---- Async: interleaved activation chains ------------------------------
    round_hint = np.zeros(m, dtype=np.int64)
    for e in ready:
        round_hint[e] = 1
    worklist: deque[int] = deque(ready)
    uf = UnionFind(tree.n)
    edges = tree.edges
    round_max_cost = stats.round_max_cost
    remaining_after_async: list[int] | None = None

    with timer.phase("async"):
        while worklist:
            if order == "fifo":
                cur = worklist.popleft()
            elif order == "lifo":
                cur = worklist.pop()
            else:
                idx = int(rng.integers(len(worklist)))
                worklist.rotate(-idx)
                cur = worklist.popleft()
            # CAS(status, 2, -1): in this linearization the pop owner always
            # wins; stale entries cannot exist (each edge reaches status 2
            # exactly once).
            assert status[cur] == 2, "worklist invariant violated"
            status[cur] = -1
            if postprocess and not worklist:
                # Ready count is exactly 1; it can never grow again, so the
                # remaining merges happen in sorted rank order.
                remaining_after_async = [cur] + [
                    int(e) for e in np.flatnonzero(status != -1)
                ]
                stats.used_postprocess = True
                break
            u, v = int(edges[cur, 0]), int(edges[cur, 1])
            ru, rv = uf.find(u), uf.find(v)
            find_steps_before = uf.find_steps
            cost = 0.0
            cost += log_cost(len(heaps[ru]))
            heaps[ru].delete_min()
            cost += log_cost(len(heaps[rv]))
            heaps[rv].delete_min()
            w = uf.union(ru, rv)
            other = rv if w == ru else ru
            heaps[w].meld(heaps[other])
            cost += log_cost(max(len(heaps[w]), 2))
            cost += float(uf.find_steps - find_steps_before) + 1.0
            my_round = int(round_hint[cur])
            stats.processed_async += 1
            if my_round > stats.max_round:
                stats.max_round = my_round
            if tracker is not None:
                prev = round_max_cost.get(my_round, 0.0)
                if cost > prev:
                    round_max_cost[my_round] = cost
                tracker.add(WorkDepth(cost, 0.0))  # depth added per-round below
            if heaps[w].is_empty:
                # cur was the last edge: it is the dendrogram root.
                continue
            _, new_cur = heaps[w].find_min()
            new_cur = int(new_cur)
            parents[cur] = new_cur
            status[new_cur] += 1
            nr = my_round + 1
            if nr > round_hint[new_cur]:
                round_hint[new_cur] = nr
            if status[new_cur] == 2:
                worklist.append(new_cur)
        if tracker is not None and round_max_cost:
            # Greedy-schedule depth: one synchronous level per activation
            # round, plus binary-forking spawn overhead over the initial
            # parallel-for (Alg. 5 line 5).
            depth = sum(round_max_cost.values()) + log2ceil(max(m, 1))
            tracker.add(WorkDepth(0.0, depth))

    # ---- Postprocess: sort the single remaining chain ----------------------
    with timer.phase("postprocess"):
        if remaining_after_async is not None:
            rem = np.asarray(remaining_after_async, dtype=np.int64)
            rem = rem[np.argsort(ranks[rem], kind="stable")]
            stats.postprocessed = int(rem.size)
            if rem.size:
                parents[rem[:-1]] = rem[1:]
                parents[rem[-1]] = rem[-1]
            if tracker is not None:
                tracker.add(comparison_sort_cost(int(rem.size)))
    return parents
