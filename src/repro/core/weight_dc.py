"""Divide-and-conquer over edge weights (the Wang et al. [41] structure).

The prior state of the art the paper improves on computes the SLD by
divide-and-conquer over the *weights*: split the edges at the median rank;
the low half forms a subforest whose components merge entirely before any
high edge; solve each low component recursively, contract each component
to a supervertex, and solve the high half on the contracted tree.  Two
gluing facts make this correct:

* within a low component, the SLD is independent of the rest of the tree
  (all external incident edges have higher rank -- Lemma 3.2);
* the parent of a low component's dendrogram *root* is the node of the
  minimum-rank edge incident to the contracted supervertex (Lemma 4.2:
  the first merge involving the fully-merged component cluster).

Wang et al. implement the contraction step with the Euler-tour technique
and semisorting (randomized; per the paper, not consistently faster than
SeqUF in practice, which is the paper's motivation).  This reproduction
uses union-find-based contraction, giving ``O(n log n)`` work over an
``O(log n)``-level recursion -- work-efficient w.r.t. SeqUF but *not*
output-sensitive, exactly the role this algorithm plays in the paper's
comparison landscape.
"""

from __future__ import annotations

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker, combine_parallel
from repro.runtime.instrumentation import PhaseTimer
from repro.structures.unionfind import UnionFind
from repro.trees.wtree import WeightedTree
from repro.util import log2ceil

__all__ = ["sld_weight_dc"]


@cost_bound(
    work="n * log(n)",
    depth="log(n)**2",
    vars=("n",),
    theorem="Wang et al. [41] structure: O(log n) weight-median levels, "
    "work-efficient w.r.t. SeqUF but not output-sensitive",
)
def sld_weight_dc(
    tree: WeightedTree,
    tracker: CostTracker | None = None,
    timer: "PhaseTimer | None" = None,
    base_size: int = 8,
) -> np.ndarray:
    """Parent array of the SLD, by divide-and-conquer over weights.

    ``base_size`` bounds the recursion base case, which is solved by the
    direct sequential merge (SeqUF without the sort -- edges arrive
    pre-ranked).
    """
    if base_size < 1:
        raise ValueError(f"base_size must be >= 1, got {base_size}")
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    timer = timer if timer is not None else PhaseTimer()
    tracker = active_tracker(tracker)
    with timer.phase("solve"):
        order = np.argsort(tree.ranks)
        # Scratch endpoint table: recursion levels temporarily overwrite the
        # high half's endpoints with contracted supervertex labels and
        # restore them on the way out.
        scratch = tree.edges.copy()
        cost = _solve(scratch, [int(e) for e in order], parents, tree.n, base_size)
        if tracker is not None:
            tracker.add(cost)
    return parents


@cost_bound(
    work="n * log(n)",
    depth="log(n)**2",
    vars=("n",),
    kind="helper",
    theorem="Wang et al. [41]: halve at the median rank, contract, recurse",
)
def _solve(
    edges: np.ndarray,
    sorted_eids: list[int],
    parents: np.ndarray,
    n_labels: int,
    base_size: int,
) -> WorkDepth:
    """Solve the SLD of the (contracted) tree spanned by ``sorted_eids``.

    ``edges[e]`` holds the current supervertex labels of edge ``e``;
    ``sorted_eids`` is rank-ascending.  Sets ``parents`` for every listed
    edge except the subproblem root (left self-pointing for the caller).
    """
    k = len(sorted_eids)
    if k <= base_size:
        return _solve_base(edges, sorted_eids, parents, n_labels)

    half = k // 2
    low = sorted_eids[:half]
    high = sorted_eids[half:]

    # Components of the low subforest, via union-find over supervertices.
    uf = UnionFind(n_labels)
    for e in low:
        uf.union(int(edges[e, 0]), int(edges[e, 1]))
    comp_edges: dict[int, list[int]] = {}
    for e in low:
        comp_edges.setdefault(uf.find(int(edges[e, 0])), []).append(e)

    # Solve each low component recursively (independent, hence parallel).
    comp_costs: list[WorkDepth] = []
    # supervertex -> that component's dendrogram root (its max-rank edge)
    pending: dict[int, int] = {}
    for r, eids in comp_edges.items():
        comp_costs.append(_solve(edges, eids, parents, n_labels, base_size))
        pending[r] = eids[-1]

    # Contract: relabel the high edges' endpoints by component supervertex,
    # then solve the high half on the contracted tree.
    saved = edges[high].copy()
    for e in high:
        edges[e, 0] = uf.find(int(edges[e, 0]))
        edges[e, 1] = uf.find(int(edges[e, 1]))
    high_cost = _solve(edges, high, parents, n_labels, base_size)

    # Glue (Lemma 4.2): each component root's parent is the first (min
    # rank) high edge incident to its supervertex.
    glue_work = 0.0
    for e in high:
        if not pending:
            break
        glue_work += 1.0
        for s in (int(edges[e, 0]), int(edges[e, 1])):
            root = pending.pop(s, None)
            if root is not None:
                parents[root] = e
    edges[high] = saved

    split_cost = WorkDepth(float(k), float(2 * log2ceil(max(k, 2))))
    glue_cost = WorkDepth(glue_work, float(log2ceil(max(len(high), 2))))
    children = combine_parallel(comp_costs + [high_cost])
    return split_cost + children + glue_cost


def _solve_base(
    edges: np.ndarray,
    sorted_eids: list[int],
    parents: np.ndarray,
    n_labels: int,
) -> WorkDepth:
    """Direct sequential merge of a small pre-sorted edge list."""
    uf = UnionFind(n_labels)
    top: dict[int, int] = {}
    for e in sorted_eids:
        u, v = int(edges[e, 0]), int(edges[e, 1])
        ru, rv = uf.find(u), uf.find(v)
        tu, tv = top.pop(ru, None), top.pop(rv, None)
        if tu is not None:
            parents[tu] = e
        if tv is not None:
            parents[tv] = e
        w = uf.union(ru, rv)
        top[w] = e
    return WorkDepth.seq(float(2 * len(sorted_eids)))
