"""RCTT: the RC-tree tracing algorithm (Section 4.2, Algorithm 6).

Three phases, timed separately to reproduce the Figure 7 breakdown:

* **Build** -- run parallel tree contraction (compress along lesser-rank
  edges) and keep only the RC-tree, no heaps, no merges.
* **Trace** -- for every edge ``e``, climb from the rcnode it is associated
  with toward the root until the first ancestor whose associated edge has
  rank greater than ``rank(e)`` (or the root); drop ``e`` in that rcnode's
  bucket.  The bucket of rcnode ``u`` is exactly the set ``S`` the heap
  filter of SLD-TreeContraction would extract at ``u``'s contraction
  (verified directly in ``tests/test_rctt_tc_correspondence.py``).
* **Sort** -- sort each bucket by rank and chain parents; the bucket's last
  node adopts ``u``'s associated edge as parent (the root bucket's last
  node is the dendrogram root).

Implementation note: the trace climbs all edges *simultaneously* --
``u[active] = rc_parent[u[active]]`` per step -- so the Python-level loop
runs only ``O(rc-tree height)`` times over vectorized kernels, and the
bucket sort/chain is a single lexsort plus boundary scatter.  Costs are
charged per the paper: Build is linear work with ``O(log n)``-depth
rounds, Trace charges the true climb lengths (worst case ``O(n log n)``
work, ``O(log^2 n)`` depth), Sort charges per-bucket comparison sorts.
"""

from __future__ import annotations

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.contraction.schedule import build_rc_tree
from repro.primitives.sort import comparison_sort_cost
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker, combine_parallel
from repro.runtime.instrumentation import PhaseTimer
from repro.trees.wtree import WeightedTree
from repro.util import log2ceil

__all__ = ["rctt"]


@cost_bound(
    work="n * log(n)",
    depth="log(n)**2",
    vars=("n",),
    theorem="Section 4.2, Algorithm 6: contraction build + O(n log n) "
    "worst-case trace + per-bucket sorts, all at polylog depth",
)
def rctt(
    tree: WeightedTree,
    seed: int | np.random.Generator | None = 0,
    tracker: CostTracker | None = None,
    timer: PhaseTimer | None = None,
    builder: str = "fast",
    race_check: bool = False,
) -> np.ndarray:
    """Parent array of the SLD, by RC-tree tracing.

    ``builder`` selects the contraction implementation: ``"fast"``
    (vectorized accumulator-based rounds, the default) or ``"reference"``
    (the adjacency-list scheduler whose cost profile mirrors the paper's
    implementation -- used by the Figure 7 breakdown experiment).  Both
    produce the identical schedule for the same seed.

    ``race_check=True`` runs the contraction commit rounds under the
    shadow round-race detector; only the ``"reference"`` builder carries
    per-event commits, so the flag forces that builder.
    """
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    timer = timer if timer is not None else PhaseTimer()
    tracker = active_tracker(tracker)
    ranks = tree.ranks

    with timer.phase("build"):
        if race_check:
            # The vectorized builder has no per-event commit loop to
            # instrument; the reference builder yields the same schedule.
            builder = "reference"
        if builder == "fast":
            from repro.contraction.fast import build_rc_tree_fast

            rct = build_rc_tree_fast(
                tree, seed=seed, tracker=tracker, record_events=False
            )
        elif builder == "reference":
            rct = build_rc_tree(tree, seed=seed, tracker=tracker, race_check=race_check)
        else:
            raise ValueError(
                f"unknown builder {builder!r}; expected 'fast' or 'reference'"
            )

    with timer.phase("trace"):
        rc_parent = rct.parent
        rc_edge = rct.edge
        root = rct.root
        edge_ranks = ranks  # rank of each edge, by edge id
        # rank of the edge associated with each rcnode (root: +inf sentinel)
        node_rank = np.full(rct.n, np.iinfo(np.int64).max, dtype=np.int64)
        non_root = rc_edge >= 0
        node_rank[non_root] = edge_ranks[rc_edge[non_root]]

        # All edges climb simultaneously; each step is one vectorized hop.
        u = rc_parent[rct.vertex_of_edge()]
        active = (u != root) & (node_rank[u] < edge_ranks)
        total_steps = m
        max_steps = 1
        # O(rc-tree height) = O(log n) whp vectorized hops; the true climb
        # lengths are charged to the tracker below.
        while active.any():  # noqa: RPR102
            u[active] = rc_parent[u[active]]
            total_steps += int(active.sum())
            max_steps += 1
            active = active & (u != root) & (node_rank[u] < edge_ranks)
        if tracker is not None:
            tracker.add(WorkDepth(float(total_steps), float(max_steps) + log2ceil(m)))

    with timer.phase("sort"):
        # One lexsort = all per-bucket rank sorts at once: bucket (final
        # rcnode) major, rank minor.
        order = np.lexsort((edge_ranks, u))
        bucket_of = u[order]
        same_bucket = bucket_of[1:] == bucket_of[:-1]
        # chain within runs
        parents[order[:-1][same_bucket]] = order[1:][same_bucket]
        # run tails attach to the bucket rcnode's own edge (root: self)
        tail_pos = np.flatnonzero(~np.r_[same_bucket, False])
        tails = order[tail_pos]
        tail_buckets = bucket_of[tail_pos]
        at_root = tail_buckets == root
        parents[tails[at_root]] = tails[at_root]
        parents[tails[~at_root]] = rc_edge[tail_buckets[~at_root]]
        if tracker is not None:
            _, bucket_sizes = np.unique(u, return_counts=True)
            sort_costs = [comparison_sort_cost(int(s)) for s in bucket_sizes]
            tracker.add(combine_parallel(sort_costs))
    return parents
