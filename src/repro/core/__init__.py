"""Dendrogram algorithms: the paper's contribution.

* :mod:`repro.core.sequf` -- the sequential Kruskal/union-find baseline.
* :mod:`repro.core.paruf` -- the activation-based asynchronous algorithm
  (Section 4.1, Algorithm 5).
* :mod:`repro.core.rctt` -- RC-tree tracing (Section 4.2, Algorithm 6).
* :mod:`repro.core.tree_contraction_sld` -- the heap-based optimal
  algorithm (Section 3.2, Algorithms 3-4) plus its sub-optimal linked-list
  ablation (Section 3.2.1).
* :mod:`repro.core.merge` -- the SLD-Merge primitive and the generic
  divide-and-conquer framework (Section 3.1).
* :mod:`repro.core.cartesian` -- the path-graph special case (Cartesian
  trees, Shun-Blelloch).
* :mod:`repro.core.brute` -- a definition-level oracle for testing.

The one-call entry point is
:func:`repro.core.api.single_linkage_dendrogram`.
"""

from repro.core.api import ALGORITHMS, single_linkage_dendrogram
from repro.core.brute import brute_force_sld
from repro.core.cartesian import cartesian_tree_parents, sld_path
from repro.core.dynamic import DynamicSLD
from repro.core.merge import merge_spines, sld_divide_and_conquer
from repro.core.paruf import paruf
from repro.core.paruf_sync import paruf_sync
from repro.core.paruf_threaded import paruf_threaded
from repro.core.rctt import rctt
from repro.core.sequf import sequf
from repro.core.tree_contraction_sld import sld_tree_contraction
from repro.core.weight_dc import sld_weight_dc

__all__ = [
    "single_linkage_dendrogram",
    "ALGORITHMS",
    "sequf",
    "paruf",
    "paruf_sync",
    "paruf_threaded",
    "rctt",
    "sld_tree_contraction",
    "sld_weight_dc",
    "sld_divide_and_conquer",
    "merge_spines",
    "cartesian_tree_parents",
    "sld_path",
    "brute_force_sld",
    "DynamicSLD",
]
