"""Round-synchronous ParUF (the nearest-neighbor-chain style contrast).

Section 4.1 notes the "striking difference" of the paper's ParUF from
other nearest-neighbor-chain implementations: ParUF is *asynchronous*
while the others "run in synchronized rounds".  This module implements
that synchronized-rounds variant as a comparison point: each round merges
every currently-ready (local-minimum) edge, then a barrier computes the
next ready set.

Correctness follows from the same Lemma 4.1 argument -- distinct ready
edges always belong to disjoint cluster pairs (a cluster's heap has one
top), so a round's merges commute.  The difference is purely scheduling:
a synchronous round pays a barrier (charged ``O(log n)`` depth) even when
only one edge is ready, which is exactly the overhead the asynchronous
design avoids.

Each round's merges are executed as independent tasks on a
:class:`~repro.runtime.scheduler.Scheduler`: the per-edge task claims its
edge, performs the two ``delete_min``s, the union and the meld, and
returns the activation it discovered; the sequential *commit phase*
between rounds then applies the activations (``status`` increments and
``parents`` writes) and builds the next frontier.  With
``race_check=True`` the scheduler intersects the tasks' shadow access
sets after every round, machine-checking the Lemma 4.1 disjointness claim
-- and with ``shuffle=True`` the round's execution order is permuted,
which by that same claim cannot change the result.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound
from repro.checkers.ownership import owns
from repro.core.paruf import ParUFStats
from repro.primitives.sort import comparison_sort_cost
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker, log_cost
from repro.runtime.instrumentation import PhaseTimer
from repro.runtime.scheduler import Scheduler
from repro.structures import make_heap
from repro.structures.unionfind import UnionFind
from repro.trees.wtree import WeightedTree
from repro.util import log2ceil

__all__ = ["paruf_sync"]


@cost_bound(
    work="n * log(n)",
    depth="n * log(n)",
    vars=("n",),
    theorem="Section 4.1 synchronized-rounds contrast: ParUF work plus an "
    "O(log n) barrier per round (Theta(n) rounds on the adversarial path)",
)
def paruf_sync(
    tree: WeightedTree,
    heap_kind: str = "pairing",
    postprocess: bool = True,
    tracker: CostTracker | None = None,
    timer: PhaseTimer | None = None,
    stats: ParUFStats | None = None,
    race_check: bool = False,
    shuffle: bool = False,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Parent array of the SLD, by round-synchronous local-minima merging.

    Parameters
    ----------
    race_check:
        Run every round under the shadow round-race detector; conflicting
        task accesses raise :class:`~repro.errors.RaceConditionError`.
    shuffle / seed:
        Permute each round's task execution order (seeded).  Legal by
        Lemma 4.1; combined with ``race_check`` this machine-checks the
        order-insensitivity claim.
    """
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    timer = timer if timer is not None else PhaseTimer()
    stats = stats if stats is not None else ParUFStats()
    stats.heap_kind = heap_kind
    tracker = active_tracker(tracker)
    ranks = tree.ranks

    with timer.phase("preprocess"):
        offsets, _, nbr_edge = tree.adjacency()
        heaps = []
        for v in range(tree.n):
            heap = make_heap(heap_kind)
            for s in range(int(offsets[v]), int(offsets[v + 1])):
                e = int(nbr_edge[s])
                heap.insert(int(ranks[e]), e)
            heaps.append(heap)
        status = np.zeros(m, dtype=np.int64)
        for v in range(tree.n):
            if not heaps[v].is_empty:
                _, e = heaps[v].find_min()
                status[e] += 1
        frontier = [int(e) for e in np.flatnonzero(status == 2)]
        stats.initial_ready = len(frontier)
        if tracker is not None:
            tracker.add(comparison_sort_cost(m))
            max_deg = int(np.diff(offsets).max()) if tree.n else 1
            tracker.add(WorkDepth(float(2 * m), log_cost(max_deg) ** 2))

    uf = UnionFind(tree.n)
    edges = tree.edges
    remaining: list[int] | None = None
    rounds = 0
    # The scheduler carries the round-race recorder and the (seeded)
    # shuffle; cost charging stays with the explicit per-round formula
    # below, which matches the paper's barrier accounting.
    sched = Scheduler(shuffle=shuffle, seed=seed, race_check=race_check)

    def make_task(
        cur: int,
    ) -> Callable[[], tuple[tuple[int, int, float], WorkDepth]]:
        # The claiming task owns exactly its edge's status cell; distinct
        # ready edges have distinct cells (Lemma 4.1), so the declared
        # windows of one round are pairwise disjoint.
        @owns("status[cur:cur+1]")
        def task() -> tuple[tuple[int, int, float], WorkDepth]:
            # CAS(status[cur], 2, -1): the claiming task owns the edge.
            _access.record_write("status", cur)
            status[cur] = -1
            u, v = int(edges[cur, 0]), int(edges[cur, 1])
            ru, rv = uf.find(u), uf.find(v)
            cost = log_cost(len(heaps[ru])) + log_cost(len(heaps[rv]))
            heaps[ru].delete_min()
            heaps[rv].delete_min()
            w = uf.union(ru, rv)
            other = rv if w == ru else ru
            heaps[w].meld(heaps[other])
            cost += log_cost(max(len(heaps[w]), 2)) + 1.0
            if heaps[w].is_empty:
                # cur was the last edge: it is the dendrogram root.
                return (cur, -1, cost), WorkDepth(cost, cost)
            _, new_cur = heaps[w].find_min()
            return (cur, int(new_cur), cost), WorkDepth(cost, cost)

        return task

    with timer.phase("rounds"):
        while frontier:
            rounds += 1
            if postprocess and len(frontier) == 1:
                status[frontier[0]] = -1
                remaining = [frontier[0]] + [
                    int(e) for e in np.flatnonzero(status != -1)
                ]
                stats.used_postprocess = True
                break
            results = sched.run_round(
                [make_task(cur) for cur in frontier], where=f"merge round {rounds}"
            )
            # Commit phase (sequential barrier): apply the activations the
            # round's merges discovered and build the next frontier.
            next_frontier: list[int] = []
            round_work = 0.0
            round_max = 0.0
            for cur, new_cur, cost in results:
                stats.processed_async += 1
                round_work += cost
                if cost > round_max:
                    round_max = cost
                if new_cur < 0:
                    continue
                parents[cur] = new_cur
                status[new_cur] += 1
                if status[new_cur] == 2:
                    next_frontier.append(new_cur)
            if tracker is not None:
                # Synchronous barrier: every round pays spawn + sync depth
                # even when nearly empty -- the overhead Alg. 5 avoids.
                tracker.add(WorkDepth(round_work, round_max + log2ceil(max(m, 2))))
            frontier = next_frontier
        stats.max_round = rounds

    with timer.phase("postprocess"):
        if remaining is not None:
            rem = np.asarray(remaining, dtype=np.int64)
            rem = rem[np.argsort(ranks[rem], kind="stable")]
            stats.postprocessed = int(rem.size)
            if rem.size:
                parents[rem[:-1]] = rem[1:]
                parents[rem[-1]] = rem[-1]
            if tracker is not None:
                tracker.add(comparison_sort_cost(int(rem.size)))
    return parents
