"""Cartesian trees: the path-graph special case of SLD computation.

Single-linkage clustering on a path equals building the (max-at-root)
Cartesian tree of the edge-rank sequence: the parent of element ``i`` is
the smaller of its nearest greater value to the left and to the right
(everything strictly between must be smaller, i.e. already merged).  The
paper's SLD-Merge framework is "inspired by divide-and-conquer algorithms
for Cartesian trees" (Shun & Blelloch); both constructions are provided:

* ``method="stack"`` -- the classic sequential ``O(n)`` all-nearest-greater
  scan;
* ``method="dc"`` -- the divide-and-conquer construction: split the
  sequence in half, recurse, merge the two characteristic spines (the
  boundary edges' spines) with :func:`repro.core.merge.merge_spines`.
"""

from __future__ import annotations

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.core.merge import extract_spine, merge_spines
from repro.errors import AlgorithmError, InvalidTreeError
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker, combine_parallel
from repro.trees.wtree import WeightedTree

__all__ = ["cartesian_tree_parents", "sld_path"]


@cost_bound(
    work="n",
    depth="n",
    vars=("n",),
    kind="helper",
    theorem="Shun-Blelloch: linear-work Cartesian tree construction",
)
def cartesian_tree_parents(values: np.ndarray, method: str = "stack") -> np.ndarray:
    """Parent index of each element in the max-at-root Cartesian tree.

    ``values`` must be pairwise distinct (ranks are).  The global maximum
    is the root and points to itself.
    """
    values = np.asarray(values)
    if method == "stack":
        return _cartesian_stack(values)
    if method == "dc":
        parents = np.arange(values.shape[0], dtype=np.int64)
        if values.shape[0]:
            _cartesian_dc(values, parents, 0, values.shape[0])
        return parents
    raise AlgorithmError(f"unknown Cartesian-tree method {method!r}")


def _cartesian_stack(values: np.ndarray) -> np.ndarray:
    """Nearest-greater-left/right scan with one monotone stack each way."""
    k = values.shape[0]
    parents = np.arange(k, dtype=np.int64)
    if k == 0:
        return parents
    ngl = np.full(k, -1, dtype=np.int64)
    ngr = np.full(k, -1, dtype=np.int64)
    stack: list[int] = []
    for i in range(k):
        while stack and values[stack[-1]] < values[i]:
            stack.pop()
        if stack:
            ngl[i] = stack[-1]
        stack.append(i)
    stack.clear()
    for i in range(k - 1, -1, -1):
        while stack and values[stack[-1]] < values[i]:
            stack.pop()
        if stack:
            ngr[i] = stack[-1]
        stack.append(i)
    for i in range(k):
        left, right = int(ngl[i]), int(ngr[i])
        if left == -1 and right == -1:
            parents[i] = i  # global maximum: the root
        elif left == -1:
            parents[i] = right
        elif right == -1:
            parents[i] = left
        else:
            parents[i] = left if values[left] < values[right] else right
    return parents


def _cartesian_dc(values: np.ndarray, parents: np.ndarray, lo: int, hi: int) -> None:
    """Shun-Blelloch style divide-and-conquer over ``values[lo:hi]``."""
    if hi - lo <= 1:
        return
    mid = (lo + hi) // 2
    _cartesian_dc(values, parents, lo, mid)
    _cartesian_dc(values, parents, mid, hi)
    # The halves are path subtrees sharing the boundary vertex between
    # elements mid-1 and mid; those two edges are the characteristic edges.
    spine_a = extract_spine(parents, mid - 1)
    spine_b = extract_spine(parents, mid)
    merge_spines(parents, spine_a, spine_b, values)


@cost_bound(
    work="n",
    depth="n",
    vars=("n",),
    theorem="Path special case (Shun-Blelloch): linear-work Cartesian tree "
    "(method='stack'; method='dc' is the O(n log n) divide-and-conquer)",
)
def sld_path(
    tree: WeightedTree,
    method: str = "stack",
    tracker: CostTracker | None = None,
    timer: "PhaseTimer | None" = None,
) -> np.ndarray:
    """Parent array of the SLD of a *path* tree via Cartesian trees.

    Raises :class:`~repro.errors.InvalidTreeError` if the tree is not a
    path.  Edge order along the path is recovered by walking from one
    endpoint, so any vertex labeling is accepted.
    """
    m = tree.m
    if m == 0:
        return np.arange(0, dtype=np.int64)
    tracker = active_tracker(tracker)
    degrees = tree.degrees()
    if degrees.max() > 2:
        bad = int(np.argmax(degrees > 2))
        raise InvalidTreeError(f"not a path: vertex {bad} has degree {degrees[bad]}")
    # Walk from one endpoint to order edges along the path.
    start = int(np.flatnonzero(degrees == 1)[0])
    offsets, nbr_vertex, nbr_edge = tree.adjacency()
    order = np.empty(m, dtype=np.int64)
    prev, cur = -1, start
    for i in range(m):
        lo, hi = int(offsets[cur]), int(offsets[cur + 1])
        for s in range(lo, hi):
            if int(nbr_vertex[s]) != prev:
                order[i] = int(nbr_edge[s])
                prev, cur = cur, int(nbr_vertex[s])
                break
    values = tree.ranks[order]
    pos_parents = cartesian_tree_parents(values, method=method)
    parents = np.arange(m, dtype=np.int64)
    parents[order] = order[pos_parents]
    if tracker is not None:
        tracker.add(_path_cost(m, method))
    return parents


@cost_bound(work="m * log(m)", depth="m", vars=("m",), kind="helper",
            theorem="cost-charging table for the path case (no real loop over input)")
def _path_cost(m: int, method: str) -> WorkDepth:
    if method == "stack":
        return WorkDepth.seq(float(3 * m))
    # D&C: O(m log m) work in the worst case, O(h log m) depth bounded by
    # the balanced recursion; charge the standard shape.
    levels = max(1, int(np.ceil(np.log2(max(m, 2)))))
    per_level = [WorkDepth(float(m), float(levels)) for _ in range(levels)]
    total = WorkDepth.zero()
    for c in per_level:
        total = total + combine_parallel([c])
    return total
