"""Dynamic single-linkage dendrograms: edge-weight updates.

The paper closes with the open question of maintaining the SLD under
updates.  This module contributes the natural first step, built on the
weight-divide-and-conquer gluing facts (see :mod:`repro.core.weight_dc`):

When edge ``e``'s weight changes, let ``lo`` be the smaller of its old and
new ranks.  The set of edges with rank below ``lo`` is unchanged *and* so
are their relative ranks, so (Lemma 3.2) the entire internal structure of
every low-forest component survives; only

* the dendrogram of the **contracted high tree** (edges with rank >= lo,
  endpoints contracted by low components), and
* the **glue parents** of the low components' roots (Lemma 4.2),

need recomputation.  The work is therefore ``O((m - lo) polylog)`` --
proportional to how high in the hierarchy the change lands, e.g. O(1)-ish
when re-weighting an already-heaviest edge, full recompute when touching
the global minimum.

This is exact (tested against full recomputation over random update
sequences), but not a full answer to the open problem: an adversary that
keeps updating low-rank edges forces repeated near-full re-solves, and
each update still pays Theta(m) *bookkeeping* (re-ranking and the
low-forest union sweep) -- it is the expensive merge/solve step that
becomes output-local.  Removing the linear bookkeeping needs an
order-maintenance structure over ranks, which we leave as the open
problem the paper states.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.core.weight_dc import _solve_base
from repro.dendrogram.structure import Dendrogram
from repro.errors import InvalidWeightsError
from repro.trees.weights import ranks_of
from repro.trees.wtree import WeightedTree

__all__ = ["DynamicSLD"]


class DynamicSLD:
    """Maintains the SLD of a fixed tree topology under weight updates.

    Attributes
    ----------
    parents:
        The current dendrogram parent array (kept exact at all times).
    last_update_size:
        Number of edges whose subproblem was recomputed by the most recent
        :meth:`update_weight` (``m`` for the initial build).
    """

    def __init__(self, tree: WeightedTree) -> None:
        self.n = tree.n
        self.edges = tree.edges.copy()
        self.weights = tree.weights.copy()
        self.m = self.edges.shape[0]
        self.parents = np.arange(self.m, dtype=np.int64)
        self._ranks = ranks_of(self.weights)
        self.last_update_size = self.m
        self.total_recomputed = 0
        if self.m:
            self._recompute_suffix(0)

    # -- public API ---------------------------------------------------------
    @property
    def ranks(self) -> np.ndarray:
        return self._ranks

    def tree(self) -> WeightedTree:
        """Current weighted tree (fresh object; safe to hand out)."""
        return WeightedTree(self.n, self.edges.copy(), self.weights.copy(), validate=False)

    def dendrogram(self) -> Dendrogram:
        """Current dendrogram as a first-class object."""
        return Dendrogram(self.tree(), self.parents.copy())

    def update_weight(self, e: int, new_weight: float) -> int:
        """Set ``weights[e] = new_weight``; return #edges recomputed."""
        if not 0 <= e < self.m:
            raise ValueError(f"edge id {e} out of range [0, {self.m})")
        if not np.isfinite(new_weight):
            raise InvalidWeightsError(f"weight must be finite, got {new_weight}")
        old_rank = int(self._ranks[e])
        self.weights[e] = float(new_weight)
        self._ranks = ranks_of(self.weights)
        new_rank = int(self._ranks[e])
        lo = min(old_rank, new_rank)
        self._recompute_suffix(lo)
        return self.last_update_size

    # -- internals ------------------------------------------------------------
    def _recompute_suffix(self, lo: int) -> None:
        """Recompute the dendrogram above rank ``lo``, reusing everything
        strictly below it.

        The linear bookkeeping (low-forest components, relabeling) is fully
        vectorized; the only Python-loop cost is the suffix solve itself,
        so wall time tracks ``m - lo``.
        """
        order = np.argsort(self._ranks)
        low_arr = order[:lo]
        high_arr = order[lo:]
        high = [int(x) for x in high_arr]
        self.last_update_size = len(high)
        self.total_recomputed += len(high)

        scratch = self.edges.copy()
        pending: dict[int, int] = {}
        if lo:
            graph = coo_matrix(
                (
                    np.ones(lo, dtype=np.int8),
                    (self.edges[low_arr, 0], self.edges[low_arr, 1]),
                ),
                shape=(self.n, self.n),
            )
            _, labels = connected_components(graph, directed=False)
            labels = labels.astype(np.int64)
            # Component roots: low_arr is rank-ascending, so the last edge
            # seen per component is its max-rank edge (the local root).
            comp_of_low = labels[self.edges[low_arr, 0]]
            for f, c in zip(low_arr.tolist(), comp_of_low.tolist()):
                pending[c] = f
            # Contract: supervertex labels replace raw endpoints everywhere
            # (isolated vertices keep singleton components).
            scratch[high_arr] = labels[self.edges[high_arr]]

        if high:
            # Reset the recomputed range: the solver assigns every parent
            # except the subproblem root, which must start self-pointing
            # (stale parents from the previous dendrogram would otherwise
            # survive).
            self.parents[high_arr] = high_arr
            # Fresh suffix solve (low parents below component roots are
            # kept).  The direct sequential merge beats the D&C here: a
            # maintenance structure cares about wall time, not depth.
            _solve_base(scratch, high, self.parents, self.n)
        # Glue: component roots adopt the first incident high edge.
        for f in high:
            if not pending:
                break
            for s in (int(scratch[f, 0]), int(scratch[f, 1])):
                root = pending.pop(s, None)
                if root is not None:
                    self.parents[root] = f
        # A fully-low tree (lo == m) keeps everything; the max edge stays root.
