"""Batch-dynamic single-linkage dendrograms: edge inserts/deletes + weight updates.

The paper closes with the open question of maintaining the SLD under
updates; the same authors' follow-up ("Fully-Dynamic Parallel Algorithms
for Single-Linkage Clustering", arXiv 2506.18384) shows the shape of the
answer: maintain a minimum spanning tree of the evolving graph and repair
only the part of the dendrogram the MST change can reach.  This module
implements that shape sequentially, built on the weight-divide-and-conquer
gluing facts (see :mod:`repro.core.weight_dc`):

* **Insert (cycle rule).**  A new edge ``(u, v, w)`` closes one cycle with
  the tree path ``u..v``.  If ``w`` beats the path maximum, the maximum is
  evicted to the *reserve* (the non-tree edge set) and the new edge takes
  its slot; otherwise the new edge itself goes to the reserve and the
  dendrogram is untouched.
* **Delete (cut rule).**  Deleting a reserve edge is free.  Deleting a
  tree edge splits the tree in two; the lightest reserve edge crossing the
  cut is promoted into the vacated slot (:class:`~repro.errors.NotConnectedError`
  if none exists -- the whole batch rolls back, leaving the engine intact).
* **Dendrogram repair.**  Let ``lo`` be the smallest rank any touched slot
  held before or after the batch.  Edges of rank below ``lo`` kept both
  membership and relative order, so (Lemma 3.2) the internal structure of
  every low-forest component survives verbatim; only the dendrogram of the
  **contracted high tree** and the **glue parents** of the low components'
  roots (Lemma 4.2) are recomputed -- ``O((m - lo) log m)`` instead of a
  from-scratch solve.

Replacement edges inherit the evicted edge's array *slot*, so edge ids
stay dense in ``[0, m)``, ``m`` stays ``n - 1``, and the maintained parent
array is bit-identical to :func:`~repro.core.sequf.sequf` on the
maintained tree (the differential-fuzz oracle).

Rank bookkeeping is incremental: a sorted weight array plus the rank
permutation are maintained by shifting only the ``[min(old, new),
max(old, new)]`` window (``O(window + log m)``), so a no-op or
rank-preserving update costs ``O(log m)`` -- the Theta(m log m) re-rank
the first version of this module paid per update is gone.

Staleness contract: :attr:`DynamicSLD.generation` is a monotonic counter
bumped exactly when the maintained tree (edge slots or weights) changes.
Snapshots built via :meth:`DynamicSLD.snapshot` carry the stamp, and
:class:`~repro.dendrogram.query.QueryEngine.is_stale` compares it, so the
serving layer can detect artifacts that predate an update.  Reserve-only
batches leave the dendrogram -- and the counter -- untouched.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.checkers.bounds import cost_bound
from repro.core.weight_dc import _solve_base
from repro.dendrogram.structure import Dendrogram
from repro.errors import InvalidGraphError, InvalidWeightsError, NotConnectedError
from repro.trees.mst import kruskal_mst
from repro.trees.weights import ranks_of
from repro.trees.wtree import WeightedTree

__all__ = ["DynamicSLD", "glue_scan_reference"]

#: Normalized ``(min, max)`` endpoint pair -- the identity of a graph edge.
Pair = tuple[int, int]

#: Engine state captured for whole-batch rollback.
_State = tuple[
    np.ndarray,  # edges
    np.ndarray,  # weights
    np.ndarray,  # parents
    np.ndarray,  # ranks
    np.ndarray,  # order
    np.ndarray,  # sorted weights
    dict[Pair, float],  # reserve
    dict[Pair, int],  # slot_of
    list[dict[int, int]],  # adjacency
    int,  # generation
]


def _norm_pair(u: int, v: int) -> Pair:
    return (u, v) if u < v else (v, u)


def glue_scan_reference(
    high: list[int],
    scratch: np.ndarray,
    pending: dict[int, int],
    parents: np.ndarray,
) -> None:
    """The pre-vectorization glue step, kept as the differential oracle.

    Scans the high edges in rank order and attaches each pending low
    component root to the first high edge incident to its supervertex
    (Lemma 4.2).  The production path in
    :meth:`DynamicSLD._recompute_suffix` computes the same assignment with
    one ``np.unique`` first-occurrence pass; the tests pin bit-identity
    between the two across the fuzz topologies.
    """
    for f in high:
        if not pending:
            break
        for s in (int(scratch[f, 0]), int(scratch[f, 1])):
            root = pending.pop(s, None)
            if root is not None:
                parents[root] = f


class DynamicSLD:
    """Maintains the SLD of a graph's MST under batched edge updates.

    Attributes
    ----------
    parents:
        The current dendrogram parent array (kept exact at all times;
        bit-identical to ``sequf(self.tree())``).
    generation:
        Monotonic counter bumped whenever the maintained tree changes
        (slots or weights).  Batches that only touch the reserve, empty
        batches, and same-value weight updates do not bump it.
    last_update_size:
        Number of edges whose subproblem was recomputed by the most
        recent update (``m`` for the initial build, ``0`` for a no-op).
    """

    def __init__(self, tree: WeightedTree) -> None:
        self.n = tree.n
        self.edges = tree.edges.copy()
        self.weights = tree.weights.copy()
        self.m = self.edges.shape[0]
        self.parents = np.arange(self.m, dtype=np.int64)
        self._reserve: dict[Pair, float] = {}
        self._slot_of: dict[Pair, int] = {}
        self._adj: list[dict[int, int]] = [{} for _ in range(self.n)]
        for slot in range(self.m):
            u, v = int(self.edges[slot, 0]), int(self.edges[slot, 1])
            self._slot_of[_norm_pair(u, v)] = slot
            self._adj[u][v] = slot
            self._adj[v][u] = slot
        self._ranks = ranks_of(self.weights)
        self._order = np.argsort(self._ranks).astype(np.int64)
        self._sorted_weights = self.weights[self._order].copy()
        self.generation = 0
        self.last_update_size = self.m
        self.total_recomputed = 0
        if self.m:
            self._recompute_suffix(0)

    @classmethod
    def from_graph(cls, n: int, edges: np.ndarray, weights: np.ndarray) -> "DynamicSLD":
        """Build the engine over a connected graph: MST slots + reserve.

        The MST (deterministic ``(weight, edge id)`` tie-breaking) becomes
        the tree slots, in ascending input-edge order; every other edge
        goes to the reserve.  Raises
        :class:`~repro.errors.NotConnectedError` if the graph is
        disconnected and :class:`~repro.errors.InvalidGraphError` on
        duplicate endpoint pairs (edges are keyed by pair here).
        """
        edges = np.asarray(edges, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        tree_ids = np.sort(kruskal_mst(n, edges, weights))
        if edges.shape[0]:
            canon = np.sort(edges, axis=1)
            if np.unique(canon, axis=0).shape[0] != edges.shape[0]:
                raise InvalidGraphError(
                    "dynamic engine edges are keyed by endpoint pair; "
                    "duplicate (parallel) edges are not supported"
                )
        tree = WeightedTree(
            n, edges[tree_ids].copy(), weights[tree_ids].copy(), validate=False
        )
        obj = cls(tree)
        in_tree = np.zeros(edges.shape[0], dtype=bool)
        in_tree[tree_ids] = True
        for i in np.flatnonzero(~in_tree).tolist():
            pair = _norm_pair(int(edges[i, 0]), int(edges[i, 1]))
            obj._reserve[pair] = float(weights[i])
        return obj

    # -- public API ---------------------------------------------------------
    @property
    def ranks(self) -> np.ndarray:
        return self._ranks

    @property
    def reserve_size(self) -> int:
        """Number of non-tree edges currently held in the reserve."""
        return len(self._reserve)

    def tree(self) -> WeightedTree:
        """Current weighted tree (fresh object; safe to hand out)."""
        return WeightedTree(self.n, self.edges.copy(), self.weights.copy(), validate=False)

    def dendrogram(self) -> Dendrogram:
        """Current dendrogram as a first-class object."""
        return Dendrogram(self.tree(), self.parents.copy())

    def snapshot(self) -> object:
        """Serving snapshot of the current dendrogram, generation-stamped."""
        from repro.dendrogram.snapshot import build_snapshot

        return build_snapshot(self.dendrogram(), generation=self.generation)

    def graph_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """All current graph edges: tree slots first, then sorted reserve."""
        if not self._reserve:
            return self.edges.copy(), self.weights.copy()
        pairs = sorted(self._reserve)
        res_e = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        res_w = np.asarray([self._reserve[p] for p in pairs], dtype=np.float64)
        return (
            np.concatenate([self.edges, res_e], axis=0),
            np.concatenate([self.weights, res_w]),
        )

    def graph_weights(self) -> dict[Pair, float]:
        """Every current graph edge (tree + reserve), keyed by pair."""
        out: dict[Pair, float] = {}
        for slot in range(self.m):
            pair = _norm_pair(int(self.edges[slot, 0]), int(self.edges[slot, 1]))
            out[pair] = float(self.weights[slot])
        out.update(self._reserve)
        return out

    @cost_bound(
        work="log(m) + (m - k) * log(m)",
        depth="log(m) + (m - k) * log(m)",
        vars=("m", "k"),
        kind="structure_op",
        theorem="Lemma 3.2/4.2 suffix repair; k = rank window floor",
    )
    def update_weight(self, e: int, new_weight: float) -> int:
        """Set ``weights[e] = new_weight``; return #edges recomputed.

        ``e`` addresses a tree slot (reserve edges are updated by
        delete + insert).  Same-value updates are free no-ops; updates
        that move no rank skip the suffix solve entirely
        (``last_update_size == 0``) but still bump :attr:`generation`,
        because the merge heights changed.  A weight *increase* while the
        reserve is non-empty re-certifies the cycle rule: if a reserve
        edge now beats slot ``e`` across its cut, they swap.
        """
        if not 0 <= e < self.m:
            raise ValueError(f"edge id {e} out of range [0, {self.m})")
        w = float(new_weight)
        if not np.isfinite(w):
            raise InvalidWeightsError(f"weight must be finite, got {new_weight}")
        old_w = float(self.weights[e])
        if w == old_w:
            self.last_update_size = 0
            return 0
        self.weights[e] = w
        old_rank, new_rank = self._shift_rank(e)
        self.generation += 1
        lo = min(old_rank, new_rank)
        structural = old_rank != new_rank
        if w > old_w and self._reserve:
            swap_lo = self._recertify_slot(e)
            if swap_lo < self.m:
                lo = min(lo, swap_lo)
                structural = True
        if not structural:
            self.last_update_size = 0
            return 0
        self._recompute_suffix(lo)
        return self.last_update_size

    @cost_bound(
        work="b * n + (m - k) * log(m)",
        depth="b * n + (m - k) * log(m)",
        vars=("n", "m", "b", "k"),
        kind="structure_op",
        theorem="insert = cycle rule, delete = cut rule; one Lemma 3.2/4.2 "
        "suffix repair per batch (arXiv 2506.18384 shape)",
    )
    def apply_batch(
        self,
        inserts: Iterable[tuple[int, int, float]] = (),
        deletes: Iterable[tuple[int, int]] = (),
    ) -> int:
        """Insert/delete graph edges; return #dendrogram edges recomputed.

        Semantics (documented contract, pinned by tests):

        * inserts are processed before deletes, each list in order, so
          insert-then-delete of a fresh pair in one batch nets out;
        * a pair may appear at most once per list (``ValueError``);
          inserting a pair already in the graph or deleting one that is
          absent raises ``ValueError``;
        * a delete whose removal would disconnect the graph raises
          :class:`~repro.errors.NotConnectedError`;
        * **any** error rolls the whole batch back -- the engine is left
          exactly as before the call (strong exception guarantee);
        * the dendrogram is repaired once, from the lowest rank any
          touched slot held, not per operation;
        * :attr:`generation` bumps iff some tree slot changed -- batches
          that only touch the reserve leave it (and the dendrogram) alone.
        """
        ins = [(int(u), int(v), float(w)) for u, v, w in inserts]
        dels = [(int(u), int(v)) for u, v in deletes]
        seen_ins: set[Pair] = set()
        for u, v, w in ins:
            self._check_endpoints(u, v)
            if not np.isfinite(w):
                raise InvalidWeightsError(
                    f"insert ({u}, {v}): weight must be finite, got {w}"
                )
            key = _norm_pair(u, v)
            if key in seen_ins:
                raise ValueError(f"duplicate insert of edge {key} in one batch")
            seen_ins.add(key)
        seen_dels: set[Pair] = set()
        for u, v in dels:
            self._check_endpoints(u, v)
            key = _norm_pair(u, v)
            if key in seen_dels:
                raise ValueError(f"duplicate delete of edge {key} in one batch")
            seen_dels.add(key)
        if not ins and not dels:
            self.last_update_size = 0
            return 0

        state = self._save_state()
        lo = self.m
        tree_changed = False
        try:
            for u, v, w in ins:
                op_lo, changed = self._insert_edge(u, v, w)
                lo = min(lo, op_lo)
                tree_changed = tree_changed or changed
            for u, v in dels:
                op_lo, changed = self._delete_edge(u, v)
                lo = min(lo, op_lo)
                tree_changed = tree_changed or changed
        except Exception:
            self._restore_state(state)
            raise
        if tree_changed:
            self.generation += 1
        if lo < self.m:
            self._recompute_suffix(lo)
        else:
            self.last_update_size = 0
        return self.last_update_size

    # -- MST surgery --------------------------------------------------------
    def _check_endpoints(self, u: int, v: int) -> None:
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise InvalidGraphError(
                f"vertex ids must lie in [0, {self.n}), got ({u}, {v})"
            )
        if u == v:
            raise InvalidGraphError(f"self-loop ({u}, {u}) is not a valid edge")

    def _insert_edge(self, u: int, v: int, w: float) -> tuple[int, bool]:
        """Cycle rule: returns ``(lowest disturbed rank, tree changed?)``."""
        key = _norm_pair(u, v)
        if key in self._slot_of or key in self._reserve:
            raise ValueError(f"edge {key} is already in the graph")
        f = self._tree_path_max(u, v)
        if w < float(self.weights[f]):
            evicted_pair = _norm_pair(int(self.edges[f, 0]), int(self.edges[f, 1]))
            evicted_w = float(self.weights[f])
            old_r, new_r = self._set_slot(f, (u, v), w)
            self._reserve[evicted_pair] = evicted_w
            return min(old_r, new_r), True
        # Ties keep the incumbent: the tree stays a valid MST either way.
        self._reserve[key] = w
        return self.m, False

    def _delete_edge(self, u: int, v: int) -> tuple[int, bool]:
        """Cut rule: returns ``(lowest disturbed rank, tree changed?)``."""
        key = _norm_pair(u, v)
        if key in self._reserve:
            del self._reserve[key]
            return self.m, False
        f = self._slot_of.get(key)
        if f is None:
            raise ValueError(f"edge {key} is not in the graph")
        side = self._cut_side(int(self.edges[f, 0]), f)
        best = self._best_crossing(side)
        if best is None:
            raise NotConnectedError(f"deleting edge {key} disconnects the graph")
        (a, b), bw = best
        del self._reserve[(a, b)]
        old_r, new_r = self._set_slot(f, (a, b), bw)
        return min(old_r, new_r), True

    def _recertify_slot(self, e: int) -> int:
        """Cycle-rule re-check after slot ``e``'s weight increased.

        Returns the lowest rank a swap disturbed, or ``m`` if the
        incumbent is still (weakly) the lightest edge across its cut.
        """
        side = self._cut_side(int(self.edges[e, 0]), e)
        best = self._best_crossing(side)
        if best is None:
            return self.m
        (a, b), bw = best
        if bw >= float(self.weights[e]):
            return self.m
        evicted_pair = _norm_pair(int(self.edges[e, 0]), int(self.edges[e, 1]))
        evicted_w = float(self.weights[e])
        del self._reserve[(a, b)]
        old_r, new_r = self._set_slot(e, (a, b), bw)
        self._reserve[evicted_pair] = evicted_w
        return min(old_r, new_r)

    def _tree_path_max(self, u: int, v: int) -> int:
        """Slot of the max-``(weight, slot)`` edge on the tree path u..v."""
        prev: dict[int, tuple[int, int]] = {u: (-1, -1)}
        stack = [u]
        while v not in prev:
            x = stack.pop()
            for y, slot in self._adj[x].items():
                if y not in prev:
                    prev[y] = (x, slot)
                    stack.append(y)
        best = -1
        x = v
        while x != u:
            x, slot = prev[x]
            if best < 0 or (float(self.weights[slot]), slot) > (
                float(self.weights[best]),
                best,
            ):
                best = slot
        return best

    def _cut_side(self, start: int, skip_slot: int) -> np.ndarray:
        """Vertices reachable from ``start`` in the tree minus one slot."""
        seen = np.zeros(self.n, dtype=bool)
        seen[start] = True
        stack = [start]
        while stack:
            x = stack.pop()
            for y, slot in self._adj[x].items():
                if slot != skip_slot and not seen[y]:
                    seen[y] = True
                    stack.append(y)
        return seen

    def _best_crossing(self, side: np.ndarray) -> tuple[Pair, float] | None:
        """Lightest reserve edge crossing the cut, ties by pair."""
        best_pair: Pair | None = None
        best_w = 0.0
        for pair, w in self._reserve.items():
            if bool(side[pair[0]]) != bool(side[pair[1]]):
                if best_pair is None or (w, pair) < (best_w, best_pair):
                    best_pair, best_w = pair, w
        if best_pair is None:
            return None
        return best_pair, best_w

    def _set_slot(self, e: int, pair: tuple[int, int], w: float) -> tuple[int, int]:
        """Rewire slot ``e`` to new endpoints/weight; returns the rank move.

        Slot reuse keeps edge ids dense and stable: the replacement edge
        inherits the evicted edge's id, so ``m`` never changes and the
        ``(weight, edge id)`` tie-breaking stays well-defined.
        """
        ou, ov = int(self.edges[e, 0]), int(self.edges[e, 1])
        del self._adj[ou][ov]
        del self._adj[ov][ou]
        del self._slot_of[_norm_pair(ou, ov)]
        a, b = int(pair[0]), int(pair[1])
        self.edges[e, 0] = a
        self.edges[e, 1] = b
        self.weights[e] = w
        self._adj[a][b] = e
        self._adj[b][a] = e
        self._slot_of[_norm_pair(a, b)] = e
        return self._shift_rank(e)

    # -- rollback -----------------------------------------------------------
    def _save_state(self) -> _State:
        return (
            self.edges.copy(),
            self.weights.copy(),
            self.parents.copy(),
            self._ranks.copy(),
            self._order.copy(),
            self._sorted_weights.copy(),
            dict(self._reserve),
            dict(self._slot_of),
            [dict(d) for d in self._adj],
            self.generation,
        )

    def _restore_state(self, state: _State) -> None:
        (
            self.edges,
            self.weights,
            self.parents,
            self._ranks,
            self._order,
            self._sorted_weights,
            self._reserve,
            self._slot_of,
            self._adj,
            self.generation,
        ) = state

    # -- incremental ranks --------------------------------------------------
    @cost_bound(
        work="m + log(m)",
        depth="m + log(m)",
        vars=("m",),
        kind="helper",
        theorem="window shift; m bounds the [old, new] rank window",
    )
    def _shift_rank(self, e: int) -> tuple[int, int]:
        """Re-rank slot ``e`` after ``weights[e]`` changed.

        Maintains ``_ranks`` (slot -> rank), ``_order`` (rank -> slot) and
        ``_sorted_weights`` (= ``weights[_order]``) by shifting only the
        ``[min(old, new), max(old, new)]`` window: two ``searchsorted``
        probes locate the new rank under the ``(weight, slot)`` key, then
        one slice move realigns the window.  ``O(window + log m)``.
        """
        w = float(self.weights[e])
        order, ranks, ws = self._order, self._ranks, self._sorted_weights
        old_rank = int(ranks[e])
        lo_pos = int(np.searchsorted(ws, w, side="left"))
        hi_pos = int(np.searchsorted(ws, w, side="right"))
        # Rank = #{x != e : (w_x, x) < (w, e)}.  The strictly-smaller count
        # must discount e's own stale entry when it sits below lo_pos; the
        # equal-weight run contributes its slots smaller than e.
        less = lo_pos - (1 if old_rank < lo_pos else 0)
        eq_slots = order[lo_pos:hi_pos]
        new_rank = less + int(np.count_nonzero(eq_slots < e))
        if new_rank == old_rank:
            ws[old_rank] = w
            return old_rank, old_rank
        if new_rank > old_rank:
            order[old_rank:new_rank] = order[old_rank + 1 : new_rank + 1].copy()
            ws[old_rank:new_rank] = ws[old_rank + 1 : new_rank + 1].copy()
        else:
            order[new_rank + 1 : old_rank + 1] = order[new_rank:old_rank].copy()
            ws[new_rank + 1 : old_rank + 1] = ws[new_rank:old_rank].copy()
        order[new_rank] = e
        ws[new_rank] = w
        lo, hi = (old_rank, new_rank) if old_rank < new_rank else (new_rank, old_rank)
        ranks[order[lo : hi + 1]] = np.arange(lo, hi + 1, dtype=np.int64)
        return old_rank, new_rank

    # -- dendrogram repair ----------------------------------------------------
    @cost_bound(
        work="(m - k) * log(m)",
        depth="(m - k) * log(m)",
        vars=("m", "k"),
        kind="helper",
        theorem="Lemma 3.2 (low components survive) + Lemma 4.2 (root glue)",
    )
    def _recompute_suffix(self, lo: int) -> None:
        """Recompute the dendrogram above rank ``lo``, reusing everything
        strictly below it.

        The bookkeeping (low-forest components, relabeling, root glue) is
        fully vectorized; the only Python-loop cost is the suffix solve
        itself, so wall time tracks ``m - lo``.
        """
        order = self._order
        low_arr = order[:lo]
        high_arr = order[lo:]
        high = [int(x) for x in high_arr]
        self.last_update_size = len(high)
        self.total_recomputed += len(high)
        if not high:
            # A fully-low window keeps everything; the max edge stays root.
            return

        scratch = self.edges.copy()
        roots: np.ndarray | None = None
        if lo:
            graph = coo_matrix(
                (
                    np.ones(lo, dtype=np.int8),
                    (self.edges[low_arr, 0], self.edges[low_arr, 1]),
                ),
                shape=(self.n, self.n),
            )
            n_comp, labels = connected_components(graph, directed=False)
            labels = labels.astype(np.int64)
            # Component roots: low_arr is rank-ascending and fancy-index
            # assignment keeps the last write, so roots[c] is component
            # c's max-rank low edge (its local root).
            comp_of_low = labels[self.edges[low_arr, 0]]
            roots = np.full(int(n_comp), -1, dtype=np.int64)
            roots[comp_of_low] = low_arr
            # Contract: supervertex labels replace raw endpoints everywhere
            # (isolated vertices keep singleton components).
            scratch[high_arr] = labels[self.edges[high_arr]]

        # Reset the recomputed range: the solver assigns every parent
        # except the subproblem root, which must start self-pointing
        # (stale parents from the previous dendrogram would otherwise
        # survive).
        self.parents[high_arr] = high_arr
        # Fresh suffix solve (low parents below component roots are
        # kept).  The direct sequential merge beats the D&C here: a
        # maintenance structure cares about wall time, not depth.
        _solve_base(scratch, high, self.parents, self.n)

        if roots is not None:
            pend = np.flatnonzero(roots >= 0)
            if pend.size:
                # Glue (Lemma 4.2): each component root adopts the first
                # high edge incident to its supervertex.  high_arr is
                # rank-ascending and each edge lists endpoint 0 before 1,
                # so the first occurrence in the flattened endpoint stream
                # is exactly what the reference scan loop picks
                # (glue_scan_reference; bit-identity pinned in tests).
                flat = scratch[high_arr].reshape(-1)
                uniq, first = np.unique(flat, return_index=True)
                # The maintained tree is connected, so every low component
                # is incident to at least one high edge: pend \subseteq uniq.
                pos = np.searchsorted(uniq, pend)
                self.parents[roots[pend]] = high_arr[first[pos] // 2]
