"""ParUF on real OS threads: Algorithm 5's protocol, actually concurrent.

The package's performance story runs through the cost model (CPython's
GIL serializes bytecode), but the *correctness* story of the asynchronous
algorithm -- that the CAS-guarded status protocol makes heap and
union-find accesses race-free -- deserves to be exercised under genuine
preemptive interleaving.  This module runs Alg. 5 with worker threads:

* the worklist is a lock-guarded deque of ready edges;
* ``status`` transitions (the paper's CAS on line 7 and atomic increment
  on line 19) go through one lock, faithfully modelling the atomics;
* heap melds, delete-mins, and union-find updates are **deliberately
  unlocked** -- exactly as in the paper, their safety follows from the
  status protocol (only the thread that won the CAS can reach the two
  endpoint clusters' state), so any race here would be an algorithmic
  bug and the stress tests would catch it.

GIL note: threads interleave at bytecode granularity (plus forced
switches every ``sys.getswitchinterval()``), so all interleavings the
protocol must tolerate do occur; wall-clock speedup does not.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.checkers.ownership import owns
from repro.core.paruf import ParUFStats
from repro.runtime.interleave import maybe_delay
from repro.structures import make_heap
from repro.structures.unionfind import UnionFind
from repro.trees.wtree import WeightedTree

__all__ = ["paruf_threaded"]


def paruf_threaded(  # noqa: RPR003, RPR101 -- cost depends on the OS thread schedule, so no deterministic charged bound to declare
    tree: WeightedTree,
    num_threads: int = 4,
    heap_kind: str = "pairing",
    stats: ParUFStats | None = None,
) -> np.ndarray:
    """Parent array of the SLD, by multi-threaded ParUF (Alg. 5).

    Runs without the post-processing optimization so the asynchronous
    chains carry the whole computation (that is the interesting path to
    stress); use :func:`repro.core.paruf.paruf` for production work.
    """
    if num_threads < 1:
        raise ValueError(f"need at least one thread, got {num_threads}")
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    stats = stats if stats is not None else ParUFStats()
    stats.heap_kind = heap_kind
    ranks = tree.ranks
    edges = tree.edges

    offsets, _, nbr_edge = tree.adjacency()
    heaps = []
    for v in range(tree.n):
        heap = make_heap(heap_kind)
        for s in range(int(offsets[v]), int(offsets[v + 1])):
            e = int(nbr_edge[s])
            heap.insert(int(ranks[e]), e)
        heaps.append(heap)
    status = np.zeros(m, dtype=np.int64)
    for v in range(tree.n):
        if not heaps[v].is_empty:
            _, e = heaps[v].find_min()
            status[e] += 1
    ready = [int(e) for e in np.flatnonzero(status == 2)]
    stats.initial_ready = len(ready)

    uf = UnionFind(tree.n)
    worklist: deque[int] = deque(ready)
    status_lock = threading.Lock()  # models the paper's atomics on status(.)
    remaining = [m]  # edges not yet fully processed (under status_lock)
    # Keyed by worker index so the caller sees a deterministic exception
    # (lowest worker id) instead of whichever thread crashed first.
    errors: dict[int, BaseException] = {}

    def try_claim(e: int) -> bool:
        """CAS(status(e), 2, -1)."""
        with status_lock:
            if status[e] == 2:
                status[e] = -1
                return True
            return False

    def activate(e: int) -> bool:
        """ATOMIC_INC(status(e)); returns True if it reached 2."""
        with status_lock:
            status[e] += 1
            return status[e] == 2

    def pop_ready() -> int | None:
        with status_lock:
            if worklist:
                return worklist.popleft()
            return None

    def push_ready(e: int) -> None:
        with status_lock:
            worklist.append(e)

    def done_one() -> bool:
        with status_lock:
            remaining[0] -= 1
            return remaining[0] == 0

    # Whole-slab declaration: ownership of parents cells is dynamic here
    # (the thread that wins the CAS on status(e) owns parents[e] for the
    # chain it follows -- Lemma 4.1 exclusivity), so no static window is
    # narrower than the full slab.
    @owns("parents[:]")
    def worker(worker_id: int) -> None:
        try:
            while True:
                with status_lock:
                    if remaining[0] == 0:
                        return
                cur = pop_ready()
                if cur is None:
                    time.sleep(0)  # noqa: RPR001 -- real-thread yield is the point here
                    continue
                maybe_delay("between pop and claim")
                if not try_claim(cur):
                    continue
                while True:
                    maybe_delay("after winning the claim CAS")
                    u, v = int(edges[cur, 0]), int(edges[cur, 1])
                    ru, rv = uf.find(u), uf.find(v)
                    # Unlocked by design: the status protocol guarantees
                    # exclusive access to both clusters' heaps and to these
                    # union-find trees (paper, proof of Theorem 4.3).
                    heaps[ru].delete_min()
                    heaps[rv].delete_min()
                    w = uf.union(ru, rv)
                    other = rv if w == ru else ru
                    heaps[w].meld(heaps[other])
                    finished = done_one()
                    if heaps[w].is_empty:
                        return  # cur is the dendrogram root
                    _, new_cur = heaps[w].find_min()
                    new_cur = int(new_cur)
                    parents[cur] = new_cur
                    maybe_delay("between parent write and activation")
                    if activate(new_cur):
                        if try_claim(new_cur):
                            cur = new_cur  # follow the chain (Alg. 5 line 20)
                            continue
                        push_ready(new_cur)
                    if finished:
                        return
                    break
        except BaseException as exc:  # surface worker crashes to the caller
            with status_lock:
                errors[worker_id] = exc
                remaining[0] = 0

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"paruf-{i}")
        for i in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[min(errors)]
    stats.processed_async = m
    return parents
