"""Vectorized SeqUF: the flat-array fast backend for ``sequf``.

The reference merge loop (``repro.core.sequf``) walks the rank-sorted
edges one at a time through a scalar union-find.  This twin processes the
same rank order in *windows* of consecutive edges and resolves most of a
window with a handful of NumPy kernels per round, classifying each pending
edge by the multiplicity of its endpoint clusters inside the window:

* **A** -- both cluster roots appear exactly once in the window: the merge
  is independent of every other pending edge, so all A edges apply as one
  batched scatter (top-node adoption + union).
* **B** -- exactly one endpoint root is shared (a *hub*): the edges leaning
  on one hub form a rank-sorted chain; the whole prefix of the chain below
  the hub's first *hard* edge (see C) merges in one grouped scatter pass.
  Grouping uses an ``argsort`` over the composite key ``hub * window +
  position`` -- unique keys, so an unstable sort suffices and the key fits
  int64 for any ``window <= 2**31 / n``.
* **C** -- both roots are shared (*hard* edges): only mutual minima -- an
  edge that is the smallest pending edge of both of its clusters -- merge
  this round; they invalidate cached roots, so surviving edges re-run the
  vectorized find before the next round.

Each round is ``O(window)`` vectorized work and removes every mergeable
edge, so a few rounds drain a random-structure window almost entirely; the
small residue (and degenerate inputs that make no batched progress, e.g.
monotone path weights where every edge is hard) falls back to a contracted
scalar drain over relabeled cluster ids.  The output is **bit-identical**
to the reference: the SLD is unique under the (weight, edge-id) rank
order, and every batched apply replays exactly the reference's merge
semantics in rank order within each cluster.

With instrumentation active (an enabled tracker, or a shadow-access
recorder installed) this backend delegates to the reference
implementation: the array kernels have no meaningful per-operation cost
story -- they are a wall-clock backend, and the reference twin owns the
work/depth accounting.
"""

from __future__ import annotations

import numpy as np

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound
from repro.checkers.contracts import slab_contract
from repro.core.sequf import sequf
from repro.errors import InvalidTreeError
from repro.runtime.cost_model import CostTracker, active_tracker
from repro.runtime.instrumentation import PhaseTimer
from repro.trees.wtree import WeightedTree

__all__ = ["sequf_fast"]

_BIG = np.iinfo(np.int64).max

#: Edge count above which the larger window pays for itself (measured;
#: see EXPERIMENTS.md).
_WIDE_INPUT = 98304


@cost_bound(
    work="n * log(n)",
    depth="n",
    vars=("n",),
    theorem="Section 1 baseline, batched: same O(n log n) sort + merge "
    "semantics as sequf, applied window-at-a-time",
)
@slab_contract(
    dtypes={
        "tree.edges": "int64",
        "tree.ranks": "int64",
        "tree.weights": "float64",
    },
    returns="int64",
)
def sequf_fast(
    tree: WeightedTree,
    tracker: CostTracker | None = None,
    timer: PhaseTimer | None = None,
    window: int | None = None,
    drain_below: int = 128,
    max_rounds: int = 4,
) -> np.ndarray:
    """Parent array of the SLD, by windowed array union-find merging.

    Bit-identical to :func:`repro.core.sequf.sequf` on every input.
    ``window``/``drain_below``/``max_rounds`` tune the batching; the
    defaults are the measured sweet spot (``window`` adapts to the input
    size when ``None``).
    """
    if active_tracker(tracker) is not None or _access.RECORDER is not None:
        return sequf(tree, tracker=tracker, timer=timer)
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    timer = timer if timer is not None else PhaseTimer()
    if window is None:
        window = 16384 if m >= _WIDE_INPUT else 8192
    with timer.phase("sort"):
        order = np.argsort(tree.ranks, kind="stable")
    with timer.phase("merge"):
        _merge_windowed(tree, order, parents, window, drain_below, max_rounds)
    return parents


@cost_bound(
    work="n * log(n)",
    depth="n",
    vars=("n",),
    kind="helper",
    theorem="windowed replay of the sequential merge loop; each round is "
    "O(window) vectorized work",
)
@slab_contract(
    dtypes={"tree.edges": "int64", "order": "int64", "parents": "int64"},
    contiguous=("order", "parents"),
    writes=("parents",),
)
def _merge_windowed(
    tree: WeightedTree,
    order: np.ndarray,
    parents: np.ndarray,
    window: int,
    drain_below: int,
    max_rounds: int,
) -> None:
    """Apply all merges of ``order`` into ``parents`` (in-place).

    Each window first resolves its endpoints against the global union-find
    once and relabels the cluster roots it touches to *positional* local
    ids -- a root's id is the first index at which it appears among the
    window's ``2k`` endpoint roots, assigned by one reversed scatter (no
    sort, unlike ``np.unique``).  Every round then runs entirely in the
    local domain -- the per-round ``bincount`` and min-scatters cost
    ``O(window)`` instead of ``O(n)``, and re-finds after hard merges jump
    a cache-resident window-sized forest -- and the window's net effect
    (cluster unions and top-node moves) is written back to the global
    arrays wholesale at the end.
    """
    m = tree.m
    eu = np.ascontiguousarray(tree.edges[:, 0], dtype=np.int64)
    ev = np.ascontiguousarray(tree.edges[:, 1], dtype=np.int64)
    uf_parent = np.arange(tree.n, dtype=np.int64)
    # top[r] = most recent merge node inside the cluster rooted at r.
    top = np.full(tree.n, -1, dtype=np.int64)
    # Root -> first-occurrence position, written before read every window
    # (np.empty: never initialized wholesale).
    firstpos = np.empty(tree.n, dtype=np.int64)
    # Per-round scratch over the local domain, allocated once.
    flat_buf = np.empty(2 * window, dtype=np.int64)
    pts_buf = np.empty(2 * window, dtype=np.int64)
    find_buf = np.empty(2 * window, dtype=np.int64)
    minbad = np.empty(2 * window, dtype=np.int64)
    minpos = np.empty(2 * window, dtype=np.int64)
    lparent_buf = np.empty(2 * window, dtype=np.int64)
    ltop_buf = np.empty(2 * window, dtype=np.int64)
    idx_full = np.arange(window, dtype=np.int64)
    idx2_full = np.arange(2 * window, dtype=np.int64)
    rep_full = np.repeat(idx_full, 2)
    pos = 0
    slow = 0
    scalar_mode = False

    while pos < m:  # noqa: RPR102 -- m/window windows, sequential by design
        w = order[pos : pos + window]
        pos += w.size
        kk = w.size
        # One global find per window (with compression)...
        p = pts_buf[: 2 * kk]
        p[:kk] = eu[w]
        p[kk:] = ev[w]
        r = uf_parent[p]
        while True:  # noqa: RPR102 -- pointer-jumping, O(log n) hops
            nx = uf_parent[r]
            if np.array_equal(nx, r):
                break
            r = nx
        uf_parent[p] = r
        # ...then relabel the window's cluster domain to positional local
        # ids: the reversed scatter leaves each root's *first* position.
        a2 = idx2_full[: 2 * kk]
        dom = 2 * kk  # local-id domain: ids are positions in [0, 2k)
        firstpos[r[::-1]] = a2[::-1]
        lid = firstpos[r]
        ru = lid[:kk]
        rv = lid[kk:]
        if np.any(ru == rv):
            raise InvalidTreeError("edge joins two vertices already in one cluster")
        lparent = lparent_buf
        lparent[: 2 * kk] = a2
        ltop = ltop_buf
        ltop[lid] = top[r]

        def find(lu_a: np.ndarray, lv_a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """Current local roots of stale local roots, with compression."""
            sz = lu_a.size
            q = find_buf[: 2 * sz]
            q[:sz] = lu_a
            q[sz:] = lv_a
            lr = lparent[q]
            while True:  # noqa: RPR102 -- pointer-jumping, O(log u) hops
                nx = lparent[lr]
                if np.array_equal(nx, lr):
                    break
                lr = nx
            lparent[q] = lr
            return lr[:sz], lr[sz:]

        rounds = 0
        need_find = False
        bailed_round_one = False
        while w.size:  # noqa: RPR102 -- at most max_rounds + 1 iterations
            kk = w.size
            if need_find:
                ru, rv = find(ru, rv)
                need_find = False
            if scalar_mode or kk <= drain_below or rounds >= max_rounds:
                _drain_local(w, ru, rv, lparent, ltop, parents)
                break
            rounds += 1
            # Interleaved endpoint roots: flat = [ru0, rv0, ru1, rv1, ...].
            # The reversed scatters below then leave, for every root, the
            # *first* (lowest-rank) position at which it appears.
            flat = flat_buf[: 2 * kk]
            flat[0::2] = ru
            flat[1::2] = rv
            cnt = np.bincount(flat, minlength=dom)
            mu = cnt[ru] > 1
            mv = cnt[rv] > 1
            hard = mu & mv
            b_mask = mu ^ mv
            any_hard = bool(hard.any())
            rep = rep_full[: 2 * kk]
            if any_hard:
                minpos[flat[::-1]] = rep[::-1]
                ch = np.flatnonzero(hard)
                c_sel = ch[(minpos[ru[ch]] == ch) & (minpos[rv[ch]] == ch)]
                # A edges and mutual-minima C edges touch disjoint roots,
                # so their merge order is immaterial: fold c_sel into the
                # A mask instead of concatenating a fresh array per round.
                pmask = ~mu & ~mv
                pmask[c_sel] = True
                pidx = np.flatnonzero(pmask)
                need_find = c_sel.size > 0
            else:
                pidx = np.flatnonzero(~mu & ~mv)
            keep = np.ones(kk, dtype=bool)
            merged = 0
            if pidx.size:
                # A edges plus mutual-minima C edges: independent pair merges.
                merged += pidx.size
                keep[pidx] = False
                pw = w[pidx]
                rua = ru[pidx]
                rva = rv[pidx]
                tu = ltop[rua]
                tv = ltop[rva]
                mm = tu != -1
                parents[tu[mm]] = pw[mm]
                mm = tv != -1
                parents[tv[mm]] = pw[mm]
                lparent[rva] = rua
                ltop[rua] = pw
            if b_mask.any():
                # B edges: per-hub rank-sorted chains, valid strictly below
                # the hub's first hard edge (minbad).
                minbad[flat] = _BIG
                if any_hard:
                    hsel = np.flatnonzero(hard)
                    minbad[flat.reshape(-1, 2)[hsel].ravel()[::-1]] = np.repeat(hsel, 2)[::-1]
                bsel = np.flatnonzero(b_mask)
                mub = mu[bsel]
                rub = ru[bsel]
                rvb = rv[bsel]
                hub = np.where(mub, rub, rvb)
                okm = bsel < minbad[hub]
                if okm.any():
                    hub = hub[okm]
                    leaf = np.where(mub, rvb, rub)[okm]
                    bidx = bsel[okm]
                    b = w[bidx]
                    merged += bidx.size
                    keep[bidx] = False
                    # Composite key: unique per element, so the default
                    # (unstable) quicksort gives the grouped rank order.
                    sidx = np.argsort(hub * window + bidx)
                    hub_s = hub[sidx]
                    leaf_s = leaf[sidx]
                    b_s = b[sidx]
                    firstseg = np.empty(hub_s.size, dtype=bool)
                    firstseg[0] = True
                    firstseg[1:] = hub_s[1:] != hub_s[:-1]
                    prev = np.empty(b_s.size, dtype=np.int64)
                    prev[firstseg] = ltop[hub_s[firstseg]]
                    npf = np.flatnonzero(~firstseg)
                    prev[npf] = b_s[npf - 1]
                    mm = prev != -1
                    parents[prev[mm]] = b_s[mm]
                    tl = ltop[leaf_s]
                    mm = tl != -1
                    parents[tl[mm]] = b_s[mm]
                    lastseg = np.empty(hub_s.size, dtype=bool)
                    lastseg[:-1] = firstseg[1:]
                    lastseg[-1] = True
                    lparent[leaf_s] = hub_s
                    ltop[hub_s[lastseg]] = b_s[lastseg]
            # Stale roots stay valid inputs to the local find (the forest
            # maps them forward), so always slice them alongside ``w``.
            w = w[keep]
            ru = ru[keep]
            rv = rv[keep]
            if merged * 16 < kk:
                # Under 1/16 of the window merged: rounds are not paying
                # for themselves, drain the residue.
                if rounds == 1:
                    bailed_round_one = True
                if w.size:
                    if need_find:
                        ru, rv = find(ru, rv)
                    _drain_local(w, ru, rv, lparent, ltop, parents)
                break
        # Write the window's net effect back to the global arrays: resolve
        # the used local ids (first-occurrence positions) to their local
        # roots, remap to global roots through ``r`` (a local id *is* a
        # position into ``r``).
        sel = np.flatnonzero(lid == a2)
        lr = lparent[sel]
        while True:  # noqa: RPR102 -- pointer-jumping, O(log u) hops
            nxt = lparent[lr]
            if np.array_equal(nxt, lr):
                break
            lr = nxt
        uf_parent[r[sel]] = r[lr]
        top[r[lr]] = ltop[lr]
        if bailed_round_one:
            # Two consecutive windows whose *first* round already stalled:
            # degenerate rank structure (e.g. monotone path weights), go
            # scalar for the rest of the input.
            slow += 1
            if slow >= 2:
                scalar_mode = True
        else:
            slow = 0


@cost_bound(
    work="k * log(k)",
    depth="k",
    vars=("k",),
    kind="helper",
    theorem="contracted scalar replay of the reference merge loop over "
    "relabeled cluster ids",
)
@slab_contract(
    dtypes={
        "w": "int64",
        "ru": "int64",
        "rv": "int64",
        "lparent": "int64",
        "ltop": "int64",
        "parents": "int64",
    },
    writes=("lparent", "ltop", "parents"),
)
def _drain_local(
    w: np.ndarray,
    ru: np.ndarray,
    rv: np.ndarray,
    lparent: np.ndarray,
    ltop: np.ndarray,
    parents: np.ndarray,
) -> None:
    """Merge a window's residue with a scalar loop over the local domain.

    The residue's cluster roots are compacted once more (``np.unique`` --
    the residue is usually a small fraction of the window, so the lists
    below stay residue-sized), the merge loop runs over plain Python
    lists exactly like the reference fast path, and the net effect is
    written back into the caller's local forest (parent scatters go
    straight to ``parents``).
    """
    both = np.concatenate((ru, rv))
    uniq, inv = np.unique(both, return_inverse=True)
    kk = w.size
    # The scalar drain is the point of this helper: the residue is small,
    # and CPython-level list walking beats vectorized passes below ~128
    # elements (measured, see drain_below).  Host handoff is deliberate.
    lu = inv[:kk].tolist()  # noqa: RPR205 -- scalar drain by design
    lv = inv[kk:].tolist()  # noqa: RPR205 -- scalar drain by design
    lp = list(range(uniq.size))
    lt = ltop[uniq].tolist()  # noqa: RPR205 -- scalar drain by design
    edges = w.tolist()  # noqa: RPR205 -- scalar drain by design
    out_idx: list[int] = []
    out_val: list[int] = []
    ap_i = out_idx.append
    ap_v = out_val.append
    for e, u, v in zip(edges, lu, lv):
        while lp[u] != u:  # noqa: RPR102 -- path halving
            lp[u] = lp[lp[u]]
            u = lp[u]
        while lp[v] != v:  # noqa: RPR102 -- path halving
            lp[v] = lp[lp[v]]
            v = lp[v]
        if u == v:
            raise InvalidTreeError("edge joins two vertices already in one cluster")
        tu = lt[u]
        tv = lt[v]
        if tu != -1:
            ap_i(tu)
            ap_v(e)
        if tv != -1:
            ap_i(tv)
            ap_v(e)
        lp[v] = u
        lt[u] = e
    if out_idx:
        parents[np.asarray(out_idx, dtype=np.int64)] = np.asarray(out_val, dtype=np.int64)
    # Resolve the residue forest and write it back into the local one.
    lpa = np.asarray(lp, dtype=np.int64)
    while True:  # noqa: RPR102 -- pointer-jumping, O(log u) hops
        nxt = lpa[lpa]
        if np.array_equal(nxt, lpa):
            break
        lpa = nxt
    reps = uniq[lpa]
    lparent[uniq] = reps
    ltop[reps] = np.asarray(lt, dtype=np.int64)[lpa]
