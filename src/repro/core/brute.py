"""Definition-level brute-force oracle for SLD computation.

Computes each node's parent directly from the structural characterization
of Lemma 3.2 / Theorem 3.5: just before edge ``e`` merges, its cluster is
the set of vertices reachable from ``e``'s endpoints across edges of
*smaller* rank; the parent of ``e`` is then the minimum-rank edge of larger
rank on the cluster boundary (or ``e`` itself for the final merge).

This is ``O(n^2)`` and shares no code or algorithmic idea with the five
production algorithms, which is exactly what makes it a trustworthy test
oracle.
"""

from __future__ import annotations

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.runtime.cost_model import CostTracker, active_tracker
from repro.trees.wtree import WeightedTree

__all__ = ["brute_force_sld"]


@cost_bound(
    work="n * h",
    depth="n * h",
    vars=("n", "h"),
    theorem="Lemma 3.2 evaluated literally: one flood per edge over its "
    "cluster; total adjacency slots scanned is O(sum of cluster sizes) = O(nh)",
)
def brute_force_sld(tree: WeightedTree, tracker: CostTracker | None = None) -> np.ndarray:
    """Parent array of the SLD, computed from the definition.

    The oracle is sequential, so the charged cost is one flat segment:
    work = depth = total adjacency slots scanned across all floods.
    """
    m = tree.m
    ranks = tree.ranks
    tracker = active_tracker(tracker)
    parents = np.arange(m, dtype=np.int64)
    offsets, nbr_vertex, nbr_edge = tree.adjacency()
    scanned = 0

    for e in range(m):
        re = int(ranks[e])
        # Flood from e's endpoints across strictly-smaller-rank edges.
        seen = {int(tree.edges[e, 0]), int(tree.edges[e, 1])}
        stack = list(seen)
        best = -1  # min-rank boundary edge with rank > re
        while stack:
            v = stack.pop()
            lo, hi = int(offsets[v]), int(offsets[v + 1])
            scanned += hi - lo
            for s in range(lo, hi):
                f = int(nbr_edge[s])
                if f == e:
                    continue
                rf = int(ranks[f])
                if rf < re:
                    w = int(nbr_vertex[s])
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
                else:
                    if best == -1 or rf < int(ranks[best]):
                        best = f
        if best != -1:
            parents[e] = best
    if tracker is not None:
        tracker.sequential(float(scanned))
    return parents
