"""SLD-Merge and the divide-and-conquer framework (Section 3.1).

``merge_spines`` is the paper's Algorithm 1 realized on the linked-list
(parent-array) representation: given the SLDs of two trees that share
exactly one vertex ``v`` and no edges, only the *characteristic spines* --
the spines of the minimum-rank edges incident to ``v`` on each side -- can
change (Lemma 3.4); merging them as sorted lists produces the SLD of the
union (Theorem 3.5).

``sld_divide_and_conquer`` is a direct instantiation of the framework:
split the tree at an (edge-)centroid vertex into two edge-disjoint subtrees
sharing only that vertex, recurse, and merge the characteristic spines.
With balanced splits the recursion has ``O(log n)`` levels and each level's
merges cost ``O(h)`` each -- not the optimal bound (that is what tree
contraction is for) but a faithful, independently-useful realization of the
merge framework, inspired by the Cartesian-tree algorithm of Shun and
Blelloch.
"""

from __future__ import annotations

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker, combine_parallel
from repro.runtime.instrumentation import PhaseTimer
from repro.trees.wtree import WeightedTree

__all__ = ["merge_spines", "extract_spine", "sld_divide_and_conquer"]


@cost_bound(
    work="h",
    depth="h",
    vars=("h",),
    kind="helper",
    theorem="Section 3.1: a spine is a root path, length at most h",
)
def extract_spine(parents: np.ndarray, e: int) -> list[int]:
    """Node-to-root path from ``e`` following parent pointers."""
    spine = [int(e)]
    while parents[spine[-1]] != spine[-1]:
        spine.append(int(parents[spine[-1]]))
    return spine


@cost_bound(
    work="h",
    depth="h",
    vars=("h",),
    kind="helper",
    theorem="Algorithm 1 line 2 / Theorem 3.5: two-way sorted spine merge",
)
def merge_spines(
    parents: np.ndarray, spine_a: list[int], spine_b: list[int], ranks: np.ndarray
) -> list[int]:
    """Merge two characteristic spines in place (Algorithm 1, line 2).

    Both spines must be rank-ascending node-to-root paths in their
    respective SLDs (their tops are the two roots).  Relinks parents so
    every node's parent is its successor in the rank-merged order; the
    merged top becomes the root of the combined SLD.  Returns the merged
    spine (useful for testing and for the path D&C).
    """
    merged: list[int] = []
    i = j = 0
    while i < len(spine_a) and j < len(spine_b):
        if ranks[spine_a[i]] < ranks[spine_b[j]]:
            merged.append(spine_a[i])
            i += 1
        else:
            merged.append(spine_b[j])
            j += 1
    merged.extend(spine_a[i:])
    merged.extend(spine_b[j:])
    for a, b in zip(merged, merged[1:]):
        parents[a] = b
    if merged:
        parents[merged[-1]] = merged[-1]
    return merged


@cost_bound(
    work="n * log(n)",
    depth="n",
    vars=("n",),
    theorem="Section 3.1 framework over centroid splits: O(log n) levels, "
    "O(segment) split/merge work per node (not the optimal Theorem 3.7 bound)",
)
def sld_divide_and_conquer(
    tree: WeightedTree,
    tracker: CostTracker | None = None,
    timer: "PhaseTimer | None" = None,
) -> np.ndarray:
    """Parent array of the SLD, by centroid divide-and-conquer SLD-Merge."""
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    timer = timer if timer is not None else PhaseTimer()
    tracker = active_tracker(tracker)
    with timer.phase("solve"):
        cost = _solve(list(range(m)), tree.edges, tree.ranks, parents)
        if tracker is not None:
            tracker.add(cost)
    return parents


@cost_bound(
    work="n * log(n)",
    depth="n",
    vars=("n",),
    kind="helper",
    theorem="Section 3.1: balanced centroid recursion over the edge set",
)
def _solve(
    edge_ids: list[int],
    edges: np.ndarray,
    ranks: np.ndarray,
    parents: np.ndarray,
) -> WorkDepth:
    """Recursively solve the subtree spanned by ``edge_ids``."""
    k = len(edge_ids)
    if k == 1:
        parents[edge_ids[0]] = edge_ids[0]
        return WorkDepth.seq(1.0)

    adj: dict[int, list[tuple[int, int]]] = {}
    for e in edge_ids:
        u, v = int(edges[e, 0]), int(edges[e, 1])
        adj.setdefault(u, []).append((v, e))
        adj.setdefault(v, []).append((u, e))

    centroid = _edge_centroid(adj, k)
    group_a, group_b = _partition_branches(adj, centroid)

    split_cost = WorkDepth.seq(float(2 * k))
    cost_a = _solve(group_a, edges, ranks, parents)
    cost_b = _solve(group_b, edges, ranks, parents)

    # Characteristic edges: min-rank edges incident to the split vertex on
    # each side (Algorithm 1, line 1).
    in_a = set(group_a)
    inc_a = [e for (_, e) in adj[centroid] if e in in_a]
    inc_b = [e for (_, e) in adj[centroid] if e not in in_a]
    e_star_a = min(inc_a, key=lambda e: ranks[e])
    e_star_b = min(inc_b, key=lambda e: ranks[e])
    spine_a = extract_spine(parents, e_star_a)
    spine_b = extract_spine(parents, e_star_b)
    merge_cost = WorkDepth.seq(float(len(spine_a) + len(spine_b)))
    merge_spines(parents, spine_a, spine_b, ranks)
    return split_cost + combine_parallel([cost_a, cost_b]) + merge_cost


def _edge_centroid(adj: dict[int, list[tuple[int, int]]], m: int) -> int:
    """Vertex minimizing its largest incident branch (in edges).

    The winner has maximum branch <= ceil(m/2) and degree >= 2 whenever
    ``m >= 2``, so both recursion sides are nonempty.
    """
    root = next(iter(adj))
    # Iterative post-order: subtree edge counts below each vertex.
    sub = {v: 0 for v in adj}
    parent: dict[int, int | None] = {root: None}
    order: list[int] = []
    stack = [root]
    while stack:
        v = stack.pop()
        order.append(v)
        for w, _ in adj[v]:
            if w != parent[v]:
                parent[w] = v
                stack.append(w)
    for v in reversed(order):
        p = parent[v]
        if p is not None:
            sub[p] += sub[v] + 1
    best_v = root
    best_max = m + 1
    for v in adj:
        worst = m - sub[v]  # the "upward" branch
        for w, _ in adj[v]:
            if w != parent[v]:
                worst = max(worst, sub[w] + 1)
        if worst < best_max or (worst == best_max and v < best_v):
            best_max = worst
            best_v = v
    return best_v


def _partition_branches(
    adj: dict[int, list[tuple[int, int]]], centroid: int
) -> tuple[list[int], list[int]]:
    """Split the centroid's branches into two balanced edge groups."""
    branches: list[list[int]] = []
    for w, e in adj[centroid]:
        comp = [e]
        stack = [(w, centroid)]
        while stack:
            x, frm = stack.pop()
            for y, f in adj[x]:
                if y != frm:
                    comp.append(f)
                    stack.append((y, x))
        branches.append(comp)
    branches.sort(key=len, reverse=True)
    group_a: list[int] = []
    group_b: list[int] = []
    for comp in branches:
        (group_a if len(group_a) <= len(group_b) else group_b).extend(comp)
    return group_a, group_b
