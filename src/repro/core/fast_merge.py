"""Slab-native SLD construction: the flat-array backend for ``divide-conquer``.

The reference SLD-Merge path (``repro.core.merge``) and the weight-D&C it
generalizes (``repro.core.weight_dc``) both recurse through Python objects
-- per-call edge-id lists, dict-based component tables, scalar glue loops.
This twin computes the same dendrogram with no per-merge Python objects:
it emits the ``parents`` slab directly from a *level-synchronous* sweep
over aligned power-of-two rank segments.

Write the edge ranks ``0..m-1`` at the leaves of a binary interval tree
and process its levels top-down.  At segment size ``s`` every aligned
segment ``[a, a+s)`` splits at its midpoint ``c = a + s/2``:

* the segment's endpoint labels name the merge clusters *at time* ``a``
  (each coarser level relabeled exactly the edges that were in its high
  half, so all edges of a segment share one relabel history -- segments
  are perfectly nested);
* the connected components of the low-half edges ``[a, c)`` over those
  labels are therefore the clusters formed inside the window, and each
  component's dendrogram root is its max-rank edge (the window's top
  merge of that cluster);
* by the glue lemma (Lemma 4.2 / ``weight_dc``), that root's parent is
  the minimum-rank high-half edge incident to the contracted component --
  *when one exists in this segment*.  When none does, the cluster's next
  merge lies beyond the segment and the write happened at the unique
  coarser level where the root rank and its parent rank first split into
  different halves.  Every ``parents`` cell is thus written exactly once,
  and the global root (rank ``m-1``) never.

All per-level phases are vectorized: one ``np.unique`` over composite
``segment * n + label`` keys compacts every segment's low-half endpoints
at once (segments never mix -- a low edge keys both endpoints with its
own segment id), deterministic min-hooking with pointer-doubling
compression finds the components (the converged representative is the
component's minimum label, so relabeling stays injective per cluster),
``np.maximum.at`` scatters the component roots, and one lexsort over
``(component, rank)`` glue rows picks each component's minimum-rank
incident high edge.  Output is **bit-identical** to the reference: the
SLD is unique under the (weight, edge-id) rank order.

With instrumentation active (an enabled tracker, or a shadow-access
recorder installed) this backend delegates to the reference
implementation, which owns the work/depth accounting.
"""

from __future__ import annotations

import numpy as np

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound
from repro.checkers.contracts import slab_contract
from repro.core.merge import sld_divide_and_conquer
from repro.runtime.cost_model import CostTracker, active_tracker
from repro.runtime.instrumentation import PhaseTimer
from repro.trees.wtree import WeightedTree
from repro.util import log2ceil

__all__ = ["sld_merge_fast"]


@cost_bound(
    work="n * log(n)",
    depth="n",
    vars=("n",),
    theorem="instrumented runs delegate to sld_divide_and_conquer, so "
    "charged cost is the reference's (Section 3.1 centroid splits); the "
    "uncharged array path is the level-synchronous sweep _merge_levels "
    "declares",
)
@slab_contract(
    dtypes={
        "tree.edges": "int64",
        "tree.ranks": "int64",
        "tree.weights": "float64",
    },
    returns="int64",
)
def sld_merge_fast(
    tree: WeightedTree,
    tracker: CostTracker | None = None,
    timer: PhaseTimer | None = None,
) -> np.ndarray:
    """Parent array of the SLD, by the level-synchronous array merge.

    Bit-identical to :func:`repro.core.merge.sld_divide_and_conquer` (and
    every other registered algorithm -- the SLD is unique) on every input.
    """
    if active_tracker(tracker) is not None or _access.RECORDER is not None:
        return sld_divide_and_conquer(tree, tracker=tracker, timer=timer)
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m <= 1:
        return parents
    timer = timer if timer is not None else PhaseTimer()
    with timer.phase("solve"):
        _merge_levels(tree, parents)
    return parents


@cost_bound(
    work="n * log(n)**2",
    depth="log(n)**2",
    vars=("n",),
    kind="helper",
    theorem="one top-down level per bit of the rank range; per level one "
    "np.unique sort, O(log) CC rounds, one glue lexsort",
)
@slab_contract(
    dtypes={"tree.edges": "int64", "tree.ranks": "int64", "parents": "int64"},
    contiguous=("parents",),
    writes=("parents",),
)
def _merge_levels(tree: WeightedTree, parents: np.ndarray) -> None:
    """Fill ``parents`` (in-place) by the aligned-segment level sweep.

    Everything runs in *rank space*: index ``r`` of the working arrays is
    the edge of rank ``r``, so a level's segments are arithmetic masks
    over ``arange(m)`` and the composite CC keys come from one shift.
    ``order`` maps ranks back to edge ids only when writing ``parents``.
    """
    m = tree.m
    n = tree.n
    ranks = tree.ranks
    rr = np.arange(m, dtype=np.int64)
    # order[r] = id of the edge with rank r (ranks is a permutation).
    order = np.empty(m, dtype=np.int64)
    order[ranks] = rr
    # Working endpoint labels, rank-indexed; levels relabel their high
    # halves in place as the sweep descends.
    lu = np.ascontiguousarray(tree.edges[order, 0])
    lv = np.ascontiguousarray(tree.edges[order, 1])
    for shift in range(log2ceil(m), 0, -1):
        half = np.int64(1) << (shift - 1)
        seg = rr >> shift
        is_low = (rr & half) == 0
        idx_low = np.flatnonzero(is_low)
        idx_high = np.flatnonzero(~is_low)
        # -- components of every segment's low half at once.  Composite
        # keys keep segments apart; np.unique compacts the label domain.
        keys = np.concatenate(  # noqa: RPR204 -- fresh per-level key slab
            (seg[idx_low] * n + lu[idx_low], seg[idx_low] * n + lv[idx_low])
        )
        uniq, inv = np.unique(keys, return_inverse=True)
        kl = idx_low.size
        a = inv[:kl]
        b = inv[kl:]
        p = np.arange(uniq.size, dtype=np.int64)
        while True:  # noqa: RPR102 -- min-hooking CC, O(log) rounds
            pa = p[a]
            pb = p[b]
            if np.array_equal(pa, pb):
                break
            np.minimum.at(p, np.maximum(pa, pb), np.minimum(pa, pb))
            while True:  # noqa: RPR102 -- pointer-jumping, O(log) hops
                nxt = p[p]
                if np.array_equal(nxt, p):
                    break
                p = nxt
        # -- component roots: the max-rank low edge of each component
        # (its rank; idx_low *is* the rank in rank space).
        maxrank = np.full(uniq.size, -1, dtype=np.int64)
        np.maximum.at(maxrank, p[a], idx_low)
        # -- locate the high edges' endpoints among the low components.
        seg_h = seg[idx_high]
        key_u = seg_h * n + lu[idx_high]
        key_v = seg_h * n + lv[idx_high]
        pos_u = np.minimum(np.searchsorted(uniq, key_u), uniq.size - 1)
        pos_v = np.minimum(np.searchsorted(uniq, key_v), uniq.size - 1)
        found_u = uniq[pos_u] == key_u
        found_v = uniq[pos_v] == key_v
        # -- glue: each component's min-rank incident high edge becomes
        # its root's parent (first row per component after the lexsort).
        row_comp = np.concatenate(  # noqa: RPR204 -- fresh per-level rows
            (p[pos_u[found_u]], p[pos_v[found_v]])
        )
        row_rank = np.concatenate(  # noqa: RPR204 -- fresh per-level rows
            (idx_high[found_u], idx_high[found_v])
        )
        if row_comp.size:
            g = np.lexsort((row_rank, row_comp))
            comp_s = row_comp[g]
            first = np.empty(comp_s.size, dtype=bool)
            first[0] = True
            first[1:] = comp_s[1:] != comp_s[:-1]
            parents[order[maxrank[comp_s[first]]]] = order[row_rank[g[first]]]
        # -- contract: relabel found high endpoints to their component's
        # representative label (the component's minimum label -- uniq is
        # sorted, reps are minima, so cluster naming stays injective).
        lu[idx_high[found_u]] = uniq[p[pos_u[found_u]]] - seg_h[found_u] * n
        lv[idx_high[found_v]] = uniq[p[pos_v[found_v]]] - seg_h[found_v] * n
