"""SeqUF: the sequential Kruskal-style union-find baseline (paper Section 1).

Edges are sorted by rank, then merged one at a time; a per-cluster "top
node" records the most recent merge inside each cluster so the new node can
adopt it.  This is the algorithm Wang et al. shipped and the baseline every
speedup in the paper (and in our Table 1 reproduction) is measured against.

Parallelism note: as in the paper, the only parallelizable step is the
initial sort, which is charged at parallel-sample-sort cost; the merge loop
is charged sequentially (depth = work).  That is why SeqUF's simulated
scaling curves stay nearly flat (Figure 6).

Fast path: with instrumentation inactive (``tracker`` absent or disabled
and no shadow-access recorder installed) the merge loop runs over plain
Python lists with the union-find inlined -- identical semantics (path
halving, union by size with the same tie-breaking) but none of the numpy
scalar-indexing or per-call charging overhead, which is worth ~4x on the
merge loop.  ``repro.bench`` regression-tests both the speedup and the
bit-identical output.
"""

from __future__ import annotations

import numpy as np

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound
from repro.primitives.sort import comparison_sort_cost
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker
from repro.runtime.instrumentation import PhaseTimer
from repro.structures.unionfind import UnionFind
from repro.trees.wtree import WeightedTree

__all__ = ["sequf"]


@cost_bound(
    work="n * log(n)",
    depth="n",
    vars=("n",),
    theorem="Section 1 / Table 1 baseline: O(n log n) sort + sequential merge loop",
)
def sequf(
    tree: WeightedTree,
    tracker: CostTracker | None = None,
    timer: PhaseTimer | None = None,
) -> np.ndarray:
    """Parent array of the SLD, by sequential union-find merging."""
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    timer = timer if timer is not None else PhaseTimer()
    tracker = active_tracker(tracker)

    with timer.phase("sort"):
        order = np.argsort(tree.ranks, kind="stable")
        if tracker is not None:
            tracker.add(comparison_sort_cost(m))

    if tracker is None and _access.RECORDER is None:
        with timer.phase("merge"):
            _merge_fast(tree, order, parents)
        return parents

    with timer.phase("merge"):
        edges = tree.edges
        uf = UnionFind(tree.n)
        # top[r] = most recent merge node inside the cluster rooted at r.
        top = np.full(tree.n, -1, dtype=np.int64)
        for e in order:
            e = int(e)
            u, v = int(edges[e, 0]), int(edges[e, 1])
            ru, rv = uf.find(u), uf.find(v)
            tu, tv = int(top[ru]), int(top[rv])
            if tu != -1:
                parents[tu] = e
            if tv != -1:
                parents[tv] = e
            w = uf.union(ru, rv)
            top[w] = e
        if tracker is not None:
            # The merge loop is inherently sequential: m iterations of O(1)
            # amortized union-find work (true find steps are counted).
            loop_work = float(m + uf.find_steps)
            tracker.add(WorkDepth(loop_work, loop_work))
    return parents


@cost_bound(
    work="n",
    depth="n",
    vars=("n",),
    kind="helper",
    theorem="same sequential merge loop; amortized-O(1) union-find per edge",
)
def _merge_fast(tree: WeightedTree, order: np.ndarray, parents: np.ndarray) -> None:
    """Uninstrumented merge loop: inlined list-based union-find.

    Must stay operation-for-operation equivalent to the instrumented loop in
    :func:`sequf` (path halving, union by size, ``size[ra] < size[rb]``
    swap) so both paths return bit-identical dendrograms -- enforced by
    ``tests/test_disabled_tracker.py``.
    """
    n = tree.n
    edges = tree.edges
    eu = edges[:, 0].tolist()
    ev = edges[:, 1].tolist()
    parent = list(range(n))
    size = [1] * n
    top = [-1] * n
    out = parents.tolist()
    for e in order.tolist():
        u = eu[e]
        v = ev[e]
        while parent[u] != u:
            parent[u] = parent[parent[u]]
            u = parent[u]
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        if u == v:
            raise ValueError(f"union of already-connected elements at edge {e}")
        tu = top[u]
        tv = top[v]
        if tu != -1:
            out[tu] = e
        if tv != -1:
            out[tv] = e
        if size[u] < size[v]:
            u, v = v, u
        parent[v] = u
        size[u] += size[v]
        top[u] = e
    parents[:] = out
