# noqa-module: RPR102 -- the drivers below declare polylog depth for the
# parallel algorithms they replay, but run as tight sequential host loops
# over flat arrays; per-line waivers would mark every loop in the file.
"""Flat-array fast backends for SLD-TreeContraction and RCTT.

Two wall-clock twins of the Section 3.2 / Section 4.2 algorithms:

* :func:`tree_contraction_fast` -- replaces both halves of the reference
  ``mode="heap"`` pipeline: the contraction schedule comes from the
  vectorized builder (``repro.contraction.fast``, no per-event Python
  objects), and the merge loop walks the contracted vertices straight out
  of the RC-tree arrays in contraction-round order, keeping one
  :class:`~repro.structures.heap_pool.HeapPool` heap handle per live
  cluster.  Per contracted vertex the driver performs exactly the
  reference steps -- ``filter_and_insert`` at the associated edge's rank,
  chain the sorted filtered set under the edge, meld into the target --
  so the output is bit-identical (the SLD is unique under the rank
  order, and Lemma 3.3 makes every within-round processing order valid).
* :func:`rctt_fast` -- RCTT with a compacted trace (the climb iterates
  over an index vector of still-active edges instead of re-masking all
  ``m`` every hop) and a single composite-key ``argsort`` for the bucket
  sort (``bucket * m + rank`` is unique, so the default unstable sort
  replaces the two-key lexsort).

Both twins delegate to their reference implementations whenever
instrumentation is active (enabled tracker, shadow-access recorder, or a
diagnostic hook like ``protected_log``/``race_check``): the array
backends are wall-clock backends, and the reference twins own the
work/depth accounting.
"""

from __future__ import annotations

import numpy as np

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound
from repro.checkers.contracts import slab_contract
from repro.core.rctt import rctt
from repro.core.tree_contraction_sld import sld_tree_contraction
from repro.runtime.cost_model import CostTracker, active_tracker
from repro.runtime.instrumentation import PhaseTimer
from repro.structures.heap_pool import HeapPool
from repro.trees.wtree import WeightedTree

__all__ = ["tree_contraction_fast", "rctt_fast"]


@cost_bound(
    work="n * log(h)",
    depth="(log(n) * log(h))**2",
    vars=("n", "h"),
    theorem="Theorem 3.7, array-driven: the heap-mode merge replayed from "
    "the RC-tree arrays with pooled heaps",
)
@slab_contract(
    dtypes={
        "tree.edges": "int64",
        "tree.ranks": "int64",
        "tree.weights": "float64",
    },
    returns="int64",
)
def tree_contraction_fast(
    tree: WeightedTree,
    seed: int | np.random.Generator | None = 0,
    tracker: CostTracker | None = None,
    timer: PhaseTimer | None = None,
    protected_log: dict | None = None,
    pool_cls: type[HeapPool] = HeapPool,
) -> np.ndarray:
    """Parent array of the SLD, by pooled-heap tree contraction.

    Bit-identical to ``sld_tree_contraction(tree, mode="heap", ...)``.
    ``pool_cls`` is a test seam (the fuzz selftest injects a sabotaged
    pool through it); production callers never pass it.
    """
    if (
        active_tracker(tracker) is not None
        or _access.RECORDER is not None
        or protected_log is not None
    ):
        return sld_tree_contraction(
            tree, mode="heap", seed=seed, tracker=tracker, timer=timer,
            protected_log=protected_log,
        )
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    timer = timer if timer is not None else PhaseTimer()

    with timer.phase("contract"):
        from repro.contraction.fast import build_rc_tree_fast

        rct = build_rc_tree_fast(tree, seed=seed, record_events=False)

    with timer.phase("merge"):
        # Contracted vertices in round order.  All events targeting a
        # vertex precede its own contraction (targets survive their event's
        # round), and events within one round touch disjoint spines, so a
        # flat round-ordered walk with immediate melds replays the
        # reference's per-round grouped schedule exactly.
        rc_edge = rct.edge
        contracted = np.flatnonzero(rc_edge >= 0)
        by_round = contracted[np.argsort(rct.round_of[contracted], kind="stable")]
        # The merge walk is scalar by design: per contracted vertex it does
        # O(log)-ish pool work keyed by Python ints, so the driver unboxes
        # the round-ordered columns once instead of per access.
        vl = by_round.tolist()  # noqa: RPR205 -- scalar merge driver by design
        ul = rct.parent[by_round].tolist()  # noqa: RPR205 -- scalar merge driver
        el = rc_edge[by_round].tolist()  # noqa: RPR205 -- scalar merge driver
        kl = tree.ranks[rc_edge[by_round]].tolist()  # noqa: RPR205 -- scalar driver
        pool = pool_cls(m)
        spine = [-1] * rct.n
        out = parents.tolist()  # noqa: RPR205 -- scalar merge driver by design
        filter_and_insert = pool.filter_and_insert
        meld = pool.meld
        for v, u, e, k in zip(vl, ul, el, kl):
            h, removed = filter_and_insert(spine[v], k, e)
            spine[v] = -1
            if removed:
                # Protected nodes (Claims 3.8/3.9): sorted chain under e.
                removed.sort()
                prev = -1
                for _, a in removed:
                    if prev != -1:
                        out[prev] = a
                    prev = a
                out[prev] = e
            spine[u] = meld(spine[u], h)

    with timer.phase("finalize"):
        leftover = pool.items(spine[rct.root])
        if leftover:
            leftover.sort()
            ids = [a for _, a in leftover]
            for a, b in zip(ids, ids[1:]):
                out[a] = b
            out[ids[-1]] = ids[-1]
    return np.asarray(out, dtype=np.int64)


@cost_bound(
    work="n * log(n)",
    depth="log(n)**2",
    vars=("n",),
    theorem="Section 4.2, Algorithm 6: compacted-index trace + "
    "composite-key bucket sort",
)
@slab_contract(
    dtypes={
        "tree.edges": "int64",
        "tree.ranks": "int64",
        "tree.weights": "float64",
    },
    returns="int64",
)
def rctt_fast(
    tree: WeightedTree,
    seed: int | np.random.Generator | None = 0,
    tracker: CostTracker | None = None,
    timer: PhaseTimer | None = None,
    race_check: bool = False,
) -> np.ndarray:
    """Parent array of the SLD, by RC-tree tracing over compacted indices.

    Bit-identical to :func:`repro.core.rctt.rctt` for the same seed.
    """
    if (
        active_tracker(tracker) is not None
        or _access.RECORDER is not None
        or race_check
    ):
        return rctt(tree, seed=seed, tracker=tracker, timer=timer, race_check=race_check)
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    if m == 0:
        return parents
    timer = timer if timer is not None else PhaseTimer()
    edge_ranks = tree.ranks

    with timer.phase("build"):
        from repro.contraction.fast import build_rc_tree_fast

        rct = build_rc_tree_fast(tree, seed=seed, record_events=False)

    with timer.phase("trace"):
        rc_parent = rct.parent
        rc_edge = rct.edge
        root = rct.root
        node_rank = np.full(rct.n, np.iinfo(np.int64).max, dtype=np.int64)
        non_root = rc_edge >= 0
        node_rank[non_root] = edge_ranks[rc_edge[non_root]]
        # Vectorized inverse association (edge id -> contracted vertex).
        voe = np.empty(m, dtype=np.int64)
        voe[rc_edge[non_root]] = np.flatnonzero(non_root)
        u = rc_parent[voe]
        idx = np.flatnonzero((u != root) & (node_rank[u] < edge_ranks))
        while idx.size:
            hop = rc_parent[u[idx]]
            u[idx] = hop
            still = (hop != root) & (node_rank[hop] < edge_ranks[idx])
            idx = idx[still]

    with timer.phase("sort"):
        # bucket-major, rank-minor; ranks are unique so the composite key
        # is unique and the default (unstable) sort gives the lexsort order.
        order = np.argsort(u * m + edge_ranks)
        bucket_of = u[order]
        same_bucket = bucket_of[1:] == bucket_of[:-1]
        parents[order[:-1][same_bucket]] = order[1:][same_bucket]
        tail_pos = np.flatnonzero(~np.r_[same_bucket, False])
        tails = order[tail_pos]
        tail_buckets = bucket_of[tail_pos]
        at_root = tail_buckets == root
        parents[tails[at_root]] = tails[at_root]
        parents[tails[~at_root]] = rc_edge[tail_buckets[~at_root]]
    return parents
