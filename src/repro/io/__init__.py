"""Persistence: save/load trees and dendrograms as ``.npz`` archives.

The formats are intentionally plain -- raw arrays plus a format tag -- so
downstream tooling in any language can read them with a NumPy-compatible
loader.

* tree archive:        ``kind="tree"``, ``n``, ``edges (m,2)``, ``weights (m,)``
* dendrogram archive:  ``kind="dendrogram"``, the tree fields, ``parents (m,)``

Error contract
--------------
Every loader in this module raises :class:`FormatError` for any input that
is readable but not in the expected format: garbage or truncated bytes
where an ``.npz`` archive is expected, a wrong/missing ``kind`` tag,
missing arrays, and every malformed CSV condition (unparseable cells,
short rows, negative ids, non-finite weights, self loops, duplicate
edges).  ``load_edges_csv`` raises :class:`FormatError` and nothing else.
The ``.npz`` loaders additionally let validation errors for *well-formed*
archives whose payload violates a structural invariant surface as the
matching :class:`~repro.errors.ReproError` subclass
(:class:`~repro.errors.InvalidTreeError`,
:class:`~repro.errors.InvalidDendrogramError`); missing files raise
``OSError`` as usual.  ``repro.fuzz`` enforces this contract with random
byte streams.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import IO, Any

import numpy as np

from repro.dendrogram.structure import Dendrogram
from repro.errors import ReproError
from repro.trees.wtree import WeightedTree

__all__ = [
    "save_tree",
    "load_tree",
    "save_dendrogram",
    "load_dendrogram",
    "export_linkage_csv",
    "load_edges_csv",
]


class FormatError(ReproError):
    """The archive is not in the expected repro format."""


def save_tree(path: str | Path | IO[bytes], tree: WeightedTree) -> None:
    """Write a weighted tree to ``path`` (``.npz``)."""
    np.savez_compressed(
        path,
        kind=np.array("tree"),
        n=np.array(tree.n, dtype=np.int64),
        edges=tree.edges,
        weights=tree.weights,
    )


def load_tree(path: str | Path | IO[bytes]) -> WeightedTree:
    """Read a weighted tree saved by :func:`save_tree`."""
    with _open_archive(path) as data:
        _expect_kind(data, "tree", path)
        try:
            return WeightedTree(int(data["n"]), data["edges"], data["weights"])
        except ReproError:
            raise
        except Exception as exc:
            raise FormatError(f"{path}: malformed tree archive ({exc})") from exc


def save_dendrogram(path: str | Path | IO[bytes], dend: Dendrogram) -> None:
    """Write a dendrogram (tree + parents) to ``path`` (``.npz``)."""
    tree = dend.tree
    np.savez_compressed(
        path,
        kind=np.array("dendrogram"),
        n=np.array(tree.n, dtype=np.int64),
        edges=tree.edges,
        weights=tree.weights,
        parents=dend.parents,
    )


def load_dendrogram(path: str | Path | IO[bytes]) -> Dendrogram:
    """Read a dendrogram saved by :func:`save_dendrogram` (validated)."""
    with _open_archive(path) as data:
        _expect_kind(data, "dendrogram", path)
        try:
            tree = WeightedTree(int(data["n"]), data["edges"], data["weights"])
            parents = data["parents"]
        except ReproError:
            raise
        except Exception as exc:
            raise FormatError(f"{path}: malformed dendrogram archive ({exc})") from exc
        return Dendrogram(tree, parents, validate=True)


def export_linkage_csv(path: str | Path, dend: Dendrogram) -> None:
    """Write the SciPy-style linkage matrix as CSV with a header row."""
    Z = dend.to_linkage()
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["cluster_a", "cluster_b", "distance", "size"])
        for row in Z:
            writer.writerow([int(row[0]), int(row[1]), repr(float(row[2])), int(row[3])])


def load_edges_csv(
    path: str | Path, has_header: bool | None = None
) -> tuple[int, np.ndarray, np.ndarray]:
    """Read a weighted edge list from CSV: rows of ``u,v[,weight]``.

    Returns ``(n, edges, weights)`` with ``n = max vertex id + 1`` and unit
    weights where the column is absent.  Blank rows are skipped.  The first
    non-blank row is the header candidate: ``has_header=True`` skips it
    unconditionally, ``has_header=False`` never skips, and ``has_header=None``
    (the default) skips it exactly when its first cell does not parse as an
    integer.  Feed the result to
    :func:`repro.trees.mst.minimum_spanning_tree` or
    :func:`repro.cluster.graph_linkage.graph_single_linkage`.

    Raises :class:`FormatError` -- and no other exception -- on every
    malformed input: short rows, cells that do not parse (``"x"`` or
    ``"1.0"`` in an id column), negative vertex ids, non-finite weights,
    self loops (``u == v``), and duplicate edges (same endpoint pair in
    either orientation).  Messages name the file and 1-based row number.
    """
    rows: list[tuple[int, int, float]] = []
    seen: dict[tuple[int, int], int] = {}
    at_first_data_row = True
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        for i, row in enumerate(reader):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if at_first_data_row:
                at_first_data_row = False
                if has_header:
                    continue
                if has_header is None and not _parses_as_int(row[0]):
                    continue  # auto-detected header row
            if len(row) < 2:
                raise FormatError(f"{path}: row {i + 1} has fewer than two columns")
            u = _parse_vertex(row[0], path, i)
            v = _parse_vertex(row[1], path, i)
            if u == v:
                raise FormatError(f"{path}: row {i + 1} is a self loop at vertex {u}")
            w = 1.0
            if len(row) >= 3 and row[2].strip():
                try:
                    w = float(row[2])
                except ValueError:
                    raise FormatError(
                        f"{path}: row {i + 1}: cannot parse {row[2]!r} as a float weight"
                    ) from None
                if not math.isfinite(w):
                    raise FormatError(
                        f"{path}: row {i + 1}: weight {row[2]!r} is not finite"
                    )
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise FormatError(
                    f"{path}: row {i + 1} is a duplicate of the edge "
                    f"({key[0]}, {key[1]}) from row {seen[key] + 1}"
                )
            seen[key] = i
            rows.append((u, v, w))
    if not rows:
        raise FormatError(f"{path}: no edges found")
    edges = np.array([(u, v) for u, v, _ in rows], dtype=np.int64)
    weights = np.array([w for _, _, w in rows], dtype=np.float64)
    n = int(edges.max()) + 1
    return n, edges, weights


def _parses_as_int(cell: str) -> bool:
    try:
        int(cell)
    except ValueError:
        return False
    return True


def _parse_vertex(cell: str, path: str | Path, i: int) -> int:
    try:
        value = int(cell)
    except ValueError:
        raise FormatError(
            f"{path}: row {i + 1}: cannot parse {cell!r} as an integer vertex id"
        ) from None
    if value < 0:
        raise FormatError(f"{path}: row {i + 1} has a negative vertex id: {value}")
    return value


def _open_archive(path: str | Path | IO[bytes]) -> Any:
    """``np.load`` with non-archive failures wrapped into :class:`FormatError`.

    Missing files keep raising ``OSError``; everything else a byte stream
    can do wrong (not a zip, truncated members, bad CRCs, pickled arrays)
    becomes a :class:`FormatError` naming the path.
    """
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise FormatError(
            f"{path}: not a readable .npz archive ({type(exc).__name__}: {exc})"
        ) from exc


def _expect_kind(data: Any, kind: str, path: str | Path | IO[bytes]) -> None:
    try:
        found = str(data["kind"]) if "kind" in data else "<missing>"
    except Exception as exc:
        raise FormatError(f"{path}: unreadable archive index ({exc})") from exc
    if found != kind:
        raise FormatError(f"{path}: expected a {kind!r} archive, found kind={found!r}")
