"""Binary edge files and external-sort spill runs (the out-of-core layer).

``REDG1`` is a raw binary edge-list format sized for graphs that do not
fit in RAM: a fixed 24-byte header (8-byte magic, ``n`` int64, ``m``
int64) followed by the ``(m, 2)`` int64 endpoint table (C order) and the
``(m,)`` float64 weight vector.  Everything streams: the reader yields
bounded chunks, never materializing the file.

On top of the reader sit the two halves of an external sort by the
deterministic ``(weight, edge-id)`` rank key:

* :func:`spill_runs` reads the file chunk-by-chunk, validates each chunk
  (the streamed twin of ``repro.trees.mst._check_graph``), sorts it by
  the rank key (a stable weight sort -- ids are ascending within a
  chunk), and writes each sorted run to a spill directory as packed
  :data:`RUN_DTYPE` records.
* :func:`merge_runs` k-way-merges the runs back into globally
  rank-ordered batches while holding only one bounded block per run: per
  round every live run's block is topped up, the *bound* is the smallest
  block-last key among runs with unread data (every unread record
  compares strictly greater -- keys are unique), and all buffered
  records at or below the bound are emitted after one lexsort.  The
  bounding run drains its whole block, so each round makes at least one
  block of progress.

Peak memory is ``O(chunk)`` records in both halves regardless of ``m``,
which is what lets ``repro.trees.mst.streaming_kruskal_mst`` process
10^7-edge files under a fixed budget.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from pathlib import Path
from typing import IO

import numpy as np

from repro.errors import InvalidGraphError
from repro.io import FormatError

__all__ = [
    "EDGEFILE_MAGIC",
    "EDGEFILE_HEADER_BYTES",
    "RUN_DTYPE",
    "write_edge_file",
    "read_edge_header",
    "iter_edge_chunks",
    "read_edge_file",
    "spill_runs",
    "merge_runs",
]

#: 8-byte magic opening every REDG1 file.
EDGEFILE_MAGIC = b"REDG1\x00\x00\x00"

#: Header size: magic + n (int64) + m (int64).
EDGEFILE_HEADER_BYTES = len(EDGEFILE_MAGIC) + 16

#: Spill-run record: the rank key (weight, id) plus the endpoints.
RUN_DTYPE = np.dtype([("w", "<f8"), ("id", "<i8"), ("u", "<i8"), ("v", "<i8")])

_EDGE_RECORD_BYTES = 16  # one (u, v) int64 pair


def write_edge_file(
    path: str | Path, n: int, edges: np.ndarray, weights: np.ndarray
) -> None:
    """Write a REDG1 edge file (no validation beyond shape -- the reader
    validates, so hostile files exercise the streaming error contract)."""
    edges = np.ascontiguousarray(edges, dtype=np.int64)
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
        raise InvalidGraphError(f"edges must have shape (m, 2), got {edges.shape}")
    if weights.shape != (edges.shape[0],):
        raise InvalidGraphError("need exactly one weight per edge")
    with open(path, "wb") as fh:
        fh.write(EDGEFILE_MAGIC)
        fh.write(np.int64(n).tobytes())
        fh.write(np.int64(edges.shape[0]).tobytes())
        edges.tofile(fh)
        weights.tofile(fh)


def _read_header(fh: IO[bytes], path: str | Path) -> tuple[int, int]:
    header = fh.read(EDGEFILE_HEADER_BYTES)
    if len(header) != EDGEFILE_HEADER_BYTES or not header.startswith(EDGEFILE_MAGIC):
        raise FormatError(f"{path}: not a REDG1 edge file")
    n = int(np.frombuffer(header, dtype=np.int64, count=1, offset=8)[0])
    m = int(np.frombuffer(header, dtype=np.int64, count=1, offset=16)[0])
    if n < 1 or m < 0:
        raise FormatError(f"{path}: header declares n={n}, m={m}")
    expected = EDGEFILE_HEADER_BYTES + m * (_EDGE_RECORD_BYTES + 8)
    size = os.fstat(fh.fileno()).st_size
    if size != expected:
        raise FormatError(
            f"{path}: file is {size} bytes, header requires {expected} (m={m})"
        )
    return n, m


def read_edge_header(path: str | Path) -> tuple[int, int]:
    """``(n, m)`` from a REDG1 header (size-checked against the payload)."""
    with open(path, "rb") as fh:
        return _read_header(fh, path)


def iter_edge_chunks(
    path: str | Path, chunk: int, validate: bool = True
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """Yield ``(start_id, edges, weights)`` chunks of at most ``chunk`` edges.

    Chunks arrive in file (= edge-id) order; ``start_id`` is the global id
    of the chunk's first edge.  With ``validate=True`` each chunk is
    checked like ``_check_graph`` (endpoint range, self loops, finite
    weights) and the first offending chunk raises
    :class:`~repro.errors.InvalidGraphError`.
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    with open(path, "rb") as fh:
        n, m = _read_header(fh, path)
        weights_off = EDGEFILE_HEADER_BYTES + m * _EDGE_RECORD_BYTES
        start = 0
        while start < m:
            count = min(chunk, m - start)
            fh.seek(EDGEFILE_HEADER_BYTES + start * _EDGE_RECORD_BYTES)
            flat = np.fromfile(fh, dtype=np.int64, count=2 * count)
            if flat.size != 2 * count:
                raise FormatError(f"{path}: truncated endpoint table")
            edges = flat.reshape(count, 2)
            fh.seek(weights_off + start * 8)
            weights = np.fromfile(fh, dtype=np.float64, count=count)
            if weights.size != count:
                raise FormatError(f"{path}: truncated weight vector")
            if validate:
                _validate_chunk(n, edges, weights, start, path)
            yield start, edges, weights
            start += count


def _validate_chunk(
    n: int, edges: np.ndarray, weights: np.ndarray, start: int, path: str | Path
) -> None:
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise InvalidGraphError(
            f"{path}: chunk at edge {start}: endpoints must lie in [0, {n})"
        )
    if (edges[:, 0] == edges[:, 1]).any():
        raise InvalidGraphError(f"{path}: chunk at edge {start}: self loops are not allowed")
    if not np.isfinite(weights).all():
        raise InvalidGraphError(f"{path}: chunk at edge {start}: weights must be finite")


def read_edge_file(path: str | Path) -> tuple[int, np.ndarray, np.ndarray]:
    """Materialize a whole REDG1 file as ``(n, edges, weights)``.

    Convenience for files known to fit in RAM (tests, the instrumented
    paths); the streaming pipelines never call this.
    """
    n, m = read_edge_header(path)
    edges = np.empty((m, 2), dtype=np.int64)
    weights = np.empty(m, dtype=np.float64)
    for start, e, w in iter_edge_chunks(path, chunk=max(m, 1)):
        edges[start : start + e.shape[0]] = e
        weights[start : start + w.size] = w
    return n, edges, weights


def spill_runs(path: str | Path, spill_dir: str | Path, chunk: int) -> list[Path]:
    """External-sort phase 1: write rank-sorted runs of ``chunk`` edges.

    Each run is a packed :data:`RUN_DTYPE` file sorted by the ``(weight,
    id)`` rank key -- ids ascend within a chunk, so one stable weight
    sort realizes the lexicographic key.  Returns the run paths in file
    order.  Peak memory is one chunk of records.
    """
    spill_dir = Path(spill_dir)
    spill_dir.mkdir(parents=True, exist_ok=True)
    runs: list[Path] = []
    for start, edges, weights in iter_edge_chunks(path, chunk):
        count = weights.size
        run = np.empty(count, dtype=RUN_DTYPE)
        order = np.argsort(weights, kind="stable")
        run["w"] = weights[order]
        run["id"] = start + order
        run["u"] = edges[order, 0]
        run["v"] = edges[order, 1]
        run_path = spill_dir / f"run-{len(runs):06d}.bin"
        run.tofile(run_path)
        runs.append(run_path)
    return runs


def merge_runs(runs: list[Path], merge_block: int) -> Iterator[np.ndarray]:
    """External-sort phase 2: yield :data:`RUN_DTYPE` batches in exact
    global ``(weight, id)`` order.

    Holds at most ``merge_block`` records per run plus one output batch;
    the concatenation of all yielded batches is the fully sorted record
    stream.  ``(weight, id)`` keys are unique (ids are), so the order --
    and everything downstream -- is deterministic.
    """
    if merge_block < 1:
        raise ValueError(f"merge_block must be >= 1, got {merge_block}")
    handles = [open(p, "rb") for p in runs]
    try:
        buffers = [np.empty(0, dtype=RUN_DTYPE) for _ in runs]
        live = [True] * len(runs)  # run still has unread records on disk
        while True:
            # Top up every buffer whose run still has data behind it.
            for i, fh in enumerate(handles):
                if live[i] and buffers[i].size < merge_block:
                    fresh = np.fromfile(fh, dtype=RUN_DTYPE, count=merge_block - buffers[i].size)
                    if fresh.size < merge_block - buffers[i].size:
                        live[i] = False
                    if fresh.size:
                        buffers[i] = (
                            np.concatenate((buffers[i], fresh))  # noqa: RPR204 -- capped at merge_block
                            if buffers[i].size
                            else fresh
                        )
            if not any(buf.size for buf in buffers):
                return
            # Every unread record exceeds its run's buffered tail, so the
            # smallest live tail bounds what is safe to emit this round.
            bound: tuple[float, int] | None = None
            for i, buf in enumerate(buffers):
                if live[i] and buf.size:
                    tail = (float(buf["w"][-1]), int(buf["id"][-1]))
                    if bound is None or tail < bound:
                        bound = tail
            take: list[np.ndarray] = []
            for i, buf in enumerate(buffers):
                if not buf.size:
                    continue
                if bound is None:
                    k = buf.size
                else:
                    below = buf["w"] < bound[0]
                    at = (buf["w"] == bound[0]) & (buf["id"] <= bound[1])
                    k = int(np.count_nonzero(below | at))
                if k:
                    take.append(buf[:k])
                    buffers[i] = buf[k:]
            batch = (
                np.concatenate(take)  # noqa: RPR204 -- one bounded batch per yield
                if len(take) > 1
                else take[0]
            )
            batch = batch[np.lexsort((batch["id"], batch["w"]))]
            yield batch
    finally:
        for fh in handles:
            fh.close()
