"""Size ladders of structured trees for the empirical complexity-fit gate.

The fit gate (:mod:`repro.checkers.fit`) needs inputs whose *shape* is held
fixed while ``n`` grows, so that log-log growth against a declared bound is
meaningful.  Four families cover the paper's interesting regimes:

* ``path`` -- unit weights rank edges along the path, so the dendrogram is
  a chain: ``h = n - 1``, the high-``h`` adversary of Section 3.
* ``star`` -- every merge joins the one growing cluster: also ``h = n - 1``
  but with maximal rake parallelism in contraction.
* ``random`` -- a seeded uniform random tree (moderate, varied ``h``).
* ``caterpillar`` -- short spine with legs, the mixed rake/compress load.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.trees.generators import caterpillar, path_tree, random_tree, star_tree
from repro.trees.wtree import WeightedTree

__all__ = ["LadderPoint", "FAMILY_BUILDERS", "DEFAULT_SIZES", "size_ladder"]

#: Default size ladder: geometric, small enough for CI, long enough to fit.
#: Starts at 128: contraction round counts are still converging to their
#: O(log n) constant below that, which reads as spurious positive slope.
DEFAULT_SIZES: tuple[int, ...] = (128, 256, 512, 1024)


def _random(n: int) -> WeightedTree:
    return random_tree(n, seed=0)


def _caterpillar(n: int) -> WeightedTree:
    return caterpillar(n, spine=max(1, n // 4))


FAMILY_BUILDERS: dict[str, Callable[[int], WeightedTree]] = {
    "path": path_tree,
    "star": star_tree,
    "random": _random,
    "caterpillar": _caterpillar,
}


@dataclass(frozen=True)
class LadderPoint:
    """One rung: a tree of ``n`` vertices from a named family."""

    family: str
    n: int
    tree: WeightedTree


def size_ladder(
    sizes: Sequence[int] = DEFAULT_SIZES,
    families: Sequence[str] = tuple(FAMILY_BUILDERS),
) -> list[LadderPoint]:
    """Materialize the ladder: every family at every size, family-major."""
    out: list[LadderPoint] = []
    for family in families:
        try:
            builder = FAMILY_BUILDERS[family]
        except KeyError:
            raise ValueError(
                f"unknown ladder family {family!r}; expected one of {sorted(FAMILY_BUILDERS)}"
            ) from None
        for n in sizes:
            out.append(LadderPoint(family, int(n), builder(int(n))))
    return out
