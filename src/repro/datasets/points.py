"""Synthetic point clouds (BigANN / SIFT stand-ins and demo data)."""

from __future__ import annotations

import numpy as np

from repro.util import check_random_state

__all__ = ["gaussian_blobs", "noisy_rings"]


def gaussian_blobs(
    n: int,
    centers: int = 4,
    dim: int = 2,
    spread: float = 0.6,
    box: float = 10.0,
    min_separation: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Mixture-of-Gaussians cloud; returns ``(points, true_labels)``.

    Cluster centers are drawn uniformly in ``[-box, box]^dim`` and
    re-drawn until every pair is at least ``min_separation`` apart
    (default ``6 * spread``), so the ground-truth labels are actually
    recoverable.  Points are assigned to centers round-robin so every
    cluster is populated.
    """
    if n < centers:
        raise ValueError(f"need n >= centers, got n={n}, centers={centers}")
    rng = check_random_state(seed)
    if min_separation is None:
        min_separation = 6.0 * spread
    for _ in range(200):
        mus = rng.uniform(-box, box, size=(centers, dim))
        diffs = mus[:, None, :] - mus[None, :, :]
        dists = np.sqrt((diffs**2).sum(axis=2))
        np.fill_diagonal(dists, np.inf)
        if dists.min() >= min_separation:
            break
    else:
        raise ValueError(
            f"could not place {centers} centers {min_separation} apart in a "
            f"box of half-width {box}; lower min_separation or raise box"
        )
    labels = np.arange(n, dtype=np.int64) % centers
    points = mus[labels] + rng.normal(scale=spread, size=(n, dim))
    return points, labels


def noisy_rings(
    n: int,
    rings: int = 2,
    noise: float = 0.05,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Concentric 2-D rings -- the classic case where single linkage wins
    over centroid-based clustering; returns ``(points, true_labels)``."""
    if n < rings:
        raise ValueError(f"need n >= rings, got n={n}, rings={rings}")
    rng = check_random_state(seed)
    labels = np.arange(n, dtype=np.int64) % rings
    radii = 1.0 + labels.astype(np.float64)
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
    points = np.stack([radii * np.cos(theta), radii * np.sin(theta)], axis=1)
    points += rng.normal(scale=noise, size=points.shape)
    return points, labels
