"""Per-edge triangle counting and the paper's triangle weight scheme.

The paper builds tree inputs from social graphs by "(2) setting the weight
of each edge (u, v) to be 1/(1+t(u, v)), where t(u, v) is the number of
triangles incident on the edge" (Section 5).  Counting uses the standard
neighbor-set intersection, iterating each edge from its lower-degree
endpoint.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidGraphError

__all__ = ["triangle_counts", "triangle_weights"]


def triangle_counts(n: int, edges: np.ndarray) -> np.ndarray:
    """Number of triangles containing each edge of a simple graph."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
        raise InvalidGraphError(f"edges must have shape (m, 2), got {edges.shape}")
    neighbors: list[set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        u, v = int(u), int(v)
        if u == v:
            raise InvalidGraphError(f"self loop at vertex {u}")
        neighbors[u].add(v)
        neighbors[v].add(u)
    counts = np.empty(edges.shape[0], dtype=np.int64)
    for i, (u, v) in enumerate(edges):
        a, b = neighbors[int(u)], neighbors[int(v)]
        if len(b) < len(a):
            a, b = b, a
        counts[i] = sum(1 for x in a if x in b)
    return counts


def triangle_weights(n: int, edges: np.ndarray) -> np.ndarray:
    """The paper's weight scheme: ``w(u, v) = 1 / (1 + t(u, v))``.

    Edges in many triangles (dense communities) get small weights and merge
    first, so the MST + SLD pipeline clusters by community density.
    """
    return 1.0 / (1.0 + triangle_counts(n, edges).astype(np.float64))
