"""Synthetic stand-ins for the paper's gated real-world inputs.

The paper's Figure 8 inputs are Friendster, Twitter (both: symmetrize,
weight edges ``1/(1+triangles)``, take the MST), and a DiskANN k-NN graph
over 100M BigANN SIFT points (then MST).  None of those assets are
available offline, so this package generates structurally-similar graphs
and runs the *same* pipelines over them (see DESIGN.md Section 1):

* :func:`synthetic_graphs.rmat_graph` -- skewed-degree RMAT graph
  (Friendster stand-in);
* :func:`synthetic_graphs.preferential_attachment_graph` -- power-law
  follower-style graph (Twitter stand-in);
* :func:`points.gaussian_blobs` + :mod:`repro.cluster.knn` -- mixture
  point clouds (BigANN stand-in).
"""

from repro.datasets.points import gaussian_blobs, noisy_rings
from repro.datasets.synthetic_graphs import (
    preferential_attachment_graph,
    rmat_graph,
    social_mst,
)
from repro.datasets.triangles import triangle_counts, triangle_weights

__all__ = [
    "gaussian_blobs",
    "noisy_rings",
    "rmat_graph",
    "preferential_attachment_graph",
    "social_mst",
    "triangle_counts",
    "triangle_weights",
]
