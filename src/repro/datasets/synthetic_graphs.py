"""Synthetic social graphs (Friendster / Twitter stand-ins).

Two generators with the skewed-degree, triangle-rich structure the paper's
Figure 8 inputs have:

* :func:`rmat_graph` -- the classic R-MAT recursive-quadrant generator
  (Chakrabarti et al.), deduplicated and symmetrized;
* :func:`preferential_attachment_graph` -- Barabasi-Albert style growth
  (each new vertex attaches to ``m`` existing vertices chosen
  proportionally to degree), which yields a power-law "follower" degree
  distribution.

:func:`social_mst` runs the paper's exact pipeline on either: symmetrize,
weight edges ``1/(1+triangles)``, connect any residual components, and
return the minimum spanning tree as a :class:`~repro.trees.wtree.WeightedTree`.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.triangles import triangle_weights
from repro.errors import InvalidGraphError
from repro.structures.unionfind import UnionFind
from repro.trees.mst import minimum_spanning_tree
from repro.trees.wtree import WeightedTree
from repro.util import check_random_state

__all__ = ["rmat_graph", "preferential_attachment_graph", "social_mst"]


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | np.random.Generator | None = None,
) -> tuple[int, np.ndarray]:
    """R-MAT graph on ``2**scale`` vertices with ``~edge_factor * n`` edges.

    Returns ``(n, edges)`` with duplicates, self loops, and direction
    removed.  Quadrant probabilities ``(a, b, c, 1-a-b-c)`` default to the
    Graph500 values, which produce the heavy-tailed degree skew of social
    networks.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be a valid distribution")
    rng = check_random_state(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # One quadrant decision per bit level, vectorized over all edges.
    for _ in range(scale):
        r = rng.random(m)
        go_right = (r >= a) & (r < a + b) | (r >= a + b + c)
        go_down = r >= a + b
        src = (src << 1) | go_down.astype(np.int64)
        dst = (dst << 1) | go_right.astype(np.int64)
    keep = src != dst
    u = np.minimum(src[keep], dst[keep])
    v = np.maximum(src[keep], dst[keep])
    keys = u * np.int64(n) + v
    uniq = np.unique(keys)
    edges = np.stack([uniq // n, uniq % n], axis=1).astype(np.int64)
    return n, edges


def preferential_attachment_graph(
    n: int,
    m_attach: int = 4,
    seed: int | np.random.Generator | None = None,
) -> tuple[int, np.ndarray]:
    """Barabasi-Albert style power-law graph; returns ``(n, edges)``.

    Each new vertex draws ``m_attach`` endpoints from the degree-weighted
    repeated-endpoints urn; duplicate picks are collapsed, so vertices have
    *up to* ``m_attach`` out-attachments.
    """
    if n < 2:
        raise ValueError(f"need at least two vertices, got {n}")
    if m_attach < 1:
        raise ValueError(f"m_attach must be >= 1, got {m_attach}")
    rng = check_random_state(seed)
    urn: list[int] = [0, 1]  # endpoint multiset; seeded with the first edge
    pairs: set[tuple[int, int]] = {(0, 1)}
    for v in range(2, n):
        picks = {int(urn[int(rng.integers(len(urn)))]) for _ in range(min(m_attach, v))}
        for u in picks:
            pairs.add((min(u, v), max(u, v)))
            urn.append(u)
            urn.append(v)
    edges = np.array(sorted(pairs), dtype=np.int64)
    return n, edges


def social_mst(
    n: int,
    edges: np.ndarray,
    mst_method: str = "kruskal",
    seed: int | np.random.Generator | None = None,
) -> WeightedTree:
    """The paper's real-world-tree pipeline on a (possibly disconnected)
    simple undirected graph: triangle weights, component bridging, MST."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.shape[0] == 0:
        raise InvalidGraphError("graph has no edges")
    weights = triangle_weights(n, edges)
    # Bridge residual components with max-weight edges (they merge last, so
    # they do not perturb intra-component dendrogram structure).
    uf = UnionFind(n)
    for u, v in edges:
        if uf.find(int(u)) != uf.find(int(v)):
            uf.union(int(u), int(v))
    if uf.num_sets > 1:
        rng = check_random_state(seed)
        roots = np.array([uf.find(v) for v in range(n)])
        reps = np.unique(roots)
        bridge_w = float(weights.max()) + 1.0
        extra = []
        for a, b in zip(reps[:-1], reps[1:]):
            extra.append([int(a), int(b)])
            uf.union(int(a), int(b))
        edges = np.concatenate([edges, np.asarray(extra, dtype=np.int64)])
        weights = np.concatenate(
            [weights, np.full(len(extra), bridge_w) + rng.random(len(extra))]
        )
    return minimum_spanning_tree(n, edges, weights, method=mst_method)
