"""The batched dendrogram query engine over snapshot slabs.

:class:`QueryEngine` answers the serving-layer queries the ROADMAP's
dendrogram-as-a-service item calls for, each vectorized over its whole
batch so a million queries cost a handful of numpy passes:

* :meth:`~QueryEngine.merge_heights` / :meth:`~QueryEngine.merge_nodes`
  -- cophenetic queries in ``O(log h)`` per pair via the snapshot's
  binary-lifting table (:func:`repro.dendrogram.lca.batched_lca`);
* :meth:`~QueryEngine.cluster_of` -- the cluster containing each queried
  vertex at threshold ``t``, ``O(log h)`` per vertex, returned as stable
  cluster *keys* (see below);
* :meth:`~QueryEngine.cut_at` / :meth:`~QueryEngine.cut_k` -- full flat
  clusterings by threshold or target cluster count, ``O(n log h)`` per
  distinct cut and ``O(1)`` afterwards thanks to an LRU cut-cache.

Cluster keys vs. labels
-----------------------
``cluster_of`` answers point queries without materializing a full cut, so
it cannot number clusters densely; instead it returns *keys* that are
stable across calls at the same threshold: the dendrogram node (edge id)
whose subtree is the cluster, or ``m + v`` for a still-singleton vertex
``v``.  ``cut_at`` densifies exactly those keys into the canonical
labeling (clusters numbered by smallest member vertex), so
``cut_at(t)[vs]`` and ``canonical_labels(cluster_of(arange(n), t))[vs]``
agree, and ``cut_at`` is bit-identical to
:func:`repro.dendrogram.linkage.cut_height`.

The engine never writes to the snapshot slabs, so it serves read-only
``np.memmap`` views (many processes, one artifact) as-is.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.dendrogram.lca import batched_lca
from repro.dendrogram.linkage import canonical_labels
from repro.dendrogram.snapshot import DendrogramSnapshot, build_snapshot
from repro.dendrogram.structure import Dendrogram

__all__ = ["QueryEngine"]

#: Cut-cache entries kept per engine by default.
DEFAULT_CUT_CACHE_SIZE = 32


class QueryEngine:
    """Vectorized batch queries over a :class:`DendrogramSnapshot`.

    Parameters
    ----------
    snapshot:
        The slabs to serve (in-memory or mmap-loaded).
    cut_cache_size:
        Number of distinct cuts (thresholds and k values together) to keep
        in the LRU cut-cache; ``0`` disables caching.
    """

    def __init__(
        self, snapshot: DendrogramSnapshot, cut_cache_size: int = DEFAULT_CUT_CACHE_SIZE
    ) -> None:
        self.snapshot = snapshot
        self._cut_cache: OrderedDict[tuple[str, float | int], np.ndarray] = OrderedDict()
        self._cut_cache_size = int(cut_cache_size)

    @classmethod
    def from_dendrogram(
        cls, dend: Dendrogram, cut_cache_size: int = DEFAULT_CUT_CACHE_SIZE
    ) -> "QueryEngine":
        """Build the slabs in memory and serve them (no file round trip)."""
        return cls(build_snapshot(dend), cut_cache_size=cut_cache_size)

    # -- structure ---------------------------------------------------------
    @property
    def n(self) -> int:
        return self.snapshot.n

    @property
    def m(self) -> int:
        return self.snapshot.m

    @property
    def cached_cuts(self) -> int:
        """Number of cuts currently in the LRU cache."""
        return len(self._cut_cache)

    @property
    def generation(self) -> int:
        """The served snapshot's generation stamp (``-1`` = unstamped)."""
        return self.snapshot.generation

    def is_stale(self, current: int) -> bool:
        """Whether the served snapshot predates ``current``.

        ``current`` is a live :attr:`repro.core.dynamic.DynamicSLD.
        generation` counter.  Unstamped snapshots (``generation == -1``,
        i.e. built from a static dendrogram) are never stale.
        """
        return self.generation >= 0 and self.generation < int(current)

    # -- cophenetic queries ------------------------------------------------
    def merge_nodes(self, pairs: np.ndarray) -> np.ndarray:
        """Dendrogram node (edge id) where each ``(u, v)`` pair merges.

        Vectorized binary-lifting LCA: ``O(log h)`` per pair, one gather
        per level across the whole batch.  ``u == v`` pairs report ``-1``.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (k, 2), got {pairs.shape}")
        n = self.n
        if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
            bad = pairs[((pairs < 0) | (pairs >= n)).any(axis=1)][0]
            raise ValueError(
                f"vertices must lie in [0, {n}), got {int(bad[0])}, {int(bad[1])}"
            )
        out = np.full(pairs.shape[0], -1, dtype=np.int64)
        distinct = pairs[:, 0] != pairs[:, 1]
        if distinct.any():
            lp = self.snapshot.leaf_parent
            a = lp[pairs[distinct, 0]]
            b = lp[pairs[distinct, 1]]
            out[distinct] = batched_lca(self.snapshot.up, self.snapshot.depth, a, b)
        return out

    def merge_heights(self, pairs: np.ndarray) -> np.ndarray:
        """Cophenetic distance of each ``(u, v)`` pair (``0.0`` when equal)."""
        nodes = self.merge_nodes(pairs)
        out = np.zeros(nodes.shape[0], dtype=np.float64)
        distinct = nodes >= 0
        out[distinct] = self.snapshot.weights[nodes[distinct]]
        return out

    # -- point-in-cluster queries ------------------------------------------
    def cluster_of(self, vs: np.ndarray, threshold: float) -> np.ndarray:
        """Stable cluster key of each queried vertex at ``threshold``.

        The key is the top dendrogram node (edge id) still merged at the
        threshold, or ``m + v`` for a singleton vertex -- ``O(log h)`` per
        queried vertex, no full-cut materialization.
        """
        vs = np.asarray(vs, dtype=np.int64)
        if vs.ndim != 1:
            raise ValueError(f"vs must be a 1-D vertex array, got shape {vs.shape}")
        n = self.n
        if vs.size and (vs.min() < 0 or vs.max() >= n):
            bad = vs[(vs < 0) | (vs >= n)][0]
            raise ValueError(f"vertices must lie in [0, {n}), got {int(bad)}")
        keys = self.m + vs  # singleton key; overwritten where merged
        if self.m == 0:
            return keys
        lp = np.asarray(self.snapshot.leaf_parent, dtype=np.int64)[vs]
        merged = np.flatnonzero(self.snapshot.weights[lp] <= threshold)
        if merged.size:
            keys[merged] = self._highest_at_most(
                lp[merged], self.snapshot.weights, float(threshold)
            )
        return keys

    def _highest_at_most(
        self, nodes: np.ndarray, values: np.ndarray, limit: float | int
    ) -> np.ndarray:
        """Highest ancestor of each node whose ``values`` entry is <= limit.

        ``values`` must be non-decreasing along every node-to-root path
        (true for weights and ranks: parents merge later), which makes the
        classic high-to-low greedy lifting exact.
        """
        up = self.snapshot.up
        a = np.asarray(nodes, dtype=np.int64)
        for k in range(up.shape[0] - 1, -1, -1):
            p = np.take(up[k], a)
            a = np.where(np.take(values, p) <= limit, p, a)
        return a

    # -- flat cuts ---------------------------------------------------------
    def cut_at(self, threshold: float) -> np.ndarray:
        """Flat cluster labels after merging every edge with weight <= threshold.

        Bit-identical to :func:`repro.dendrogram.linkage.cut_height`
        (clusters numbered by smallest member vertex).  The result is a
        read-only array owned by the LRU cut-cache; copy before mutating.
        """
        return self._cached_cut(("t", float(threshold)))

    def cut_k(self, k: int) -> np.ndarray:
        """Flat cluster labels with exactly ``k`` clusters.

        Bit-identical to :func:`repro.dendrogram.linkage.cut_k`: the
        ``n - k`` lowest-rank edges are merged.
        """
        k = int(k)
        if not 1 <= k <= self.n:
            raise ValueError(f"cluster count k must be in [1, {self.n}], got {k}")
        return self._cached_cut(("k", k))

    def _cached_cut(self, key: tuple[str, float | int]) -> np.ndarray:
        cached = self._cut_cache.get(key)
        if cached is not None:
            self._cut_cache.move_to_end(key)
            return cached
        if key[0] == "t":
            labels = self._compute_cut(self.snapshot.weights, key[1])
        else:
            # Exactly k clusters: merge the n - k lowest-rank edges, i.e.
            # every node with rank < n - k (ranks are a permutation).
            labels = self._compute_cut(self.snapshot.ranks, self.n - int(key[1]) - 1)
        if self._cut_cache_size > 0:
            labels.flags.writeable = False
            self._cut_cache[key] = labels
            while len(self._cut_cache) > self._cut_cache_size:
                self._cut_cache.popitem(last=False)
        return labels

    def _compute_cut(self, values: np.ndarray, limit: float | int) -> np.ndarray:
        """Canonical labels after merging every node with ``values`` <= limit."""
        n, m = self.n, self.m
        keys = m + np.arange(n, dtype=np.int64)
        if m:
            lp = np.asarray(self.snapshot.leaf_parent, dtype=np.int64)
            merged = np.flatnonzero(np.asarray(values)[lp] <= limit)
            if merged.size:
                keys[merged] = self._highest_at_most(lp[merged], values, limit)
        return canonical_labels(keys)
