"""ASCII rendering of small dendrograms (debugging and examples).

Renders the SLD as an indented tree, one line per node, children indented
under parents, each internal node annotated with its edge id, endpoints,
weight, and rank.  Leaves (input vertices) are shown under the node that
first absorbs them.
"""

from __future__ import annotations

from repro.dendrogram.linkage import leaf_parents
from repro.dendrogram.structure import Dendrogram

__all__ = ["render_dendrogram"]

_MAX_RENDER_NODES = 2000


def render_dendrogram(dend: Dendrogram, show_leaves: bool = True) -> str:
    """Multi-line string visualization of the dendrogram.

    Children are ordered by decreasing rank (heavier subtree first) so the
    rendering is deterministic.  Refuses inputs above a size guard --
    rendering a million-node dendrogram is never what anyone meant.
    """
    tree = dend.tree
    if dend.m == 0:
        return "(single vertex; empty dendrogram)"
    if dend.m > _MAX_RENDER_NODES:
        raise ValueError(
            f"dendrogram has {dend.m} nodes; rendering is capped at "
            f"{_MAX_RENDER_NODES} (use metrics/linkage exports instead)"
        )
    kids = dend.children()
    ranks = tree.ranks
    for lst in kids:
        lst.sort(key=lambda e: -int(ranks[e]))
    leaves_under: list[list[int]] = [[] for _ in range(dend.m)]
    if show_leaves:
        lp = leaf_parents(tree)
        for v in range(tree.n):
            leaves_under[int(lp[v])].append(v)

    lines: list[str] = []

    def describe(e: int) -> str:
        u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
        return f"edge {e} ({u}-{v})  w={tree.weights[e]:g}  rank={int(ranks[e])}"

    # Iterative pre-order walk (chain-shaped dendrograms would overflow
    # Python's recursion limit well below the render cap).
    stack: list[tuple[str, int, str, bool, bool]] = [("node", dend.root, "", True, True)]
    while stack:
        kind, x, prefix, tail, is_root = stack.pop()
        if kind == "leaf":
            connector = "`-- " if tail else "|-- "
            lines.append(prefix + connector + f"vertex {x}")
            continue
        if is_root:
            lines.append(describe(x))
            child_prefix = ""
        else:
            connector = "`-- " if tail else "|-- "
            lines.append(prefix + connector + describe(x))
            child_prefix = prefix + ("    " if tail else "|   ")
        children: list[tuple[str, int]] = [("node", c) for c in kids[x]]
        children += [("leaf", v) for v in leaves_under[x]]
        for i in range(len(children) - 1, -1, -1):
            ckind, cx = children[i]
            stack.append((ckind, cx, child_prefix, i == len(children) - 1, False))
    return "\n".join(lines)
