"""Versioned, mmap-able on-disk dendrogram snapshots.

A snapshot is the serving-layer artifact of a computed dendrogram: the
flat int32/float64 slabs every query needs (tree edges/weights/ranks,
parent array, per-vertex leaf attachment) plus the precomputed
binary-lifting index (node depths and the ``up`` ancestor table), all in
one schema-versioned ``.npz``.  Saving pays the ``O(m log h)`` index
construction once; loading is a zero-copy warm start.

Zero-copy loading
-----------------
``np.savez`` stores members uncompressed (``ZIP_STORED``), so every array
sits as a contiguous ``.npy`` byte range inside the archive.
:func:`load_snapshot` locates each member's absolute data offset (local
zip header + npy header) and maps it with ``np.memmap(mode="r")`` -- the
OS pages slabs in on demand and shares them between processes, which is
what lets many query workers serve one artifact.  Pass ``mmap=False`` to
materialize plain in-memory arrays instead.

Error contract
--------------
:func:`load_snapshot` raises :class:`~repro.io.FormatError` for anything
that is not a well-formed snapshot: unreadable bytes, a wrong or missing
``schema`` tag, missing members, compressed members, dtype or shape
mismatches, and cross-field inconsistencies (``up[0] != parents``,
out-of-range indices).  Missing files raise ``OSError`` as usual.
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.dendrogram.lca import lifting_table
from repro.dendrogram.linkage import leaf_parents
from repro.dendrogram.metrics import node_depths
from repro.dendrogram.structure import Dendrogram
from repro.io import FormatError
from repro.trees.weights import ranks_of
from repro.trees.wtree import WeightedTree

__all__ = [
    "SNAPSHOT_SCHEMA",
    "DendrogramSnapshot",
    "build_snapshot",
    "build_snapshot_from_slabs",
    "save_snapshot",
    "load_snapshot",
]

#: Format tag stored under the ``schema`` key; bump on layout changes.
SNAPSHOT_SCHEMA = "repro-dendro-snapshot/1"

#: Array members and their required dtypes.  Shapes are checked
#: relationally in :meth:`DendrogramSnapshot.validate`.
_SLAB_DTYPES: dict[str, type] = {
    "edges": np.int32,
    "weights": np.float64,
    "ranks": np.int32,
    "parents": np.int32,
    "leaf_parent": np.int32,
    "depth": np.int32,
    "up": np.int32,
}


@dataclass
class DendrogramSnapshot:
    """The flat query-ready slabs of one dendrogram.

    All index slabs are int32 (``n < 2**31``), weights are float64.
    Instances loaded with ``mmap=True`` hold read-only ``np.memmap``
    views; nothing in the query layer writes to them.
    """

    n: int
    edges: np.ndarray  # (m, 2) tree edge endpoints
    weights: np.ndarray  # (m,) edge weights = node merge heights
    ranks: np.ndarray  # (m,) rank permutation of the edges
    parents: np.ndarray  # (m,) dendrogram parent array (root self-loops)
    leaf_parent: np.ndarray  # (n,) node each vertex hangs off (-1 iff m == 0)
    depth: np.ndarray  # (m,) node depths (root = 1)
    up: np.ndarray  # (levels, m) binary-lifting ancestor table
    #: Source generation stamp (see :attr:`repro.core.dynamic.DynamicSLD.
    #: generation`); ``-1`` means the snapshot is unstamped (static source)
    #: and is never considered stale.
    generation: int = -1

    @property
    def m(self) -> int:
        """Number of dendrogram nodes (= tree edges)."""
        return int(self.parents.shape[0])

    @property
    def levels(self) -> int:
        """Binary-lifting levels (covers the deepest node)."""
        return int(self.up.shape[0])

    @property
    def nbytes(self) -> int:
        """Total slab payload in bytes."""
        return sum(
            int(getattr(self, name).nbytes) for name in _SLAB_DTYPES
        )

    def validate(self) -> None:
        """Raise :class:`FormatError` on any structural inconsistency."""
        n, m = self.n, self.m
        if n < 1 or m != max(0, n - 1):
            raise FormatError(f"snapshot: n={n} is inconsistent with m={m} nodes")
        for name, dtype in _SLAB_DTYPES.items():
            arr = getattr(self, name)
            if arr.dtype != np.dtype(dtype):
                raise FormatError(
                    f"snapshot: member {name!r} has dtype {arr.dtype}, "
                    f"expected {np.dtype(dtype)}"
                )
        shapes = {
            "edges": (m, 2),
            "weights": (m,),
            "ranks": (m,),
            "parents": (m,),
            "leaf_parent": (n,),
            "depth": (m,),
            "up": (self.levels, m),
        }
        for name, expected in shapes.items():
            got = tuple(getattr(self, name).shape)
            if got != expected:
                raise FormatError(
                    f"snapshot: member {name!r} has shape {got}, expected {expected}"
                )
        if self.levels < 1:
            raise FormatError("snapshot: up table must have at least one level")
        if m:
            if not np.array_equal(self.up[0], self.parents):
                raise FormatError("snapshot: up[0] does not match the parent array")
            for name in ("parents", "depth", "ranks"):
                arr = getattr(self, name)
                if int(arr.min()) < (1 if name == "depth" else 0) or int(
                    arr.max()
                ) >= (m + 1 if name == "depth" else m):
                    raise FormatError(f"snapshot: member {name!r} has out-of-range values")
            if int(self.leaf_parent.min()) < 0 or int(self.leaf_parent.max()) >= m:
                raise FormatError("snapshot: leaf_parent has out-of-range values")
        elif not np.all(self.leaf_parent == -1):
            raise FormatError("snapshot: leaf_parent of an empty dendrogram must be -1")

    def to_dendrogram(self) -> Dendrogram:
        """Reconstruct the (validated) in-memory :class:`Dendrogram`."""
        tree = WeightedTree(
            self.n,
            np.asarray(self.edges, dtype=np.int64),
            np.asarray(self.weights, dtype=np.float64),
        )
        return Dendrogram(tree, np.asarray(self.parents, dtype=np.int64))


def build_snapshot(dend: Dendrogram, generation: int = -1) -> DendrogramSnapshot:
    """Precompute the query slabs of ``dend`` (the save-time O(m log h) pass).

    ``generation`` stamps the snapshot with the producing
    :class:`~repro.core.dynamic.DynamicSLD`'s update counter so serving
    layers can detect staleness; leave it at ``-1`` for static sources.
    """
    tree = dend.tree
    if tree.n >= 2**31:
        raise ValueError(f"snapshot slabs are int32; n={tree.n} does not fit")
    m = dend.m
    parents = dend.parents.astype(np.int32)
    if m:
        depth = node_depths(dend.parents, tree.ranks).astype(np.int32)
        up = lifting_table(parents, depth)
        leaf_parent = leaf_parents(tree).astype(np.int32)
    else:
        depth = np.zeros(0, dtype=np.int32)
        up = np.zeros((1, 0), dtype=np.int32)
        leaf_parent = np.full(tree.n, -1, dtype=np.int32)
    snap = DendrogramSnapshot(
        n=tree.n,
        edges=tree.edges.astype(np.int32),
        weights=np.asarray(tree.weights, dtype=np.float64),
        ranks=tree.ranks.astype(np.int32),
        parents=parents,
        leaf_parent=leaf_parent,
        depth=depth,
        up=up,
        generation=int(generation),
    )
    snap.validate()
    return snap


def build_snapshot_from_slabs(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
    parents: np.ndarray,
    generation: int = -1,
) -> DendrogramSnapshot:
    """Build a snapshot straight from flat slabs -- no object tree.

    The array pipeline's twin of :func:`build_snapshot`: takes the MST
    slabs (``edges``/``weights``) and the dendrogram ``parents`` array as
    produced by the ``backend="array"`` kernels and computes the query
    index with vectorized passes (pointer-doubling depths, one lexsort
    for the leaf attachments) instead of the per-vertex/per-edge Python
    loops of the object path.  Output is identical to
    ``build_snapshot(Dendrogram(WeightedTree(...), parents))``.
    """
    if n >= 2**31:
        raise ValueError(f"snapshot slabs are int32; n={n} does not fit")
    edges = np.asarray(edges, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    parents = np.asarray(parents, dtype=np.int64)
    m = int(parents.shape[0])
    ranks = ranks_of(weights)
    if m:
        # Depths by pointer doubling: (anc, d) with d = hops to anc; the
        # root's self-loop absorbs the recursion in O(log h) rounds.
        eids = np.arange(m, dtype=np.int64)
        d = (parents != eids).astype(np.int64)
        anc = parents.copy()
        while True:  # noqa: RPR102 -- pointer-jumping, O(log h) hops
            d2 = d + d[anc]
            anc2 = anc[anc]
            if np.array_equal(anc2, anc):
                break
            d = d2
            anc = anc2
        depth = (d + 1).astype(np.int32)
        up = lifting_table(parents.astype(np.int32), depth)
        # Leaf attachments: each vertex hangs off its min-rank incident
        # edge -- first occurrence per vertex after one (vertex, rank)
        # lexsort over both edge directions.
        verts = np.concatenate((edges[:, 0], edges[:, 1]))
        rk2 = np.concatenate((ranks, ranks))
        order = np.lexsort((rk2, verts))
        verts_s = verts[order]
        first = np.empty(verts_s.size, dtype=bool)
        first[0] = True
        first[1:] = verts_s[1:] != verts_s[:-1]
        leaf_parent = np.empty(n, dtype=np.int32)
        leaf_parent[verts_s[first]] = (order[first] % m).astype(np.int32)
    else:
        depth = np.zeros(0, dtype=np.int32)
        up = np.zeros((1, 0), dtype=np.int32)
        leaf_parent = np.full(n, -1, dtype=np.int32)
    snap = DendrogramSnapshot(
        n=int(n),
        edges=edges.astype(np.int32),
        weights=weights,
        ranks=ranks.astype(np.int32),
        parents=parents.astype(np.int32),
        leaf_parent=leaf_parent,
        depth=depth,
        up=up,
        generation=int(generation),
    )
    snap.validate()
    return snap


def save_snapshot(path: str | Path, source: Dendrogram | DendrogramSnapshot) -> None:
    """Write a snapshot archive (uncompressed ``.npz``, mmap-able).

    ``source`` may be a :class:`Dendrogram` (the slabs are built here) or a
    prebuilt :class:`DendrogramSnapshot`.
    """
    snap = source if isinstance(source, DendrogramSnapshot) else build_snapshot(source)
    snap.validate()
    np.savez(
        path,
        schema=np.array(SNAPSHOT_SCHEMA),
        n=np.array(snap.n, dtype=np.int64),
        generation=np.array(snap.generation, dtype=np.int64),
        **{name: getattr(snap, name) for name in _SLAB_DTYPES},
    )


def load_snapshot(path: str | Path, mmap: bool = True) -> DendrogramSnapshot:
    """Load (and validate) a snapshot archive saved by :func:`save_snapshot`.

    With ``mmap=True`` (default) every slab is a read-only ``np.memmap``
    over the archive bytes -- no copy, warm start.  With ``mmap=False``
    plain arrays are materialized.
    """
    meta = _load_meta(path)
    schema = meta.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise FormatError(
            f"{path}: expected schema {SNAPSHOT_SCHEMA!r}, found {schema!r}"
        )
    arrays = (
        _mmap_members(path, tuple(_SLAB_DTYPES))
        if mmap
        else _read_members(path, tuple(_SLAB_DTYPES))
    )
    snap = DendrogramSnapshot(
        n=int(meta["n"]), generation=int(meta["generation"]), **arrays
    )
    snap.validate()
    return snap


def _load_meta(path: str | Path) -> dict[str, Any]:
    """The scalar members (``schema``, ``n``) plus a member census."""
    try:
        with np.load(path, allow_pickle=False) as data:
            names = set(data.files)
            missing = sorted(({"schema", "n"} | set(_SLAB_DTYPES)) - names)
            if missing:
                raise FormatError(f"{path}: snapshot archive is missing members {missing}")
            return {
                "schema": str(data["schema"]),
                "n": int(data["n"]),
                # optional: archives written before the stamp existed (and
                # stamps from static sources) read back as "unstamped"
                "generation": int(data["generation"]) if "generation" in names else -1,
            }
    except FileNotFoundError:
        raise
    except FormatError:
        raise
    except Exception as exc:
        raise FormatError(
            f"{path}: not a readable snapshot archive ({type(exc).__name__}: {exc})"
        ) from exc


def _npy_spec(fh: Any, path: str | Path, name: str) -> tuple[tuple[int, ...], bool, np.dtype, int]:
    """Parse the npy header at the file's current offset.

    Returns ``(shape, fortran_order, dtype, data_offset)`` with the file
    positioned immediately after the header.
    """
    try:
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        else:
            raise FormatError(
                f"{path}: member {name!r} uses unsupported npy version {version}"
            )
    except FormatError:
        raise
    except Exception as exc:
        raise FormatError(
            f"{path}: member {name!r} has a malformed npy header ({exc})"
        ) from exc
    return tuple(shape), bool(fortran), dtype, int(fh.tell())


def _member_data_offset(fh: Any, info: zipfile.ZipInfo, path: str | Path) -> int:
    """Absolute offset of a stored member's payload within the archive.

    The central directory records where the member's *local* header
    starts; the payload follows the 30-byte fixed header plus the local
    (not central!) filename and extra fields.
    """
    fh.seek(info.header_offset)
    local = fh.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise FormatError(f"{path}: member {info.filename!r} has a corrupt local header")
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    return info.header_offset + 30 + name_len + extra_len


def _mmap_members(path: str | Path, names: tuple[str, ...]) -> dict[str, np.ndarray]:
    """Read-only ``np.memmap`` views of the named ``.npz`` members."""
    out: dict[str, np.ndarray] = {}
    try:
        zf = zipfile.ZipFile(path)
    except Exception as exc:
        raise FormatError(f"{path}: not a zip archive ({exc})") from exc
    with zf, open(path, "rb") as fh:
        infos = {i.filename: i for i in zf.infolist()}
        for name in names:
            info = infos.get(name + ".npy")
            if info is None:
                raise FormatError(f"{path}: snapshot archive is missing members ['{name}']")
            if info.compress_type != zipfile.ZIP_STORED:
                raise FormatError(
                    f"{path}: member {name!r} is compressed; snapshots must be "
                    "saved uncompressed (np.savez) to be mmap-able"
                )
            fh.seek(_member_data_offset(fh, info, path))
            shape, fortran, dtype, data_off = _npy_spec(fh, path, name)
            if int(np.prod(shape)) == 0:
                out[name] = np.zeros(shape, dtype=dtype)
            else:
                arr = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=data_off,
                    shape=shape,
                    order="F" if fortran else "C",
                )
                out[name] = arr
    return out


def _read_members(path: str | Path, names: tuple[str, ...]) -> dict[str, np.ndarray]:
    """Materialized copies of the named members (the non-mmap path)."""
    with np.load(path, allow_pickle=False) as data:
        return {name: np.array(data[name]) for name in names}
