"""Structural validation of dendrogram parent arrays.

These checks enforce the invariants every correct SLD satisfies; semantic
correctness against the clustering definition is checked in the test suite
by comparison with the brute-force oracle (:mod:`repro.core.brute`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidDendrogramError

__all__ = ["validate_parents", "check_same_dendrogram"]


def validate_parents(parents: np.ndarray, ranks: np.ndarray) -> None:
    """Verify the structural invariants of an SLD parent array.

    * one node per edge, parents in range;
    * exactly one root (``parents[e] == e``), and it is the max-rank edge
      (the last merge performed);
    * rank monotonicity: ``ranks[parents[e]] > ranks[e]`` for non-roots,
      which also implies acyclicity and that every node reaches the root.
    """
    parents = np.asarray(parents, dtype=np.int64)
    ranks = np.asarray(ranks, dtype=np.int64)
    m = parents.shape[0]
    if ranks.shape[0] != m:
        raise InvalidDendrogramError(
            f"parents has {m} nodes but ranks has {ranks.shape[0]} entries"
        )
    if m == 0:
        return
    if parents.min() < 0 or parents.max() >= m:
        bad = int(np.argmax((parents < 0) | (parents >= m)))
        raise InvalidDendrogramError(f"node {bad} has out-of-range parent {parents[bad]}")
    roots = np.flatnonzero(parents == np.arange(m))
    if roots.size != 1:
        raise InvalidDendrogramError(f"expected exactly one root, found {roots.size}")
    root = int(roots[0])
    if ranks[root] != m - 1:
        raise InvalidDendrogramError(
            f"root must be the max-rank edge (rank {m - 1}), got rank {ranks[root]}"
        )
    nonroot = parents != np.arange(m)
    bad_rank = nonroot & (ranks[parents] <= ranks)
    if bad_rank.any():
        bad = int(np.argmax(bad_rank))
        raise InvalidDendrogramError(
            f"node {bad} (rank {ranks[bad]}) has parent {parents[bad]} with "
            f"non-greater rank {ranks[parents[bad]]}"
        )


def check_same_dendrogram(parents_a: np.ndarray, parents_b: np.ndarray) -> bool:
    """True iff two parent arrays describe the identical dendrogram."""
    a = np.asarray(parents_a, dtype=np.int64)
    b = np.asarray(parents_b, dtype=np.int64)
    return a.shape == b.shape and bool(np.array_equal(a, b))
