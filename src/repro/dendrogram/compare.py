"""Comparing clusterings and hierarchies.

Pair-counting indices for flat partitions (Rand, adjusted Rand,
Fowlkes-Mallows) and the classic Fowlkes-Mallows ``B_k`` curve for
comparing two hierarchies level by level -- the standard tooling for
asking "do these two dendrograms tell the same story?", e.g. single vs
average linkage, or exact vs k-NN-approximated pipelines.

All pair counts use the contingency-table formulas (no O(n^2) pair
enumeration).
"""

from __future__ import annotations

import numpy as np

from repro.dendrogram.structure import Dendrogram
from repro.trees.wtree import WeightedTree

__all__ = [
    "pair_confusion",
    "rand_index",
    "adjusted_rand_index",
    "fowlkes_mallows",
    "fowlkes_mallows_curve",
]


def _contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"label arrays must be 1-D and equal length, got {a.shape}, {b.shape}")
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    table = np.zeros((ai.max() + 1, bi.max() + 1), dtype=np.int64)
    np.add.at(table, (ai, bi), 1)
    return table


def pair_confusion(a: np.ndarray, b: np.ndarray) -> tuple[int, int, int, int]:
    """Pair counts ``(both_same, a_same_only, b_same_only, both_diff)``.

    Counts unordered point pairs by whether each labeling puts them in the
    same cluster.
    """
    table = _contingency(a, b)
    n = int(table.sum())
    total = n * (n - 1) // 2
    same_a = int((np.square(table.sum(axis=1)).sum() - n) // 2)
    same_b = int((np.square(table.sum(axis=0)).sum() - n) // 2)
    both = int((np.square(table).sum() - n) // 2)
    return both, same_a - both, same_b - both, total - same_a - same_b + both


def rand_index(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of point pairs on which the two labelings agree."""
    both, a_only, b_only, neither = pair_confusion(a, b)
    total = both + a_only + b_only + neither
    return (both + neither) / total if total else 1.0


def adjusted_rand_index(a: np.ndarray, b: np.ndarray) -> float:
    """Rand index corrected for chance (0 expected for random labelings)."""
    table = _contingency(a, b)
    n = int(table.sum())
    if n < 2:
        return 1.0
    sum_comb = (table * (table - 1) // 2).sum()
    rows = table.sum(axis=1)
    cols = table.sum(axis=0)
    comb_rows = (rows * (rows - 1) // 2).sum()
    comb_cols = (cols * (cols - 1) // 2).sum()
    total = n * (n - 1) // 2
    expected = comb_rows * comb_cols / total
    max_index = (comb_rows + comb_cols) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_comb - expected) / (max_index - expected))


def fowlkes_mallows(a: np.ndarray, b: np.ndarray) -> float:
    """Fowlkes-Mallows index: geometric mean of pairwise precision/recall."""
    both, a_only, b_only, _ = pair_confusion(a, b)
    denom = (both + a_only) * (both + b_only)
    if denom == 0:
        return 1.0  # both labelings are all-singletons
    return float(both / np.sqrt(denom))


def fowlkes_mallows_curve(
    tree_a: WeightedTree | Dendrogram,
    tree_b: WeightedTree | Dendrogram,
    ks: list[int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The B_k curve: Fowlkes-Mallows index of the two hierarchies' k-cluster
    cuts, for each k.  Returns ``(ks, scores)``.

    Accepts trees or dendrograms over the *same* point set (cuts only need
    the trees).  Defaults to every k from 2 to n-1.
    """
    ta = tree_a.tree if isinstance(tree_a, Dendrogram) else tree_a
    tb = tree_b.tree if isinstance(tree_b, Dendrogram) else tree_b
    if ta.n != tb.n:
        raise ValueError(f"hierarchies cover different point counts: {ta.n} vs {tb.n}")
    from repro.dendrogram.linkage import cut_k

    if ks is None:
        ks = list(range(2, max(ta.n, 3)))
    ks_arr = np.asarray(ks, dtype=np.int64)
    scores = np.empty(ks_arr.shape[0], dtype=np.float64)
    for i, k in enumerate(ks_arr):
        scores[i] = fowlkes_mallows(cut_k(ta, int(k)), cut_k(tb, int(k)))
    return ks_arr, scores
