"""Single-linkage dendrogram representation, validation, and interop.

A single-linkage dendrogram (SLD) over a weighted tree with ``m = n-1``
edges is stored the way the paper stores it (Section 2.3): a parent array
over the *internal* nodes, one per edge, with the root pointing to itself.
Leaves (the input vertices) are attached implicitly -- vertex ``v`` hangs
off the node of the minimum-rank edge incident to ``v`` -- and are
materialized only for SciPy linkage conversion.
"""

from repro.dendrogram.analysis import ParallelismProfile, parallelism_profile
from repro.dendrogram.compare import (
    adjusted_rand_index,
    fowlkes_mallows,
    fowlkes_mallows_curve,
    rand_index,
)
from repro.dendrogram.cophenet import cophenetic_distance, cophenetic_matrix
from repro.dendrogram.lca import DendrogramIndex, batched_lca, lifting_table
from repro.dendrogram.linkage import (
    canonical_labels,
    cut_height,
    cut_k,
    leaf_parents,
    to_scipy_linkage,
)
from repro.dendrogram.metrics import dendrogram_height, level_widths, node_depths
from repro.dendrogram.query import QueryEngine
from repro.dendrogram.render import render_dendrogram
from repro.dendrogram.service import execute_batch, parse_query, serve_lines
from repro.dendrogram.snapshot import (
    SNAPSHOT_SCHEMA,
    DendrogramSnapshot,
    build_snapshot,
    load_snapshot,
    save_snapshot,
)
from repro.dendrogram.structure import Dendrogram
from repro.dendrogram.validate import check_same_dendrogram, validate_parents

__all__ = [
    "Dendrogram",
    "validate_parents",
    "check_same_dendrogram",
    "dendrogram_height",
    "node_depths",
    "level_widths",
    "to_scipy_linkage",
    "leaf_parents",
    "cut_height",
    "cut_k",
    "canonical_labels",
    "cophenetic_distance",
    "cophenetic_matrix",
    "render_dendrogram",
    "DendrogramIndex",
    "batched_lca",
    "lifting_table",
    "SNAPSHOT_SCHEMA",
    "DendrogramSnapshot",
    "build_snapshot",
    "save_snapshot",
    "load_snapshot",
    "QueryEngine",
    "parse_query",
    "execute_batch",
    "serve_lines",
    "parallelism_profile",
    "ParallelismProfile",
    "rand_index",
    "adjusted_rand_index",
    "fowlkes_mallows",
    "fowlkes_mallows_curve",
]
