"""Cophenetic distances: the merge height between pairs of leaves.

The cophenetic distance of vertices ``u`` and ``v`` is the weight of the
dendrogram node at which their clusters first merge -- the lowest common
ancestor of the two leaves, equivalently the minimax (bottleneck) path
weight between ``u`` and ``v`` in the input tree.  Spines are
rank-ascending, so the LCA is found by merging the two leaf spines until
they meet, in ``O(h)`` time, without any preprocessing.
"""

from __future__ import annotations

import numpy as np

from repro.dendrogram.linkage import leaf_parents
from repro.dendrogram.structure import Dendrogram
from repro.structures.unionfind import UnionFind

__all__ = ["cophenetic_distance", "cophenetic_matrix"]


def _lca_edge(parents: np.ndarray, ranks: np.ndarray, a: int, b: int) -> int:
    """LCA node (edge id) of two dendrogram nodes, by rank-ordered walk."""
    while a != b:
        if ranks[a] < ranks[b]:
            nxt = int(parents[a])
            if nxt == a:
                raise ValueError("nodes do not share a root")  # pragma: no cover
            a = nxt
        else:
            nxt = int(parents[b])
            if nxt == b:
                raise ValueError("nodes do not share a root")  # pragma: no cover
            b = nxt
    return a


def cophenetic_distance(dend: Dendrogram, u: int, v: int) -> float:
    """Merge height of vertices ``u`` and ``v`` (``0.0`` when ``u == v``)."""
    tree = dend.tree
    if not (0 <= u < tree.n and 0 <= v < tree.n):
        raise ValueError(f"vertices must lie in [0, {tree.n}), got {u}, {v}")
    if u == v:
        return 0.0
    lp = leaf_parents(tree)
    lca = _lca_edge(dend.parents, tree.ranks, int(lp[u]), int(lp[v]))
    return float(tree.weights[lca])


def cophenetic_matrix(dend: Dendrogram) -> np.ndarray:
    """Dense ``(n, n)`` cophenetic distance matrix.

    Computed top-down in ``O(n^2)`` total: processing nodes in decreasing
    rank, each node's merge weight is assigned to every leaf pair it first
    joins.  Intended for the moderate ``n`` where a dense matrix is even
    representable; pairwise queries should use
    :func:`cophenetic_distance`.
    """
    tree = dend.tree
    n = tree.n
    out = np.zeros((n, n), dtype=np.float64)
    if tree.m == 0:
        return out
    # Process merges in increasing rank, maintaining cluster membership --
    # when edge e merges clusters A and B, every (a, b) pair first meets
    # at height w(e).  The A x B block is written as one vectorized
    # outer-index assignment per merge (O(|A| * |B|) cells but no Python
    # pair loop), and small-to-large extension keeps membership bookkeeping
    # at O(n log n) list appends overall.
    order = np.argsort(tree.ranks)
    members: dict[int, list[int]] = {v: [v] for v in range(n)}
    uf = UnionFind(n)
    for e in order:
        u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
        ru, rv = uf.find(u), uf.find(v)
        A, B = members.pop(ru), members.pop(rv)
        w = float(tree.weights[e])
        out[np.ix_(A, B)] = w
        out[np.ix_(B, A)] = w
        r = uf.union(ru, rv)
        if len(A) < len(B):
            B.extend(A)
            members[r] = B
        else:
            A.extend(B)
            members[r] = A
    return out
