"""The :class:`Dendrogram` result object returned by the public API."""

from __future__ import annotations

import numpy as np

from repro.dendrogram.metrics import dendrogram_height, level_widths, node_depths
from repro.dendrogram.validate import validate_parents
from repro.trees.wtree import WeightedTree

__all__ = ["Dendrogram"]


class Dendrogram:
    """A single-linkage dendrogram over the edges of a weighted tree.

    Attributes
    ----------
    tree:
        The input :class:`~repro.trees.wtree.WeightedTree`.
    parents:
        ``parents[e]`` is the edge id of node ``e``'s parent in the SLD;
        the root node points to itself.
    """

    __slots__ = ("tree", "parents", "_depths")

    def __init__(self, tree: WeightedTree, parents: np.ndarray, validate: bool = False) -> None:
        self.tree = tree
        self.parents = np.asarray(parents, dtype=np.int64)
        if validate:
            validate_parents(self.parents, tree.ranks)
        self._depths: np.ndarray | None = None

    # -- structure ---------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of internal nodes (= number of tree edges)."""
        return self.parents.shape[0]

    @property
    def root(self) -> int:
        """Edge id of the root node (the globally max-rank edge)."""
        if self.m == 0:
            raise ValueError("empty dendrogram has no root")
        roots = np.flatnonzero(self.parents == np.arange(self.m))
        return int(roots[0])

    def parent(self, e: int) -> int:
        return int(self.parents[e])

    def spine(self, e: int) -> list[int]:
        """Node-to-root path starting at node ``e`` (paper's spine_D(e))."""
        path = [int(e)]
        while self.parents[path[-1]] != path[-1]:
            path.append(int(self.parents[path[-1]]))
        return path

    def children(self) -> list[list[int]]:
        """Children lists per node (at most two tree-edge children each plus
        leaf vertices, which are not included here)."""
        kids: list[list[int]] = [[] for _ in range(self.m)]
        for e in range(self.m):
            p = int(self.parents[e])
            if p != e:
                kids[p].append(e)
        return kids

    # -- metrics -------------------------------------------------------------
    def depths(self) -> np.ndarray:
        if self._depths is None:
            self._depths = node_depths(self.parents, self.tree.ranks)
        return self._depths

    @property
    def height(self) -> int:
        """The paper's ``h``: nodes on the longest root-to-node path."""
        return dendrogram_height(self.parents, self.tree.ranks)

    def level_widths(self) -> np.ndarray:
        return level_widths(self.parents, self.tree.ranks)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.InvalidDendrogramError` on any
        structural violation."""
        validate_parents(self.parents, self.tree.ranks)

    # -- interop (delegates kept here for discoverability) --------------------
    def to_linkage(self) -> np.ndarray:
        """SciPy-style ``(n-1, 4)`` linkage matrix (see
        :func:`repro.dendrogram.linkage.to_scipy_linkage`)."""
        from repro.dendrogram.linkage import to_scipy_linkage

        return to_scipy_linkage(self.tree)

    def cut_height(self, threshold: float) -> np.ndarray:
        """Flat cluster labels after merging all edges with weight <= threshold."""
        from repro.dendrogram.linkage import cut_height

        return cut_height(self.tree, threshold)

    def cut_k(self, k: int) -> np.ndarray:
        """Flat cluster labels with exactly ``k`` clusters."""
        from repro.dendrogram.linkage import cut_k

        return cut_k(self.tree, k)

    def cophenetic_distance(self, u: int, v: int) -> float:
        """Merge height of vertices ``u`` and ``v`` (see
        :func:`repro.dendrogram.cophenet.cophenetic_distance`)."""
        from repro.dendrogram.cophenet import cophenetic_distance

        return cophenetic_distance(self, u, v)

    def render(self, show_leaves: bool = True) -> str:
        """ASCII tree rendering (small dendrograms only)."""
        from repro.dendrogram.render import render_dendrogram

        return render_dendrogram(self, show_leaves=show_leaves)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dendrogram):
            return NotImplemented
        return bool(np.array_equal(self.parents, other.parents))

    def __hash__(self) -> int:  # parent arrays are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dendrogram(m={self.m}, height={self.height if self.m else 0})"
