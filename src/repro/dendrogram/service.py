"""Line protocol for serving dendrogram queries in batches.

The ``repro serve`` / ``repro query`` commands speak a one-query-per-line
text protocol over a loaded snapshot:

``cut <t>``
    Flat cluster labels at weight threshold ``t`` (all ``n`` labels,
    space-separated).
``k <k>``
    Flat cluster labels with exactly ``k`` clusters.
``cluster <t> <v> [<v> ...]``
    Stable cluster key of each listed vertex at threshold ``t``
    (:meth:`~repro.dendrogram.query.QueryEngine.cluster_of`).
``height <u> <v>``
    Cophenetic distance of vertices ``u`` and ``v``.

Every query produces exactly one output line, in input order.  Blank
lines and ``#`` comments are skipped.  :func:`execute_batch` is the batch
executor: it parses the whole request first, answers all ``height``
queries with **one** vectorized
:meth:`~repro.dendrogram.query.QueryEngine.merge_heights` call (the
common hot query), and lets the engine's LRU cut-cache deduplicate
repeated ``cut``/``k`` thresholds -- then reassembles responses in the
original order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dendrogram.query import QueryEngine

__all__ = ["Query", "parse_query", "execute_batch", "serve_lines"]


@dataclass(frozen=True)
class Query:
    """One parsed protocol line: ``op`` plus its numeric arguments."""

    op: str  # "cut" | "k" | "cluster" | "height"
    args: tuple[float, ...]


def parse_query(line: str) -> Query | None:
    """Parse one protocol line; ``None`` for blanks and ``#`` comments."""
    text = line.split("#", 1)[0].strip()
    if not text:
        return None
    parts = text.split()
    op, raw = parts[0], parts[1:]
    try:
        if op == "cut":
            (t,) = raw
            return Query("cut", (float(t),))
        if op == "k":
            (k,) = raw
            return Query("k", (int(k),))
        if op == "cluster":
            t, *vs = raw
            if not vs:
                raise ValueError("no vertices")
            return Query("cluster", (float(t), *(int(v) for v in vs)))
        if op == "height":
            u, v = raw
            return Query("height", (int(u), int(v)))
    except ValueError as exc:
        raise ValueError(f"malformed {op!r} query: {text!r}") from exc
    raise ValueError(f"unknown query op {op!r} in line {text!r}")


def _format_labels(labels: np.ndarray) -> str:
    return " ".join(str(int(x)) for x in labels)


def execute_batch(engine: QueryEngine, lines: list[str]) -> list[str]:
    """Answer a batch of protocol lines, one response line per query.

    All ``height`` queries across the batch are answered by a single
    vectorized ``merge_heights`` call; responses come back in input
    order.  Raises ``ValueError`` on the first malformed line.
    """
    queries: list[Query] = []
    for lineno, line in enumerate(lines, start=1):
        try:
            q = parse_query(line)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
        if q is not None:
            queries.append(q)

    height_slots = [i for i, q in enumerate(queries) if q.op == "height"]
    heights = np.zeros(0, dtype=np.float64)
    if height_slots:
        pairs = np.array(
            [[int(queries[i].args[0]), int(queries[i].args[1])] for i in height_slots],
            dtype=np.int64,
        )
        heights = engine.merge_heights(pairs)

    out: list[str] = []
    next_height = 0
    for q in queries:
        if q.op == "cut":
            out.append(_format_labels(engine.cut_at(q.args[0])))
        elif q.op == "k":
            out.append(_format_labels(engine.cut_k(int(q.args[0]))))
        elif q.op == "cluster":
            vs = np.array(q.args[1:], dtype=np.int64)
            out.append(_format_labels(engine.cluster_of(vs, q.args[0])))
        else:  # height
            out.append(repr(float(heights[next_height])))
            next_height += 1
    return out


def serve_lines(engine: QueryEngine, lines, *, stop_on_error: bool = False):
    """Interactive-mode executor: yield one response per incoming line.

    Unlike :func:`execute_batch` this answers line by line (a REPL cannot
    batch ahead) and, unless ``stop_on_error``, turns malformed lines
    into ``error: ...`` responses instead of aborting the session.
    """
    for line in lines:
        try:
            q = parse_query(line)
            if q is None:
                continue
            yield execute_batch(engine, [line])[0]
        except ValueError as exc:
            if stop_on_error:
                raise
            yield f"error: {exc}"
