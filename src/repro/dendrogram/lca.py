"""Constant-ish-time cophenetic queries via binary-lifting LCA.

:func:`repro.dendrogram.cophenet.cophenetic_distance` walks two spines in
``O(h)`` per query; for query-heavy workloads (cross-validation, pair
sampling, cophenetic correlation) :class:`DendrogramIndex` preprocesses the
dendrogram once in ``O(m log h)`` and answers merge-node / merge-height
queries in ``O(log h)`` via binary lifting over the parent array.
"""

from __future__ import annotations

import numpy as np

from repro.dendrogram.linkage import leaf_parents
from repro.dendrogram.metrics import node_depths
from repro.dendrogram.structure import Dendrogram

__all__ = ["DendrogramIndex", "batched_lca", "lifting_table"]


def lifting_table(parents: np.ndarray, depth: np.ndarray) -> np.ndarray:
    """Binary-lifting ancestor table ``up[k, e] = 2^k``-th ancestor of ``e``.

    ``up[0]`` is the parent array itself; the root self-loops at every
    level, so over-lifting saturates there.  The level count covers the
    deepest node (``levels = ceil(log2(max(depth))) + 1``, at least one).
    """
    m = parents.shape[0]
    levels = max(1, int(np.ceil(np.log2(max(int(depth.max()), 2)))) + 1)
    up = np.empty((levels, m), dtype=parents.dtype)
    up[0] = parents
    for k in range(1, levels):
        up[k] = up[k - 1][up[k - 1]]
    return up


def batched_lca(up: np.ndarray, depth: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized LCA of node arrays ``a``/``b`` under a lifting table.

    Every pair advances through the same ``O(log h)`` level schedule at
    once -- one gather per level, no per-pair Python work.  Bit-identical
    to the scalar two-phase walk (level the deeper node, then descend from
    the top): the same jumps are taken, just batched.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    # Every step below is a flat gather + branch-free ``where`` select:
    # boolean-masked fancy indexing costs several times a plain gather at
    # this batch size, so nothing in the hot loop indexes by mask.
    da, db = depth[a], depth[b]
    swap = da < db
    a, b = np.where(swap, b, a), np.where(swap, a, b)
    # Phase 1: lift the deeper side by the depth difference, bit by bit.
    diff = np.asarray(np.abs(da - db), dtype=np.int64)
    for k in range(up.shape[0]):
        bit = (diff >> k) & 1 != 0
        a = np.where(bit, np.take(up[k], a), a)
    # Phase 2: descend both sides from the highest level; after the loop
    # the true LCA is one parent hop above wherever a != b remains.
    level = a == b
    for k in range(up.shape[0] - 1, -1, -1):
        ua, ub = np.take(up[k], a), np.take(up[k], b)
        move = ua != ub
        a = np.where(move, ua, a)
        b = np.where(move, ub, b)
    return np.where(level, a, np.take(up[0], a)).astype(np.int64)


class DendrogramIndex:
    """Binary-lifting LCA index over a dendrogram's internal nodes."""

    def __init__(self, dend: Dendrogram) -> None:
        self.dend = dend
        tree = dend.tree
        m = dend.m
        self._leaf_parent = leaf_parents(tree)
        if m == 0:
            self._up = np.zeros((1, 0), dtype=np.int64)
            self._depth = np.zeros(0, dtype=np.int64)
            return
        depth = node_depths(dend.parents, tree.ranks)
        self._up = lifting_table(dend.parents, depth)
        self._depth = depth

    def lca(self, a: int, b: int) -> int:
        """LCA node (edge id) of two dendrogram nodes."""
        depth = self._depth
        up = self._up
        if depth[a] < depth[b]:
            a, b = b, a
        diff = int(depth[a] - depth[b])
        k = 0
        while diff:
            if diff & 1:
                a = int(up[k, a])
            diff >>= 1
            k += 1
        if a == b:
            return int(a)
        for k in range(up.shape[0] - 1, -1, -1):
            if up[k, a] != up[k, b]:
                a = int(up[k, a])
                b = int(up[k, b])
        return int(up[0, a])

    def merge_node(self, u: int, v: int) -> int:
        """Dendrogram node (edge id) at which vertices ``u``/``v`` merge."""
        n = self.dend.tree.n
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"vertices must lie in [0, {n}), got {u}, {v}")
        if u == v:
            raise ValueError("a vertex does not merge with itself")
        return self.lca(int(self._leaf_parent[u]), int(self._leaf_parent[v]))

    def merge_height(self, u: int, v: int) -> float:
        """Cophenetic distance of ``u`` and ``v`` (``0.0`` when equal)."""
        if u == v:
            return 0.0
        return float(self.dend.tree.weights[self.merge_node(u, v)])

    def merge_nodes(self, pairs: np.ndarray) -> np.ndarray:
        """Vectorized ``merge_node`` over a ``(k, 2)`` array of vertex pairs.

        All pairs lift through the binary-lifting table together -- one
        gather per level instead of a Python loop per pair.  Pairs with
        ``u == v`` report ``-1`` (a vertex does not merge with itself).
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (k, 2), got {pairs.shape}")
        n = self.dend.tree.n
        if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
            bad = pairs[((pairs < 0) | (pairs >= n)).any(axis=1)][0]
            raise ValueError(
                f"vertices must lie in [0, {n}), got {int(bad[0])}, {int(bad[1])}"
            )
        out = np.full(pairs.shape[0], -1, dtype=np.int64)
        distinct = pairs[:, 0] != pairs[:, 1]
        if distinct.any():
            a = self._leaf_parent[pairs[distinct, 0]]
            b = self._leaf_parent[pairs[distinct, 1]]
            out[distinct] = batched_lca(self._up, self._depth, a, b)
        return out

    def merge_heights(self, pairs: np.ndarray) -> np.ndarray:
        """Vectorized ``merge_height`` over a ``(k, 2)`` array of pairs."""
        nodes = self.merge_nodes(pairs)
        out = np.zeros(nodes.shape[0], dtype=np.float64)
        distinct = nodes >= 0
        out[distinct] = self.dend.tree.weights[nodes[distinct]]
        return out

    def cophenetic_correlation(self, reference: np.ndarray) -> float:
        """Pearson correlation between merge heights and a reference
        ``(n, n)`` dissimilarity matrix (the classic dendrogram-fit score)."""
        n = self.dend.tree.n
        reference = np.asarray(reference, dtype=np.float64)
        if reference.shape != (n, n):
            raise ValueError(f"reference must be ({n}, {n}), got {reference.shape}")
        iu, ju = np.triu_indices(n, k=1)
        coph = self.merge_heights(np.stack([iu, ju], axis=1))
        ref = reference[iu, ju]
        c = np.corrcoef(coph, ref)
        return float(c[0, 1])
