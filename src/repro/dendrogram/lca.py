"""Constant-ish-time cophenetic queries via binary-lifting LCA.

:func:`repro.dendrogram.cophenet.cophenetic_distance` walks two spines in
``O(h)`` per query; for query-heavy workloads (cross-validation, pair
sampling, cophenetic correlation) :class:`DendrogramIndex` preprocesses the
dendrogram once in ``O(m log h)`` and answers merge-node / merge-height
queries in ``O(log h)`` via binary lifting over the parent array.
"""

from __future__ import annotations

import numpy as np

from repro.dendrogram.linkage import leaf_parents
from repro.dendrogram.metrics import node_depths
from repro.dendrogram.structure import Dendrogram

__all__ = ["DendrogramIndex"]


class DendrogramIndex:
    """Binary-lifting LCA index over a dendrogram's internal nodes."""

    def __init__(self, dend: Dendrogram) -> None:
        self.dend = dend
        tree = dend.tree
        m = dend.m
        self._leaf_parent = leaf_parents(tree)
        if m == 0:
            self._up = np.zeros((1, 0), dtype=np.int64)
            self._depth = np.zeros(0, dtype=np.int64)
            return
        depth = node_depths(dend.parents, tree.ranks)
        levels = max(1, int(np.ceil(np.log2(max(int(depth.max()), 2)))) + 1)
        up = np.empty((levels, m), dtype=np.int64)
        up[0] = dend.parents
        for k in range(1, levels):
            up[k] = up[k - 1][up[k - 1]]
        self._up = up
        self._depth = depth

    def lca(self, a: int, b: int) -> int:
        """LCA node (edge id) of two dendrogram nodes."""
        depth = self._depth
        up = self._up
        if depth[a] < depth[b]:
            a, b = b, a
        diff = int(depth[a] - depth[b])
        k = 0
        while diff:
            if diff & 1:
                a = int(up[k, a])
            diff >>= 1
            k += 1
        if a == b:
            return int(a)
        for k in range(up.shape[0] - 1, -1, -1):
            if up[k, a] != up[k, b]:
                a = int(up[k, a])
                b = int(up[k, b])
        return int(up[0, a])

    def merge_node(self, u: int, v: int) -> int:
        """Dendrogram node (edge id) at which vertices ``u``/``v`` merge."""
        n = self.dend.tree.n
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"vertices must lie in [0, {n}), got {u}, {v}")
        if u == v:
            raise ValueError("a vertex does not merge with itself")
        return self.lca(int(self._leaf_parent[u]), int(self._leaf_parent[v]))

    def merge_height(self, u: int, v: int) -> float:
        """Cophenetic distance of ``u`` and ``v`` (``0.0`` when equal)."""
        if u == v:
            return 0.0
        return float(self.dend.tree.weights[self.merge_node(u, v)])

    def merge_heights(self, pairs: np.ndarray) -> np.ndarray:
        """Vectorized ``merge_height`` over a ``(k, 2)`` array of pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (k, 2), got {pairs.shape}")
        out = np.empty(pairs.shape[0], dtype=np.float64)
        for i, (u, v) in enumerate(pairs):
            out[i] = self.merge_height(int(u), int(v))
        return out

    def cophenetic_correlation(self, reference: np.ndarray) -> float:
        """Pearson correlation between merge heights and a reference
        ``(n, n)`` dissimilarity matrix (the classic dendrogram-fit score)."""
        n = self.dend.tree.n
        reference = np.asarray(reference, dtype=np.float64)
        if reference.shape != (n, n):
            raise ValueError(f"reference must be ({n}, {n}), got {reference.shape}")
        iu, ju = np.triu_indices(n, k=1)
        coph = self.merge_heights(np.stack([iu, ju], axis=1))
        ref = reference[iu, ju]
        c = np.corrcoef(coph, ref)
        return float(c[0, 1])
