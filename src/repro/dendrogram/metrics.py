"""Dendrogram shape metrics: depths, height ``h``, level widths.

The height ``h`` is the parameter in the paper's ``O(n log h)`` optimal
work bound (``floor(log n) <= h <= n-1``); level widths drive the ParUF
parallelism analysis (number of nodes per bottom-up level).
"""

from __future__ import annotations

import numpy as np

__all__ = ["node_depths", "dendrogram_height", "level_widths"]


def node_depths(parents: np.ndarray, ranks: np.ndarray) -> np.ndarray:
    """Depth of each dendrogram node (root = 1), computed top-down.

    Uses the SLD invariant that a parent's rank exceeds its child's rank:
    processing nodes in decreasing rank order sees every parent before its
    children, so one linear pass suffices.
    """
    parents = np.asarray(parents, dtype=np.int64)
    ranks = np.asarray(ranks, dtype=np.int64)
    m = parents.shape[0]
    depths = np.zeros(m, dtype=np.int64)
    order = np.argsort(-ranks)
    for e in order:
        p = parents[e]
        depths[e] = 1 if p == e else depths[p] + 1
    return depths


def dendrogram_height(parents: np.ndarray, ranks: np.ndarray) -> int:
    """Height ``h``: number of nodes on the longest root-to-node path.

    ``0`` for an empty dendrogram (single-vertex tree).
    """
    if len(parents) == 0:
        return 0
    return int(node_depths(parents, ranks).max())


def level_widths(parents: np.ndarray, ranks: np.ndarray) -> np.ndarray:
    """Number of nodes at each depth (index 0 = the root level).

    In the paper's terms (Section 4.1): as these widths converge to 1
    towards the top, ParUF loses parallelism and its post-processing
    optimization takes over.
    """
    if len(parents) == 0:
        return np.zeros(0, dtype=np.int64)
    depths = node_depths(parents, ranks)
    return np.bincount(depths - 1)
