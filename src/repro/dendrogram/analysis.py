"""Input parallelism analysis: why ParUF flies on some inputs and dies on
others.

The analysis replays the merge process *level-synchronously* (the
round-structure of :func:`repro.core.paruf_sync.paruf_sync`): each round
merges every currently-ready (local-minimum) edge and records the ready
count.  This is exactly the parallelism ParUF can exploit (paper Section
4.1):

* inputs whose very first round has a single ready edge are handled
  entirely by the post-processing sort (sorted paths, knuth-unit);
* the adversarial low-par path pins the ready count at 2 for ~n/2 rounds,
  defeating both the asynchronous chains and the optimization;
* permuted-weight inputs start with ~m/3 ready edges and stay wide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.structures import make_heap
from repro.structures.unionfind import UnionFind
from repro.trees.wtree import WeightedTree

__all__ = ["parallelism_profile", "ParallelismProfile"]


@dataclass
class ParallelismProfile:
    """Per-round ready counts of the level-synchronous merge process."""

    ready_per_round: np.ndarray  # frontier size at each round
    rounds: int  # number of rounds (= ParUF's activation depth)
    initial_ready: int
    max_ready: int
    mean_ready: float  # per-merge average concurrency
    postprocess_tail: int  # merges remaining when the frontier first hits 1

    def summary(self) -> str:
        return (
            f"rounds={self.rounds} initial={self.initial_ready} "
            f"max={self.max_ready} mean={self.mean_ready:.1f} "
            f"postprocess_tail={self.postprocess_tail}"
        )


def parallelism_profile(tree: WeightedTree) -> ParallelismProfile:
    """Round-synchronous replay of the merge process, tracking the frontier."""
    m = tree.m
    if m == 0:
        empty = np.zeros(0, dtype=np.int64)
        return ParallelismProfile(empty, 0, 0, 0, 0.0, 0)
    ranks = tree.ranks
    offsets, _, nbr_edge = tree.adjacency()
    heaps = []
    for v in range(tree.n):
        heap = make_heap("pairing")
        for s in range(int(offsets[v]), int(offsets[v + 1])):
            e = int(nbr_edge[s])
            heap.insert(int(ranks[e]), e)
        heaps.append(heap)
    status = np.zeros(m, dtype=np.int64)
    for v in range(tree.n):
        if not heaps[v].is_empty:
            _, e = heaps[v].find_min()
            status[e] += 1
    frontier = [int(e) for e in np.flatnonzero(status == 2)]
    initial_ready = len(frontier)

    uf = UnionFind(tree.n)
    edges = tree.edges
    per_round: list[int] = []
    merged = 0
    postprocess_tail = 0
    while frontier:
        per_round.append(len(frontier))
        if len(frontier) == 1 and postprocess_tail == 0:
            postprocess_tail = m - merged
        next_frontier: list[int] = []
        for cur in frontier:
            status[cur] = -1
            u, v = int(edges[cur, 0]), int(edges[cur, 1])
            ru, rv = uf.find(u), uf.find(v)
            heaps[ru].delete_min()
            heaps[rv].delete_min()
            w = uf.union(ru, rv)
            other = rv if w == ru else ru
            heaps[w].meld(heaps[other])
            merged += 1
            if heaps[w].is_empty:
                continue
            _, new_top = heaps[w].find_min()
            status[int(new_top)] += 1
            if status[int(new_top)] == 2:
                next_frontier.append(int(new_top))
        frontier = next_frontier
    counts = np.asarray(per_round, dtype=np.int64)
    return ParallelismProfile(
        ready_per_round=counts,
        rounds=int(counts.size),
        initial_ready=initial_ready,
        max_ready=int(counts.max()),
        mean_ready=float(m / counts.size) if counts.size else 0.0,
        postprocess_tail=postprocess_tail,
    )
