"""SciPy interop and flat clusterings.

``to_scipy_linkage`` replays the single-linkage merge sequence (edges in
rank order) to produce the standard ``(n-1, 4)`` linkage matrix ``Z`` used
by :mod:`scipy.cluster.hierarchy` -- row ``i`` merges clusters ``Z[i,0]``
and ``Z[i,1]`` at height ``Z[i,2]`` into new cluster ``n+i`` of size
``Z[i,3]``.  The flat-clustering helpers cut the hierarchy by distance
threshold or target cluster count.
"""

from __future__ import annotations

import numpy as np

from repro.structures.unionfind import UnionFind
from repro.trees.wtree import WeightedTree

__all__ = ["to_scipy_linkage", "leaf_parents", "cut_height", "cut_k", "canonical_labels"]


def to_scipy_linkage(tree: WeightedTree) -> np.ndarray:
    """SciPy linkage matrix of the tree's single-linkage hierarchy."""
    n, m = tree.n, tree.m
    Z = np.zeros((m, 4), dtype=np.float64)
    order = np.argsort(tree.ranks)
    uf = UnionFind(n)
    cluster_id = np.arange(n, dtype=np.int64)  # uf-root vertex -> scipy cluster id
    for i, e in enumerate(order):
        u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
        ru, rv = uf.find(u), uf.find(v)
        ca, cb = int(cluster_id[ru]), int(cluster_id[rv])
        if ca > cb:
            ca, cb = cb, ca
        w = uf.union(ru, rv)
        Z[i, 0] = ca
        Z[i, 1] = cb
        Z[i, 2] = tree.weights[e]
        Z[i, 3] = uf.set_size(w)
        cluster_id[w] = n + i
    return Z


def leaf_parents(tree: WeightedTree) -> np.ndarray:
    """Dendrogram node (edge id) each input vertex hangs off.

    Vertex ``v``'s leaf attaches under the node of the minimum-rank edge
    incident to ``v`` -- the first merge that absorbs the singleton cluster
    ``{v}``.  Isolated vertices (``n == 1``) yield an empty array.
    """
    if tree.m == 0:
        return np.full(tree.n, -1, dtype=np.int64)
    offsets, _, nbr_edge = tree.adjacency()
    ranks = tree.ranks
    out = np.empty(tree.n, dtype=np.int64)
    for v in range(tree.n):
        lo, hi = int(offsets[v]), int(offsets[v + 1])
        incident = nbr_edge[lo:hi]
        out[v] = incident[np.argmin(ranks[incident])]
    return out


def cut_height(tree: WeightedTree, threshold: float) -> np.ndarray:
    """Flat cluster labels after merging every edge with weight <= threshold.

    Labels are consecutive integers starting at 0, ordered by each
    cluster's smallest vertex id.
    """
    uf = UnionFind(tree.n)
    for e in range(tree.m):
        if tree.weights[e] <= threshold:
            u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
            if uf.find(u) != uf.find(v):
                uf.union(u, v)
    return _labels(uf, tree.n)


def cut_k(tree: WeightedTree, k: int) -> np.ndarray:
    """Flat cluster labels with exactly ``k`` clusters.

    Merges the ``n - k`` lowest-rank edges; the surviving cuts are the
    ``k - 1`` heaviest single-linkage merge distances.
    """
    if not 1 <= k <= tree.n:
        raise ValueError(f"cluster count k must be in [1, {tree.n}], got {k}")
    uf = UnionFind(tree.n)
    order = np.argsort(tree.ranks)
    for e in order[: tree.n - k]:
        u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
        uf.union(u, v)
    return _labels(uf, tree.n)


def _labels(uf: UnionFind, n: int) -> np.ndarray:
    roots = uf.find_many(np.arange(n, dtype=np.int64))
    return canonical_labels(roots)


def canonical_labels(keys: np.ndarray) -> np.ndarray:
    """Dense cluster labels from per-vertex cluster keys.

    Clusters are numbered by their smallest member vertex id (equivalently
    first occurrence), independent of the key values -- the documented
    ``cut_height``/``cut_k`` labeling.  The previous implementation sorted
    by union-find root id, which is an internal artifact of the union
    order and silently violated that contract.
    """
    keys = np.asarray(keys)
    uniq, inverse = np.unique(keys, return_inverse=True)
    inverse = inverse.reshape(-1)
    first = np.full(uniq.shape[0], keys.shape[0], dtype=np.int64)
    np.minimum.at(first, inverse, np.arange(keys.shape[0], dtype=np.int64))
    renumber = np.empty(uniq.shape[0], dtype=np.int64)
    renumber[np.argsort(first, kind="stable")] = np.arange(uniq.shape[0], dtype=np.int64)
    return renumber[inverse]
