"""Typed exceptions raised throughout the ``repro`` package.

All user-facing validation failures raise a subclass of :class:`ReproError`
so callers can catch a single exception type at API boundaries while tests
can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidTreeError(ReproError):
    """The input edge list does not describe a valid tree.

    Raised when the edge set has the wrong cardinality, contains self
    loops, duplicate edges, out-of-range vertex ids, cycles, or does not
    connect all vertices.
    """


class InvalidWeightsError(ReproError):
    """Edge weights are malformed (wrong length, NaN, or non-numeric)."""


class InvalidDendrogramError(ReproError):
    """A dendrogram parent array violates a structural invariant."""


class InvalidGraphError(ReproError):
    """An input graph (for MST / clustering pipelines) is malformed."""


class NotConnectedError(InvalidGraphError):
    """The input graph is not connected, so a spanning tree cannot cover it."""


class EmptyHeapError(ReproError):
    """``delete_min``/``find_min`` was called on an empty heap."""


class SchedulerError(ReproError):
    """Misuse of the work-depth tracker (e.g. unbalanced round brackets)."""


class AlgorithmError(ReproError):
    """An unknown algorithm name or invalid algorithm option was requested."""


class RaceCheckError(ReproError):
    """Misuse of the race-checking API (e.g. nested recorder installs)."""


class SlabContractError(ReproError):
    """A ``@slab_contract`` declaration was violated (or is malformed).

    Raised at decoration time when a contract names a parameter the
    function does not have, and at call time (checked mode only) when an
    argument's dtype/typecode disagrees with the declaration, a slab
    declared ``contiguous`` is not C-contiguous, or the return dtype
    drifts.  Undeclared writes to locked input slabs surface as NumPy's
    ``ValueError: assignment destination is read-only`` from the offending
    statement itself, which pins the exact line.
    """


class OwnershipError(ReproError):
    """An ``@owns`` ownership declaration was violated (or is malformed).

    Raised at decoration time when a window spec names a parameter the
    function cannot resolve (neither a parameter nor a closure variable),
    and at call time (checked mode only) when a kernel writes an owned
    slab *outside* its declared ``name[lo:hi]`` partition -- the exact
    hazard that makes naive shared-memory parallelization of the windowed
    kernels unsound.
    """


class RaceConditionError(ReproError):
    """The round-race detector found conflicting accesses within one round.

    Two tasks of the same parallel round touched the same shadow cell and
    at least one access was a plain (non-atomic) write.  Under the round
    model this means the round's tasks are *not* independent, so the
    simulated execution does not correspond to a race-free parallel one.

    ``conflicts`` holds the :class:`~repro.checkers.races.Conflict` records
    with task indices and object/field provenance.
    """

    def __init__(self, conflicts, where: str | None = None) -> None:
        self.conflicts = list(conflicts)
        self.where = where
        head = f"{len(self.conflicts)} round-race conflict(s)"
        if where:
            head += f" in {where}"
        lines = [head] + [f"  - {c.describe()}" for c in self.conflicts]
        super().__init__("\n".join(lines))
