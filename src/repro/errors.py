"""Typed exceptions raised throughout the ``repro`` package.

All user-facing validation failures raise a subclass of :class:`ReproError`
so callers can catch a single exception type at API boundaries while tests
can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidTreeError(ReproError):
    """The input edge list does not describe a valid tree.

    Raised when the edge set has the wrong cardinality, contains self
    loops, duplicate edges, out-of-range vertex ids, cycles, or does not
    connect all vertices.
    """


class InvalidWeightsError(ReproError):
    """Edge weights are malformed (wrong length, NaN, or non-numeric)."""


class InvalidDendrogramError(ReproError):
    """A dendrogram parent array violates a structural invariant."""


class InvalidGraphError(ReproError):
    """An input graph (for MST / clustering pipelines) is malformed."""


class NotConnectedError(InvalidGraphError):
    """The input graph is not connected, so a spanning tree cannot cover it."""


class EmptyHeapError(ReproError):
    """``delete_min``/``find_min`` was called on an empty heap."""


class SchedulerError(ReproError):
    """Misuse of the work-depth tracker (e.g. unbalanced round brackets)."""


class AlgorithmError(ReproError):
    """An unknown algorithm name or invalid algorithm option was requested."""
