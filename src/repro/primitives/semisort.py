"""Semisort: group equal keys contiguously, in no particular group order.

Semisorting is the randomized primitive behind Wang et al.'s SLD algorithm
(Gu, Shun, Sun, Blelloch: O(n) expected work, O(log n) depth whp) -- it is
also the reason that algorithm is randomized and hard to derandomize,
which the paper contrasts its deterministic algorithms against.

This implementation keeps the semisort *contract* (equal keys adjacent,
group order arbitrary -- here, order of first appearance) and the charged
randomized cost, while the execution kernel uses hashing into a
first-appearance index, the natural single-node realization.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.cost_model import CostTracker, WorkDepth
from repro.util import log2ceil

__all__ = ["semisort", "group_by"]


def semisort(
    keys: np.ndarray,
    values: np.ndarray | None = None,
    tracker: CostTracker | None = None,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Reorder so equal keys are contiguous (groups in first-seen order).

    Unlike a sort, group order carries no meaning -- callers may rely only
    on adjacency of equal keys.  Charged at the randomized semisort cost:
    ``O(k)`` work, ``O(log k)`` depth.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"semisort expects 1-D keys, got shape {keys.shape}")
    if tracker is not None:
        k = keys.shape[0]
        tracker.add(WorkDepth(float(max(k, 1)), float(log2ceil(max(k, 2)) + 1)))
    # first-appearance group index per key, then a stable counting-style sort
    _, first_idx, inverse = np.unique(keys, return_index=True, return_inverse=True)
    group_rank = np.argsort(np.argsort(first_idx))  # unique-id -> appearance order
    order = np.argsort(group_rank[inverse], kind="stable")
    if values is None:
        return keys[order]
    values = np.asarray(values)
    if values.shape[0] != keys.shape[0]:
        raise ValueError("keys and values must have equal length")
    return keys[order], values[order]


def group_by(
    keys: np.ndarray,
    values: np.ndarray | None = None,
    tracker: CostTracker | None = None,
) -> dict:
    """Semisort packaged as ``{key: array_of_values}`` (insertion order).

    ``values=None`` groups the element indices instead -- the common form
    for "collect the edges incident to each bucket" steps.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"group_by expects 1-D keys, got shape {keys.shape}")
    if values is None:
        values = np.arange(keys.shape[0], dtype=np.intp)
    else:
        values = np.asarray(values)
        if values.shape[0] != keys.shape[0]:
            raise ValueError("keys and values must have equal length")
    if tracker is not None:
        k = keys.shape[0]
        tracker.add(WorkDepth(float(max(k, 1)), float(log2ceil(max(k, 2)) + 1)))
    n = keys.shape[0]
    if n == 0:
        return {}
    # Vectorized grouping: rank groups by first appearance (as semisort
    # does), stable-sort the values into group-contiguous order, and slice
    # at the group boundaries -- no per-element Python loop.
    _, first_idx, inverse = np.unique(keys, return_index=True, return_inverse=True)
    group_rank = np.argsort(np.argsort(first_idx))
    ranks = group_rank[inverse]
    order = np.argsort(ranks, kind="stable")
    sorted_vals = values[order]
    sorted_ranks = ranks[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    starts[1:] = sorted_ranks[1:] != sorted_ranks[:-1]
    bounds = np.flatnonzero(starts)
    groups = np.split(sorted_vals, bounds[1:])
    # Dict keys are host-side Python objects by contract.
    group_keys = keys[order[bounds]].tolist()  # noqa: RPR205 -- host handoff
    return dict(zip(group_keys, groups))
