"""Parallel primitives: scans, reductions, sorts, and packing.

These are the ParlayLib-style building blocks the paper's implementation
leans on (parallel sort for SeqUF's edge sort, counting sort for binomial
heap rebuilds, prefix sums for emitting filtered heap nodes).  Each
primitive has a vectorized NumPy kernel for real execution plus work/depth
charging that matches its textbook parallel cost.
"""

from repro.primitives.pack import pack, pack_indices
from repro.primitives.reduce import parallel_reduce
from repro.primitives.scan import exclusive_scan, inclusive_scan
from repro.primitives.semisort import group_by, semisort
from repro.primitives.sort import counting_sort, rank_sort_indices, sort_by_key

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "parallel_reduce",
    "counting_sort",
    "sort_by_key",
    "rank_sort_indices",
    "pack",
    "pack_indices",
    "semisort",
    "group_by",
]
