"""Filter/pack: emit the selected elements of an array contiguously.

Pack is how the paper's heap filter emits the ``k`` removed elements into a
single array (Section 2.2): compute a 0/1 flag array, exclusive-scan it for
offsets, then scatter.  The NumPy kernel is boolean indexing; the charged
cost is the scan-based parallel pack: ``O(n)`` work, ``O(log n)`` depth.
"""

from __future__ import annotations

import numpy as np

from repro.primitives.scan import scan_cost
from repro.runtime.cost_model import CostTracker

__all__ = ["pack", "pack_indices"]


def pack(
    values: np.ndarray, flags: np.ndarray, tracker: CostTracker | None = None
) -> np.ndarray:
    """Return ``values[i]`` for every ``i`` with ``flags[i]`` true, in order."""
    values = np.asarray(values)
    flags = np.asarray(flags, dtype=bool)
    if values.shape[0] != flags.shape[0]:
        raise ValueError("values and flags must have equal length")
    if tracker is not None:
        tracker.add(scan_cost(flags.size))
    return values[flags]


def pack_indices(flags: np.ndarray, tracker: CostTracker | None = None) -> np.ndarray:
    """Indices at which ``flags`` is true, in increasing order."""
    flags = np.asarray(flags, dtype=bool)
    if flags.ndim != 1:
        raise ValueError(f"pack expects 1-D flags, got shape {flags.shape}")
    if tracker is not None:
        tracker.add(scan_cost(flags.size))
    return np.flatnonzero(flags)
