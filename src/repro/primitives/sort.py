"""Sorting primitives with parallel-cost accounting.

Three flavours used by the algorithms:

* :func:`sort_by_key` -- comparison sort (NumPy mergesort kernel), charged
  at ``O(n log n)`` work / ``O(log^2 n)`` depth, the cost of a parallel
  sample sort.  SeqUF's edge sort and ParUF's pre/post-processing sorts use
  this.
* :func:`counting_sort` -- stable counting sort over a bounded key range,
  charged at ``O(n + M)`` work / ``O(log n + M)`` depth (paper Section 2.2
  uses it to regroup binomial trees by rank during heap rebuilds).
* :func:`rank_sort_indices` -- argsort returning positions, the building
  block for rank computation.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.cost_model import CostTracker, WorkDepth
from repro.util import log2ceil

__all__ = ["sort_by_key", "counting_sort", "rank_sort_indices", "comparison_sort_cost"]


def comparison_sort_cost(n: int) -> WorkDepth:
    """Work/depth of a parallel comparison sort of ``n`` items."""
    if n <= 1:
        return WorkDepth(float(max(n, 0)), 1.0 if n else 0.0)
    lg = log2ceil(n)
    return WorkDepth(float(n * lg), float(lg * lg))


def sort_by_key(
    keys: np.ndarray,
    values: np.ndarray | None = None,
    tracker: CostTracker | None = None,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Stable sort; returns sorted keys, or ``(keys, values)`` reordered."""
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"sort expects 1-D keys, got shape {keys.shape}")
    if tracker is not None:
        tracker.add(comparison_sort_cost(keys.size))
    order = np.argsort(keys, kind="stable")
    if values is None:
        return keys[order]
    values = np.asarray(values)
    if values.shape[0] != keys.shape[0]:
        raise ValueError("keys and values must have equal length")
    return keys[order], values[order]


def rank_sort_indices(keys: np.ndarray, tracker: CostTracker | None = None) -> np.ndarray:
    """Stable argsort of ``keys`` (ties broken by index)."""
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"sort expects 1-D keys, got shape {keys.shape}")
    if tracker is not None:
        tracker.add(comparison_sort_cost(keys.size))
    return np.argsort(keys, kind="stable")


def counting_sort(
    keys: np.ndarray,
    key_range: int,
    values: np.ndarray | None = None,
    tracker: CostTracker | None = None,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Stable counting sort of integer ``keys`` in ``[0, key_range)``.

    Charged at ``O(n + M)`` work and ``O(log n + M)`` depth, the bound the
    paper cites from Blelloch et al. for regrouping binomial trees by rank.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"counting_sort expects 1-D keys, got shape {keys.shape}")
    if key_range <= 0:
        raise ValueError(f"key_range must be positive, got {key_range}")
    if keys.size and (keys.min() < 0 or keys.max() >= key_range):
        raise ValueError("keys out of range for counting sort")
    if tracker is not None:
        n = keys.size
        tracker.add(WorkDepth(float(n + key_range), float(log2ceil(max(n, 1)) + key_range)))
    counts = np.bincount(keys, minlength=key_range)
    order = np.argsort(keys, kind="stable")  # stable grouping by key
    sorted_keys = keys[order]
    # bincount is retained for invariant checking: the grouped output must
    # contain exactly counts[k] occurrences of key k.
    assert counts.sum() == keys.size
    if values is None:
        return sorted_keys
    values = np.asarray(values)
    if values.shape[0] != keys.shape[0]:
        raise ValueError("keys and values must have equal length")
    return sorted_keys, values[order]
