"""Prefix sums (scans) with parallel-cost accounting.

The execution kernel is ``numpy.cumsum`` (sequential under the hood but
vectorized); the charged cost is that of the standard two-phase
(up-sweep/down-sweep) parallel scan: ``O(n)`` work and ``O(log n)`` depth.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.cost_model import CostTracker, WorkDepth
from repro.util import log2ceil

__all__ = ["inclusive_scan", "exclusive_scan", "scan_cost"]


def scan_cost(n: int) -> WorkDepth:
    """Work/depth of a parallel scan over ``n`` elements."""
    if n <= 1:
        return WorkDepth(float(max(n, 0)), 1.0 if n else 0.0)
    return WorkDepth(float(2 * n), float(2 * log2ceil(n)))


def inclusive_scan(
    values: np.ndarray, tracker: CostTracker | None = None
) -> np.ndarray:
    """Inclusive prefix sum of a 1-D array."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"scan expects a 1-D array, got shape {arr.shape}")
    if tracker is not None:
        tracker.add(scan_cost(arr.size))
    return np.cumsum(arr)


def exclusive_scan(
    values: np.ndarray, tracker: CostTracker | None = None
) -> tuple[np.ndarray, float]:
    """Exclusive prefix sum; returns ``(offsets, total)``.

    ``offsets[i]`` is the sum of ``values[:i]``; ``total`` is the sum of the
    whole array.  This is the shape needed for parallel emission of filtered
    heap elements into a single output array (paper Section 2.2).
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"scan expects a 1-D array, got shape {arr.shape}")
    if tracker is not None:
        tracker.add(scan_cost(arr.size))
    if arr.size == 0:
        return np.zeros(0, dtype=arr.dtype), arr.dtype.type(0)
    out = np.empty_like(arr)
    out[0] = 0
    np.cumsum(arr[:-1], out=out[1:])
    total = out[-1] + arr[-1]
    return out, total
