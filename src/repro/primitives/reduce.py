"""Parallel reduction over an arbitrary associative operator.

Used by SLD-TreeContraction to meld the heaps of all clusters raked into
the same target in ``O(log d)`` depth (paper Section 3.2), and by tests to
check associativity-order independence.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

from repro.runtime.cost_model import CostTracker, WorkDepth
from repro.util import log2ceil

T = TypeVar("T")

__all__ = ["parallel_reduce"]


def parallel_reduce(
    items: Sequence[T],
    op: Callable[[T, T], T],
    tracker: CostTracker | None = None,
    op_cost: Callable[[T, T], WorkDepth] | None = None,
) -> T:
    """Reduce ``items`` with ``op`` in balanced-binary-tree order.

    The reduction tree has ``ceil(log2(n))`` levels; combines at the same
    level are charged as one parallel round (work = sum, depth = max), so a
    cost-reporting operator yields the textbook ``O(log n * depth(op))``
    overall depth.

    ``op`` must be associative; the tree order is deterministic (pairs of
    adjacent items), matching a ParlayLib-style deterministic reduce.
    """
    n = len(items)
    if n == 0:
        raise ValueError("parallel_reduce requires at least one item")
    level = list(items)
    while len(level) > 1:
        nxt: list[T] = []
        round_work = 0.0
        round_depth = 0.0
        for i in range(0, len(level) - 1, 2):
            a, b = level[i], level[i + 1]
            if op_cost is not None:
                cost = op_cost(a, b)
                round_work += cost.work
                round_depth = max(round_depth, cost.depth)
            nxt.append(op(a, b))
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        if tracker is not None:
            spawn = log2ceil(max(len(level) // 2, 1))
            tracker.add(WorkDepth(round_work, round_depth + spawn))
        level = nxt
    return level[0]
