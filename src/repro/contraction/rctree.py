"""The RC-tree produced by parallel tree contraction.

Each input vertex has one *rcnode*.  When vertex ``v`` is contracted via
edge ``e`` into the cluster represented by ``u``, rcnode ``v`` gets parent
rcnode ``u`` and edge ``e`` is *associated* to rcnode ``v`` (paper Section
2.1).  Exactly one vertex survives (the root rcnode, no associated edge),
and the association is a bijection between non-root vertices and edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.contraction.schedule import CompressEvent, RakeEvent
    from repro.trees.wtree import WeightedTree

__all__ = ["RCTree"]

KIND_ROOT = -1
KIND_RAKE = 0
KIND_COMPRESS = 1


@dataclass
class RCTree:
    """Output of :func:`repro.contraction.schedule.build_rc_tree`."""

    n: int
    root: int
    parent: np.ndarray  # rc-parent vertex per vertex; root points to itself
    edge: np.ndarray  # associated edge id per vertex; -1 for the root
    round_of: np.ndarray  # contraction round at which each vertex contracted
    kind: np.ndarray  # KIND_RAKE / KIND_COMPRESS / KIND_ROOT
    rounds: list[tuple[str, list]] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def vertex_of_edge(self) -> np.ndarray:
        """Inverse association: edge id -> the vertex contracted via it."""
        m = self.n - 1
        out = np.full(m, -1, dtype=np.int64)
        for v in range(self.n):
            e = int(self.edge[v])
            if e >= 0:
                out[e] = v
        return out

    def depths(self) -> np.ndarray:
        """Depth of each rcnode below the root (root depth 0).

        Vertices contracted in earlier rounds are deeper; parents always
        contract strictly later, so processing vertices in decreasing
        ``round_of`` order sees each parent first.
        """
        depths = np.zeros(self.n, dtype=np.int64)
        order = np.argsort(-self.round_of, kind="stable")
        for v in order:
            p = int(self.parent[v])
            depths[v] = 0 if p == v else depths[p] + 1
        return depths

    def height(self) -> int:
        """Height of the RC-tree (max rcnode depth)."""
        return int(self.depths().max()) if self.n else 0

    def validate(self, tree: "WeightedTree") -> None:
        """Re-simulate the recorded rounds, asserting each event's legality.

        Checks: every rake removes a then-degree-1 vertex, every compress
        removes a then-degree-2 vertex whose merge direction is the
        lesser-rank edge and whose neighbors are intact this round, the
        bijection vertex<->edge holds, and contraction ends at one vertex.
        """
        from repro.contraction.schedule import CompressEvent, RakeEvent

        ranks = tree.ranks
        adj: list[dict[int, int]] = [dict() for _ in range(tree.n)]
        for e in range(tree.m):
            u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
            adj[u][v] = e
            adj[v][u] = e
        alive = [True] * tree.n
        for kind, events in self.rounds:
            # Independence is a round-level property: no event's surviving
            # endpoints may themselves be contracted anywhere in the round.
            round_removed = {ev.v for ev in events}
            assert len(round_removed) == len(events), "vertex contracted twice in one round"
            for ev in events:
                assert alive[ev.v], f"vertex {ev.v} contracted twice"
                if isinstance(ev, RakeEvent):
                    assert kind == "rake"
                    assert len(adj[ev.v]) == 1, f"rake of non-leaf {ev.v}"
                    assert adj[ev.v].get(ev.u) == ev.e, "rake edge mismatch"
                    assert ev.u not in round_removed, "rake target contracted this round"
                    del adj[ev.u][ev.v]
                    adj[ev.v].clear()
                else:
                    assert isinstance(ev, CompressEvent) and kind == "compress"
                    assert len(adj[ev.v]) == 2, f"compress of degree-{len(adj[ev.v])} vertex"
                    assert adj[ev.v].get(ev.u) == ev.e1, "compress lesser edge mismatch"
                    assert adj[ev.v].get(ev.w) == ev.e2, "compress greater edge mismatch"
                    assert ranks[ev.e1] < ranks[ev.e2], "compress direction must be lesser rank"
                    assert ev.u not in round_removed, "compress neighbor contracted this round"
                    assert ev.w not in round_removed, "compress neighbor contracted this round"
                    del adj[ev.u][ev.v]
                    del adj[ev.w][ev.v]
                    adj[ev.v].clear()
                    assert ev.w not in adj[ev.u], "compress would create a multi-edge"
                    adj[ev.u][ev.w] = ev.e2
                    adj[ev.w][ev.u] = ev.e2
                alive[ev.v] = False
        assert sum(alive) == 1, "contraction did not reach a single vertex"
        assert alive[self.root], "recorded root is not the surviving vertex"
        voe = self.vertex_of_edge()
        assert (voe >= 0).all(), "some edge has no associated rcnode"
