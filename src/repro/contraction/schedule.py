"""Miller-Reif tree contraction with lesser-rank compress direction.

Rounds alternate **rake** (all degree-1 vertices contract into their
neighbor) and **compress** (an independent set of degree-2 vertices splice
out).  Independence for compress uses random vertex priorities drawn once
up front (seeded, hence reproducible): a degree-2 vertex compresses iff its
priority beats every degree-2 neighbor's, which removes an expected
constant fraction of every chain per round, giving the ``O(log n)`` round
bound of randomized Miller-Reif.  For the isolated-edge case (two adjacent
leaves) the lower-priority endpoint rakes into the higher.

Crucially for SLD correctness (Claims 3.8/3.9 and Algorithm 6), a
compressed vertex always merges along its **lesser-rank** incident edge;
the higher-rank edge survives and keeps its identity on the spliced
adjacency.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TypeVar

import numpy as np

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound
from repro.checkers.races import check_recorder
from repro.contraction.rctree import KIND_COMPRESS, KIND_RAKE, KIND_ROOT, RCTree
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker
from repro.trees.wtree import WeightedTree
from repro.util import check_random_state, log2ceil

__all__ = ["RakeEvent", "CompressEvent", "build_rc_tree"]


def _pair(a: int, b: int) -> tuple[int, int]:
    """Unordered adjacency-pair cell key (both directions are one slot)."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class RakeEvent:
    """Leaf ``v`` contracts into neighbor ``u`` via edge ``e = (u, v)``."""

    v: int
    u: int
    e: int


@dataclass(frozen=True)
class CompressEvent:
    """Degree-2 vertex ``v`` splices out.

    ``e1 = (u, v)`` and ``e2 = (v, w)`` with ``rank(e1) < rank(e2)``;
    ``v`` merges into ``u`` (the lesser-rank side) and the surviving
    adjacency ``(u, w)`` carries edge identity ``e2``.
    """

    v: int
    u: int
    e1: int
    w: int
    e2: int


_E = TypeVar("_E")


@cost_bound(
    work="k",
    depth="log(k)",
    vars=("k",),
    kind="helper",
    theorem="one synchronous commit round over k independent events",
)
def _run_commit_round(
    events: Sequence[_E],
    commit: Callable[[_E], None],
    annotate: Callable[[_E], None],
    race_check: bool,
    where: str,
) -> None:
    """Apply ``commit`` to each event, optionally under the race recorder.

    With ``race_check`` every event becomes one shadow task: ``annotate``
    reports the cells the event's commit touches (adjacency at unordered
    pair granularity; per-vertex contraction state; degree counters and
    candidate-set membership as commutative atomics), and conflicting
    events raise :class:`~repro.errors.RaceConditionError`.  Without it
    the loop is the plain uninstrumented commit.
    """
    if not race_check:
        for ev in events:
            commit(ev)
        return
    recorder = _access.RoundRecorder(where=where)
    _access.install(recorder)
    try:
        for i, ev in enumerate(events):
            recorder.begin_task(i, label=f"task {i}")
            annotate(ev)
            commit(ev)
        recorder.end_task()
    finally:
        _access.uninstall(recorder)
    check_recorder(recorder)


@cost_bound(
    work="n * log(n)",
    depth="log(n)**2",
    vars=("n",),
    theorem="randomized Miller-Reif contraction: O(log n) rounds whp, the "
    "candidate scan per round is charged against the shrinking frontier",
)
def build_rc_tree(
    tree: WeightedTree,
    seed: int | np.random.Generator | None = 0,
    tracker: CostTracker | None = None,
    priorities: str = "random",
    race_check: bool = False,
) -> RCTree:
    """Contract ``tree`` to a single vertex; return the resulting RC-tree.

    ``priorities`` selects the compress symmetry-breaking rule:

    * ``"random"`` (default) -- a seeded random permutation; every chain
      loses an expected constant fraction per round, the randomized
      Miller-Reif ``O(log n)`` round bound.
    * ``"id"`` -- vertex ids as priorities.  Correct but *pathological* on
      monotone-id chains (one local maximum per chain, ``Theta(n)``
      rounds); exposed for the symmetry-breaking ablation.

    With ``race_check=True`` each rake/compress commit round runs under
    the shadow round-race detector: the per-event commits are treated as
    parallel tasks and their adjacency/state accesses are intersected,
    machine-checking the independence argument for the decided event sets.
    """
    if priorities not in ("random", "id"):
        raise ValueError(f"unknown priority rule {priorities!r}; expected 'random' or 'id'")
    tracker = active_tracker(tracker)
    n = tree.n
    ranks = tree.ranks
    rc_parent = np.arange(n, dtype=np.int64)
    rc_edge = np.full(n, -1, dtype=np.int64)
    rc_round = np.full(n, -1, dtype=np.int64)
    rc_kind = np.full(n, KIND_ROOT, dtype=np.int64)
    rounds: list[tuple[str, list]] = []

    if n == 1:
        return RCTree(n, 0, rc_parent, rc_edge, rc_round, rc_kind, rounds)

    if priorities == "random":
        rng = check_random_state(seed)
        priority = rng.permutation(n)
    else:
        priority = np.arange(n, dtype=np.int64)

    adj: list[dict[int, int]] = [dict() for _ in range(n)]
    # Adjacency build: a flat parallel scatter in the model (O(1) depth per
    # edge); the host loop is sequential bookkeeping only.
    for e in range(tree.m):  # noqa: RPR102
        u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
        adj[u][v] = e
        adj[v][u] = e

    alive = np.ones(n, dtype=bool)
    alive_count = n
    # Only vertices of degree <= 2 can ever contract; degrees never grow, so
    # a candidate set seeded with the low-degree vertices and fed by rake
    # targets covers every future leaf / chain vertex.
    candidates = {v for v in range(n) if len(adj[v]) <= 2}
    round_index = 0

    # O(log n) rake/compress rounds whp; each iteration is one synchronous
    # round whose work/depth is charged to the tracker per round.
    while alive_count > 1:  # noqa: RPR102
        # ---------------- rake round ----------------
        leaves = [v for v in candidates if alive[v] and len(adj[v]) == 1]
        rake_events: list[RakeEvent] = []
        for v in leaves:
            (u, e), = adj[v].items()
            if len(adj[u]) == 1 and priority[v] > priority[u]:
                continue  # isolated edge: the lower-priority endpoint rakes
            rake_events.append(RakeEvent(v, u, e))
        scanned = len(candidates)

        def commit_rake(ev: RakeEvent) -> None:
            del adj[ev.u][ev.v]
            adj[ev.v].clear()
            alive[ev.v] = False
            rc_parent[ev.v] = ev.u
            rc_edge[ev.v] = ev.e
            rc_round[ev.v] = round_index
            rc_kind[ev.v] = KIND_RAKE
            candidates.discard(ev.v)
            if len(adj[ev.u]) <= 2:
                candidates.add(ev.u)

        def annotate_rake(ev: RakeEvent) -> None:
            # The raked adjacency slot and v's contraction state are plain
            # writes; u's degree counter (decremented by the delete, fetched
            # for the candidate test) and the candidate-set memberships are
            # commutative RMWs, hence atomic.
            _access.record_write("adj", _pair(ev.u, ev.v))
            _access.record_write("vertex", ev.v)
            _access.record_atomic("deg", ev.u)
            _access.record_atomic("candidates", ev.v)
            _access.record_atomic("candidates", ev.u)

        _run_commit_round(
            rake_events,
            commit_rake,
            annotate_rake,
            race_check,
            where=f"rake round {round_index}",
        )
        alive_count -= len(rake_events)
        if rake_events:
            rounds.append(("rake", rake_events))
            round_index += 1
        if tracker is not None:
            tracker.add(WorkDepth(float(scanned + len(rake_events)), float(log2ceil(n) + 1)))
        if alive_count <= 1:
            break

        # ---------------- compress round ----------------
        deg2 = [v for v in candidates if alive[v] and len(adj[v]) == 2]
        is_deg2 = set(deg2)
        compress_events: list[CompressEvent] = []
        for v in deg2:
            (a, ea), (b, eb) = adj[v].items()
            if (a in is_deg2 and priority[a] > priority[v]) or (
                b in is_deg2 and priority[b] > priority[v]
            ):
                continue  # not a local priority maximum among degree-2 peers
            if ranks[ea] > ranks[eb]:
                a, ea, b, eb = b, eb, a, ea
            compress_events.append(CompressEvent(v, a, int(ea), b, int(eb)))
        def commit_compress(ev: CompressEvent) -> None:
            del adj[ev.u][ev.v]
            del adj[ev.w][ev.v]
            adj[ev.v].clear()
            adj[ev.u][ev.w] = ev.e2
            adj[ev.w][ev.u] = ev.e2
            alive[ev.v] = False
            rc_parent[ev.v] = ev.u
            rc_edge[ev.v] = ev.e1
            rc_round[ev.v] = round_index
            rc_kind[ev.v] = KIND_COMPRESS
            candidates.discard(ev.v)

        def annotate_compress(ev: CompressEvent) -> None:
            # Both removed slots and the surviving spliced slot are plain
            # pair writes; u's and w's degrees are net-unchanged but still
            # pass through the shared counters, hence atomic.
            _access.record_write("adj", _pair(ev.u, ev.v))
            _access.record_write("adj", _pair(ev.v, ev.w))
            _access.record_write("adj", _pair(ev.u, ev.w))
            _access.record_write("vertex", ev.v)
            _access.record_atomic("deg", ev.u)
            _access.record_atomic("deg", ev.w)
            _access.record_atomic("candidates", ev.v)

        _run_commit_round(
            compress_events,
            commit_compress,
            annotate_compress,
            race_check,
            where=f"compress round {round_index}",
        )
        alive_count -= len(compress_events)
        if compress_events:
            rounds.append(("compress", compress_events))
            round_index += 1
        if tracker is not None:
            tracker.add(
                WorkDepth(float(len(deg2) + len(compress_events)), float(log2ceil(n) + 1))
            )

    root = int(np.flatnonzero(alive)[0])
    rc_round[root] = round_index
    rct = RCTree(n, root, rc_parent, rc_edge, rc_round, rc_kind, rounds)
    return rct
