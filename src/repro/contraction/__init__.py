"""Parallel tree contraction (Miller-Reif) and RC-trees.

One contraction schedule feeds both of the paper's tree-contraction-based
algorithms: RCTT traces the finished RC-tree (Section 4.2) and
SLD-TreeContraction replays the rounds with filterable heaps (Section 3.2).
The compress direction is always the *lesser-rank* incident edge, the
invariant both algorithms require.
"""

from repro.contraction.fast import build_rc_tree_fast
from repro.contraction.rctree import RCTree
from repro.contraction.schedule import CompressEvent, RakeEvent, build_rc_tree

__all__ = ["RCTree", "build_rc_tree", "build_rc_tree_fast", "RakeEvent", "CompressEvent"]
