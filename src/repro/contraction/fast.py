"""Array-based tree contraction: the vectorized twin of ``schedule.py``.

RC-tree construction dominates RCTT's running time (paper Figure 7 and our
reproduction), and the paper names faster tree contraction as future work.
This module removes the per-vertex Python/dict overhead of the reference
scheduler by representing the contracting tree with *algebraic incidence
accumulators* instead of adjacency lists:

for every vertex ``v`` maintain, over its current incident (neighbor,
edge) pairs,

* ``deg[v]``        -- the degree,
* ``nbr_sum[v]``    -- sum of neighbor ids,
* ``nbr_sqsum[v]``  -- sum of squared neighbor ids,
* ``edge_sum[v]``   -- sum of incident edge ids,
* ``cross_sum[v]``  -- sum of ``neighbor * edge`` products.

A degree-1 vertex reads its unique neighbor/edge straight from the sums.
A degree-2 vertex recovers its two neighbors from ``(sum, sqsum)`` --
``(a-b)^2 = 2*sqsum - sum^2`` -- and then its two edges by solving the
2x2 linear system ``{e1+e2, a*e1+b*e2}``.  Every rake/compress round then
becomes a handful of NumPy kernels with ``np.add.at`` scatter updates
(which correctly accumulate when many vertices contract into one target).

The schedule produced is **identical** to the reference builder's for the
same seed -- both implement "all leaves rake (lower priority yields on
leaf-leaf edges); degree-2 priority local-maxima compress toward the
lesser-rank edge" -- which the tests assert array-for-array.

Overflow bound: ``cross_sum`` can reach ``deg * n * m``; with int64 this
is safe for ``n`` up to ~50M (far above anything a single Python process
holds), and the reference builder remains available beyond that.
"""

from __future__ import annotations

import numpy as np

from repro.checkers.bounds import cost_bound
from repro.checkers.contracts import slab_contract
from repro.contraction.rctree import KIND_COMPRESS, KIND_RAKE, KIND_ROOT, RCTree
from repro.contraction.schedule import CompressEvent, RakeEvent
from repro.runtime.cost_model import CostTracker, WorkDepth, active_tracker
from repro.trees.wtree import WeightedTree
from repro.util import check_random_state, log2ceil

__all__ = ["build_rc_tree_fast"]


@cost_bound(
    work="n * log(n)",
    depth="log(n)**2",
    vars=("n",),
    theorem="randomized Miller-Reif contraction, vectorized rounds: same "
    "charged schedule costs as the reference builder",
)
@slab_contract(
    dtypes={
        "tree.edges": "int64",
        "tree.ranks": "int64",
        "tree.weights": "float64",
    },
)
def build_rc_tree_fast(
    tree: WeightedTree,
    seed: int | np.random.Generator | None = 0,
    tracker: CostTracker | None = None,
    priorities: str = "random",
    record_events: bool = True,
) -> RCTree:
    """Contract ``tree`` with vectorized rounds; return the RC-tree.

    ``record_events=False`` skips materializing the per-round event lists
    (RCTT only needs the parent/edge arrays), saving the Python-object
    cost on large inputs.
    """
    if priorities not in ("random", "id"):
        raise ValueError(f"unknown priority rule {priorities!r}; expected 'random' or 'id'")
    # This builder is the hybrid exception to effect purity: it has no
    # reference twin behind it, so it resolves the ambient tracker once,
    # host-side, and charges per-round costs itself.
    tracker = active_tracker(tracker)  # noqa: RPR207 -- integral cost charging
    n = tree.n
    ranks = tree.ranks
    rc_parent = np.arange(n, dtype=np.int64)
    rc_edge = np.full(n, -1, dtype=np.int64)
    rc_round = np.full(n, -1, dtype=np.int64)
    rc_kind = np.full(n, KIND_ROOT, dtype=np.int64)
    rounds: list[tuple[str, list]] = []

    if n == 1:
        return RCTree(n, 0, rc_parent, rc_edge, rc_round, rc_kind, rounds)

    if priorities == "random":
        rng = check_random_state(seed)
        priority = rng.permutation(n).astype(np.int64, copy=False)
    else:
        priority = np.arange(n, dtype=np.int64)

    eu = tree.edges[:, 0]
    ev = tree.edges[:, 1]
    deg = np.bincount(tree.edges.reshape(-1), minlength=n).astype(np.int64, copy=False)
    nbr_sum = np.zeros(n, dtype=np.int64)
    nbr_sqsum = np.zeros(n, dtype=np.int64)
    edge_sum = np.zeros(n, dtype=np.int64)
    cross_sum = np.zeros(n, dtype=np.int64)
    eids = np.arange(tree.m, dtype=np.int64)
    np.add.at(nbr_sum, eu, ev)
    np.add.at(nbr_sum, ev, eu)
    np.add.at(nbr_sqsum, eu, ev * ev)
    np.add.at(nbr_sqsum, ev, eu * eu)
    np.add.at(edge_sum, eu, eids)
    np.add.at(edge_sum, ev, eids)
    np.add.at(cross_sum, eu, ev * eids)
    np.add.at(cross_sum, ev, eu * eids)

    alive = np.ones(n, dtype=bool)
    alive_count = n
    round_index = 0

    def detach(owner: np.ndarray, nbr: np.ndarray, edge: np.ndarray) -> None:
        """Remove (nbr, edge) pairs from owners' accumulators (scattered)."""
        np.add.at(deg, owner, -1)
        np.add.at(nbr_sum, owner, -nbr)
        np.add.at(nbr_sqsum, owner, -(nbr * nbr))
        np.add.at(edge_sum, owner, -edge)
        np.add.at(cross_sum, owner, -(nbr * edge))

    def attach(owner: np.ndarray, nbr: np.ndarray, edge: np.ndarray) -> None:
        np.add.at(deg, owner, 1)
        np.add.at(nbr_sum, owner, nbr)
        np.add.at(nbr_sqsum, owner, nbr * nbr)
        np.add.at(edge_sum, owner, edge)
        np.add.at(cross_sum, owner, nbr * edge)

    # O(log n) rounds whp; each iteration is one synchronous vectorized
    # round, charged to the tracker per round.
    while alive_count > 1:  # noqa: RPR102
        # ---------------- rake round ----------------
        leaves = np.flatnonzero(alive & (deg == 1))
        if leaves.size:
            u = nbr_sum[leaves]  # unique neighbor
            e = edge_sum[leaves]  # unique edge
            # leaf-leaf pairs: only the lower-priority endpoint rakes
            keep = (deg[u] != 1) | (priority[leaves] <= priority[u])
            v_r = leaves[keep]
            u_r = u[keep]
            e_r = e[keep]
            detach(u_r, v_r, e_r)
            alive[v_r] = False
            deg[v_r] = 0
            rc_parent[v_r] = u_r
            rc_edge[v_r] = e_r
            rc_round[v_r] = round_index
            rc_kind[v_r] = KIND_RAKE
            alive_count -= int(v_r.size)
            if record_events:
                rounds.append(
                    (
                        "rake",
                        [
                            RakeEvent(int(v), int(uu), int(ee))
                            for v, uu, ee in zip(v_r, u_r, e_r)
                        ],
                    )
                )
            else:
                rounds.append(("rake", []))
            round_index += 1
            if tracker is not None:
                tracker.add(WorkDepth(float(leaves.size), float(log2ceil(n) + 1)))
        if alive_count <= 1:
            break

        # ---------------- compress round ----------------
        cand = np.flatnonzero(alive & (deg == 2))
        if cand.size:
            s = nbr_sum[cand]
            q = nbr_sqsum[cand]
            disc = 2 * q - s * s  # (a - b)^2, exact in int64
            # np.sqrt(int64) yields float64 directly; the int64 round-trip
            # is the point of the statement (one conversion per O(log n)
            # round over the shrinking candidate set, not per element-loop).
            d = np.rint(np.sqrt(disc)).astype(np.int64)  # noqa: RPR202 -- conversion is the op
            # correct any float rounding (at most off by one)
            d += (d + 1) * (d + 1) <= disc
            d -= d * d > disc
            a = (s + d) >> 1
            b = (s - d) >> 1
            se = edge_sum[cand]
            sc = cross_sum[cand]
            # a != b always (distinct vertices), so the system is regular
            e_a = (sc - b * se) // (a - b)
            e_b = se - e_a
            # independence: priority local maxima among degree-2 neighbors
            keep = ((deg[a] != 2) | (priority[a] < priority[cand])) & (
                (deg[b] != 2) | (priority[b] < priority[cand])
            )
            v_c = cand[keep]
            if v_c.size:
                a_c, b_c = a[keep], b[keep]
                ea_c, eb_c = e_a[keep], e_b[keep]
                # merge toward the lesser-rank edge: u via e1, w keeps e2
                swap = ranks[ea_c] > ranks[eb_c]
                u_c = np.where(swap, b_c, a_c)
                w_c = np.where(swap, a_c, b_c)
                e1_c = np.where(swap, eb_c, ea_c)
                e2_c = np.where(swap, ea_c, eb_c)
                # splice: u loses (v, e1) gains (w, e2); w's (v, e2) -> (u, e2)
                detach(u_c, v_c, e1_c)
                detach(w_c, v_c, e2_c)
                attach(u_c, w_c, e2_c)
                attach(w_c, u_c, e2_c)
                alive[v_c] = False
                deg[v_c] = 0
                rc_parent[v_c] = u_c
                rc_edge[v_c] = e1_c
                rc_round[v_c] = round_index
                rc_kind[v_c] = KIND_COMPRESS
                alive_count -= int(v_c.size)
                if record_events:
                    rounds.append(
                        (
                            "compress",
                            [
                                CompressEvent(int(v), int(u), int(e1), int(w), int(e2))
                                for v, u, e1, w, e2 in zip(v_c, u_c, e1_c, w_c, e2_c)
                            ],
                        )
                    )
                else:
                    rounds.append(("compress", []))
                round_index += 1
            if tracker is not None:
                tracker.add(WorkDepth(float(cand.size), float(log2ceil(n) + 1)))

    root = int(np.flatnonzero(alive)[0])
    rc_round[root] = round_index
    return RCTree(n, root, rc_parent, rc_edge, rc_round, rc_kind, rounds)
