"""repro: optimal parallel single-linkage dendrogram computation.

A from-scratch Python reproduction of "Optimal Parallel Algorithms for
Dendrogram Computation and Single-Linkage Clustering" (Dhulipala, Dong,
Gowda, Gu; SPAA 2024): the SeqUF baseline, the activation-based ParUF
algorithm, the RC-tree-tracing RCTT algorithm, the optimal heap-based
SLD-TreeContraction algorithm, the SLD-Merge divide-and-conquer framework,
and every substrate they depend on (meldable/filterable heaps, parallel
tree contraction, union-find, parallel primitives, MST reduction, and a
work-depth cost-model runtime).

Quickstart::

    import numpy as np
    from repro import WeightedTree, single_linkage_dendrogram

    tree = WeightedTree(4, np.array([[0, 1], [1, 2], [2, 3]]),
                        np.array([0.5, 0.1, 0.9]))
    dend = single_linkage_dendrogram(tree, algorithm="rctt")
    dend.parents     # parent edge of each edge's dendrogram node
    dend.height      # the paper's h
    dend.to_linkage()  # SciPy-compatible linkage matrix
"""

from repro._version import __version__
from repro.core.api import ALGORITHMS, single_linkage_dendrogram
from repro.dendrogram.structure import Dendrogram
from repro.trees.generators import (
    balanced_binary,
    broom,
    caterpillar,
    knuth_tree,
    path_tree,
    random_tree,
    star_of_stars,
    star_tree,
)
from repro.trees.mst import minimum_spanning_tree
from repro.trees.weights import apply_scheme
from repro.trees.wtree import WeightedTree

__all__ = [
    "__version__",
    "WeightedTree",
    "Dendrogram",
    "single_linkage_dendrogram",
    "ALGORITHMS",
    "minimum_spanning_tree",
    "apply_scheme",
    "path_tree",
    "star_tree",
    "knuth_tree",
    "random_tree",
    "balanced_binary",
    "caterpillar",
    "broom",
    "star_of_stars",
]
