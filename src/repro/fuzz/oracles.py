"""Differential oracles: algorithms vs. the brute-force SLD, io vs. a
reference parser.

The dendrogram of a weighted tree is *unique* under the package's
deterministic ``(weight, edge id)`` tie-breaking, so every algorithm must
return the exact parent array the definitional
:func:`~repro.core.brute.brute_force_sld` oracle computes -- byte-for-byte
agreement, not just isomorphism.  That makes the differential check a
single comparison per algorithm and (transitively) a pairwise cross-check
of all of them.

For the io layer there is no definitional oracle, so
:func:`reference_parse_csv` reimplements the documented
``load_edges_csv`` contract from scratch (plain string splitting, no csv
module, no shared helpers); any behavioral difference -- acceptance,
values, or a leaked non-:class:`~repro.io.FormatError` exception -- is a
finding.  This is the harness that caught the header-skip and
``ValueError``-leak bugs fixed alongside it.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
import io as _stdio
import os
import tempfile

import numpy as np

from repro.core.brute import brute_force_sld
from repro.core.fast import sequf_fast
from repro.core.fast_contraction import rctt_fast, tree_contraction_fast
from repro.core.paruf import paruf
from repro.core.paruf_sync import paruf_sync
from repro.core.paruf_threaded import paruf_threaded
from repro.core.rctt import rctt
from repro.core.sequf import sequf
from repro.core.tree_contraction_sld import sld_tree_contraction
from repro.errors import ReproError
from repro.fuzz.generators import CsvCase, FuzzCase, NpzCase, TreeCase

__all__ = [
    "FUZZ_ALGORITHMS",
    "Finding",
    "differential_check",
    "io_csv_check",
    "io_npz_check",
    "reference_parse_csv",
]


@dataclass
class Finding:
    """One observed divergence/crash, tied to the case that triggered it.

    ``check`` and ``message`` are deterministic functions of the case (no
    timestamps, addresses, or schedule-dependent detail) so corpus entries
    are byte-stable across runs.
    """

    check: str
    message: str
    case: FuzzCase

    def describe(self) -> str:
        label = getattr(self.case, "label", "")
        return f"{self.check}: {self.message}" + (f" [{label}]" if label else "")


def _sld_merge(tree, **kw):  # type: ignore[no-untyped-def]
    from repro.core.merge import sld_divide_and_conquer

    return sld_divide_and_conquer(tree, **kw)


#: Algorithms under differential test: the paper's production algorithms
#: plus the genuinely-threaded ParUF variant (which the public
#: ``ALGORITHMS`` registry omits because its signature takes no tracker)
#: and the flat-array fast backends.  The fuzzer calls these tracker-less,
#: which is exactly the configuration where the array twins take their
#: batched paths instead of delegating to the reference.
FUZZ_ALGORITHMS: dict[str, Callable[..., np.ndarray]] = {
    "sequf": sequf,
    "paruf": paruf,
    "paruf-sync": paruf_sync,
    "paruf-threaded": lambda tree, num_threads=4: paruf_threaded(tree, num_threads=num_threads),
    "rctt": rctt,
    "tree-contraction": lambda tree: sld_tree_contraction(tree, mode="heap"),
    "sld-merge": _sld_merge,
    "sequf-fast": sequf_fast,
    "rctt-fast": rctt_fast,
    "tree-contraction-fast": tree_contraction_fast,
}


def differential_check(
    case: TreeCase,
    algorithms: dict[str, Callable[..., np.ndarray]] | None = None,
    num_threads: int = 4,
) -> list[Finding]:
    """Run every algorithm on the case and compare against the brute oracle."""
    tree = case.tree()
    expected = brute_force_sld(tree)
    findings: list[Finding] = []
    for name, fn in (algorithms if algorithms is not None else FUZZ_ALGORITHMS).items():
        try:
            if name == "paruf-threaded":
                got = fn(tree, num_threads=num_threads)
            else:
                got = fn(tree)
        except Exception as exc:
            findings.append(
                Finding(
                    check=f"differential:{name}",
                    message=f"crashed with {type(exc).__name__}",
                    case=case,
                )
            )
            continue
        if not np.array_equal(np.asarray(got), expected):
            findings.append(
                Finding(
                    check=f"differential:{name}",
                    message="parent array differs from the brute-force oracle",
                    case=case,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Reference CSV parser (independent reimplementation of the io contract)
# ---------------------------------------------------------------------------


def reference_parse_csv(
    text: str, has_header: bool | None
) -> tuple[str, tuple[int, list[tuple[int, int]], list[float]] | str]:
    """Parse edge-list CSV text by the documented contract, from scratch.

    Returns ``("ok", (n, edges, weights))`` or ``("error", reason)`` where
    ``reason`` is a stable tag (``short-row``, ``bad-int``, ``bad-float``,
    ``nonfinite-weight``, ``negative-id``, ``self-loop``, ``duplicate-edge``,
    ``no-edges``).  Quote-free inputs only (the generator guarantees this),
    so naive comma splitting matches the csv module's tokenization.
    """
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    seen: set[tuple[int, int]] = set()
    first = True
    for line in text.split("\n"):
        line = line.rstrip("\r")
        cells = line.split(",")
        if len(cells) == 1 and not cells[0].strip():
            continue  # blank row
        if first:
            first = False
            if has_header:
                continue
            if has_header is None:
                try:
                    int(cells[0])
                except ValueError:
                    continue  # auto-detected header
        if len(cells) < 2:
            return "error", "short-row"
        try:
            u, v = int(cells[0]), int(cells[1])
        except ValueError:
            return "error", "bad-int"
        if u < 0 or v < 0:
            return "error", "negative-id"
        if u == v:
            return "error", "self-loop"
        w = 1.0
        if len(cells) >= 3 and cells[2].strip():
            try:
                w = float(cells[2])
            except ValueError:
                return "error", "bad-float"
            if w != w or w in (float("inf"), float("-inf")):
                return "error", "nonfinite-weight"
        key = (u, v) if u < v else (v, u)
        if key in seen:
            return "error", "duplicate-edge"
        seen.add(key)
        edges.append((u, v))
        weights.append(w)
    if not edges:
        return "error", "no-edges"
    n = max(max(u, v) for u, v in edges) + 1
    return "ok", (n, edges, weights)


LoadEdgesCsv = Callable[..., tuple[int, np.ndarray, np.ndarray]]


def io_csv_check(case: CsvCase, loader: LoadEdgesCsv | None = None) -> list[Finding]:
    """Differential + contract check of ``load_edges_csv`` on one case.

    Properties enforced:

    * the loader raises :class:`~repro.io.FormatError` -- never any other
      exception -- exactly when the reference parser rejects;
    * on acceptance, ``(n, edges, weights)`` match the reference exactly.
    """
    from repro.io import FormatError, load_edges_csv

    fn = loader if loader is not None else load_edges_csv
    verdict, payload = reference_parse_csv(case.text, case.has_header)
    fd, path = tempfile.mkstemp(suffix=".csv")
    try:
        with os.fdopen(fd, "w", newline="") as fh:
            fh.write(case.text)
        try:
            n, edges, weights = fn(path, has_header=case.has_header)
            outcome = "ok"
        except FormatError:
            outcome = "rejected"
        except Exception as exc:
            return [
                Finding(
                    check="io:csv:exception-leak",
                    message=f"loader leaked {type(exc).__name__} instead of FormatError",
                    case=case,
                )
            ]
    finally:
        os.unlink(path)
    if verdict == "error":
        if outcome != "rejected":
            return [
                Finding(
                    check="io:csv:accepted-malformed",
                    message=f"loader accepted input the contract rejects ({payload})",
                    case=case,
                )
            ]
        return []
    assert not isinstance(payload, str)
    ref_n, ref_edges, ref_weights = payload
    if outcome == "rejected":
        return [
            Finding(
                check="io:csv:rejected-wellformed",
                message="loader rejected input the contract accepts",
                case=case,
            )
        ]
    same = (
        n == ref_n
        and edges.shape == (len(ref_edges), 2)
        and np.array_equal(edges, np.asarray(ref_edges, dtype=np.int64).reshape(-1, 2))
        and np.array_equal(weights, np.asarray(ref_weights, dtype=np.float64))
    )
    if not same:
        return [
            Finding(
                check="io:csv:result-mismatch",
                message="loader output differs from the reference parser",
                case=case,
            )
        ]
    return []


def io_npz_check(case: NpzCase) -> list[Finding]:
    """Contract check of the ``.npz`` loaders on arbitrary bytes.

    ``load_tree`` must either return a tree or raise a
    :class:`~repro.errors.ReproError` (:class:`~repro.io.FormatError` for
    non-archives); any other exception escaping is a finding.
    """
    from repro.io import load_tree

    try:
        load_tree(_stdio.BytesIO(case.data))
    except ReproError:
        pass
    except Exception as exc:
        return [
            Finding(
                check="io:npz:exception-leak",
                message=f"load_tree leaked {type(exc).__name__} instead of a ReproError",
                case=case,
            )
        ]
    return []
