"""Differential oracles: algorithms vs. the brute-force SLD, io vs. a
reference parser.

The dendrogram of a weighted tree is *unique* under the package's
deterministic ``(weight, edge id)`` tie-breaking, so every algorithm must
return the exact parent array the definitional
:func:`~repro.core.brute.brute_force_sld` oracle computes -- byte-for-byte
agreement, not just isomorphism.  That makes the differential check a
single comparison per algorithm and (transitively) a pairwise cross-check
of all of them.

For the io layer there is no definitional oracle, so
:func:`reference_parse_csv` reimplements the documented
``load_edges_csv`` contract from scratch (plain string splitting, no csv
module, no shared helpers); any behavioral difference -- acceptance,
values, or a leaked non-:class:`~repro.io.FormatError` exception -- is a
finding.  This is the harness that caught the header-skip and
``ValueError``-leak bugs fixed alongside it.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
import io as _stdio
import os
import tempfile

import numpy as np

from repro.core.brute import brute_force_sld
from repro.core.fast import sequf_fast
from repro.core.fast_contraction import rctt_fast, tree_contraction_fast
from repro.core.paruf import paruf
from repro.core.paruf_sync import paruf_sync
from repro.core.paruf_threaded import paruf_threaded
from repro.core.rctt import rctt
from repro.core.sequf import sequf
from repro.core.tree_contraction_sld import sld_tree_contraction
from repro.errors import (
    InvalidGraphError,
    InvalidWeightsError,
    NotConnectedError,
    ReproError,
)
from repro.fuzz.generators import (
    CsvCase,
    DynamicCase,
    FuzzCase,
    GraphCase,
    NpzCase,
    TreeCase,
)

__all__ = [
    "FUZZ_ALGORITHMS",
    "Finding",
    "differential_check",
    "dynamic_check",
    "io_csv_check",
    "io_npz_check",
    "mst_check",
    "reference_parse_csv",
]


@dataclass
class Finding:
    """One observed divergence/crash, tied to the case that triggered it.

    ``check`` and ``message`` are deterministic functions of the case (no
    timestamps, addresses, or schedule-dependent detail) so corpus entries
    are byte-stable across runs.
    """

    check: str
    message: str
    case: FuzzCase

    def describe(self) -> str:
        label = getattr(self.case, "label", "")
        return f"{self.check}: {self.message}" + (f" [{label}]" if label else "")


def _sld_merge(tree, **kw):  # type: ignore[no-untyped-def]
    from repro.core.merge import sld_divide_and_conquer

    return sld_divide_and_conquer(tree, **kw)


#: Algorithms under differential test: the paper's production algorithms
#: plus the genuinely-threaded ParUF variant (which the public
#: ``ALGORITHMS`` registry omits because its signature takes no tracker)
#: and the flat-array fast backends.  The fuzzer calls these tracker-less,
#: which is exactly the configuration where the array twins take their
#: batched paths instead of delegating to the reference.
FUZZ_ALGORITHMS: dict[str, Callable[..., np.ndarray]] = {
    "sequf": sequf,
    "paruf": paruf,
    "paruf-sync": paruf_sync,
    "paruf-threaded": lambda tree, num_threads=4: paruf_threaded(tree, num_threads=num_threads),
    "rctt": rctt,
    "tree-contraction": lambda tree: sld_tree_contraction(tree, mode="heap"),
    "sld-merge": _sld_merge,
    "sequf-fast": sequf_fast,
    "rctt-fast": rctt_fast,
    "tree-contraction-fast": tree_contraction_fast,
}


def differential_check(
    case: TreeCase,
    algorithms: dict[str, Callable[..., np.ndarray]] | None = None,
    num_threads: int = 4,
) -> list[Finding]:
    """Run every algorithm on the case and compare against the brute oracle."""
    tree = case.tree()
    expected = brute_force_sld(tree)
    findings: list[Finding] = []
    for name, fn in (algorithms if algorithms is not None else FUZZ_ALGORITHMS).items():
        try:
            if name == "paruf-threaded":
                got = fn(tree, num_threads=num_threads)
            else:
                got = fn(tree)
        except Exception as exc:
            findings.append(
                Finding(
                    check=f"differential:{name}",
                    message=f"crashed with {type(exc).__name__}",
                    case=case,
                )
            )
            continue
        if not np.array_equal(np.asarray(got), expected):
            findings.append(
                Finding(
                    check=f"differential:{name}",
                    message="parent array differs from the brute-force oracle",
                    case=case,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# MST oracles: array Boruvka + streaming Kruskal vs. in-memory Kruskal
# ---------------------------------------------------------------------------

#: Injection-point signatures for :func:`mst_check` (the selftest's
#: mutants replace these; production runs use the real engines).
BoruvkaFn = Callable[[int, np.ndarray, np.ndarray], np.ndarray]
StreamingFn = Callable[["str", int], "tuple[int, np.ndarray]"]


def mst_check(
    case: GraphCase,
    boruvka_fn: BoruvkaFn | None = None,
    streaming_fn: StreamingFn | None = None,
) -> list[Finding]:
    """Differential check of the fast MST engines on one graph case.

    In-memory :func:`~repro.trees.mst.kruskal_mst` is the oracle (its
    scan order *defines* the rank-unique MST).  Against it:

    * the array-backend Boruvka must select the identical edge set;
    * streaming Kruskal over a round-tripped REDG1 file, at the case's
      chunk size, must return the identical id sequence (it promises
      bit-identity, so order is compared too).

    A non-finding exception from the oracle itself (e.g. the shrinker
    disconnected the graph) skips the case instead of reporting.
    """
    from repro.io.edgefile import write_edge_file
    from repro.trees.boruvka import boruvka_mst
    from repro.trees.mst import kruskal_mst, streaming_kruskal_mst

    if boruvka_fn is None:
        boruvka_fn = lambda n, e, w: boruvka_mst(n, e, w, backend="array")  # noqa: E731
    if streaming_fn is None:
        streaming_fn = lambda path, chunk: streaming_kruskal_mst(path, chunk=chunk)  # noqa: E731

    try:
        expected = kruskal_mst(case.n, case.edges, case.weights)
    except ReproError:
        return []  # shrunk/degenerate case outside the engines' contract
    findings: list[Finding] = []

    try:
        got = np.asarray(boruvka_fn(case.n, case.edges, case.weights))
        if not np.array_equal(np.sort(got), np.sort(expected)):
            findings.append(
                Finding(
                    check="mst:boruvka-array",
                    message="array-backend Boruvka edge set differs from Kruskal",
                    case=case,
                )
            )
    except Exception as exc:
        findings.append(
            Finding(
                check="mst:boruvka-array",
                message=f"crashed with {type(exc).__name__}",
                case=case,
            )
        )

    fd, path = tempfile.mkstemp(suffix=".redg")
    try:
        os.close(fd)
        write_edge_file(path, case.n, case.edges, case.weights)
        try:
            got_n, got_ids = streaming_fn(path, case.chunk)
            if got_n != case.n or not np.array_equal(np.asarray(got_ids), expected):
                findings.append(
                    Finding(
                        check="mst:streaming",
                        message=(
                            "streaming Kruskal output differs from in-memory Kruskal"
                            f" at chunk={case.chunk}"
                        ),
                        case=case,
                    )
                )
        except Exception as exc:
            findings.append(
                Finding(
                    check="mst:streaming",
                    message=f"crashed with {type(exc).__name__} at chunk={case.chunk}",
                    case=case,
                )
            )
    finally:
        os.unlink(path)
    return findings


# ---------------------------------------------------------------------------
# Reference CSV parser (independent reimplementation of the io contract)
# ---------------------------------------------------------------------------


def reference_parse_csv(
    text: str, has_header: bool | None
) -> tuple[str, tuple[int, list[tuple[int, int]], list[float]] | str]:
    """Parse edge-list CSV text by the documented contract, from scratch.

    Returns ``("ok", (n, edges, weights))`` or ``("error", reason)`` where
    ``reason`` is a stable tag (``short-row``, ``bad-int``, ``bad-float``,
    ``nonfinite-weight``, ``negative-id``, ``self-loop``, ``duplicate-edge``,
    ``no-edges``).  Quote-free inputs only (the generator guarantees this),
    so naive comma splitting matches the csv module's tokenization.
    """
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    seen: set[tuple[int, int]] = set()
    first = True
    for line in text.split("\n"):
        line = line.rstrip("\r")
        cells = line.split(",")
        if len(cells) == 1 and not cells[0].strip():
            continue  # blank row
        if first:
            first = False
            if has_header:
                continue
            if has_header is None:
                try:
                    int(cells[0])
                except ValueError:
                    continue  # auto-detected header
        if len(cells) < 2:
            return "error", "short-row"
        try:
            u, v = int(cells[0]), int(cells[1])
        except ValueError:
            return "error", "bad-int"
        if u < 0 or v < 0:
            return "error", "negative-id"
        if u == v:
            return "error", "self-loop"
        w = 1.0
        if len(cells) >= 3 and cells[2].strip():
            try:
                w = float(cells[2])
            except ValueError:
                return "error", "bad-float"
            if w != w or w in (float("inf"), float("-inf")):
                return "error", "nonfinite-weight"
        key = (u, v) if u < v else (v, u)
        if key in seen:
            return "error", "duplicate-edge"
        seen.add(key)
        edges.append((u, v))
        weights.append(w)
    if not edges:
        return "error", "no-edges"
    n = max(max(u, v) for u, v in edges) + 1
    return "ok", (n, edges, weights)


LoadEdgesCsv = Callable[..., tuple[int, np.ndarray, np.ndarray]]


def io_csv_check(case: CsvCase, loader: LoadEdgesCsv | None = None) -> list[Finding]:
    """Differential + contract check of ``load_edges_csv`` on one case.

    Properties enforced:

    * the loader raises :class:`~repro.io.FormatError` -- never any other
      exception -- exactly when the reference parser rejects;
    * on acceptance, ``(n, edges, weights)`` match the reference exactly.
    """
    from repro.io import FormatError, load_edges_csv

    fn = loader if loader is not None else load_edges_csv
    verdict, payload = reference_parse_csv(case.text, case.has_header)
    fd, path = tempfile.mkstemp(suffix=".csv")
    try:
        with os.fdopen(fd, "w", newline="") as fh:
            fh.write(case.text)
        try:
            n, edges, weights = fn(path, has_header=case.has_header)
            outcome = "ok"
        except FormatError:
            outcome = "rejected"
        except Exception as exc:
            return [
                Finding(
                    check="io:csv:exception-leak",
                    message=f"loader leaked {type(exc).__name__} instead of FormatError",
                    case=case,
                )
            ]
    finally:
        os.unlink(path)
    if verdict == "error":
        if outcome != "rejected":
            return [
                Finding(
                    check="io:csv:accepted-malformed",
                    message=f"loader accepted input the contract rejects ({payload})",
                    case=case,
                )
            ]
        return []
    assert not isinstance(payload, str)
    ref_n, ref_edges, ref_weights = payload
    if outcome == "rejected":
        return [
            Finding(
                check="io:csv:rejected-wellformed",
                message="loader rejected input the contract accepts",
                case=case,
            )
        ]
    same = (
        n == ref_n
        and edges.shape == (len(ref_edges), 2)
        and np.array_equal(edges, np.asarray(ref_edges, dtype=np.int64).reshape(-1, 2))
        and np.array_equal(weights, np.asarray(ref_weights, dtype=np.float64))
    )
    if not same:
        return [
            Finding(
                check="io:csv:result-mismatch",
                message="loader output differs from the reference parser",
                case=case,
            )
        ]
    return []


# ---------------------------------------------------------------------------
# Dynamic-vs-recompute oracle (shadow graph model)
# ---------------------------------------------------------------------------


def _connected(n: int, pairs: "list[tuple[int, int]]") -> bool:
    """Union-find connectivity of the shadow graph."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    comps = n
    for u, v in pairs:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            comps -= 1
    return comps == 1


def _predict_batch(
    n: int,
    graph: dict[tuple[int, int], float],
    inserts: tuple[tuple[int, int, float], ...],
    deletes: tuple[tuple[int, int], ...],
) -> tuple[type | None, dict[tuple[int, int], float]]:
    """Replay one batch on the shadow graph, in the engine's documented
    order: full upfront validation, then inserts, then deletes, where a
    delete fails exactly when removal disconnects the current graph.

    Returns ``(expected_error_type, resulting_graph)``; the graph is the
    pre-batch one whenever an error is expected (whole-batch rollback).
    """
    seen_ins: set[tuple[int, int]] = set()
    for u, v, w in inserts:
        if not (0 <= u < n and 0 <= v < n) or u == v:
            return InvalidGraphError, graph
        if not np.isfinite(w):
            return InvalidWeightsError, graph
        key = (u, v) if u < v else (v, u)
        if key in seen_ins:
            return ValueError, graph
        seen_ins.add(key)
    seen_dels: set[tuple[int, int]] = set()
    for u, v in deletes:
        if not (0 <= u < n and 0 <= v < n) or u == v:
            return InvalidGraphError, graph
        key = (u, v) if u < v else (v, u)
        if key in seen_dels:
            return ValueError, graph
        seen_dels.add(key)
    g = dict(graph)
    for u, v, w in inserts:
        key = (u, v) if u < v else (v, u)
        if key in g:
            return ValueError, graph
        g[key] = w
    for u, v in deletes:
        key = (u, v) if u < v else (v, u)
        if key not in g:
            return ValueError, graph
        del g[key]
        if not _connected(n, list(g)):
            return NotConnectedError, graph
    return None, g


def dynamic_check(
    case: DynamicCase,
    engine_factory: Callable[[int, np.ndarray, np.ndarray], object] | None = None,
) -> list[Finding]:
    """Differential check of the batch-dynamic engine vs. recompute.

    A *shadow model* tracks only the plain edge set -- it knows nothing
    about MSTs, reserves, or dendrograms -- and predicts, per batch,
    whether the engine must succeed or raise (and which error type).  On
    success the maintained state is compared against from-scratch
    recomputation: the parent array must be bit-identical to ``sequf`` on
    the maintained tree, the ranks to a full ``ranks_of`` re-sort, the
    tree's weight multiset to a fresh Kruskal MST of the shadow graph, and
    the ``generation`` counter must be monotone.  On a predicted error the
    engine must raise exactly that type and roll the whole batch back.
    """
    from repro.core.dynamic import DynamicSLD
    from repro.trees.mst import kruskal_mst
    from repro.trees.weights import ranks_of

    factory = engine_factory if engine_factory is not None else DynamicSLD.from_graph

    def fail(check: str, message: str) -> list[Finding]:
        return [Finding(check=check, message=message, case=case)]

    shadow: dict[tuple[int, int], float] = {}
    dup = False
    for (u, v), w in zip(case.edges.tolist(), case.weights.tolist()):
        key = (u, v) if u < v else (v, u)
        dup = dup or key in shadow
        shadow[key] = float(w)
    init_ok = not dup and _connected(case.n, list(shadow))
    try:
        dyn = factory(case.n, case.edges, case.weights)
    except (InvalidGraphError, NotConnectedError):
        if init_ok:
            return fail("dynamic:init", "engine rejected a valid connected graph")
        return []  # shrunk/degenerate case; correctly rejected
    except Exception as exc:
        return fail("dynamic:init", f"engine construction crashed with {type(exc).__name__}")
    if not init_ok:
        return fail("dynamic:init", "engine accepted an invalid initial graph")

    last_generation = int(dyn.generation)  # type: ignore[attr-defined]
    for idx, (inserts, deletes) in enumerate(case.batches):
        expected_error, shadow = _predict_batch(case.n, shadow, inserts, deletes)
        before = (
            dyn.graph_weights(),  # type: ignore[attr-defined]
            dyn.parents.copy(),  # type: ignore[attr-defined]
            int(dyn.generation),  # type: ignore[attr-defined]
        )
        try:
            dyn.apply_batch(inserts, deletes)  # type: ignore[attr-defined]
            raised: type | None = None
        except Exception as exc:
            raised = type(exc)
        if expected_error is not None:
            if raised is not expected_error:
                got = "no error" if raised is None else raised.__name__
                return fail(
                    "dynamic:error-contract",
                    f"batch {idx}: expected {expected_error.__name__}, got {got}",
                )
            after = (
                dyn.graph_weights(),  # type: ignore[attr-defined]
                dyn.parents.copy(),  # type: ignore[attr-defined]
                int(dyn.generation),  # type: ignore[attr-defined]
            )
            if (
                after[0] != before[0]
                or not np.array_equal(after[1], before[1])
                or after[2] != before[2]
            ):
                return fail(
                    "dynamic:rollback", f"batch {idx}: failed batch left state changed"
                )
            continue
        if raised is not None:
            return fail(
                "dynamic:error-contract",
                f"batch {idx}: raised {raised.__name__} on a valid batch",
            )
        if dyn.graph_weights() != shadow:  # type: ignore[attr-defined]
            return fail(
                "dynamic:graph-drift",
                f"batch {idx}: maintained edge set differs from the shadow graph",
            )
        tree = dyn.tree()  # type: ignore[attr-defined]
        expected = brute_force_sld(tree) if tree.m <= 64 else None
        from repro.core.sequf import sequf

        recomputed = sequf(tree)
        if not np.array_equal(dyn.parents, recomputed):  # type: ignore[attr-defined]
            return fail(
                "dynamic:vs-recompute",
                f"batch {idx}: parent array differs from recompute-from-scratch",
            )
        if expected is not None and not np.array_equal(recomputed, expected):
            return fail(
                "dynamic:vs-recompute",
                f"batch {idx}: recompute disagrees with the brute-force oracle",
            )
        if not np.array_equal(dyn.ranks, ranks_of(tree.weights)):  # type: ignore[attr-defined]
            return fail(
                "dynamic:ranks",
                f"batch {idx}: incremental ranks differ from a full re-sort",
            )
        ge = np.asarray(sorted(shadow), dtype=np.int64).reshape(-1, 2)
        gw = np.asarray([shadow[(int(a), int(b))] for a, b in ge.tolist()], dtype=np.float64)
        mst = kruskal_mst(case.n, ge, gw)
        if not np.array_equal(np.sort(tree.weights), np.sort(gw[mst])):
            return fail(
                "dynamic:mst-weight",
                f"batch {idx}: maintained tree is not a minimum spanning tree",
            )
        generation = int(dyn.generation)  # type: ignore[attr-defined]
        if generation < last_generation:
            return fail(
                "dynamic:generation", f"batch {idx}: generation counter went backwards"
            )
        last_generation = generation
    return []


def io_npz_check(case: NpzCase) -> list[Finding]:
    """Contract check of the ``.npz`` loaders on arbitrary bytes.

    ``load_tree`` must either return a tree or raise a
    :class:`~repro.errors.ReproError` (:class:`~repro.io.FormatError` for
    non-archives); any other exception escaping is a finding.
    """
    from repro.io import load_tree

    try:
        load_tree(_stdio.BytesIO(case.data))
    except ReproError:
        pass
    except Exception as exc:
        return [
            Finding(
                check="io:npz:exception-leak",
                message=f"load_tree leaked {type(exc).__name__} instead of a ReproError",
                case=case,
            )
        ]
    return []
