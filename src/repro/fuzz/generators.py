"""Deterministic adversarial input generation for the fuzzer.

Three case domains:

* :class:`TreeCase` -- a weighted tree drawn from the topology families the
  paper evaluates on (path/star/knuth/...) crossed with adversarial weight
  families (duplicates, near-duplicates one ulp apart, denormals,
  inf-adjacent magnitudes, mixed signs);
* :class:`CsvCase` -- edge-list CSV text assembled from a vocabulary of
  hostile cells (words, floats in id columns, negatives, empties, self
  loops, duplicate rows) plus a valid-graph mode so the accept path is
  differentially checked too;
* :class:`NpzCase` -- ``.npz`` byte streams: genuine archives that are
  truncated or bit-flipped, wrong-kind archives, and raw noise.
* :class:`DynamicCase` -- a connected graph (topology-family tree plus
  extra non-tree edges) and a sequence of insert/delete batches for the
  batch-dynamic engine; the op stream deliberately includes invalid ops
  (duplicate inserts, missing deletes, disconnecting deletes) so the
  error-and-rollback contract is fuzzed alongside the happy path.
* :class:`GraphCase` -- a connected weighted graph plus a streaming chunk
  size for the MST oracles (array-backend Boruvka and out-of-core
  streaming Kruskal vs. in-memory Kruskal); chunk sizes concentrate on
  the boundary values (1, 2, ``m - 1``, ``m``, power-of-two neighbors)
  where the spill/merge windowing bugs live.

Everything is a pure function of the :class:`numpy.random.Generator` it is
handed; :func:`case_rng` derives one Generator per ``(seed, index)`` via
``SeedSequence`` so the case stream is reproducible and order-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import io as _stdio

import numpy as np

from repro.trees.generators import (
    balanced_binary,
    broom,
    caterpillar,
    knuth_tree,
    path_tree,
    random_tree,
    star_tree,
)
from repro.trees.wtree import WeightedTree

__all__ = [
    "TOPOLOGY_FAMILIES",
    "WEIGHT_FAMILIES",
    "CsvCase",
    "DynamicCase",
    "GraphCase",
    "NpzCase",
    "TreeCase",
    "case_rng",
    "gen_case",
    "gen_csv_case",
    "gen_dynamic_case",
    "gen_graph_case",
    "gen_npz_case",
    "gen_tree_case",
]


@dataclass
class TreeCase:
    """A weighted-tree fuzz input (always a structurally valid tree)."""

    n: int
    edges: np.ndarray
    weights: np.ndarray
    label: str = ""

    def tree(self) -> WeightedTree:
        return WeightedTree(self.n, self.edges, self.weights, validate=False)


@dataclass
class CsvCase:
    """Raw CSV text plus the ``has_header`` argument to load it with."""

    text: str
    has_header: bool | None = None
    label: str = ""


@dataclass
class NpzCase:
    """Raw bytes presented to the ``.npz`` loaders."""

    data: bytes = field(repr=False)
    label: str = ""


#: One batch: ``(inserts, deletes)`` with inserts ``(u, v, w)`` and
#: deletes ``(u, v)``, all plain python scalars (hashable, serializable).
DynamicBatch = tuple[tuple[tuple[int, int, float], ...], tuple[tuple[int, int], ...]]


@dataclass
class DynamicCase:
    """A connected graph plus insert/delete batches for the dynamic engine.

    The initial graph is always valid and connected; the batches are *not*
    guaranteed valid -- ops may reference absent edges or disconnect the
    graph, exercising the documented error-and-rollback contract.
    """

    n: int
    edges: np.ndarray  # (m0, 2) initial graph (connected, duplicate-free)
    weights: np.ndarray  # (m0,) initial weights
    batches: tuple[DynamicBatch, ...]
    label: str = ""


@dataclass
class GraphCase:
    """A connected weighted graph plus a streaming chunk size.

    Input domain of the MST oracles: the graph is always connected and
    duplicate-free (the invalid-input surface belongs to the io domain);
    ``chunk`` parameterizes the out-of-core path's spill/merge windows.
    """

    n: int
    edges: np.ndarray  # (m, 2) undirected edges, connected, no duplicates
    weights: np.ndarray  # (m,) float64
    chunk: int
    label: str = ""


FuzzCase = TreeCase | CsvCase | NpzCase | DynamicCase | GraphCase


def case_rng(seed: int, index: int) -> np.random.Generator:
    """The Generator for case ``index`` of a run with ``seed``."""
    # SeedSequence entropy must be non-negative; fold negative seeds in.
    return np.random.default_rng(np.random.SeedSequence((seed & 0xFFFFFFFFFFFFFFFF, index)))


# ---------------------------------------------------------------------------
# Tree cases
# ---------------------------------------------------------------------------

TOPOLOGY_FAMILIES = ("path", "star", "caterpillar", "broom", "binary", "knuth", "random")

#: Weight families; each entry maps ``(rng, m) -> float64 array``.  The
#: adversarial ones target tie-breaking (duplicates / near-duplicates one
#: ulp apart / all-equal) and float-range handling (denormals, magnitudes
#: adjacent to ``inf``, mixed signs).
WEIGHT_FAMILIES = {
    "perm": lambda rng, m: rng.permutation(m).astype(np.float64),
    "uniform": lambda rng, m: rng.random(m),
    "duplicates": lambda rng, m: rng.integers(0, max(2, m // 3 + 1), m).astype(np.float64),
    "all-equal": lambda rng, m: np.ones(m, dtype=np.float64),
    "near-duplicate": lambda rng, m: 1.0
    + rng.integers(0, 3, m).astype(np.float64) * np.finfo(np.float64).eps,
    "denormal": lambda rng, m: np.float64(5e-324) * rng.integers(1, 16, m).astype(np.float64),
    "huge": lambda rng, m: np.finfo(np.float64).max * (0.25 + 0.5 * rng.random(m)),
    "mixed-sign": lambda rng, m: rng.choice(
        np.array([-1e308, -1.0, -5e-324, 0.0, 5e-324, 1.0, 1e308]), size=m
    ),
    "sorted": lambda rng, m: np.sort(rng.random(m)),
    "reversed": lambda rng, m: np.sort(rng.random(m))[::-1].copy(),
}


def _make_topology(kind: str, n: int, rng: np.random.Generator) -> WeightedTree:
    if kind == "path":
        return path_tree(n)
    if kind == "star":
        return star_tree(n, center=int(rng.integers(n)))
    if kind == "caterpillar":
        return caterpillar(n, spine=int(rng.integers(1, n + 1)))
    if kind == "broom":
        return broom(n, handle=int(rng.integers(n)))
    if kind == "binary":
        return balanced_binary(n)
    if kind == "knuth":
        return knuth_tree(n, seed=rng)
    if kind == "random":
        return random_tree(n, seed=rng)
    raise ValueError(f"unknown topology family {kind!r}")


def gen_tree_case(rng: np.random.Generator, max_n: int = 32) -> TreeCase:
    """Draw one adversarial weighted tree (small enough for the O(n^2) oracle)."""
    n = int(rng.integers(2, max_n + 1))
    topo = TOPOLOGY_FAMILIES[int(rng.integers(len(TOPOLOGY_FAMILIES)))]
    wnames = sorted(WEIGHT_FAMILIES)
    wname = wnames[int(rng.integers(len(wnames)))]
    tree = _make_topology(topo, n, rng)
    weights = WEIGHT_FAMILIES[wname](rng, tree.m)
    return TreeCase(
        n=tree.n,
        edges=tree.edges,
        weights=np.asarray(weights, dtype=np.float64),
        label=f"{topo}/{wname}/n={n}",
    )


# ---------------------------------------------------------------------------
# Dynamic-update cases
# ---------------------------------------------------------------------------


def gen_dynamic_case(rng: np.random.Generator, max_n: int = 16) -> DynamicCase:
    """Draw one batched-update stream over a small connected graph.

    The base graph is a topology-family tree plus a few extra (non-tree)
    edges, weighted from one adversarial family.  Batches are built
    against a *predicted* edge membership that assumes every batch
    applies; when an earlier batch actually rolls back (disconnecting
    delete) or rejects (invalid op), later batches drift into invalid-op
    territory -- which is exactly the error-contract coverage we want.
    """
    base = gen_tree_case(rng, max_n=max_n)
    n = base.n
    member = {
        (min(int(u), int(v)), max(int(u), int(v))) for u, v in base.edges.tolist()
    }
    wnames = sorted(WEIGHT_FAMILIES)
    wname = wnames[int(rng.integers(len(wnames)))]
    extra: list[tuple[int, int]] = []
    for _ in range(3 * int(rng.integers(0, 5))):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        key = (min(u, v), max(u, v))
        if u == v or key in member:
            continue
        member.add(key)
        extra.append(key)
    extra_arr = np.asarray(extra, dtype=np.int64).reshape(len(extra), 2)
    extra_w = np.asarray(WEIGHT_FAMILIES[wname](rng, len(extra)), dtype=np.float64)
    edges = np.concatenate([base.edges, extra_arr], axis=0)
    weights = np.concatenate([base.weights, extra_w])

    batches: list[DynamicBatch] = []
    for _ in range(int(rng.integers(1, 5))):
        inserts: list[tuple[int, int, float]] = []
        for _ in range(int(rng.integers(0, 4))):
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            # Mostly fresh pairs; occasionally a knowingly-present pair to
            # exercise the "already in the graph" rejection + rollback.
            if key in member and rng.random() < 0.85:
                continue
            if any(key == (min(a, b), max(a, b)) for a, b, _ in inserts):
                continue
            w = float(np.asarray(WEIGHT_FAMILIES[wname](rng, 1), dtype=np.float64)[0])
            inserts.append((u, v, w))
            member.add(key)
        deletes: list[tuple[int, int]] = []
        avail = sorted(member)
        for _ in range(int(rng.integers(0, 3))):
            if avail and rng.random() < 0.9:
                key = avail.pop(int(rng.integers(len(avail))))
            else:
                # a possibly-absent pair: exercises "not in the graph"
                u, v = int(rng.integers(n)), int(rng.integers(n))
                if u == v:
                    continue
                key = (min(u, v), max(u, v))
                if key in deletes:
                    continue
            deletes.append(key)
            member.discard(key)
        batches.append((tuple(inserts), tuple(deletes)))
    return DynamicCase(
        n=n,
        edges=edges,
        weights=weights,
        batches=tuple(batches),
        label=f"dynamic/{base.label}/extras={len(extra)}/batches={len(batches)}",
    )


# ---------------------------------------------------------------------------
# Graph cases (MST oracles)
# ---------------------------------------------------------------------------


def gen_graph_case(rng: np.random.Generator, max_n: int = 24) -> GraphCase:
    """Draw one connected weighted graph plus a boundary-biased chunk size."""
    base = gen_tree_case(rng, max_n=max_n)
    n = base.n
    seen = {(min(int(u), int(v)), max(int(u), int(v))) for u, v in base.edges.tolist()}
    extra: list[tuple[int, int]] = []
    budget = int(rng.integers(0, 2 * n + 1))
    for _ in range(3 * budget):
        if len(extra) >= budget:
            break
        u, v = int(rng.integers(n)), int(rng.integers(n))
        key = (min(u, v), max(u, v))
        if u == v or key in seen:
            continue
        seen.add(key)
        extra.append(key)
    extra_arr = np.asarray(extra, dtype=np.int64).reshape(len(extra), 2)
    edges = np.concatenate([base.edges, extra_arr], axis=0)
    wnames = sorted(WEIGHT_FAMILIES)
    wname = wnames[int(rng.integers(len(wnames)))]
    weights = np.asarray(WEIGHT_FAMILIES[wname](rng, edges.shape[0]), dtype=np.float64)
    m = edges.shape[0]
    pow2 = 1 << (max(1, m).bit_length() - 1)
    boundary = (1, 2, max(1, m - 1), m, m + 1, max(1, pow2 - 1), pow2, pow2 + 1)
    if rng.random() < 0.75:
        chunk = int(boundary[int(rng.integers(len(boundary)))])
    else:
        chunk = int(rng.integers(1, m + 2))
    return GraphCase(
        n=n,
        edges=edges,
        weights=weights,
        chunk=chunk,
        label=f"graph/{base.label}/extras={len(extra)}/chunk={chunk}",
    )


# ---------------------------------------------------------------------------
# CSV cases
# ---------------------------------------------------------------------------

_ID_CELLS = ("0", "1", "2", "3", "4", "5", "6", "-1", "1.0", "x", "", " 2", "3 ", "nan", "1e3")
_WEIGHT_CELLS = ("0.5", "1", "2.5", "-3.0", "", "inf", "nan", "w", "1e300", "1e400")
_HEADER_LINES = ("source,target,weight", "u,v", "a,b,c,d", "0,1,weight")


def _gen_valid_csv(rng: np.random.Generator) -> str:
    """A well-formed edge list: distinct non-loop edges, parseable cells."""
    n = int(rng.integers(2, 9))
    rows = []
    pairs: set[tuple[int, int]] = set()
    for _ in range(int(rng.integers(1, 10))):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in pairs:
            continue
        pairs.add(key)
        if rng.random() < 0.7:
            rows.append(f"{u},{v},{float(rng.integers(1, 8)) / 2}")
        else:
            rows.append(f"{u},{v}")
    return "\n".join(rows) + ("\n" if rows and rng.random() < 0.8 else "")


def _gen_hostile_csv(rng: np.random.Generator) -> str:
    """Token soup over the hostile cell vocabulary (quote-free by design,
    so the independent reference parser and the csv module agree on
    tokenization)."""
    lines = []
    if rng.random() < 0.3:
        lines.append(_HEADER_LINES[int(rng.integers(len(_HEADER_LINES)))])
    for _ in range(int(rng.integers(0, 6))):
        roll = rng.random()
        if roll < 0.1:
            lines.append("")  # blank line
        elif roll < 0.18:
            lines.append(_ID_CELLS[int(rng.integers(len(_ID_CELLS)))])  # short row
        else:
            u = _ID_CELLS[int(rng.integers(len(_ID_CELLS)))]
            v = _ID_CELLS[int(rng.integers(len(_ID_CELLS)))]
            if rng.random() < 0.6:
                w = _WEIGHT_CELLS[int(rng.integers(len(_WEIGHT_CELLS)))]
                lines.append(f"{u},{v},{w}")
            else:
                lines.append(f"{u},{v}")
    return "\n".join(lines) + ("\n" if lines and rng.random() < 0.8 else "")


def gen_csv_case(rng: np.random.Generator) -> CsvCase:
    """Draw one CSV input; roughly half valid, half hostile."""
    valid = rng.random() < 0.5
    text = _gen_valid_csv(rng) if valid else _gen_hostile_csv(rng)
    has_header = (None, True, False)[int(rng.integers(3))]
    return CsvCase(
        text=text,
        has_header=has_header,
        label=f"csv/{'valid' if valid else 'hostile'}/header={has_header}",
    )


# ---------------------------------------------------------------------------
# npz cases
# ---------------------------------------------------------------------------


def _valid_tree_npz(rng: np.random.Generator) -> bytes:
    from repro.io import save_tree  # local import to avoid a cycle at import time

    case = gen_tree_case(rng, max_n=12)
    buf = _stdio.BytesIO()
    save_tree(buf, case.tree())
    return buf.getvalue()


def gen_npz_case(rng: np.random.Generator) -> NpzCase:
    """Draw one byte stream for the ``.npz`` loader contract check."""
    roll = rng.random()
    if roll < 0.25:
        return NpzCase(data=rng.bytes(int(rng.integers(0, 200))), label="npz/noise")
    if roll < 0.5:
        blob = _valid_tree_npz(rng)
        cut = int(rng.integers(0, len(blob)))
        return NpzCase(data=blob[:cut], label="npz/truncated")
    if roll < 0.75:
        blob = bytearray(_valid_tree_npz(rng))
        pos = int(rng.integers(len(blob)))
        blob[pos] ^= 1 << int(rng.integers(8))
        return NpzCase(data=bytes(blob), label="npz/bitflip")
    return NpzCase(data=_valid_tree_npz(rng), label="npz/valid")


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

#: Domain mix per case index: trees dominate (they exercise the seven
#: algorithms); dynamic-update streams, MST graphs, and the io domains
#: ride along.
_DOMAIN_WHEEL = ("tree",) * 5 + ("dynamic",) * 2 + ("graph",) * 2 + ("csv",) * 2 + ("npz",)


def gen_case(rng: np.random.Generator, domains: tuple[str, ...] | None = None) -> FuzzCase:
    """Draw one case; ``domains`` restricts the wheel (e.g. ``("csv",)``)."""
    wheel = _DOMAIN_WHEEL if domains is None else tuple(d for d in _DOMAIN_WHEEL if d in domains)
    if not wheel:
        wheel = domains or _DOMAIN_WHEEL
    domain = wheel[int(rng.integers(len(wheel)))]
    if domain == "tree":
        return gen_tree_case(rng)
    if domain == "dynamic":
        return gen_dynamic_case(rng)
    if domain == "graph":
        return gen_graph_case(rng)
    if domain == "csv":
        return gen_csv_case(rng)
    return gen_npz_case(rng)
