"""Fuzzer selftest: inject known mutants, fail unless every one is caught.

A fuzzer that silently stops finding bugs is worse than none, so
``python -m repro fuzz --selftest`` resurrects eleven known bug patterns
-- five algorithmic, two dynamic-engine, one streaming-MST, three being
the exact io bugs this subsystem originally caught -- injects them
through the runner's ``algorithms``/``loader``/``engine_factory``/
``streaming_fn`` injection points, and requires the standard battery to
flag each one within a bounded number of cases.

Algorithm mutants:

* ``dropped-tiebreak`` -- ranks assigned by weight only, ties broken in
  *reverse* edge-id order (the paper's determinism assumption violated);
  only duplicate-weight inputs expose it, which is exactly what the
  weight-family generator must keep producing.
* ``grandparent-reattach`` -- every dendrogram node is reattached to its
  grandparent: still structurally valid (rank-increasing, one root), so
  only the differential oracle can see it.
* ``label-tiebreak`` -- weight ties broken by endpoint vertex ids; caught
  by the *leaf-relabeling* metamorphic relation with the oracle disabled,
  proving the relations carry detection power of their own.
* ``windowed-lost-update`` -- the rank-ordered merge runs in windows of 8
  whose edges are applied in a hostile-permuted order
  (:class:`~repro.runtime.interleave.HostileSchedule` with a fixed seed):
  the exact lost-update race the adversarial-interleaving sanitizer
  exists to catch.  Under the identity permutation the result is
  bit-identical to ``sequf``; whenever two same-window edges extend the
  same cluster chain, the permutation swaps their merges and the chain's
  parent pointers come out wrong -- deterministically, so the shrunken
  corpus entry is byte-stable.
* ``heap-pool-broken-carry`` -- the slab heap pool's binary-carry link
  skips the key comparison, so rebuilt trees violate heap order and
  ``filter``'s pruning stops descending too early.  Structure-only pool
  corruption (degrees, grouping) is semantically invisible -- the spine
  *contents* decide the dendrogram -- so the mutant targets the one
  property the tree-contraction driver actually relies on; only the
  differential oracle can see the resulting wrong parents.

Dynamic-engine mutants (plausible maintenance bugs of the batch-dynamic
``DynamicSLD``):

* ``dynamic-stale-suffix`` -- the dendrogram repair starts three ranks
  above the lowest disturbed one, leaving a stale window; only the
  dynamic-vs-recompute differential can see it.
* ``dynamic-no-rollback`` -- a failed batch leaves its partial work
  applied instead of restoring the pre-batch state; caught by the
  error-contract/rollback arm of the shadow-model oracle.

Streaming-MST mutant:

* ``streaming-dropped-window`` -- the out-of-core Kruskal consumer skips
  the second merged batch, the classic off-by-one over a k-way-merge
  window boundary: with one run (``chunk >= m``) or a tiny graph there is
  no second batch and the mutant is invisible, so only the graph domain's
  boundary-biased chunk distribution keeps it catchable.  Dropped edges
  either leave the spanning forest short (a crash finding) or silently
  promote heavier edges into the MST (a differential finding).

io mutants (the resurrected pre-fix ``load_edges_csv`` behaviors):

* ``csv-header-kept`` -- ``has_header=True`` only skipped a row when the
  first cell failed to parse as an int;
* ``csv-valueerror-leak`` -- cell parse failures escaped as raw
  ``ValueError``;
* ``csv-selfloop-accepted`` -- self loops and duplicate edges were
  ingested silently.
"""

from __future__ import annotations

import csv
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.fast_contraction import tree_contraction_fast
from repro.core.sequf import sequf
from repro.fuzz.runner import run_fuzz
from repro.structures.heap_pool import HeapPool
from repro.trees.wtree import WeightedTree

__all__ = ["MUTANTS", "SelftestReport", "run_selftest"]


# ---------------------------------------------------------------------------
# Algorithm mutants
# ---------------------------------------------------------------------------


def _uf_sld(tree: WeightedTree, order: np.ndarray) -> np.ndarray:
    """Sequential union-find SLD merging edges in the given order (the
    SeqUF recurrence, reimplemented so mutants do not share sequf's code)."""
    m = tree.m
    parents = np.arange(m, dtype=np.int64)
    uf_parent = list(range(tree.n))
    top = [-1] * tree.n  # most recent merge node inside each cluster

    def find(x: int) -> int:
        while uf_parent[x] != x:
            uf_parent[x] = uf_parent[uf_parent[x]]
            x = uf_parent[x]
        return x

    for e in order:
        e = int(e)
        u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
        ru, rv = find(u), find(v)
        for r in (ru, rv):
            if top[r] != -1:
                parents[top[r]] = e
        uf_parent[ru] = rv
        top[rv] = e
    return parents


def mutant_dropped_tiebreak(tree: WeightedTree) -> np.ndarray:
    """Ranks by weight with ties in *reverse* id order (dropped tie-break)."""
    keys = np.lexsort((-np.arange(tree.m), tree.weights))
    return _uf_sld(tree, keys)


def mutant_grandparent_reattach(tree: WeightedTree) -> np.ndarray:
    """Correct SLD, then every node adopted by its grandparent."""
    parents = sequf(tree).copy()
    return parents[parents]


def mutant_label_tiebreak(tree: WeightedTree) -> np.ndarray:
    """Weight ties broken by endpoint labels: vertex-relabeling sensitive."""
    key = np.maximum(tree.edges[:, 0], tree.edges[:, 1])
    order = np.lexsort((key, tree.weights))
    return _uf_sld(tree, order)


def mutant_windowed_lost_update(tree: WeightedTree) -> np.ndarray:
    """Rank-ordered UF merge in windows of 8, each window hostile-permuted.

    Models workers that grab a window of the ready queue and apply its
    merges in whatever order the scheduler hands them, without the
    ownership discipline that would make same-window merges commute.
    """
    from repro.runtime.interleave import HostileSchedule

    schedule = HostileSchedule(7, delays=False)
    order = np.argsort(tree.ranks, kind="stable")
    permuted = np.empty_like(order)
    window = 8
    for lo in range(0, order.size, window):
        hi = min(lo + window, order.size)
        perm = np.asarray(schedule.permutation(hi - lo), dtype=np.int64)
        permuted[lo:hi] = order[lo:hi][perm]
    return _uf_sld(tree, permuted)


class _BrokenCarryPool(HeapPool):
    """HeapPool whose binary-carry link never compares keys.

    ``_rebuild`` below is the real one minus the ``key[b] < key[a]`` swap:
    whichever node was popped second becomes the root, so rebuilt trees can
    put larger keys above smaller ones.  Degrees, carry grouping, and spine
    *contents at rebuild time* all stay correct -- the corruption only
    surfaces later, when ``filter`` declines to descend below a root/child
    whose key clears the threshold and thereby misses sub-threshold nodes
    hidden underneath.
    """

    def _rebuild(self, nodes: list[int]) -> int:
        if not nodes:
            return -1
        degree = self.degree
        child = self.child
        sibling = self.sibling
        buckets: dict[int, list[int]] = {}
        max_deg = 0
        for t in nodes:
            d = degree[t]
            b = buckets.get(d)
            if b is None:
                buckets[d] = [t]
            else:
                b.append(t)
            if d > max_deg:
                max_deg = d
        roots: list[int] = []
        d = 0
        while d <= max_deg:
            bucket = buckets.get(d)
            if bucket:
                while len(bucket) >= 2:
                    a = bucket.pop()
                    b = bucket.pop()
                    # BUG: no key comparison -- 'a' roots unconditionally.
                    sibling[b] = child[a]
                    child[a] = b
                    degree[a] = d + 1
                    nb = buckets.get(d + 1)
                    if nb is None:
                        buckets[d + 1] = [a]
                    else:
                        nb.append(a)
                    if d + 1 > max_deg:
                        max_deg = d + 1
                if bucket:
                    roots.append(bucket[0])
            d += 1
        head = -1
        for t in reversed(roots):
            sibling[t] = head
            head = t
        return head


def mutant_heap_pool_broken_carry(tree: WeightedTree) -> np.ndarray:
    """Tree contraction on the heap pool with the broken carry link."""
    return tree_contraction_fast(tree, pool_cls=_BrokenCarryPool)


# ---------------------------------------------------------------------------
# Dynamic-engine mutants
# ---------------------------------------------------------------------------


def _stale_suffix_engine(n: int, edges: np.ndarray, weights: np.ndarray) -> object:
    """Engine whose dendrogram repair starts 3 ranks too high."""
    from repro.core.dynamic import DynamicSLD

    class _StaleSuffix(DynamicSLD):
        def _recompute_suffix(self, lo: int) -> None:
            super()._recompute_suffix(min(lo + 3, self.m))

    return _StaleSuffix.from_graph(n, edges, weights)


def _no_rollback_engine(n: int, edges: np.ndarray, weights: np.ndarray) -> object:
    """Engine that keeps a failed batch's partial work applied."""
    from repro.core.dynamic import DynamicSLD

    class _NoRollback(DynamicSLD):
        def _restore_state(self, state: object) -> None:
            pass

    return _NoRollback.from_graph(n, edges, weights)


# ---------------------------------------------------------------------------
# Streaming-MST mutant
# ---------------------------------------------------------------------------


def _streaming_dropped_window(path: "str | Path", chunk: int) -> "tuple[int, np.ndarray]":
    """Streaming Kruskal that drops the second merged batch (window bug)."""
    import tempfile

    from repro.io.edgefile import merge_runs, read_edge_header, spill_runs
    from repro.structures.unionfind import UnionFind
    from repro.trees.mst import _scan_rank_batch

    n, _ = read_edge_header(path)
    uf = UnionFind(n)
    chosen: list[int] = []
    need = n - 1
    with tempfile.TemporaryDirectory(prefix="repro-selftest-spill-") as sdir:
        runs = spill_runs(path, sdir, chunk)
        merge_block = max(1, chunk // max(1, len(runs)))
        for index, batch in enumerate(merge_runs(runs, merge_block)):
            if index == 1:
                continue  # BUG: a whole merge window vanishes
            _scan_rank_batch(
                uf,
                np.ascontiguousarray(batch["id"]),
                np.ascontiguousarray(batch["u"]),
                np.ascontiguousarray(batch["v"]),
                chosen,
                need,
            )
            if len(chosen) == need:
                break
    if len(chosen) != need:
        from repro.errors import NotConnectedError

        raise NotConnectedError(
            f"graph has {uf.num_sets} connected components; cannot span {n} vertices"
        )
    return n, np.asarray(chosen, dtype=np.int64)


# ---------------------------------------------------------------------------
# io mutants: the pre-fix load_edges_csv, verbatim bug patterns
# ---------------------------------------------------------------------------


def _buggy_load_edges_csv(
    path: str | Path,
    has_header: bool | None,
    header_bug: bool = False,
    leak_bug: bool = False,
    loop_bug: bool = False,
) -> tuple[int, np.ndarray, np.ndarray]:
    from repro.io import FormatError, load_edges_csv

    if not (header_bug or leak_bug or loop_bug):
        return load_edges_csv(path, has_header=has_header)
    rows: list[tuple[int, int, float]] = []
    with open(path, newline="") as fh:
        first = True
        for i, row in enumerate(csv.reader(fh)):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if first:
                first = False
                skip = False
                if header_bug:
                    # Pre-fix: auto-detect even under has_header=True.
                    if has_header is not False:
                        try:
                            int(row[0])
                        except ValueError:
                            skip = True
                elif has_header or (has_header is None and not _is_int(row[0])):
                    skip = True
                if skip:
                    continue
            if len(row) < 2:
                raise FormatError(f"{path}: row {i + 1} has fewer than two columns")
            if leak_bug:
                u, v = int(row[0]), int(row[1])  # ValueError escapes
                w = float(row[2]) if len(row) >= 3 and row[2].strip() else 1.0
            else:
                u, v, w = _strict_cells(row, path, i)
            if not loop_bug and u == v:
                raise FormatError(f"{path}: row {i + 1} is a self loop at vertex {u}")
            rows.append((u, v, w))
    if not rows:
        raise FormatError(f"{path}: no edges found")
    edges = np.array([(u, v) for u, v, _ in rows], dtype=np.int64)
    if edges.min() < 0:
        raise FormatError(f"{path}: negative vertex id")
    if not loop_bug:
        canon = np.sort(edges, axis=1)
        if np.unique(canon, axis=0).shape[0] != canon.shape[0]:
            raise FormatError(f"{path}: duplicate edge")
    weights = np.array([w for _, _, w in rows], dtype=np.float64)
    return int(edges.max()) + 1, edges, weights


def _is_int(cell: str) -> bool:
    try:
        int(cell)
    except ValueError:
        return False
    return True


def _strict_cells(row: list[str], path: str | Path, i: int) -> tuple[int, int, float]:
    import math

    from repro.io import FormatError

    try:
        u, v = int(row[0]), int(row[1])
    except ValueError:
        raise FormatError(f"{path}: row {i + 1}: bad id cell") from None
    if u < 0 or v < 0:
        raise FormatError(f"{path}: row {i + 1} has a negative vertex id")
    w = 1.0
    if len(row) >= 3 and row[2].strip():
        try:
            w = float(row[2])
        except ValueError:
            raise FormatError(f"{path}: row {i + 1}: bad weight cell") from None
        if not math.isfinite(w):
            raise FormatError(f"{path}: row {i + 1}: non-finite weight")
    return u, v, w


# ---------------------------------------------------------------------------
# The mutant registry and the selftest driver
# ---------------------------------------------------------------------------


@dataclass
class Mutant:
    name: str
    kwargs: dict  # run_fuzz overrides injecting the mutant
    max_cases: int


def _alg_mutant(name: str, fn: Callable[[WeightedTree], np.ndarray], **extra: object) -> Mutant:
    kwargs: dict = {
        "algorithms": {name: fn},
        "domains": ("tree",),
        "tree_checks": ("differential",),
    }
    kwargs.update(extra)
    return Mutant(name=name, kwargs=kwargs, max_cases=150)


MUTANTS: tuple[Mutant, ...] = (
    _alg_mutant("dropped-tiebreak", mutant_dropped_tiebreak),
    _alg_mutant("grandparent-reattach", mutant_grandparent_reattach),
    # Oracle disabled: the leaf-relabeling relation alone must catch it.
    _alg_mutant("label-tiebreak", mutant_label_tiebreak, tree_checks=("relations",)),
    _alg_mutant("heap-pool-broken-carry", mutant_heap_pool_broken_carry),
    _alg_mutant("windowed-lost-update", mutant_windowed_lost_update),
    Mutant(
        name="dynamic-stale-suffix",
        kwargs={"engine_factory": _stale_suffix_engine, "domains": ("dynamic",)},
        max_cases=150,
    ),
    Mutant(
        name="dynamic-no-rollback",
        kwargs={"engine_factory": _no_rollback_engine, "domains": ("dynamic",)},
        max_cases=150,
    ),
    Mutant(
        name="streaming-dropped-window",
        kwargs={"streaming_fn": _streaming_dropped_window, "domains": ("graph",)},
        max_cases=150,
    ),
    Mutant(
        name="csv-header-kept",
        kwargs={
            "loader": lambda path, has_header: _buggy_load_edges_csv(
                path, has_header, header_bug=True
            ),
            "domains": ("csv",),
        },
        max_cases=400,
    ),
    Mutant(
        name="csv-valueerror-leak",
        kwargs={
            "loader": lambda path, has_header: _buggy_load_edges_csv(
                path, has_header, leak_bug=True
            ),
            "domains": ("csv",),
        },
        max_cases=400,
    ),
    Mutant(
        name="csv-selfloop-accepted",
        kwargs={
            "loader": lambda path, has_header: _buggy_load_edges_csv(
                path, has_header, loop_bug=True
            ),
            "domains": ("csv",),
        },
        max_cases=400,
    ),
)


@dataclass
class SelftestReport:
    seed: int
    caught: dict[str, str] = field(default_factory=dict)  # mutant -> check that fired
    missed: list[str] = field(default_factory=list)
    corpus_paths: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.missed

    def format_lines(self) -> list[str]:
        lines = [f"fuzz selftest: seed={self.seed}, {len(MUTANTS)} injected mutant(s)"]
        for name, check in self.caught.items():
            lines.append(f"  caught {name} via {check}")
        for name in self.missed:
            lines.append(f"  MISSED {name}: no finding within its case budget")
        lines.append(
            "fuzz selftest: OK" if self.ok else f"fuzz selftest: {len(self.missed)} mutant(s) missed"
        )
        return lines


def run_selftest(
    seed: int = 0, corpus_dir: str | Path | None = None, shrink: bool = True
) -> SelftestReport:
    """Inject every mutant; each must be caught within its case budget.

    ``corpus_dir`` (used by tests) receives the shrunken repro for every
    caught mutant, exercising the corpus write path and the byte-stability
    guarantee end to end.
    """
    report = SelftestReport(seed=seed)
    for mutant in MUTANTS:
        sub = run_fuzz(
            seed=seed,
            max_cases=mutant.max_cases,
            corpus_dir=corpus_dir,
            shrink=shrink,
            stop_on_finding=True,
            **mutant.kwargs,
        )
        if sub.findings:
            report.caught[mutant.name] = sub.findings[0].check
            report.corpus_paths.extend(sub.corpus_paths)
        else:
            report.missed.append(mutant.name)
    return report
