"""Metamorphic relations: oracle-free invariants of SLD computation.

Each relation transforms a tree into a sibling instance whose dendrogram
is *exactly* predictable from the original's, then checks an algorithm for
equivariance -- no brute-force oracle involved, so these catch bug classes
the differential layer is blind to once an algorithm and the oracle share
an assumption (and they remain usable at sizes where O(n^2) is not).

* **edge-permutation invariance** -- reordering the edge rows (with
  weights canonicalized to ranks so tie-breaking travels with the
  permutation) conjugates the parent array by the permutation;
* **monotone weight-transform equivariance** -- any strictly increasing
  transform that provably preserves the rank order (checked, not assumed:
  float rounding can collapse near-duplicates) leaves the parent array
  unchanged;
* **leaf-relabeling conjugacy** -- renaming vertices leaves the parent
  array unchanged (dendrogram nodes are edges; edge ids and weights do not
  move);
* **cut/cophenetic consistency** -- the parent array must reproduce, for
  sampled thresholds, the flat clustering that union-find over the low-rank
  edges defines, and the cophenetic distance of an edge's endpoints must
  equal that edge's weight;
* **query-engine consistency** -- the batched snapshot/query engine
  (binary-lifting merge heights, threshold cuts) must agree with the
  scalar spine walks and union-find cuts on the same dendrogram.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace

import numpy as np

from repro.fuzz.generators import TreeCase
from repro.fuzz.oracles import Finding
from repro.trees.weights import ranks_of

__all__ = ["METAMORPHIC_RELATIONS", "relations_check"]

Algorithm = Callable[..., np.ndarray]


def _run(fn: Algorithm, case: TreeCase) -> np.ndarray | None:
    try:
        return np.asarray(fn(case.tree()))
    except Exception:
        return None  # crashes belong to the differential layer


def edge_permutation_invariance(
    case: TreeCase, fn: Algorithm, rng: np.random.Generator
) -> str | None:
    """Permuting edge rows must conjugate the parent array."""
    m = case.edges.shape[0]
    if m < 2:
        return None
    base = _run(fn, case)
    if base is None:
        return None
    ranks = ranks_of(case.weights)
    perm = rng.permutation(m)
    permuted = TreeCase(
        n=case.n,
        edges=case.edges[perm],
        # Ranks as weights: distinct, and ordered exactly as the original's
        # tie-broken rank order, so the permuted instance's dendrogram is
        # the conjugate of the original's by construction.
        weights=ranks[perm].astype(np.float64),
        label=case.label + "+edge-perm",
    )
    got = _run(fn, permuted)
    if got is None:
        return "crashed on the edge-permuted instance"
    inv = np.empty(m, dtype=np.int64)
    inv[perm] = np.arange(m, dtype=np.int64)
    expected = inv[base[perm]]
    if not np.array_equal(got, expected):
        return "parent array is not equivariant under an edge permutation"
    return None


_MONOTONE_TRANSFORMS: tuple[tuple[str, Callable[[np.ndarray], np.ndarray]], ...] = (
    ("affine", lambda w: 2.0 * w + 1.0),
    ("halve", lambda w: 0.5 * w),
    ("cube", lambda w: w * w * w),  # odd power: increasing over negatives too
    ("rankify", lambda w: ranks_of(w).astype(np.float64)),
)


def monotone_weight_equivariance(
    case: TreeCase, fn: Algorithm, rng: np.random.Generator
) -> str | None:
    """A rank-preserving weight transform must not change the parent array."""
    name, f = _MONOTONE_TRANSFORMS[int(rng.integers(len(_MONOTONE_TRANSFORMS)))]
    # Overflow to inf is expected on huge-weight inputs and handled by the
    # finiteness guard below, so keep numpy quiet about it.
    with np.errstate(over="ignore", under="ignore", invalid="ignore"):
        new_weights = np.asarray(f(case.weights), dtype=np.float64)
    if not np.all(np.isfinite(new_weights)):
        return None
    if not np.array_equal(ranks_of(new_weights), ranks_of(case.weights)):
        return None  # transform collapsed/reordered ranks in float; vacuous
    base = _run(fn, case)
    if base is None:
        return None
    got = _run(fn, replace(case, weights=new_weights, label=case.label + f"+{name}"))
    if got is None:
        return f"crashed after the rank-preserving {name!r} weight transform"
    if not np.array_equal(got, base):
        return f"parent array changed under the rank-preserving {name!r} weight transform"
    return None


def leaf_relabeling_conjugacy(
    case: TreeCase, fn: Algorithm, rng: np.random.Generator
) -> str | None:
    """Renaming vertices must leave the parent array untouched."""
    base = _run(fn, case)
    if base is None:
        return None
    pi = rng.permutation(case.n).astype(np.int64)
    relabeled = replace(case, edges=pi[case.edges], label=case.label + "+relabel")
    got = _run(fn, relabeled)
    if got is None:
        return "crashed on the vertex-relabeled instance"
    if not np.array_equal(got, base):
        return "parent array depends on vertex labels"
    return None


def _canonical_partition(labels: np.ndarray) -> np.ndarray:
    """Relabel a partition by first occurrence so partitions compare by ==."""
    out = np.empty(labels.shape[0], dtype=np.int64)
    mapping: dict[int, int] = {}
    for i, lab in enumerate(labels.tolist()):
        out[i] = mapping.setdefault(lab, len(mapping))
    return out


def cut_cophenetic_consistency(
    case: TreeCase, fn: Algorithm, rng: np.random.Generator
) -> str | None:
    """The parent array must reproduce flat cuts and edge cophenetics."""
    parents = _run(fn, case)
    if parents is None:
        return None
    tree = case.tree()
    m = tree.m
    ranks = tree.ranks

    # Cophenetic: endpoints of edge e first co-cluster exactly at node e.
    from repro.dendrogram.cophenet import cophenetic_distance
    from repro.dendrogram.structure import Dendrogram

    dend = Dendrogram(tree, parents)
    for e in rng.choice(m, size=min(m, 6), replace=False):
        u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
        try:
            d = cophenetic_distance(dend, u, v)
        except Exception:
            return f"cophenetic query crashed for the endpoints of edge {int(e)}"
        if d != float(tree.weights[e]):
            return (
                f"cophenetic distance of edge {int(e)}'s endpoints is {d!r}, "
                f"not its weight {float(tree.weights[e])!r}"
            )

    # Cut: clusters below rank k from the parent array vs. from union-find.
    from repro.dendrogram.linkage import leaf_parents
    from repro.structures.unionfind import UnionFind

    k = int(rng.integers(0, m + 1))
    lp = leaf_parents(tree)
    from_parents = np.empty(tree.n, dtype=np.int64)
    for vtx in range(tree.n):
        node = int(lp[vtx])
        if ranks[node] >= k:
            from_parents[vtx] = m + vtx  # still a singleton below rank k
            continue
        while True:
            parent = int(parents[node])
            if parent == node or ranks[parent] >= k:
                break
            node = parent
        from_parents[vtx] = node
    uf = UnionFind(tree.n)
    for e in np.flatnonzero(ranks < k):
        uf.union(int(tree.edges[e, 0]), int(tree.edges[e, 1]))
    from_uf = np.array([uf.find(vtx) for vtx in range(tree.n)], dtype=np.int64)
    if not np.array_equal(_canonical_partition(from_parents), _canonical_partition(from_uf)):
        return f"flat cut below rank {k} disagrees with the union-find partition"
    return None


def query_engine_consistency(
    case: TreeCase, fn: Algorithm, rng: np.random.Generator
) -> str | None:
    """The batched query engine must agree with the definitional answers.

    Sampled vertex pairs through the snapshot-slab binary-lifting path vs.
    the scalar spine walk, and one weight-threshold cut vs. the union-find
    sweep -- cheap enough to run on every fuzz case.
    """
    parents = _run(fn, case)
    if parents is None:
        return None
    tree = case.tree()

    from repro.dendrogram.cophenet import cophenetic_distance
    from repro.dendrogram.linkage import cut_height
    from repro.dendrogram.query import QueryEngine
    from repro.dendrogram.structure import Dendrogram

    dend = Dendrogram(tree, parents)
    try:
        engine = QueryEngine.from_dendrogram(dend, cut_cache_size=0)
    except Exception as exc:
        return f"query-engine construction crashed ({type(exc).__name__}: {exc})"
    pairs = rng.integers(0, tree.n, size=(8, 2))
    try:
        got = engine.merge_heights(pairs)
    except Exception as exc:
        return f"batched merge_heights crashed ({type(exc).__name__}: {exc})"
    for i, (u, v) in enumerate(pairs.tolist()):
        want = cophenetic_distance(dend, int(u), int(v))
        if got[i] != want:
            return (
                f"batched merge_height({u}, {v}) = {got[i]!r}, "
                f"the scalar spine walk says {want!r}"
            )
    t = float(rng.choice(tree.weights)) if tree.m else 0.0
    if not np.array_equal(engine.cut_at(t), cut_height(tree, t)):
        return f"query-engine cut_at({t!r}) disagrees with the union-find cut"
    return None


#: name -> relation(case, algorithm, rng) -> failure message | None
METAMORPHIC_RELATIONS: dict[
    str, Callable[[TreeCase, Algorithm, np.random.Generator], str | None]
] = {
    "edge-permutation": edge_permutation_invariance,
    "monotone-weights": monotone_weight_equivariance,
    "leaf-relabeling": leaf_relabeling_conjugacy,
    "cut-cophenetic": cut_cophenetic_consistency,
    "query-engine": query_engine_consistency,
}


def relations_check(
    case: TreeCase,
    algorithms: dict[str, Algorithm],
    rng: np.random.Generator,
    relations: dict[
        str, Callable[[TreeCase, Algorithm, np.random.Generator], str | None]
    ] | None = None,
) -> list[Finding]:
    """Apply every relation to every algorithm; deterministic given ``rng``."""
    findings: list[Finding] = []
    table = relations if relations is not None else METAMORPHIC_RELATIONS
    for rel_name, relation in table.items():
        for alg_name, fn in algorithms.items():
            sub_rng = np.random.default_rng(rng.integers(2**63))
            message = relation(case, fn, sub_rng)
            if message is not None:
                findings.append(
                    Finding(
                        check=f"relation:{rel_name}:{alg_name}",
                        message=message,
                        case=case,
                    )
                )
    return findings
