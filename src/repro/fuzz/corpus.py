"""The replayable regression corpus under ``tests/fixtures/corpus/``.

Every finding the fuzzer shrinks is persisted as one JSON entry holding
the *case*, not the expected output: replaying re-runs the full battery
for the case's domain, so an entry passes exactly when the bug it pinned
stays fixed.  Entries are byte-stable:

* floats serialize as ``float.hex()`` strings (exact round-trip);
* ``.npz`` bytes serialize as base64;
* objects serialize with sorted keys and a trailing newline;
* the filename is content-addressed
  (``<kind>-<sha256 prefix>.json``), so identical findings from any run
  (or machine) produce identical files -- the determinism contract
  ``python -m repro fuzz`` advertises.

Format: ``repro-fuzz-corpus/1``.
"""

from __future__ import annotations

import base64
import hashlib
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.fuzz.generators import (
    CsvCase,
    DynamicCase,
    FuzzCase,
    GraphCase,
    NpzCase,
    TreeCase,
)
from repro.fuzz.oracles import (
    Finding,
    differential_check,
    dynamic_check,
    io_csv_check,
    io_npz_check,
    mst_check,
)

__all__ = [
    "CORPUS_FORMAT",
    "DEFAULT_CORPUS_DIR",
    "entry_bytes",
    "entry_filename",
    "load_entry",
    "replay_corpus",
    "replay_entry",
    "save_finding",
]

CORPUS_FORMAT = "repro-fuzz-corpus/1"

#: Where the CLI reads/writes the committed regression corpus.
DEFAULT_CORPUS_DIR = Path("tests") / "fixtures" / "corpus"


def _case_payload(case: FuzzCase) -> dict[str, Any]:
    if isinstance(case, TreeCase):
        return {
            "kind": "tree",
            "n": case.n,
            "edges": [[int(u), int(v)] for u, v in case.edges],
            "weights": [float(w).hex() for w in case.weights],
            "label": case.label,
        }
    if isinstance(case, DynamicCase):
        return {
            "kind": "dynamic",
            "n": case.n,
            "edges": [[int(u), int(v)] for u, v in case.edges],
            "weights": [float(w).hex() for w in case.weights],
            "batches": [
                {
                    "inserts": [[int(u), int(v), float(w).hex()] for u, v, w in ins],
                    "deletes": [[int(u), int(v)] for u, v in dels],
                }
                for ins, dels in case.batches
            ],
            "label": case.label,
        }
    if isinstance(case, GraphCase):
        return {
            "kind": "graph",
            "n": case.n,
            "edges": [[int(u), int(v)] for u, v in case.edges],
            "weights": [float(w).hex() for w in case.weights],
            "chunk": case.chunk,
            "label": case.label,
        }
    if isinstance(case, CsvCase):
        return {
            "kind": "csv",
            "text": case.text,
            "has_header": case.has_header,
            "label": case.label,
        }
    return {
        "kind": "npz",
        "data_base64": base64.b64encode(case.data).decode("ascii"),
        "label": case.label,
    }


def _case_from_payload(payload: dict[str, Any]) -> FuzzCase:
    kind = payload["kind"]
    if kind == "tree":
        return TreeCase(
            n=int(payload["n"]),
            edges=np.asarray(payload["edges"], dtype=np.int64).reshape(-1, 2),
            weights=np.array(
                [float.fromhex(w) for w in payload["weights"]], dtype=np.float64
            ),
            label=payload.get("label", ""),
        )
    if kind == "dynamic":
        return DynamicCase(
            n=int(payload["n"]),
            edges=np.asarray(payload["edges"], dtype=np.int64).reshape(-1, 2),
            weights=np.array(
                [float.fromhex(w) for w in payload["weights"]], dtype=np.float64
            ),
            batches=tuple(
                (
                    tuple(
                        (int(u), int(v), float.fromhex(w))
                        for u, v, w in batch["inserts"]
                    ),
                    tuple((int(u), int(v)) for u, v in batch["deletes"]),
                )
                for batch in payload["batches"]
            ),
            label=payload.get("label", ""),
        )
    if kind == "graph":
        return GraphCase(
            n=int(payload["n"]),
            edges=np.asarray(payload["edges"], dtype=np.int64).reshape(-1, 2),
            weights=np.array(
                [float.fromhex(w) for w in payload["weights"]], dtype=np.float64
            ),
            chunk=int(payload["chunk"]),
            label=payload.get("label", ""),
        )
    if kind == "csv":
        return CsvCase(
            text=payload["text"],
            has_header=payload["has_header"],
            label=payload.get("label", ""),
        )
    if kind == "npz":
        return NpzCase(
            data=base64.b64decode(payload["data_base64"]),
            label=payload.get("label", ""),
        )
    raise ValueError(f"unknown corpus case kind {kind!r}")


def entry_bytes(finding: Finding) -> bytes:
    """Canonical serialized form of a finding (stable across runs)."""
    payload = {
        "format": CORPUS_FORMAT,
        "check": finding.check,
        "message": finding.message,
        "case": _case_payload(finding.case),
    }
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")


def entry_filename(finding: Finding) -> str:
    blob = entry_bytes(finding)
    digest = hashlib.sha256(blob).hexdigest()[:12]
    kind = _case_payload(finding.case)["kind"]
    return f"{kind}-{digest}.json"


def save_finding(finding: Finding, corpus_dir: str | Path) -> Path:
    """Write the entry (content-addressed; rewriting is idempotent)."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / entry_filename(finding)
    path.write_bytes(entry_bytes(finding))
    return path


def load_entry(path: str | Path) -> tuple[str, str, FuzzCase]:
    """Read one entry; returns ``(check, message, case)``."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != CORPUS_FORMAT:
        raise ValueError(f"{path}: not a {CORPUS_FORMAT} entry")
    return payload["check"], payload["message"], _case_from_payload(payload["case"])


def replay_entry(path: str | Path) -> list[Finding]:
    """Re-run the full battery for the entry's domain; [] means fixed."""
    _, _, case = load_entry(path)
    if isinstance(case, TreeCase):
        from repro.fuzz.oracles import FUZZ_ALGORITHMS as algorithms
        from repro.fuzz.relations import relations_check

        findings = differential_check(case)
        # Fixed seed: replay must be deterministic run to run.
        digest = hashlib.sha256(Path(path).read_bytes()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        findings += relations_check(case, dict(algorithms), rng)
        return findings
    if isinstance(case, DynamicCase):
        return dynamic_check(case)
    if isinstance(case, GraphCase):
        return mst_check(case)
    if isinstance(case, CsvCase):
        return io_csv_check(case)
    return io_npz_check(case)


def replay_corpus(corpus_dir: str | Path) -> list[tuple[Path, list[Finding]]]:
    """Replay every ``*.json`` entry, sorted by name; deterministic order.

    An entry that cannot even be parsed is reported as a finding rather
    than crashing the replay -- a corrupted corpus is itself a regression.
    """
    corpus_dir = Path(corpus_dir)
    results: list[tuple[Path, list[Finding]]] = []
    for path in sorted(corpus_dir.glob("*.json")):
        try:
            findings = replay_entry(path)
        except Exception as exc:
            findings = [
                Finding(
                    check="corpus:invalid-entry",
                    message=f"{type(exc).__name__}: {exc}",
                    case=NpzCase(data=b"", label=path.name),
                )
            ]
        results.append((path, findings))
    return results
