"""The fuzzing driver behind ``python -m repro fuzz``.

One loop, five domains (trees / dynamic-update streams / MST graphs /
CSV text / npz bytes), deterministic per ``(seed, case index)``.  Tree cases run the
differential oracle and the metamorphic relations; dynamic cases run the
batch-dynamic engine against its shadow-model dynamic-vs-recompute
oracle; graph cases run the MST oracles (array Boruvka and streaming
Kruskal vs. in-memory Kruskal); io cases run the loader contract
checks.  The first
finding per distinct check name is shrunk and written to the corpus;
repeats are only counted, so a single bug cannot flood the corpus.

The loop stops at ``max_cases``, at the wall-clock ``budget_s``, or -- when
neither is given -- at :data:`DEFAULT_MAX_CASES`.  A budget never changes
*what* case ``i`` is, only how many cases run, so any corpus entry a
budgeted run produces is byte-identical to the one an unbudgeted run
produces (the determinism contract the CLI documents).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
import time
from pathlib import Path

import numpy as np

from repro.fuzz.corpus import save_finding
from repro.fuzz.generators import (
    CsvCase,
    DynamicCase,
    FuzzCase,
    GraphCase,
    NpzCase,
    TreeCase,
    case_rng,
    gen_case,
)
from repro.fuzz.oracles import (
    FUZZ_ALGORITHMS,
    BoruvkaFn,
    Finding,
    LoadEdgesCsv,
    StreamingFn,
    differential_check,
    dynamic_check,
    io_csv_check,
    io_npz_check,
    mst_check,
)
from repro.fuzz.relations import relations_check
from repro.fuzz.shrink import shrink_case

__all__ = ["DEFAULT_MAX_CASES", "FuzzReport", "run_fuzz"]

#: Cases to run when neither ``--cases`` nor ``--budget`` is given.
DEFAULT_MAX_CASES = 300


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    cases_run: int = 0
    findings: list[Finding] = field(default_factory=list)
    finding_counts: dict[str, int] = field(default_factory=dict)
    corpus_paths: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def format_lines(self) -> list[str]:
        lines = [f"fuzz: seed={self.seed}, {self.cases_run} case(s) run"]
        for finding in self.findings:
            count = self.finding_counts.get(finding.check, 1)
            lines.append(f"  FAIL {finding.describe()} (x{count} case(s))")
        for path in self.corpus_paths:
            lines.append(f"  corpus entry written: {path}")
        lines.append(
            "fuzz: OK" if self.ok else f"fuzz: {len(self.findings)} distinct failure(s)"
        )
        return lines


def _checks_for(
    case: FuzzCase,
    rng: np.random.Generator,
    algorithms: dict[str, Callable[..., np.ndarray]],
    loader: LoadEdgesCsv | None,
    tree_checks: tuple[str, ...],
    num_threads: int,
    engine_factory: Callable[..., object] | None = None,
    boruvka_fn: BoruvkaFn | None = None,
    streaming_fn: StreamingFn | None = None,
) -> list[Finding]:
    if isinstance(case, TreeCase):
        findings: list[Finding] = []
        if "differential" in tree_checks:
            findings += differential_check(case, algorithms, num_threads=num_threads)
        if "relations" in tree_checks:
            findings += relations_check(case, algorithms, rng)
        return findings
    if isinstance(case, DynamicCase):
        return dynamic_check(case, engine_factory=engine_factory)
    if isinstance(case, GraphCase):
        return mst_check(case, boruvka_fn=boruvka_fn, streaming_fn=streaming_fn)
    if isinstance(case, CsvCase):
        return io_csv_check(case, loader=loader)
    assert isinstance(case, NpzCase)
    return io_npz_check(case)


def run_fuzz(
    seed: int = 0,
    budget_s: float | None = None,
    max_cases: int | None = None,
    corpus_dir: str | Path | None = None,
    algorithms: dict[str, Callable[..., np.ndarray]] | None = None,
    loader: LoadEdgesCsv | None = None,
    domains: tuple[str, ...] | None = None,
    tree_checks: tuple[str, ...] = ("differential", "relations"),
    num_threads: int = 4,
    shrink: bool = True,
    stop_on_finding: bool = False,
    progress: Callable[[str], None] | None = None,
    engine_factory: Callable[..., object] | None = None,
    boruvka_fn: BoruvkaFn | None = None,
    streaming_fn: StreamingFn | None = None,
) -> FuzzReport:
    """Run the fuzz loop; see the module docstring for the protocol.

    ``algorithms``/``loader``/``engine_factory``/``boruvka_fn``/
    ``streaming_fn`` exist as injection points for the selftest's
    mutants; production runs leave them at their defaults.
    """
    algs = dict(algorithms if algorithms is not None else FUZZ_ALGORITHMS)
    report = FuzzReport(seed=seed)
    if max_cases is None and budget_s is None:
        max_cases = DEFAULT_MAX_CASES
    deadline = None if budget_s is None else time.monotonic() + budget_s
    index = 0
    while True:
        if max_cases is not None and index >= max_cases:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        rng = case_rng(seed, index)
        case = gen_case(rng, domains=domains)
        # One derived stream per purpose so shrinking can replay relations
        # with the exact RNG the failing evaluation used.
        relation_seed = int(rng.integers(2**63))

        def evaluate(c: FuzzCase) -> list[Finding]:
            return _checks_for(
                c,
                np.random.default_rng(relation_seed),
                algs,
                loader,
                tree_checks,
                num_threads,
                engine_factory,
                boruvka_fn,
                streaming_fn,
            )

        findings = evaluate(case)
        for finding in findings:
            first_time = finding.check not in report.finding_counts
            report.finding_counts[finding.check] = (
                report.finding_counts.get(finding.check, 0) + 1
            )
            if not first_time:
                continue
            target_check = finding.check
            if shrink:

                def still_fails(c: FuzzCase) -> bool:
                    return any(f.check == target_check for f in evaluate(c))

                small = shrink_case(finding.case, still_fails)
                finding = Finding(check=finding.check, message=finding.message, case=small)
            report.findings.append(finding)
            if corpus_dir is not None:
                report.corpus_paths.append(save_finding(finding, corpus_dir))
            if progress is not None:
                progress(f"case {index}: {finding.describe()}")
        index += 1
        report.cases_run = index
        if stop_on_finding and report.findings:
            break
    return report
