"""repro.fuzz: seeded differential + metamorphic fuzzing of the package.

The paper's evaluation validates SeqUF/ParUF/RCTT against each other on
adversarial tree families; this subsystem automates that methodology and
extends it to the io layer:

* :mod:`repro.fuzz.generators` -- deterministic adversarial inputs (tree
  topology x weight-family grid, batched insert/delete streams for the
  dynamic engine, connected graphs with boundary-biased streaming chunk
  sizes for the MST engines, malformed CSV text, corrupted ``.npz``
  bytes), one ``numpy`` Generator per ``(seed, case index)``;
* :mod:`repro.fuzz.oracles` -- the differential layer: every dendrogram
  algorithm against the :func:`~repro.core.brute.brute_force_sld` oracle,
  the batch-dynamic engine against recompute-from-scratch (shadow-model
  error prediction + ``sequf``/Kruskal cross-checks), the array-backend
  Boruvka and out-of-core streaming Kruskal against in-memory Kruskal,
  and ``load_edges_csv`` against an independent reference parser;
* :mod:`repro.fuzz.relations` -- metamorphic relations (edge-permutation
  invariance, monotone weight-transform equivariance, leaf-relabeling
  conjugacy, cut/cophenetic consistency);
* :mod:`repro.fuzz.shrink` -- greedy minimization of any failing case;
* :mod:`repro.fuzz.corpus` -- the replayable regression corpus under
  ``tests/fixtures/corpus/`` (byte-stable JSON entries);
* :mod:`repro.fuzz.runner` -- the ``python -m repro fuzz`` driver;
* :mod:`repro.fuzz.selftest` -- injected mutants the fuzzer must catch.

Determinism contract: case ``i`` under ``--seed s`` is a pure function of
``(s, i)``; a budget or case cap only truncates the sequence.  Corpus
entries are content-addressed, so two runs with the same seed write
byte-identical files.
"""

from repro.fuzz.corpus import replay_corpus, save_finding
from repro.fuzz.generators import (
    CsvCase,
    DynamicCase,
    GraphCase,
    NpzCase,
    TreeCase,
    case_rng,
    gen_case,
    gen_dynamic_case,
    gen_graph_case,
)
from repro.fuzz.oracles import (
    FUZZ_ALGORITHMS,
    Finding,
    differential_check,
    dynamic_check,
    io_csv_check,
    mst_check,
)
from repro.fuzz.relations import METAMORPHIC_RELATIONS, relations_check
from repro.fuzz.runner import FuzzReport, run_fuzz
from repro.fuzz.selftest import run_selftest
from repro.fuzz.shrink import shrink_case

__all__ = [
    "FUZZ_ALGORITHMS",
    "METAMORPHIC_RELATIONS",
    "CsvCase",
    "DynamicCase",
    "Finding",
    "FuzzReport",
    "GraphCase",
    "NpzCase",
    "TreeCase",
    "case_rng",
    "differential_check",
    "dynamic_check",
    "gen_case",
    "gen_dynamic_case",
    "gen_graph_case",
    "io_csv_check",
    "mst_check",
    "relations_check",
    "replay_corpus",
    "run_fuzz",
    "run_selftest",
    "save_finding",
    "shrink_case",
]
