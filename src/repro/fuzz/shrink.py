"""Greedy minimization of failing fuzz cases.

Given a case and a predicate (*does this case still exhibit the failure?*),
the shrinker walks a deterministic sequence of simplification attempts and
keeps every one the predicate confirms:

* **trees** -- repeatedly delete leaf vertices (relabeling the survivors
  down, so the result stays a valid tree on ``0..n-1``), then canonicalize
  weights to their ranks (small distinct integers) if the failure survives;
* **CSV** -- drop whole lines, then drop trailing cells, then substitute
  each cell with ``"0"``;
* **npz byte streams** -- truncate from the end by halves;
* **dynamic-update streams** -- drop whole batches, then single ops
  within a batch, then initial graph edges (candidates that disconnect
  the graph simply fail the predicate and are discarded).

The total number of predicate evaluations is capped; within the cap the
result is minimal with respect to the moves above (no single further move
preserves the failure).  Everything is deterministic: no randomness, and
the predicate is expected to be deterministic too (the runner fixes the
relation RNG seed while shrinking).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace

import numpy as np

from repro.fuzz.generators import (
    CsvCase,
    DynamicCase,
    FuzzCase,
    GraphCase,
    NpzCase,
    TreeCase,
)
from repro.trees.weights import ranks_of

__all__ = [
    "shrink_case",
    "shrink_csv_case",
    "shrink_dynamic_case",
    "shrink_graph_case",
    "shrink_npz_case",
    "shrink_tree_case",
]

#: Global cap on predicate evaluations per shrink.
MAX_PREDICATE_CALLS = 400


class _Budget:
    def __init__(self, limit: int) -> None:
        self.left = limit

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _delete_leaf(case: TreeCase, vertex: int) -> TreeCase | None:
    """Remove degree-1 ``vertex`` (and its edge); relabel survivors down."""
    edges, weights = case.edges, case.weights
    incident = np.flatnonzero((edges[:, 0] == vertex) | (edges[:, 1] == vertex))
    if incident.shape[0] != 1 or case.n <= 2:
        return None
    keep = np.ones(edges.shape[0], dtype=bool)
    keep[incident[0]] = False
    new_edges = edges[keep].copy()
    new_edges[new_edges > vertex] -= 1
    label = case.label if case.label.endswith("~shrunk") else case.label + "~shrunk"
    return TreeCase(
        n=case.n - 1,
        edges=new_edges,
        weights=weights[keep].copy(),
        label=label,
    )


def shrink_tree_case(
    case: TreeCase,
    predicate: Callable[[TreeCase], bool],
    budget: _Budget | None = None,
) -> TreeCase:
    budget = budget if budget is not None else _Budget(MAX_PREDICATE_CALLS)
    current = case
    improved = True
    while improved:
        improved = False
        # Weight canonicalization first: distinct small integers both read
        # better in the corpus and often unlock further leaf deletions.
        canon = ranks_of(current.weights).astype(np.float64)
        if not np.array_equal(canon, current.weights) and budget.spend():
            candidate = replace(current, weights=canon)
            if predicate(candidate):
                current = candidate
                improved = True
        for vertex in range(current.n):
            candidate_or_none = _delete_leaf(current, vertex)
            if candidate_or_none is None:
                continue
            if not budget.spend():
                return current
            if predicate(candidate_or_none):
                current = candidate_or_none
                improved = True
                break  # degrees changed; rescan from the smallest vertex
    return current


def shrink_csv_case(
    case: CsvCase,
    predicate: Callable[[CsvCase], bool],
    budget: _Budget | None = None,
) -> CsvCase:
    budget = budget if budget is not None else _Budget(MAX_PREDICATE_CALLS)

    def rebuild(lines: list[str]) -> CsvCase:
        return replace(case, text="\n".join(lines) + "\n" if lines else "")

    lines = case.text.split("\n")
    while lines and lines[-1] == "":
        lines.pop()
    current = case
    improved = True
    while improved:
        improved = False
        for i in range(len(lines)):  # drop whole lines
            if not budget.spend():
                return current
            candidate_lines = lines[:i] + lines[i + 1 :]
            candidate = rebuild(candidate_lines)
            if predicate(candidate):
                lines, current = candidate_lines, candidate
                improved = True
                break
        if improved:
            continue
        for i, line in enumerate(lines):  # drop trailing cells
            cells = line.split(",")
            if len(cells) <= 1:
                continue
            if not budget.spend():
                return current
            candidate_lines = list(lines)
            candidate_lines[i] = ",".join(cells[:-1])
            candidate = rebuild(candidate_lines)
            if predicate(candidate):
                lines, current = candidate_lines, candidate
                improved = True
                break
        if improved:
            continue
        for i, line in enumerate(lines):  # simplify cells to "0"
            cells = line.split(",")
            for j, cell in enumerate(cells):
                if cell == "0":
                    continue
                if not budget.spend():
                    return current
                candidate_cells = list(cells)
                candidate_cells[j] = "0"
                candidate_lines = list(lines)
                candidate_lines[i] = ",".join(candidate_cells)
                candidate = rebuild(candidate_lines)
                if predicate(candidate):
                    lines, current = candidate_lines, candidate
                    improved = True
                    break
            if improved:
                break
    return current


def shrink_npz_case(
    case: NpzCase,
    predicate: Callable[[NpzCase], bool],
    budget: _Budget | None = None,
) -> NpzCase:
    budget = budget if budget is not None else _Budget(MAX_PREDICATE_CALLS)
    current = case
    while len(current.data) > 0 and budget.spend():
        candidate = replace(current, data=current.data[: len(current.data) // 2])
        if not predicate(candidate):
            break
        current = candidate
    return current


def shrink_dynamic_case(
    case: DynamicCase,
    predicate: Callable[[DynamicCase], bool],
    budget: _Budget | None = None,
) -> DynamicCase:
    budget = budget if budget is not None else _Budget(MAX_PREDICATE_CALLS)
    current = case
    improved = True
    while improved:
        improved = False
        for i in range(len(current.batches)):  # drop whole batches
            if not budget.spend():
                return current
            candidate = replace(
                current, batches=current.batches[:i] + current.batches[i + 1 :]
            )
            if predicate(candidate):
                current = candidate
                improved = True
                break
        if improved:
            continue
        for i, (ins, dels) in enumerate(current.batches):  # drop single ops
            for j in range(len(ins)):
                if not budget.spend():
                    return current
                batches = list(current.batches)
                batches[i] = (ins[:j] + ins[j + 1 :], dels)
                candidate = replace(current, batches=tuple(batches))
                if predicate(candidate):
                    current = candidate
                    improved = True
                    break
            if improved:
                break
            for j in range(len(dels)):
                if not budget.spend():
                    return current
                batches = list(current.batches)
                batches[i] = (ins, dels[:j] + dels[j + 1 :])
                candidate = replace(current, batches=tuple(batches))
                if predicate(candidate):
                    current = candidate
                    improved = True
                    break
            if improved:
                break
        if improved:
            continue
        for i in range(current.edges.shape[0]):  # drop initial edges
            if not budget.spend():
                return current
            keep = np.ones(current.edges.shape[0], dtype=bool)
            keep[i] = False
            candidate = replace(
                current,
                edges=current.edges[keep].copy(),
                weights=current.weights[keep].copy(),
            )
            if predicate(candidate):
                current = candidate
                improved = True
                break
    return current


def shrink_graph_case(
    case: GraphCase,
    predicate: Callable[[GraphCase], bool],
    budget: _Budget | None = None,
) -> GraphCase:
    """Drop edges, then shrink the chunk size toward 1.

    Candidates that disconnect the graph are rejected by the predicate
    itself (the MST oracle skips non-spanning inputs), so no explicit
    connectivity guard is needed here.
    """
    budget = budget if budget is not None else _Budget(MAX_PREDICATE_CALLS)
    current = case
    improved = True
    while improved:
        improved = False
        for i in range(current.edges.shape[0]):
            if not budget.spend():
                return current
            keep = np.ones(current.edges.shape[0], dtype=bool)
            keep[i] = False
            candidate = replace(
                current,
                edges=current.edges[keep].copy(),
                weights=current.weights[keep].copy(),
            )
            if predicate(candidate):
                current = candidate
                improved = True
                break
    for chunk in (1, 2, current.chunk // 2):
        if chunk < 1 or chunk == current.chunk:
            continue
        if not budget.spend():
            return current
        candidate = replace(current, chunk=chunk)
        if predicate(candidate):
            current = candidate
            break
    return current


def shrink_case(case: FuzzCase, predicate: Callable[[FuzzCase], bool]) -> FuzzCase:
    """Dispatch on the case domain; returns the (possibly unchanged) minimum."""
    if isinstance(case, TreeCase):
        return shrink_tree_case(case, predicate)
    if isinstance(case, CsvCase):
        return shrink_csv_case(case, predicate)
    if isinstance(case, DynamicCase):
        return shrink_dynamic_case(case, predicate)
    if isinstance(case, GraphCase):
        return shrink_graph_case(case, predicate)
    return shrink_npz_case(case, predicate)
