"""Runtime slab contracts: the ``@slab_contract`` layer.

The flat-array backends (``sequf_fast``, ``HeapPool``,
``tree_contraction_fast``, ``rctt_fast``) live or die on properties
Python cannot see: slab dtypes (an accidental int64 promotion doubles
memory), contiguity (a strided view silently de-vectorizes kernels), and
write footprints (a kernel scribbling on an input slab breaks the
shared-memory story of ROADMAP item 4).  ``@slab_contract`` lets each
kernel *declare* those properties, the same way ``@cost_bound`` declares
asymptotic cost, so two independent verifiers can hold it to them:

* the static pass (:mod:`repro.checkers.slabs`, code RPR209) requires the
  annotation on every fast kernel and pool method, mirroring RPR101;
* this module verifies the declaration at run time -- in checked mode.

Checked vs. zero-cost mode
--------------------------
The decision is made **at decoration time** (import): when the
environment variable ``REPRO_SLAB_CONTRACTS`` is truthy (``1``/``true``/
``on``/``yes``), decorated functions are replaced by validating wrappers;
otherwise the decorator only attaches metadata (``fn.__slab_contract__``,
plus a :data:`REGISTRY` entry) and returns the function object
*unchanged* -- genuinely zero call-time cost, which matters because
``HeapPool.meld``/``filter_and_insert`` sit in per-vertex hot loops.
Tests and tools that want a checking wrapper regardless of the mode build
one explicitly with :func:`checked`.  CI enables the variable for the
fuzz job, so every contract is exercised against adversarial inputs.

What checked mode verifies
--------------------------
* ``dtypes={"name": "int64", ...}`` -- the named argument's
  ``ndarray.dtype`` (or ``array.array`` typecode, or scalar kind) must
  match one of the accepted strings.  Dotted names (``"tree.edges"``,
  ``"self.key"``) resolve attributes on the bound argument, so contracts
  can reach the slabs inside a :class:`~repro.trees.wtree.WeightedTree`
  or a :class:`~repro.structures.heap_pool.HeapPool`.
* ``contiguous=("name", ...)`` -- the named ndarray must be
  C-contiguous.
* ``writes=("name", ...)`` -- the declared mutation footprint.  Every
  *other* declared ndarray is temporarily made read-only for the duration
  of the call (and restored after), so an undeclared write raises from
  the exact offending statement.
* ``returns="int64"`` -- dtype of an ndarray result.

``None`` argument values are skipped (optional parameters), as are
declared names whose argument was not supplied.
"""

from __future__ import annotations

import functools
import inspect
import os
from array import array
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from typing import Any, TypeVar

import numpy as np

from repro.errors import SlabContractError

__all__ = [
    "SlabContract",
    "slab_contract",
    "checked",
    "contracts_enabled",
    "get_contract",
    "REGISTRY",
    "ENV_FLAG",
]

#: Environment variable that switches decoration into checked mode.
ENV_FLAG = "REPRO_SLAB_CONTRACTS"

_TRUTHY = ("1", "true", "on", "yes")

_ENABLED = os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY

_MISSING = object()


def contracts_enabled() -> bool:
    """Whether decoration currently installs checking wrappers."""
    return _ENABLED


def _normalize(spec: str | tuple[str, ...] | list[str]) -> tuple[str, ...]:
    if isinstance(spec, str):
        return (spec,)
    return tuple(spec)


@dataclass(frozen=True)
class SlabContract:
    """One declared slab contract attached to a function."""

    name: str  #: registry key, ``module.qualname``
    dtypes: Mapping[str, tuple[str, ...]]
    contiguous: tuple[str, ...]
    writes: tuple[str, ...]
    returns: tuple[str, ...] | None

    def declared_names(self) -> tuple[str, ...]:
        """Every argument name the contract mentions (dotted included)."""
        seen: dict[str, None] = {}
        for name in (*self.dtypes, *self.contiguous, *self.writes):
            seen.setdefault(name, None)
        return tuple(seen)

    def describe(self) -> str:
        parts = []
        if self.dtypes:
            decl = ", ".join(f"{k}:{'|'.join(v)}" for k, v in self.dtypes.items())
            parts.append(f"dtypes[{decl}]")
        if self.contiguous:
            parts.append(f"contiguous({', '.join(self.contiguous)})")
        if self.writes:
            parts.append(f"writes({', '.join(self.writes)})")
        if self.returns is not None:
            parts.append(f"returns {'|'.join(self.returns)}")
        return "; ".join(parts) if parts else "(empty contract)"


#: Central registry: ``module.qualname`` -> :class:`SlabContract`.
REGISTRY: dict[str, SlabContract] = {}

_F = TypeVar("_F", bound=Callable[..., Any])


def _value_kind(value: Any) -> str:
    """The dtype/typecode string a runtime value is matched under."""
    if isinstance(value, np.ndarray):
        return str(value.dtype.name)
    if isinstance(value, array):
        return str(value.typecode)
    if isinstance(value, (bool, np.bool_)):
        return "bool"
    if isinstance(value, (int, np.integer)):
        return "int"
    if isinstance(value, (float, np.floating)):
        return "float"
    return type(value).__name__


def _resolve(name: str, arguments: Mapping[str, Any]) -> Any:
    """Resolve a (possibly dotted) declared name against bound arguments."""
    head, _, rest = name.partition(".")
    if head not in arguments:
        return _MISSING
    value = arguments[head]
    if rest:
        for part in rest.split("."):
            try:
                value = getattr(value, part)
            except AttributeError:
                raise SlabContractError(
                    f"slab contract names {name!r} but {head!r} has no "
                    f"attribute path {rest!r}"
                ) from None
    return value


def _check_dtype(fn_name: str, name: str, value: Any, accepted: tuple[str, ...]) -> None:
    if value is None:
        return
    got = _value_kind(value)
    if got not in accepted:
        raise SlabContractError(
            f"{fn_name}: argument {name!r} has dtype {got!r}, contract "
            f"accepts {sorted(accepted)}"
        )


def _make_checked(fn: Callable[..., Any], contract: SlabContract) -> Callable[..., Any]:
    sig = inspect.signature(fn)
    params = set(sig.parameters)
    for declared in contract.declared_names():
        head = declared.partition(".")[0]
        if head not in params:
            raise SlabContractError(
                f"@slab_contract on {contract.name} names {declared!r} but the "
                f"function has no parameter {head!r}"
            )
    fn_label = contract.name

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        bound = sig.bind(*args, **kwargs)
        bound.apply_defaults()
        arguments = bound.arguments
        resolved: dict[str, Any] = {}
        for declared in contract.declared_names():
            value = _resolve(declared, arguments)
            if value is not _MISSING:
                resolved[declared] = value
        for declared, accepted in contract.dtypes.items():
            if declared in resolved:
                _check_dtype(fn_label, declared, resolved[declared], accepted)
        for declared in contract.contiguous:
            value = resolved.get(declared)
            if isinstance(value, np.ndarray) and not value.flags["C_CONTIGUOUS"]:
                raise SlabContractError(
                    f"{fn_label}: argument {declared!r} must be C-contiguous, "
                    f"got strides {value.strides}"
                )
        # Lock every declared read-only ndarray for the duration of the
        # call: an undeclared write raises from the offending statement.
        write_arrays = [
            resolved[w] for w in contract.writes
            if isinstance(resolved.get(w), np.ndarray)
        ]
        locked: list[np.ndarray] = []
        for declared, value in resolved.items():
            if (
                declared in contract.writes
                or not isinstance(value, np.ndarray)
                or not value.flags.writeable
                or any(id(value) == id(done) for done in locked)
                or any(np.may_share_memory(value, w) for w in write_arrays)
            ):
                continue
            value.flags.writeable = False
            locked.append(value)
        try:
            result = fn(*args, **kwargs)
        finally:
            for value in locked:
                value.flags.writeable = True
        if contract.returns is not None and isinstance(result, np.ndarray):
            _check_dtype(fn_label, "<return>", result, contract.returns)
        return result

    wrapper.__slab_contract_checked__ = True  # type: ignore[attr-defined]
    return wrapper


def slab_contract(
    *,
    dtypes: Mapping[str, str | tuple[str, ...] | list[str]] | None = None,
    contiguous: Iterable[str] = (),
    writes: Iterable[str] = (),
    returns: str | tuple[str, ...] | list[str] | None = None,
) -> Callable[[_F], _F]:
    """Declare the slab discipline of the decorated kernel.

    Parameters
    ----------
    dtypes:
        Mapping of (possibly dotted) argument names to accepted dtype
        strings -- ndarray ``dtype.name``\\ s (``"int64"``), ``array``
        typecodes (``"i"``), or the scalar kinds ``"int"``/``"float"``/
        ``"bool"``.
    contiguous:
        Names whose ndarray values must be C-contiguous.
    writes:
        The declared mutation footprint; every other declared ndarray is
        locked read-only during a checked call.
    returns:
        Accepted dtype(s) of an ndarray result.

    In zero-cost mode the decorator attaches metadata only and returns the
    function unchanged; see the module docstring for the mode switch.
    """
    normalized_dtypes: dict[str, tuple[str, ...]] = {
        key: _normalize(value) for key, value in (dtypes or {}).items()
    }
    contract_template = (
        normalized_dtypes,
        tuple(contiguous),
        tuple(writes),
        _normalize(returns) if returns is not None else None,
    )

    def decorate(fn: _F) -> _F:
        name = f"{fn.__module__}.{fn.__qualname__}"
        contract = SlabContract(name, *contract_template)
        fn.__slab_contract__ = contract  # type: ignore[attr-defined]
        REGISTRY[name] = contract
        if _ENABLED:
            wrapped = _make_checked(fn, contract)
            return wrapped  # type: ignore[return-value]
        # Validate declared names eagerly even in zero-cost mode: a typo
        # in a contract must fail at import, like a malformed @cost_bound.
        params = set(inspect.signature(fn).parameters)
        for declared in contract.declared_names():
            if declared.partition(".")[0] not in params:
                raise SlabContractError(
                    f"@slab_contract on {name} names {declared!r} but the "
                    f"function has no parameter {declared.partition('.')[0]!r}"
                )
        return fn

    return decorate


def checked(fn: Callable[..., Any]) -> Callable[..., Any]:
    """A validating wrapper for ``fn``, regardless of the global mode.

    ``fn`` must carry ``__slab_contract__`` (i.e. be decorated); a
    function that is already a checking wrapper is returned as-is.
    """
    if getattr(fn, "__slab_contract_checked__", False):
        return fn
    contract = getattr(fn, "__slab_contract__", None)
    if contract is None:
        raise SlabContractError(
            f"{getattr(fn, '__qualname__', fn)!r} has no @slab_contract to check"
        )
    return _make_checked(fn, contract)


def get_contract(target: Callable[..., Any] | str) -> SlabContract | None:
    """Look up the declared contract of a function (or registry key)."""
    if isinstance(target, str):
        return REGISTRY.get(target)
    return getattr(target, "__slab_contract__", None)
