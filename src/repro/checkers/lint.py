"""AST-based repo-invariant lint (codes RPR001..RPR005).

These checks encode invariants that generic linters cannot express and
that the reproduction depends on:

* **RPR001** -- no wall-clock reads (``time.time``/``perf_counter``/
  ``monotonic``/``process_time``/``sleep``, ``datetime.now``/``utcnow``)
  outside ``repro/runtime/`` and ``repro/bench/``.  Algorithm results and
  charged costs must be functions of the input alone.
* **RPR002** -- no unseeded randomness outside ``repro/runtime/`` and
  ``repro/bench/``: module-level ``numpy.random.*`` / stdlib ``random.*``
  draws, and ``default_rng()`` called with no arguments.  Seeds must be
  threaded explicitly (``repro.util.check_random_state``).
* **RPR003** -- every public ``repro.core`` algorithm whose first
  parameter is ``tree`` must accept a cost ``tracker`` (or a ``**kwargs``
  catch-all that forwards one) and actually reference it.
* **RPR004** -- no mutation of :class:`~repro.trees.wtree.WeightedTree`
  payload (``.edges[...] =``, ``.weights[...] =``, ``._ranks``/``._adj*``
  attributes) outside ``repro/trees/``; trees are frozen inputs.
* **RPR005** -- a function defined inside a scope that calls
  ``run_round`` (a round task body) must not store to closed-over shared
  state unless the body declares its footprint via
  ``record_write``/``record_atomic``/``commit_phase``.

The RPR1xx block enforces the cost-bound contract of
:mod:`repro.checkers.bounds`:

* **RPR101** -- a public module-level function in ``repro/core/`` or
  ``repro/contraction/`` whose first parameter is ``tree`` (an exported
  algorithm) must declare its work/depth via ``@cost_bound``.
* **RPR102** -- a ``kind="algorithm"`` function whose declared *depth* is
  polylogarithmic must not contain a bare ``for``/``while`` over
  input-sized data.  Loops are exempt inside ``with ...parallel_round()``
  blocks, when iterating contraction ``.rounds``, or when bounded by
  ``range(...)`` of ``log2ceil``/``bit_length``/constant expressions;
  only the outermost offending loop is flagged, and anything nested in an
  exempt region is exempt.
* **RPR103** -- a self-recursive call inside a ``@cost_bound`` function
  must syntactically shrink: at least one argument has to be something
  other than a bare parameter name (or constant) of the function itself.
* **RPR104** -- ``@cost_bound`` expressions must parse under the bound
  grammar and reference only the declared ``vars``.
* **RPR105** -- a ``kind="algorithm"`` function must not call a
  same-module, module-level helper that contains loops but declares no
  bound of its own (undeclared cost escape hatch).

Suppression: a ``# noqa: RPR00x`` (or bare ``# noqa``) comment anywhere
on the flagged *logical* line silences the diagnostic, same convention as
flake8/ruff.  For a statement spanning several physical lines, a ``noqa``
on the first line suppresses findings reported on continuation lines too.
A standalone ``# noqa-module: RPR00x[, RPR00y]`` comment (conventionally
at the top of the file) suppresses the listed codes for the whole module;
there is no bare form -- a blanket waiver would defeat the lint.  It
exists for modules whose entire design trips one structural rule, e.g.
the flat-array backends whose drivers keep an explicitly bounded scalar
loop that RPR102's loop census cannot see through.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.checkers.bounds import BoundParseError, parse_bound_expr

__all__ = [
    "LintDiagnostic",
    "apply_noqa",
    "lint_source",
    "lint_file",
    "lint_paths",
    "ALL_CODES",
]

ALL_CODES = (
    "RPR001",
    "RPR002",
    "RPR003",
    "RPR004",
    "RPR005",
    "RPR101",
    "RPR102",
    "RPR103",
    "RPR104",
    "RPR105",
)

#: Layers allowed to read clocks and draw unseeded randomness: the
#: simulation runtime, the wall-clock benchmark harness, and the fuzzing
#: driver (whose ``--budget`` is wall-clock by definition; its case
#: streams stay seeded by contract, enforced by its own tests).
_EXEMPT_LAYERS = ("repro/runtime/", "repro/bench/", "repro/fuzz/")

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

_NUMPY_RANDOM_FNS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "seed",
    "normal",
    "uniform",
    "exponential",
}

_STDLIB_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "seed",
    "betavariate",
    "expovariate",
}

_FOOTPRINT_DECLS = {"record_write", "record_atomic", "commit_phase"}

#: ``(?!-)`` keeps the per-line matcher from eating ``# noqa-module:``
#: directives (which would otherwise read as a bare noqa on that line).
_NOQA_RE = re.compile(r"#\s*noqa(?!-)(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

_NOQA_MODULE_RE = re.compile(r"#\s*noqa-module:\s*(?P<codes>[A-Z0-9, ]+)", re.IGNORECASE)


@dataclass(frozen=True)
class LintDiagnostic:
    """One lint finding, pointing at a source line."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _parse_noqa(comment: str) -> tuple[bool, set[str] | None] | None:
    """``(found, codes)`` for a comment; ``codes is None`` means bare noqa."""
    m = _NOQA_RE.search(comment)
    if not m:
        return None
    codes = m.group("codes")
    if codes is None:
        return True, None
    return True, {c.strip().upper() for c in codes.split(",") if c.strip()}


def _noqa_module_codes(source: str) -> set[str]:
    """Codes suppressed file-wide by ``# noqa-module:`` comments.

    The directive must list explicit codes; a code-less ``# noqa-module``
    is inert.  Any comment in the file qualifies, but by convention the
    directive sits above the module docstring where reviewers see it.
    """
    codes: set[str] = set()
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_MODULE_RE.search(tok.string)
            if m:
                codes.update(c.strip().upper() for c in m.group("codes").split(",") if c.strip())
    except (tokenize.TokenError, IndentationError):
        pass
    return codes


def _noqa_lines(source: str) -> dict[int, set[str] | None]:
    """Map line number -> suppressed codes (``None`` means all codes).

    A noqa applies to every physical line of the *logical* line (the
    statement) it sits on, so a directive on the first line of a
    multi-line call suppresses diagnostics reported against the
    continuation lines.  A noqa on a standalone comment line applies to
    that line only.
    """
    out: dict[int, set[str] | None] = {}

    def add(line: int, codes: set[str] | None) -> None:
        if line in out and codes is not None:
            prev = out[line]
            out[line] = None if prev is None else prev | codes
        elif line in out:
            out[line] = None
        else:
            out[line] = codes

    _skip = (
        tokenize.NEWLINE,
        tokenize.NL,
        tokenize.COMMENT,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    )
    span_start: int | None = None
    span_end = 0
    pending: list[set[str] | None] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                parsed = _parse_noqa(tok.string)
                if parsed is not None:
                    if span_start is None:
                        add(tok.start[0], parsed[1])  # standalone comment line
                    else:
                        pending.append(parsed[1])
                continue
            if tok.type == tokenize.NEWLINE:
                if span_start is not None and pending:
                    for codes in pending:
                        for line in range(span_start, max(span_end, tok.start[0]) + 1):
                            add(line, codes)
                span_start = None
                pending = []
                continue
            if tok.type in _skip:
                continue
            if span_start is None:
                span_start = tok.start[0]
            span_end = tok.end[0]
    except tokenize.TokenError:
        pass
    return out


class _ImportMap:
    """Resolves local names to dotted module paths from the file's imports."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname:
                self.aliases[alias.asname] = alias.name

    def visit_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.expr) -> str | None:
        """Dotted name of a called expression, with import aliases expanded."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.aliases.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))


class _Scope:
    """Per-function state for the closure-store check (RPR005)."""

    def __init__(self, node: ast.AST, parent: "_Scope | None") -> None:
        self.node = node
        self.parent = parent
        self.local_names: set[str] = set()
        self.calls_run_round = False
        self.declares_footprint = False
        self.shared_stores: list[tuple[int, int, str]] = []


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, exempt_dynamic: bool) -> None:
        self.path = path
        self.exempt_dynamic = exempt_dynamic
        self.in_core = "repro/core/" in path.replace("\\", "/")
        self.in_trees = "repro/trees/" in path.replace("\\", "/")
        self.imports = _ImportMap()
        self.diagnostics: list[LintDiagnostic] = []
        self.scope: _Scope | None = None
        #: Closed nested scopes with undeclared shared stores; judged at
        #: module end, once every enclosing scope has seen all its calls.
        self._rpr005_pending: list[_Scope] = []

    # -- helpers ----------------------------------------------------------
    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.diagnostics.append(
            LintDiagnostic(
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0) + 1,
                code,
                message,
            )
        )

    # -- imports ----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit_import_from(node)
        self.generic_visit(node)

    # -- RPR001 / RPR002: calls -------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.imports.resolve_call(node.func)
        if dotted is not None:
            if self.scope is not None and dotted.rsplit(".", 1)[-1] == "run_round":
                self.scope.calls_run_round = True
            if self.scope is not None and dotted.rsplit(".", 1)[-1] in _FOOTPRINT_DECLS:
                self.scope.declares_footprint = True
            if not self.exempt_dynamic:
                self._check_call(node, dotted)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: str) -> None:
        if dotted in _WALL_CLOCK or dotted in {"datetime.now", "datetime.utcnow"}:
            self.report(
                node,
                "RPR001",
                f"wall-clock call {dotted}() outside repro/runtime or repro/bench",
            )
            return
        tail = dotted.rsplit(".", 1)[-1]
        if dotted.startswith("numpy.random.") and tail in _NUMPY_RANDOM_FNS:
            self.report(
                node,
                "RPR002",
                f"unseeded global-state randomness {dotted}(); "
                "thread a seeded Generator instead",
            )
            return
        if dotted.startswith("random.") and tail in _STDLIB_RANDOM_FNS:
            self.report(
                node,
                "RPR002",
                f"stdlib global-state randomness {dotted}(); "
                "thread a seeded numpy Generator instead",
            )
            return
        if tail == "default_rng" and not node.args and not node.keywords:
            self.report(
                node,
                "RPR002",
                "default_rng() with no seed; pass an explicit seed or Generator",
            )

    # -- scopes: RPR003 + RPR005 ------------------------------------------
    def _function_scope(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        parent = self.scope
        scope = _Scope(node, parent)
        args = node.args
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            scope.local_names.add(a.arg)
        if args.vararg:
            scope.local_names.add(args.vararg.arg)
        if args.kwarg:
            scope.local_names.add(args.kwarg.arg)
        self.scope = scope
        self.generic_visit(node)
        self.scope = parent

        # RPR005 candidates: a task body nested in a run_round-calling
        # scope must declare its shared-store footprint.  The run_round
        # call often appears *after* the nested def, so judgement is
        # deferred to module end via finalize().
        if parent is not None and not scope.declares_footprint and scope.shared_stores:
            self._rpr005_pending.append(scope)

        if self.in_core and parent is None:
            self._check_tracker_threading(node)

    @staticmethod
    def _any_enclosing_calls_run_round(scope: _Scope) -> bool:
        s: _Scope | None = scope
        while s is not None:
            if s.calls_run_round:
                return True
            s = s.parent
        return False

    def finalize(self) -> None:
        """Judge deferred RPR005 candidates after the whole module is seen."""
        for scope in self._rpr005_pending:
            if scope.parent is None or not self._any_enclosing_calls_run_round(
                scope.parent
            ):
                continue
            line, col, name = scope.shared_stores[0]
            self.diagnostics.append(
                LintDiagnostic(
                    self.path,
                    line,
                    col + 1,
                    "RPR005",
                    f"round task body stores to closed-over {name!r} without "
                    "record_write/record_atomic/commit_phase declaration",
                )
            )

    def _check_tracker_threading(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if node.name.startswith("_"):
            return
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if not positional or positional[0].arg != "tree":
            return
        names = {a.arg for a in positional} | {a.arg for a in args.kwonlyargs}
        if args.kwarg is not None:
            return  # **kwargs catch-all forwards tracker= through
        if "tracker" not in names:
            self.report(
                node,
                "RPR003",
                f"public repro.core algorithm {node.name}() takes 'tree' but "
                "no 'tracker' cost accumulator",
            )
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id == "tracker" and sub is not node:
                if isinstance(sub.ctx, ast.Load):
                    return
            if isinstance(sub, ast.keyword) and sub.arg == "tracker":
                return
        self.report(
            node,
            "RPR003",
            f"{node.name}() accepts 'tracker' but never reads or forwards it",
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        parent = self.scope
        scope = _Scope(node, parent)
        for a in list(node.args.posonlyargs) + list(node.args.args):
            scope.local_names.add(a.arg)
        self.scope = scope
        self.generic_visit(node)
        self.scope = parent

    # -- assignments: RPR004 + local-name tracking -------------------------
    def _handle_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if self.scope is not None:
                self.scope.local_names.add(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_target(elt)
            return
        self._check_store(target)

    def _base_name(self, node: ast.expr) -> str | None:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _check_store(self, target: ast.expr) -> None:
        # RPR004: WeightedTree payload mutation outside repro/trees/.
        if not self.in_trees:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Attribute):
                attr = target.value
                base = self._base_name(attr.value)
                if attr.attr in ("edges", "weights") and base != "self":
                    self.report(
                        target,
                        "RPR004",
                        f"mutation of WeightedTree payload '.{attr.attr}[...]' "
                        "outside repro/trees (trees are frozen inputs)",
                    )
            if isinstance(target, ast.Attribute):
                base = self._base_name(target.value)
                if (
                    target.attr == "_ranks" or target.attr.startswith("_adj")
                ) and base != "self":
                    self.report(
                        target,
                        "RPR004",
                        f"mutation of WeightedTree cache '.{target.attr}' "
                        "outside repro/trees",
                    )
        # RPR005 bookkeeping: store through a name not local to this scope.
        if self.scope is not None:
            base = self._base_name(target)
            if base is not None and base not in self.scope.local_names:
                self.scope.shared_stores.append(
                    (target.lineno, target.col_offset, base)
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._handle_target(t)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            if self.scope is not None and node.target.id not in self.scope.local_names:
                self.scope.shared_stores.append(
                    (node.target.lineno, node.target.col_offset, node.target.id)
                )
        else:
            self._check_store(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._handle_target(node.target)
        self.generic_visit(node)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        if self.scope is not None:
            for name in node.names:
                self.scope.shared_stores.append((node.lineno, node.col_offset, name))
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# RPR101..RPR105: the cost-bound contract (static side)
# ---------------------------------------------------------------------------

#: Layers whose exported algorithms must declare bounds (RPR101).
_BOUND_REQUIRED_LAYERS = ("repro/core/", "repro/contraction/")

#: Call names whose arguments are O(log input) by construction (RPR102).
_LOG_SIZED_CALLS = {"log2ceil", "bit_length", "log", "log2"}

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _find_cost_bound(node: _FunctionNode) -> tuple[bool, ast.Call | None]:
    """Whether ``node`` carries ``@cost_bound`` and the decorator Call."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id
        else:
            continue
        if name == "cost_bound":
            return True, dec if isinstance(dec, ast.Call) else None
    return False, None


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _literal_vars(call: ast.Call) -> tuple[str, ...] | None:
    """The ``vars=`` tuple if it is a literal; ``("n",)`` if omitted."""
    node = _keyword(call, "vars")
    if node is None:
        return ("n",)
    if isinstance(node, (ast.Tuple, ast.List)) and all(
        isinstance(e, ast.Constant) and isinstance(e.value, str) for e in node.elts
    ):
        return tuple(e.value for e in node.elts)
    return None


def _bound_kind(call: ast.Call) -> str:
    node = _keyword(call, "kind")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return "algorithm"


def _is_parallel_round_ctx(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "parallel_round"
    )


def _log_bounded(expr: ast.expr) -> bool:
    """True if every name in ``expr`` feeds a log-sized call (RPR102)."""
    permitted: set[int] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            func = node.func
            fname = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if fname in _LOG_SIZED_CALLS:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        permitted.add(id(sub))
    return all(
        id(node) in permitted
        for node in ast.walk(expr)
        if isinstance(node, ast.Name)
    )


def _exempt_for_iter(expr: ast.expr) -> bool:
    """Iterables a polylog-depth loop may traverse without a finding."""
    if isinstance(expr, ast.Attribute) and expr.attr == "rounds":
        return True  # contraction round list: O(log n) entries whp
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id == "range":
            return all(_log_bounded(a) for a in expr.args)
        if expr.func.id in ("enumerate", "reversed") and expr.args:
            return _exempt_for_iter(expr.args[0])
    return False


def _stmt_lists(node: ast.stmt) -> Iterator[list[ast.stmt]]:
    for field in ("body", "orelse", "finalbody"):
        val = getattr(node, field, None)
        if val:
            yield val
    for handler in getattr(node, "handlers", []) or []:
        yield handler.body
    for case in getattr(node, "cases", []) or []:
        yield case.body


def _flag_sequential_loops(stmts: list[ast.stmt], flag: Callable[[ast.stmt], None]) -> None:
    """Report outermost un-combinator-wrapped loops (RPR102 core walk)."""
    for node in stmts:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested defs are charged at their call sites
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(_is_parallel_round_ctx(item.context_expr) for item in node.items):
                continue  # combinator-charged region: everything inside exempt
            _flag_sequential_loops(node.body, flag)
            continue
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if not _exempt_for_iter(node.iter):
                flag(node)  # outermost only: nested loops share the finding
            continue
        if isinstance(node, ast.While):
            flag(node)
            continue
        for sub in _stmt_lists(node):
            _flag_sequential_loops(sub, flag)


def _check_bound_contracts(module: ast.Module, path: str) -> list[LintDiagnostic]:
    """The RPR101..RPR105 pass over one parsed module."""
    diags: list[LintDiagnostic] = []
    norm = path.replace("\\", "/")

    def report(node: ast.AST, code: str, message: str) -> None:
        diags.append(
            LintDiagnostic(
                path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0) + 1,
                code,
                message,
            )
        )

    module_fns: dict[str, _FunctionNode] = {
        stmt.name: stmt
        for stmt in module.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    all_fns = [
        n for n in ast.walk(module) if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]

    # -- RPR104 + bound metadata collection --------------------------------
    bounded: dict[int, tuple[_FunctionNode, str, bool]] = {}  # id -> (fn, kind, polylog depth)
    for fn in all_fns:
        has_bound, call = _find_cost_bound(fn)
        if not has_bound:
            continue
        if call is None:
            report(fn, "RPR104", f"@cost_bound on {fn.name}() must be called with work=/depth=")
            continue
        variables = _literal_vars(call)
        kind = _bound_kind(call)
        polylog_depth = False
        for field in ("work", "depth"):
            node = _keyword(call, field)
            if node is None:
                report(call, "RPR104", f"@cost_bound on {fn.name}() is missing {field}=")
                continue
            if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
                continue  # computed expression: checked at import time instead
            if variables is None:
                continue  # non-literal vars=: cannot validate statically
            try:
                expr = parse_bound_expr(node.value, variables)
            except BoundParseError as exc:
                report(node, "RPR104", f"invalid {field} bound on {fn.name}(): {exc}")
                continue
            if field == "depth":
                polylog_depth = expr.is_polylog
        bounded[id(fn)] = (fn, kind, polylog_depth)

    # -- RPR101: exported algorithms must declare --------------------------
    if any(layer in norm for layer in _BOUND_REQUIRED_LAYERS):
        for name, fn in module_fns.items():
            if name.startswith("_"):
                continue
            positional = list(fn.args.posonlyargs) + list(fn.args.args)
            if not positional or positional[0].arg != "tree":
                continue
            if id(fn) not in bounded and not _find_cost_bound(fn)[0]:
                report(
                    fn,
                    "RPR101",
                    f"public algorithm {name}() declares no @cost_bound "
                    "(work/depth contract required in repro/core and repro/contraction)",
                )

    # -- RPR102: polylog depth forbids bare sequential loops ---------------
    for fn, kind, polylog_depth in bounded.values():
        if kind != "algorithm" or not polylog_depth:
            continue

        def flag(loop: ast.stmt, fn: _FunctionNode = fn) -> None:
            word = "while" if isinstance(loop, ast.While) else "for"
            report(
                loop,
                "RPR102",
                f"{fn.name}() declares polylog depth but runs a bare {word} "
                "loop; wrap it in a charged combinator (parallel_round, "
                ".rounds, log-bounded range) or noqa with a justification",
            )

        _flag_sequential_loops(fn.body, flag)

    # -- RPR103: recursion must syntactically shrink -----------------------
    for fn, _kind, _ in bounded.values():
        params = {
            a.arg
            for a in (
                list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
            )
        }
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_self_call = (isinstance(func, ast.Name) and func.id == fn.name) or (
                isinstance(func, ast.Attribute)
                and func.attr == fn.name
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            )
            if not is_self_call:
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            shrinks = any(
                not (
                    (isinstance(v, ast.Name) and v.id in params)
                    or isinstance(v, ast.Constant)
                )
                for v in values
            )
            if not shrinks:
                report(
                    node,
                    "RPR103",
                    f"recursive call to {fn.name}() passes only unmodified "
                    "parameters; recursion in a bounded function must shrink "
                    "its argument",
                )

    # -- RPR105: no cost escape through undeclared loopy helpers -----------
    loopy_unbound = {
        name
        for name, helper in module_fns.items()
        if not _find_cost_bound(helper)[0]
        and any(
            isinstance(x, (ast.For, ast.AsyncFor, ast.While)) for x in ast.walk(helper)
        )
    }
    for fn, kind, _ in bounded.values():
        if kind != "algorithm":
            continue
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in loopy_unbound
            ):
                report(
                    node,
                    "RPR105",
                    f"{fn.name}() calls {node.func.id}(), a loopy module "
                    "helper with no declared bound; annotate the helper with "
                    "@cost_bound or charge the cost inline",
                )
    return diags


def apply_noqa(source: str, diagnostics: list[LintDiagnostic]) -> list[LintDiagnostic]:
    """Filter findings through the noqa/noqa-module directives in ``source``.

    Shared by every static pass (repo lint, cost-bound lint, slab lint) so
    one suppression convention covers all RPR codes.  Returns the surviving
    diagnostics sorted by position.
    """
    suppressed = _noqa_lines(source)
    module_codes = _noqa_module_codes(source)
    out = []
    for d in diagnostics:
        if d.code in module_codes:
            continue
        codes = suppressed.get(d.line, ...)
        if codes is None:  # bare noqa
            continue
        if codes is not ... and d.code in codes:
            continue
        out.append(d)
    out.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return out


def lint_source(source: str, path: str = "<string>") -> list[LintDiagnostic]:
    """Lint one source string; returns the surviving (non-noqa) findings."""
    norm = path.replace("\\", "/")
    exempt_dynamic = any(layer in norm for layer in _EXEMPT_LAYERS)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                path, exc.lineno or 0, (exc.offset or 0), "RPR000", f"syntax error: {exc.msg}"
            )
        ]
    checker = _Checker(norm, exempt_dynamic)
    checker.visit(tree)
    checker.finalize()
    checker.diagnostics.extend(_check_bound_contracts(tree, norm))
    return apply_noqa(source, checker.diagnostics)


def lint_file(path: str | Path) -> list[LintDiagnostic]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths: list[str | Path] | list[Path]) -> list[LintDiagnostic]:
    """Lint files and directory trees (``*.py``, recursively)."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    out: list[LintDiagnostic] = []
    for f in files:
        out.extend(lint_file(f))
    return out
