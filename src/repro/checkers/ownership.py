"""Ownership partitions for shared slabs: the ``@owns`` layer.

Every parallel flat-array kernel in this package follows the same
discipline the GBBS/ParlayLib codebases enforce by convention: a worker
may write only its *own* contiguous partition ``slab[lo:hi]`` of a shared
slab, and distinct workers' partitions are disjoint.  That is exactly the
exclusivity argument of Lemma 4.1 restated over flat arrays -- and it is
invisible to Python.  ``@owns`` makes it a machine-readable declaration::

    @owns("parents[lo:hi]", "status[lo:hi]")
    def merge_window(parents, status, lo, hi): ...

so three independent verifiers can hold the kernel to it:

* the static pass (:mod:`repro.checkers.parsafe`, codes RPR302/RPR308)
  requires the annotation on shared-slab writers inside parallel regions;
* the shadow round-race detector receives each declared window through
  :func:`repro.checkers.access.record_slab_write`, so two same-round
  tasks whose declared partitions *overlap* raise a
  :class:`~repro.errors.RaceConditionError` even before any element-level
  write is observed;
* checked mode snapshots the slab regions *outside* the declared windows
  and raises :class:`~repro.errors.OwnershipError` if the call mutated
  any of them -- the out-of-partition write that breaks disjointness.

Window grammar
--------------
Each positional spec is a string of the form ``"name"``, ``"name[:]"``
(both meaning the whole slab), or ``"name[lo:hi]"`` where ``name`` is a
(possibly dotted) parameter or closure variable of the function and each
bound is an integer literal, a parameter/closure variable holding an int
optionally offset by a constant (``"status[cur:cur+1]"``), or empty
(``"name[lo:]"`` / ``"name[:hi]"``).  Closure variables matter:
the canonical pool kernel is a closure over the output slab::

    def fill(lo: int, hi: int) -> None:  # captures ``out``
        out[lo:hi] = ...

    # inside the enclosing function:
    fill = owns("out[lo:hi]")(fill)

Checked vs. zero-cost mode
--------------------------
Mirrors :mod:`repro.checkers.contracts`: the decision is made at
decoration time.  When ``REPRO_OWNERSHIP_CHECKS`` is truthy the decorated
function is replaced by a validating wrapper; otherwise the decorator
attaches metadata only (``fn.__owns__`` plus an :data:`OWNS_REGISTRY`
entry, with eager name validation) and returns the function unchanged.
Tests and the interleaving sanitizer build an explicit wrapper with
:func:`checked_owns` regardless of the mode.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from array import array
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any, TypeVar

import numpy as np

from repro.checkers import access as _access
from repro.errors import OwnershipError

__all__ = [
    "WindowSpec",
    "OwnsDecl",
    "owns",
    "checked_owns",
    "ownership_enabled",
    "get_owns",
    "OWNS_REGISTRY",
    "ENV_FLAG",
]

#: Environment variable that switches decoration into checked mode.
ENV_FLAG = "REPRO_OWNERSHIP_CHECKS"

_TRUTHY = ("1", "true", "on", "yes")

_ENABLED = os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY

_MISSING = object()

_SPEC_RE = re.compile(
    r"^(?P<target>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)"
    r"(?:\[(?P<window>[^\]]*)\])?$"
)
_BOUND_RE = re.compile(
    r"^(?:-?\d+|(?P<base>[A-Za-z_][A-Za-z0-9_]*)(?:\s*(?P<sign>[+-])\s*(?P<off>\d+))?)$"
)


def ownership_enabled() -> bool:
    """Whether decoration currently installs checking wrappers."""
    return _ENABLED


@dataclass(frozen=True)
class WindowSpec:
    """One parsed ownership window ``target[lo:hi]``.

    ``lo``/``hi`` are ``None`` (unbounded), an ``int`` literal, or the
    name of a parameter/closure variable resolved at call time.
    """

    target: str
    lo: int | str | None
    hi: int | str | None

    def describe(self) -> str:
        lo = "" if self.lo is None else str(self.lo)
        hi = "" if self.hi is None else str(self.hi)
        return f"{self.target}[{lo}:{hi}]"

    def names(self) -> tuple[str, ...]:
        """Every variable name the spec references (head names only)."""
        out = [self.target.partition(".")[0]]
        for bound in (self.lo, self.hi):
            if isinstance(bound, str):
                match = _BOUND_RE.match(bound)
                base = match.group("base") if match is not None else None
                out.append(base if base is not None else bound)
        return tuple(out)


@dataclass(frozen=True)
class OwnsDecl:
    """The full ownership declaration attached to one function."""

    name: str  #: registry key, ``module.qualname``
    windows: tuple[WindowSpec, ...]

    def describe(self) -> str:
        return ", ".join(w.describe() for w in self.windows)


#: Central registry: ``module.qualname`` -> :class:`OwnsDecl`.
OWNS_REGISTRY: dict[str, OwnsDecl] = {}

_F = TypeVar("_F", bound=Callable[..., Any])


def _parse_spec(fn_name: str, spec: str) -> WindowSpec:
    match = _SPEC_RE.match(spec.strip())
    if match is None:
        raise OwnershipError(
            f"@owns on {fn_name}: malformed window spec {spec!r} "
            f"(expected 'name', 'name[:]', or 'name[lo:hi]')"
        )
    target = match.group("target")
    window = match.group("window")
    if window is None or window.strip() == ":":
        return WindowSpec(target, None, None)
    if ":" not in window:
        raise OwnershipError(
            f"@owns on {fn_name}: window spec {spec!r} must use slice "
            f"syntax (a bare index owns a single cell; write '[i:j]')"
        )
    lo_text, _, hi_text = window.partition(":")
    bounds: list[int | str | None] = []
    for text in (lo_text, hi_text):
        text = text.strip()
        if not text:
            bounds.append(None)
            continue
        if not _BOUND_RE.match(text):
            raise OwnershipError(
                f"@owns on {fn_name}: window bound {text!r} in {spec!r} is "
                f"not an integer literal, a variable name, or 'name+k'/'name-k'"
            )
        bounds.append(int(text) if re.match(r"^-?\d+$", text) else text)
    return WindowSpec(target, bounds[0], bounds[1])


def _closure_vars(fn: Callable[..., Any]) -> Mapping[str, Any]:
    """The resolved closure cells of ``fn`` (empty for plain functions)."""
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is None or closure is None:
        return {}
    out: dict[str, Any] = {}
    for name, cell in zip(code.co_freevars, closure):
        try:
            out[name] = cell.cell_contents
        except ValueError:  # pragma: no cover - unfilled cell
            continue
    return out


def _validate_names(fn: Callable[..., Any], decl: OwnsDecl) -> None:
    # Resolved from the code object, not inspect.signature: closures get
    # decorated per enclosing call, so this runs on warm paths.
    code = getattr(fn, "__code__", None)
    if code is None:
        params = set(inspect.signature(fn).parameters)
        free: set[str] = set()
    else:
        n_params = code.co_argcount + code.co_kwonlyargcount
        params = set(code.co_varnames[:n_params])
        free = set(code.co_freevars)
    for window in decl.windows:
        for name in window.names():
            if name not in params and name not in free:
                raise OwnershipError(
                    f"@owns on {decl.name} references {name!r} (in "
                    f"{window.describe()!r}) but the function has neither a "
                    f"parameter nor a closure variable of that name"
                )


def _resolve_name(name: str, namespace: Mapping[str, Any]) -> Any:
    head, _, rest = name.partition(".")
    if head not in namespace:
        return _MISSING
    value = namespace[head]
    if rest:
        for part in rest.split("."):
            try:
                value = getattr(value, part)
            except AttributeError:
                raise OwnershipError(
                    f"@owns references {name!r} but {head!r} has no "
                    f"attribute path {rest!r}"
                ) from None
    return value


def _resolve_bound(
    fn_name: str, spec: WindowSpec, bound: int | str | None,
    namespace: Mapping[str, Any], default: int,
) -> int:
    if bound is None:
        return default
    if isinstance(bound, int):
        return bound
    match = _BOUND_RE.match(bound)
    base = match.group("base") if match is not None else None
    if base is None:  # pragma: no cover - rejected at parse time
        raise OwnershipError(f"{fn_name}: unresolvable window bound {bound!r}")
    value = _resolve_name(base, namespace)
    if value is _MISSING or not isinstance(value, (int, np.integer)):
        raise OwnershipError(
            f"{fn_name}: window bound {bound!r} in {spec.describe()!r} did "
            f"not resolve to an integer (got {type(value).__name__})"
        )
    offset = 0
    assert match is not None
    if match.group("off"):
        offset = int(match.group("off"))
        if match.group("sign") == "-":
            offset = -offset
    return int(value) + offset


def _slab_len(value: Any) -> int | None:
    if isinstance(value, np.ndarray) and value.ndim >= 1:
        return int(value.shape[0])
    if isinstance(value, (array, list)):
        return len(value)
    return None


def _snapshot_outside(value: Any, lo: int, hi: int) -> Any:
    """Copy of the slab regions outside ``[lo, hi)`` for later comparison."""
    if isinstance(value, np.ndarray):
        return (value[:lo].copy(), value[hi:].copy())
    return (list(value[:lo]), list(value[hi:]))


def _region_equal(after: np.ndarray, before: np.ndarray) -> bool:
    # equal_nan: the outside region of an np.empty output slab may hold
    # NaNs before the kernel fills its own partition.
    if after.dtype.kind in "fc":
        return bool(np.array_equal(after, before, equal_nan=True))
    return bool(np.array_equal(after, before))


def _changed_outside(value: Any, snapshot: Any, lo: int, hi: int) -> bool:
    before_lo, before_hi = snapshot
    if isinstance(value, np.ndarray):
        return not (
            _region_equal(value[:lo], before_lo)
            and _region_equal(value[hi:], before_hi)
        )
    return list(value[:lo]) != before_lo or list(value[hi:]) != before_hi


def _make_checked(fn: Callable[..., Any], decl: OwnsDecl) -> Callable[..., Any]:
    _validate_names(fn, decl)
    sig = inspect.signature(fn)
    fn_label = decl.name

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        bound = sig.bind(*args, **kwargs)
        bound.apply_defaults()
        namespace: dict[str, Any] = dict(_closure_vars(fn))
        namespace.update(bound.arguments)
        snapshots: list[tuple[WindowSpec, Any, int, int, Any]] = []
        for window in decl.windows:
            value = _resolve_name(window.target, namespace)
            if value is _MISSING or value is None:
                continue
            n = _slab_len(value)
            if n is None:
                continue
            lo = max(0, _resolve_bound(fn_label, window, window.lo, namespace, 0))
            hi = min(n, _resolve_bound(fn_label, window, window.hi, namespace, n))
            if hi < lo:
                raise OwnershipError(
                    f"{fn_label}: window {window.describe()!r} resolved to the "
                    f"inverted range [{lo}, {hi})"
                )
            # Report the declared partition to the shadow race detector:
            # overlapping same-round partitions are a race by themselves.
            _access.record_slab_write(value, lo, hi)
            snapshots.append((window, value, lo, hi, _snapshot_outside(value, lo, hi)))
        result = fn(*args, **kwargs)
        for window, value, lo, hi, snapshot in snapshots:
            if _changed_outside(value, snapshot, lo, hi):
                raise OwnershipError(
                    f"{fn_label}: wrote {window.target!r} outside its declared "
                    f"ownership window {window.target}[{lo}:{hi}] -- worker "
                    f"partitions must be disjoint (Lemma 4.1 over slabs)"
                )
        return result

    wrapper.__owns_checked__ = True  # type: ignore[attr-defined]
    return wrapper


def owns(*specs: str) -> Callable[[_F], _F]:
    """Declare the write-ownership partition of a parallel kernel.

    Each ``spec`` is ``"name"``, ``"name[:]"``, or ``"name[lo:hi]"`` (see
    the module docstring for the grammar).  In zero-cost mode the
    decorator attaches ``fn.__owns__`` metadata, registers the declaration
    in :data:`OWNS_REGISTRY`, eagerly validates every referenced name, and
    returns the function unchanged.  In checked mode
    (``REPRO_OWNERSHIP_CHECKS=1``) calls additionally report the resolved
    windows to the shadow race detector and verify that no slab cell
    outside a declared window was mutated.
    """
    if not specs:
        raise OwnershipError("@owns requires at least one window spec")

    def decorate(fn: _F) -> _F:
        name = f"{fn.__module__}.{fn.__qualname__}"
        decl = OwnsDecl(name, tuple(_parse_spec(name, spec) for spec in specs))
        fn.__owns__ = decl  # type: ignore[attr-defined]
        OWNS_REGISTRY[name] = decl
        if _ENABLED:
            return _make_checked(fn, decl)  # type: ignore[return-value]
        _validate_names(fn, decl)
        return fn

    return decorate


def checked_owns(fn: Callable[..., Any]) -> Callable[..., Any]:
    """A validating wrapper for ``fn``, regardless of the global mode.

    ``fn`` must carry ``__owns__`` (i.e. be decorated); a function that is
    already a checking wrapper is returned as-is.
    """
    if getattr(fn, "__owns_checked__", False):
        return fn
    decl = getattr(fn, "__owns__", None)
    if decl is None:
        raise OwnershipError(
            f"{getattr(fn, '__qualname__', fn)!r} has no @owns declaration to check"
        )
    return _make_checked(fn, decl)


def get_owns(target: Callable[..., Any] | str) -> OwnsDecl | None:
    """Look up the declared ownership of a function (or registry key)."""
    if isinstance(target, str):
        return OWNS_REGISTRY.get(target)
    return getattr(target, "__owns__", None)
