"""Shadow access-set recording for the round-race detector.

This is the TSan analog for the package's *simulated* parallelism: a round
of tasks that the :class:`~repro.runtime.scheduler.Scheduler` executes
sequentially claims to be a legal linearization of a genuinely parallel
round.  That claim is only true if the tasks are independent -- no task
may write a memory cell another task of the same round reads or writes
(commutative atomic read-modify-writes excepted).  Instrumented structures
(:class:`~repro.structures.unionfind.UnionFind`, the meldable heaps,
:class:`~repro.trees.wtree.WeightedTree`) report their accesses here;
algorithm code annotates accesses to plain arrays/lists with
:func:`record_read` / :func:`record_write` / :func:`record_atomic`.

Recording is activated by installing a :class:`RoundRecorder` (the
``Scheduler(race_check=True)`` flag and the ``CostTracker(race_check=True)``
hook both do this).  When no recorder is installed every hook is a cheap
no-op, so the instrumentation can stay in production paths.

Cells
-----
A *cell* is a ``(provenance label, field)`` pair, e.g.
``("UnionFind#0", ("parent", 7))`` or ``("status", 12)``.  Provenance
labels are assigned per recorder: registered names via :func:`register`,
otherwise ``ClassName#k`` in first-touch order (stable for a fixed task
schedule, which is what the reports need).

Exemptions
----------
* Accesses made while no task segment is open (the sequential orchestrator
  between rounds) are not recorded.
* Accesses inside a :func:`commit_phase` block are exempt -- the declared
  escape hatch for sanctioned shared-state commits.
* Pure statistics counters (``UnionFind.finds`` and friends) are never
  recorded; a real implementation keeps them in thread-local or atomic
  counters.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

from repro.errors import RaceCheckError

__all__ = [
    "READ",
    "WRITE",
    "ATOMIC",
    "Cell",
    "SlabWindow",
    "TaskAccessLog",
    "RoundRecorder",
    "RECORDER",
    "install",
    "uninstall",
    "recording",
    "record_read",
    "record_write",
    "record_atomic",
    "record_slab_read",
    "record_slab_write",
    "register",
    "commit_phase",
]

READ = "read"
WRITE = "write"
ATOMIC = "atomic"

#: A shadow memory cell: ``(provenance label, field)``.
Cell = tuple[str, Any]

#: A half-open index window of one slab: ``(provenance label, lo, hi)``.
#: Windows generalize point cells to the flat-array backends, where a
#: worker's footprint is a contiguous partition ``parents[lo:hi]`` rather
#: than an enumerable set of cells (see :mod:`repro.checkers.ownership`).
SlabWindow = tuple[str, int, int]


class TaskAccessLog:
    """Read/write/atomic shadow sets of one task of one round."""

    __slots__ = ("index", "label", "reads", "writes", "atomics", "slab_reads", "slab_writes")

    def __init__(self, index: int, label: str | None = None) -> None:
        self.index = index
        self.label = label if label is not None else f"task {index}"
        self.reads: set[Cell] = set()
        self.writes: set[Cell] = set()
        self.atomics: set[Cell] = set()
        self.slab_reads: set[SlabWindow] = set()
        self.slab_writes: set[SlabWindow] = set()

    def cells(self) -> set[Cell]:
        """Every cell this task touched, regardless of access kind."""
        return self.reads | self.writes | self.atomics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskAccessLog({self.label}: {len(self.reads)}r "
            f"{len(self.writes)}w {len(self.atomics)}a "
            f"{len(self.slab_reads)}sr {len(self.slab_writes)}sw)"
        )


class RoundRecorder:
    """Collects per-task shadow access sets for one parallel round.

    Task segments are opened with :meth:`begin_task` (which closes any
    previously open segment) and closed with :meth:`end_task`.  Accesses
    reported while no segment is open, or inside a :func:`commit_phase`
    block, are not recorded.
    """

    __slots__ = ("logs", "where", "_current", "_commit_depth", "_names", "_keepalive", "_counts")

    def __init__(self, where: str | None = None) -> None:
        self.logs: list[TaskAccessLog] = []
        self.where = where
        self._current: TaskAccessLog | None = None
        self._commit_depth = 0
        # id() -> label; _keepalive pins the objects so ids stay unique for
        # the (short) lifetime of the recorder.
        self._names: dict[int, str] = {}
        self._keepalive: list[object] = []
        self._counts: dict[str, int] = {}

    # -- task segmentation -------------------------------------------------
    def begin_task(self, index: int | None = None, label: str | None = None) -> TaskAccessLog:
        """Open a new task segment (closing the current one, if any)."""
        if index is None:
            index = len(self.logs)
        log = TaskAccessLog(index, label)
        self.logs.append(log)
        self._current = log
        return log

    def end_task(self) -> None:
        """Close the currently open task segment (no-op if none is open)."""
        self._current = None

    def drop_open_task(self) -> None:
        """Discard the currently open segment entirely (commit tails)."""
        if self._current is not None:
            self.logs.remove(self._current)
            self._current = None

    # -- recording ---------------------------------------------------------
    def label_for(self, obj: object) -> str:
        """Provenance label of ``obj`` (strings label themselves)."""
        if isinstance(obj, str):
            return obj
        key = id(obj)
        name = self._names.get(key)
        if name is None:
            cls = type(obj).__name__
            k = self._counts.get(cls, 0)
            self._counts[cls] = k + 1
            name = f"{cls}#{k}"
            self._names[key] = name
            self._keepalive.append(obj)
        return name

    def record(self, obj: object, field: Any, kind: str) -> None:
        cur = self._current
        if cur is None or self._commit_depth:
            return
        cell = (self.label_for(obj), field)
        if kind == READ:
            cur.reads.add(cell)
        elif kind == WRITE:
            cur.writes.add(cell)
        else:
            cur.atomics.add(cell)

    def record_window(self, obj: object, lo: int, hi: int, kind: str) -> None:
        """Record an access to the half-open slab window ``obj[lo:hi]``."""
        cur = self._current
        if cur is None or self._commit_depth or hi <= lo:
            return
        window = (self.label_for(obj), int(lo), int(hi))
        if kind == READ:
            cur.slab_reads.add(window)
        else:
            cur.slab_writes.add(window)


#: The currently installed recorder, or ``None``.  Instrumented code reads
#: this global inline (``if _access.RECORDER is not None: ...``) so the
#: disabled path costs one attribute load.
RECORDER: RoundRecorder | None = None


def install(recorder: RoundRecorder) -> None:
    """Make ``recorder`` the active recorder; rejects nested installs."""
    global RECORDER
    if RECORDER is not None:
        raise RaceCheckError(
            "a race recorder is already installed; nested race-checked "
            "rounds must record into the outer round's open task"
        )
    RECORDER = recorder


def uninstall(recorder: RoundRecorder) -> None:
    """Remove ``recorder``; raises if it is not the installed one."""
    global RECORDER
    if RECORDER is not recorder:
        raise RaceCheckError("uninstall of a recorder that is not installed")
    RECORDER = None


def recording() -> bool:
    """True when a recorder is installed and a task segment is open."""
    rec = RECORDER
    return rec is not None and rec._current is not None


def register(obj: object, name: str) -> None:
    """Give ``obj`` a stable provenance ``name`` in the active recorder."""
    rec = RECORDER
    if rec is not None and not isinstance(obj, str):
        rec.label_for(obj)  # ensure keepalive
        rec._names[id(obj)] = name


# -- hot-path hooks --------------------------------------------------------
def record_read(obj: object, field: Any = "value") -> None:
    """Record a shared read of ``obj[field]`` by the open task, if any."""
    rec = RECORDER
    if rec is not None:
        rec.record(obj, field, READ)


def record_write(obj: object, field: Any = "value") -> None:
    """Record a plain shared write of ``obj[field]`` by the open task."""
    rec = RECORDER
    if rec is not None:
        rec.record(obj, field, WRITE)


def record_atomic(obj: object, field: Any = "value") -> None:
    """Record a commutative atomic RMW (CAS / fetch-and-add) of a cell.

    Atomic accesses to the same cell from different tasks do not conflict
    with each other; mixing an atomic with a plain read or write does.
    """
    rec = RECORDER
    if rec is not None:
        rec.record(obj, field, ATOMIC)


def record_slab_read(obj: object, lo: int, hi: int) -> None:
    """Record a shared read of the slab window ``obj[lo:hi]`` (half-open)."""
    rec = RECORDER
    if rec is not None:
        rec.record_window(obj, lo, hi, READ)


def record_slab_write(obj: object, lo: int, hi: int) -> None:
    """Record a plain shared write of the slab window ``obj[lo:hi]``.

    ``@owns``-decorated kernels report their declared partitions through
    this hook automatically (see :mod:`repro.checkers.ownership`), so two
    same-round tasks whose declared windows overlap raise a round race
    even before any element-level write is observed.
    """
    rec = RECORDER
    if rec is not None:
        rec.record_window(obj, lo, hi, WRITE)


@contextmanager
def commit_phase() -> Iterator[None]:
    """Declared commit phase: accesses inside the block are exempt.

    The sanctioned escape hatch for shared-state mutation inside a task
    body -- use only for commits that a real implementation would perform
    under a barrier or with a dedicated combining structure.
    """
    rec = RECORDER
    if rec is None:
        yield
        return
    rec._commit_depth += 1
    try:
        yield
    finally:
        rec._commit_depth -= 1
