"""Slab & effect static analysis (codes RPR201..RPR209).

The flat-array ("slab") backends promise three things Python never
checks: every array has a *deliberate* dtype, hot paths never fall back
to per-element Python objects, and kernels are *pure* over their slabs --
no ambient tracker/recorder effects, no host I/O -- so they stay
process-portable for the shared-memory work of ROADMAP item 4.  This
pass walks the AST of the backend layers with a small per-function
dataflow (which local names hold ndarrays, and of which dtype) and flags
the violations that have historically cost either 2x slab memory or a
silent O(n^2):

* **RPR201** (dtype indiscipline) -- an allocating NumPy constructor
  (``array``/``zeros``/``ones``/``empty``/``full``/``arange``/
  ``fromiter``/``frombuffer``) without an explicit ``dtype``.  The
  default dtype depends on the platform and the input's Python types, so
  an unannotated allocation is a promotion bug waiting to happen.
  ``asarray``/``ascontiguousarray``/``*_like`` are exempt: they inherit
  or normalize on purpose.
* **RPR202** (copy churn) -- ``.astype(...)`` inside a loop: one fresh
  copy of the slab per iteration.  Hoist the conversion or allocate the
  right dtype up front.
* **RPR203** (copy-vs-view hazard) -- mutating through a fancy/boolean
  index as if it were a view: ``a[mask][idx] = v`` silently writes into
  a temporary copy, as do in-place methods (``.sort()``/``.fill()``/...)
  called on a fancy-indexed expression.
* **RPR204** (quadratic growth) -- ``np.append``/``np.concatenate``/
  ``hstack``/``vstack``/``column_stack``/``insert``/``delete`` inside a
  loop: each call copies everything accumulated so far.
* **RPR205** (object-layer leak) -- ``.tolist()`` anywhere in a slab
  module, or a Python ``for`` iterating an ndarray element-by-element
  (directly or through ``zip``/``enumerate``): every element becomes a
  boxed Python object.
* **RPR206** (silent promotion) -- arithmetic between two tracked arrays
  of *different* known dtypes; the result silently takes the wider
  dtype.  Boolean operands are exempt (mask arithmetic is idiomatic).
* **RPR207** (effect purity) -- a ``@slab_contract`` kernel touching the
  instrumentation surface (``active_tracker``, ``record_read``/
  ``record_write``/``record_atomic``/``commit_phase``, the shadow
  ``RECORDER``) outside a *delegation guard*.  A delegation guard is an
  ``if`` whose body is exactly one ``return`` -- the "when instrumented,
  delegate to the reference twin" idiom -- and is the one place a fast
  kernel may look at ambient state.
* **RPR208** (host effects) -- ``global``/``nonlocal`` statements and
  ``print``/``open``/``input`` calls inside a ``@slab_contract`` kernel;
  both break the pure-function-over-slabs model a worker process needs.
* **RPR209** (structural) -- the contract must exist: a public
  module-level ``*_fast`` function taking ``tree`` first, or a public
  method of a ``*Pool`` class, must carry ``@slab_contract`` -- the
  mirror of RPR101's ``@cost_bound`` requirement.

Suppression reuses the shared noqa machinery of
:mod:`repro.checkers.lint` (``# noqa: RPR20x`` on the logical line,
``# noqa-module: RPR20x`` file-wide); run it via
``python -m repro check --slabs``.

Like every static pass, this one trades soundness for signal: the
dataflow is local (per function, names only), so aliasing through
attributes or containers is invisible.  That is the right trade for slab
kernels, whose style the other rules already force toward flat locals.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.checkers.lint import LintDiagnostic, _ImportMap, apply_noqa

__all__ = [
    "SLAB_CODES",
    "DEFAULT_SLAB_TARGETS",
    "slab_lint_source",
    "slab_lint_file",
    "slab_lint_paths",
    "default_slab_paths",
]

SLAB_CODES = (
    "RPR201",
    "RPR202",
    "RPR203",
    "RPR204",
    "RPR205",
    "RPR206",
    "RPR207",
    "RPR208",
    "RPR209",
)

#: The slab layers swept by ``repro check --slabs`` when no explicit
#: paths are given; relative to the installed ``repro`` package root.
DEFAULT_SLAB_TARGETS = (
    "core/fast.py",
    "core/fast_contraction.py",
    "core/fast_merge.py",
    "contraction/fast.py",
    "structures/heap_pool.py",
    "primitives",
    "bench/kernels.py",
    "trees/boruvka_fast.py",
    "io/edgefile.py",
)

#: NumPy constructors that *allocate with a defaulted dtype* (RPR201).
_ALLOC_FNS = {
    "array",
    "zeros",
    "ones",
    "empty",
    "full",
    "arange",
    "fromiter",
    "frombuffer",
}

#: Positional index at which these constructors accept dtype (so e.g.
#: ``np.full(n, -1, np.int64)`` is explicit without the keyword).
_ALLOC_DTYPE_POS = {"full": 2, "fromiter": 1, "frombuffer": 1}

#: Constructors that inherit/normalize dtype by design -- never flagged,
#: but tracked for dataflow.
_INHERIT_FNS = {
    "asarray",
    "ascontiguousarray",
    "asfortranarray",
    "copy",
    "zeros_like",
    "ones_like",
    "empty_like",
    "full_like",
}

#: Array-growing calls that are O(accumulated) per call (RPR204).
_CONCAT_FNS = {
    "append",
    "concatenate",
    "hstack",
    "vstack",
    "column_stack",
    "insert",
    "delete",
}

#: NumPy producers whose result dtype is a platform-width integer.
_INT_PRODUCERS = {
    "flatnonzero",
    "argsort",
    "argmin",
    "argmax",
    "searchsorted",
    "bincount",
    "arange",
}

#: Other calls known to return ndarrays (dtype untracked).
_ARRAY_PRODUCERS = _INT_PRODUCERS | _INHERIT_FNS | _ALLOC_FNS | _CONCAT_FNS | {
    "where",
    "sort",
    "unique",
    "cumsum",
    "diff",
    "repeat",
    "minimum",
    "maximum",
    "sqrt",
    "rint",
    "abs",
}

#: ndarray methods that mutate in place (RPR203 on fancy-indexed bases).
_INPLACE_METHODS = {"sort", "fill", "partition", "put", "setfield", "byteswap"}

#: The instrumentation surface a pure slab kernel must not touch (RPR207).
_EFFECT_NAMES = {
    "active_tracker",
    "record_read",
    "record_write",
    "record_atomic",
    "commit_phase",
}

_EFFECT_ATTRS = {"RECORDER"}

#: Host-effect builtins forbidden inside contracts (RPR208).
_HOST_EFFECT_CALLS = {"print", "open", "input"}

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _has_slab_contract(node: _FunctionNode) -> bool:
    """Whether ``node`` carries a ``@slab_contract(...)`` decorator."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id
        else:
            continue
        if name == "slab_contract":
            return True
    return False


def _dtype_str(node: ast.expr) -> str | None:
    """Normalize a ``dtype=`` argument expression to a comparison string."""
    if isinstance(node, ast.Attribute):
        return {"bool_": "bool", "intp": "int64"}.get(node.attr, node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return {"int": "int64", "float": "float64", "bool": "bool"}.get(node.id)
    return None


def _dtype_kwarg(call: ast.Call) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


class _Scope:
    """Per-function dataflow: which names hold ndarrays, of which dtype."""

    def __init__(self) -> None:
        self.arrays: set[str] = set()
        self.dtypes: dict[str, str] = {}

    def track(self, name: str, dtype: str | None) -> None:
        self.arrays.add(name)
        if dtype is not None:
            self.dtypes[name] = dtype
        else:
            self.dtypes.pop(name, None)

    def forget(self, name: str) -> None:
        self.arrays.discard(name)
        self.dtypes.pop(name, None)


class _SlabChecker(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.imports = _ImportMap()
        self.diagnostics: list[LintDiagnostic] = []
        self.loop_depth = 0
        self.scope = _Scope()
        #: Innermost enclosing ``@slab_contract`` function name, if any.
        self.contract: str | None = None
        #: Node ids inside delegation guards of the current contract fn.
        self.exempt: set[int] = set()

    # -- helpers -----------------------------------------------------------
    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.diagnostics.append(
            LintDiagnostic(
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0) + 1,
                code,
                message,
            )
        )

    def _numpy_tail(self, func: ast.expr) -> str | None:
        """``"zeros"`` for a call resolving into the numpy namespace."""
        dotted = self.imports.resolve_call(func)
        if dotted is None:
            return None
        if dotted.startswith("numpy."):
            return dotted.rsplit(".", 1)[-1]
        return None

    def _is_tracked(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in self.scope.arrays

    def _tracked_dtype(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return self.scope.dtypes.get(node.id)
        return None

    def _is_fancy_index(self, index: ast.expr) -> bool:
        """Indices that produce a *copy* when subscripted (RPR203)."""
        if isinstance(index, (ast.Compare, ast.BoolOp, ast.List)):
            return True
        if isinstance(index, ast.UnaryOp) and isinstance(index.op, ast.Invert):
            return True
        if isinstance(index, ast.Call):
            return True  # e.g. np.flatnonzero(...), boolean builders
        if self._is_tracked(index):
            return True  # indexing with an index/mask array
        return False

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit_import_from(node)
        self.generic_visit(node)

    # -- functions: contract context + loop-depth isolation ----------------
    def _enter_function(self, node: _FunctionNode) -> None:
        saved = (self.loop_depth, self.scope, self.contract, self.exempt)
        self.loop_depth = 0
        self.scope = _Scope()
        if _has_slab_contract(node):
            self.contract = node.name
            exempt: set[int] = set()
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.If)
                    and len(sub.body) == 1
                    and isinstance(sub.body[0], ast.Return)
                    and not sub.orelse
                ):
                    # Delegation guard: "if instrumented: return reference(...)".
                    for inner in ast.walk(sub):
                        exempt.add(id(inner))
            self.exempt = exempt
        # Nested defs inherit the enclosing contract context: helpers
        # called from a contract kernel share its purity obligations.
        self.generic_visit(node)
        self.loop_depth, self.scope, self.contract, self.exempt = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    # -- loops: depth tracking + RPR205 iteration check --------------------
    def _check_for_iter(self, node: ast.For | ast.AsyncFor) -> None:
        iters: list[ast.expr] = [node.iter]
        if isinstance(node.iter, ast.Call) and isinstance(node.iter.func, ast.Name):
            if node.iter.func.id in ("zip", "enumerate", "reversed"):
                iters = list(node.iter.args)
        for candidate in iters:
            if self._is_tracked(candidate):
                self.report(
                    node,
                    "RPR205",
                    f"per-element Python for over ndarray {candidate.id!r}; "  # type: ignore[attr-defined]
                    "each element is boxed -- vectorize or justify with noqa",
                )
                return

    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_for_iter(node)
            # The iterable is evaluated once, *outside* the loop body.
            self.visit(node.iter)
            if isinstance(node.target, ast.Name):
                self.scope.forget(node.target.id)
            self.loop_depth += 1
        else:
            # A while test re-evaluates every iteration: it is loop body.
            self.loop_depth += 1
            self.visit(node.test)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self.loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # -- calls: RPR201/202/203/204/205/207/208 ------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        tail = self._numpy_tail(node.func)
        if tail is not None:
            if tail in _ALLOC_FNS and _dtype_kwarg(node) is None:
                pos = _ALLOC_DTYPE_POS.get(tail)
                if pos is None or len(node.args) <= pos:
                    self.report(
                        node,
                        "RPR201",
                        f"np.{tail}(...) without explicit dtype=; slab "
                        "allocations must pin their dtype",
                    )
            if tail in _CONCAT_FNS and self.loop_depth > 0:
                self.report(
                    node,
                    "RPR204",
                    f"np.{tail}(...) inside a loop copies the accumulated "
                    "array every iteration; preallocate or batch instead",
                )
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "astype" and self.loop_depth > 0:
                self.report(
                    node,
                    "RPR202",
                    ".astype(...) inside a loop allocates a converted copy "
                    "per iteration; hoist the conversion out of the loop",
                )
            if attr == "tolist":
                self.report(
                    node,
                    "RPR205",
                    ".tolist() boxes every element into a Python object; "
                    "keep slab data in ndarrays (noqa when host handoff is "
                    "the point)",
                )
            if (
                attr in _INPLACE_METHODS
                and isinstance(node.func.value, ast.Subscript)
                and self._is_fancy_index(node.func.value.slice)
            ):
                self.report(
                    node,
                    "RPR203",
                    f".{attr}() on a fancy-indexed expression mutates a "
                    "temporary copy, not the slab",
                )
            if attr in _EFFECT_NAMES and self.contract is not None and id(node) not in self.exempt:
                self._report_effect(node, attr)
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _EFFECT_NAMES and self.contract is not None and id(node) not in self.exempt:
                self._report_effect(node, name)
            if name in _HOST_EFFECT_CALLS and self.contract is not None:
                self.report(
                    node,
                    "RPR208",
                    f"{name}() inside @slab_contract kernel "
                    f"{self.contract!r}; slab kernels must be free of host "
                    "I/O effects",
                )
        self.generic_visit(node)

    def _report_effect(self, node: ast.AST, surface: str) -> None:
        self.report(
            node,
            "RPR207",
            f"@slab_contract kernel {self.contract!r} touches effect "
            f"surface {surface!r} outside a delegation guard; fast kernels "
            "must be pure over their slabs",
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr in _EFFECT_ATTRS
            and self.contract is not None
            and id(node) not in self.exempt
        ):
            self._report_effect(node, node.attr)
        self.generic_visit(node)

    # -- RPR208: scope escapes ---------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        if self.contract is not None:
            self.report(
                node,
                "RPR208",
                f"global statement inside @slab_contract kernel "
                f"{self.contract!r}; kernels must not write module state",
            )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        if self.contract is not None:
            self.report(
                node,
                "RPR208",
                f"nonlocal statement inside @slab_contract kernel "
                f"{self.contract!r}; kernels must not capture mutable "
                "closure state",
            )

    # -- RPR206: mixed-dtype arithmetic -------------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)
        ):
            left = self._tracked_dtype(node.left)
            right = self._tracked_dtype(node.right)
            if (
                left is not None
                and right is not None
                and left != right
                and "bool" not in (left, right)
            ):
                self.report(
                    node,
                    "RPR206",
                    f"arithmetic between arrays of dtype {left!r} and "
                    f"{right!r} silently promotes; convert explicitly",
                )
        self.generic_visit(node)

    # -- assignments: RPR203 store form + dataflow ---------------------------
    def _infer(self, value: ast.expr) -> tuple[bool, str | None]:
        """``(is_array, dtype)`` for an assigned value, best-effort."""
        if isinstance(value, ast.Name):
            return value.id in self.scope.arrays, self.scope.dtypes.get(value.id)
        if isinstance(value, ast.Call):
            tail = self._numpy_tail(value.func)
            if tail is not None and tail in _ARRAY_PRODUCERS:
                kw = _dtype_kwarg(value)
                if kw is not None:
                    return True, _dtype_str(kw)
                pos = _ALLOC_DTYPE_POS.get(tail)
                if pos is not None and len(value.args) > pos:
                    return True, _dtype_str(value.args[pos])
                if tail in _INT_PRODUCERS:
                    return True, "int64"
                if tail in _INHERIT_FNS and value.args:
                    inherited = self._tracked_dtype(value.args[0])
                    return True, inherited
                return True, None
            if isinstance(value.func, ast.Attribute) and value.func.attr == "astype":
                dtype = _dtype_str(value.args[0]) if value.args else None
                if dtype is None:
                    kw = _dtype_kwarg(value)
                    dtype = _dtype_str(kw) if kw is not None else None
                return True, dtype
            return False, None
        if isinstance(value, ast.Subscript):
            if self._is_tracked(value.value):
                return True, self._tracked_dtype(value.value)
            return False, None
        if isinstance(value, ast.Compare):
            if self._is_tracked(value.left) or any(
                self._is_tracked(c) for c in value.comparators
            ):
                return True, "bool"
            return False, None
        if isinstance(value, ast.UnaryOp):
            return self._infer(value.operand)
        if isinstance(value, ast.BinOp):
            larr, ldt = self._infer(value.left)
            rarr, rdt = self._infer(value.right)
            if larr or rarr:
                return True, ldt if ldt == rdt else None
            return False, None
        return False, None

    def _check_chained_store(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Subscript)
            and self._is_fancy_index(target.value.slice)
        ):
            self.report(
                target,
                "RPR203",
                "store through a fancy-indexed subscript writes into a "
                "temporary copy; index the base array once with combined "
                "indices",
            )

    def _handle_assign_target(self, target: ast.expr, value: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            if value is not None:
                is_array, dtype = self._infer(value)
                if is_array:
                    self.scope.track(target.id, dtype)
                else:
                    self.scope.forget(target.id)
            else:
                self.scope.forget(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            # Tuple unpack: a numpy source marks every Name an array.
            source_is_numpy = (
                isinstance(value, ast.Call)
                and self._numpy_tail(value.func) is not None
            )
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    if source_is_numpy:
                        self.scope.track(elt.id, None)
                    else:
                        self.scope.forget(elt.id)
                else:
                    self._handle_assign_target(elt, None)
            return
        self._check_chained_store(target)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._handle_assign_target(target, node.value)
            # Subscript targets still need their index expressions walked.
            if not isinstance(target, ast.Name):
                self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._handle_assign_target(node.target, node.value)
        if not isinstance(node.target, ast.Name):
            self.visit(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if not isinstance(node.target, ast.Name):
            self._check_chained_store(node.target)
            self.visit(node.target)


def _check_structure(module: ast.Module, path: str) -> list[LintDiagnostic]:
    """RPR209: the contract-presence rule (mirror of RPR101)."""
    diags: list[LintDiagnostic] = []

    def report(node: ast.AST, message: str) -> None:
        diags.append(
            LintDiagnostic(
                path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0) + 1,
                "RPR209",
                message,
            )
        )

    def is_property_like(fn: _FunctionNode) -> bool:
        for dec in fn.decorator_list:
            if isinstance(dec, ast.Name) and dec.id in ("property", "cached_property"):
                return True
            if isinstance(dec, ast.Attribute) and dec.attr in (
                "setter",
                "getter",
                "deleter",
            ):
                return True
        return False

    for stmt in module.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name.startswith("_") or not stmt.name.endswith("_fast"):
                continue
            positional = list(stmt.args.posonlyargs) + list(stmt.args.args)
            if not positional or positional[0].arg != "tree":
                continue
            if not _has_slab_contract(stmt):
                report(
                    stmt,
                    f"fast kernel {stmt.name}() declares no @slab_contract "
                    "(dtype/write contract required on *_fast kernels)",
                )
        elif isinstance(stmt, ast.ClassDef) and stmt.name.endswith("Pool"):
            for member in stmt.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if member.name.startswith("_") or is_property_like(member):
                    continue
                if not _has_slab_contract(member):
                    report(
                        member,
                        f"{stmt.name}.{member.name}() declares no "
                        "@slab_contract (required on public pool methods)",
                    )
    return diags


def slab_lint_source(source: str, path: str = "<string>") -> list[LintDiagnostic]:
    """Slab-lint one source string; returns surviving (non-noqa) findings."""
    norm = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                path, exc.lineno or 0, (exc.offset or 0), "RPR000", f"syntax error: {exc.msg}"
            )
        ]
    checker = _SlabChecker(norm)
    checker.visit(tree)
    checker.diagnostics.extend(_check_structure(tree, norm))
    return apply_noqa(source, checker.diagnostics)


def slab_lint_file(path: str | Path) -> list[LintDiagnostic]:
    p = Path(path)
    return slab_lint_source(p.read_text(encoding="utf-8"), str(p))


def slab_lint_paths(paths: list[str | Path] | list[Path]) -> list[LintDiagnostic]:
    """Slab-lint files and directory trees (``*.py``, recursively)."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    out: list[LintDiagnostic] = []
    for f in files:
        out.extend(slab_lint_file(f))
    return out


def default_slab_paths() -> list[Path]:
    """The backend layers swept when no explicit paths are given."""
    import repro

    root = Path(repro.__file__).parent
    return [root / rel for rel in DEFAULT_SLAB_TARGETS]
