"""Driver behind ``python -m repro check``.

Composes the two checker layers into one pass/fail gate:

* **Lint pass** -- :func:`repro.checkers.lint.lint_paths` over the given
  paths (default: the installed ``repro`` package source).
* **Race battery** (default run only) -- dynamic round-race checks:

  1. a detector self-test: a deliberately conflicting in-memory round
     must be caught (guards against a silently broken recorder);
  2. ``paruf_sync`` with ``race_check=True, shuffle=True`` against the
     brute-force oracle on seeded trees -- the machine check of the
     Lemma 4.1 disjointness argument;
  3. ``rctt`` (reference contraction builder) with ``race_check=True``
     against the oracle;
  4. the ``CostTracker.parallel_round`` race hook, clean and racy.

* **Dynamic fixtures** -- a given ``.py`` path whose module defines a
  top-level ``build_round()`` (returning scheduler tasks) is executed
  under ``Scheduler(race_check=True, shuffle=True, seed=0)``; a detected
  race fails the check.

* **Bounds fit gate** (``--bounds``) -- :func:`repro.checkers.fit.run_fit`
  over every registered ``kind="algorithm"`` cost bound; the full report
  is written to ``results/bounds_report.json`` for the CI artifact.

* **Slab lint** (``--slabs``) -- the RPR201..RPR209 dtype/copy/purity
  pass of :mod:`repro.checkers.slabs` over the array-backend layers
  (default) or over the given explicit paths.

* **Parallel-safety pass** (``--parsafe``) -- the RPR301..RPR308 static
  race/effect analysis of :mod:`repro.checkers.parsafe` over the
  concurrency surface (default) or the given explicit paths, plus (in
  the default run only) the adversarial-interleaving battery: every
  parallel algorithm must produce a bit-identical dendrogram under 20
  seeded hostile schedules.

* **Corpus replay** (default run only) -- every committed fuzz corpus
  entry under ``tests/fixtures/corpus/`` is replayed through the
  ``repro.fuzz`` battery; a finding means a previously fixed bug has
  regressed.  Skipped silently when the corpus directory does not exist
  (e.g. installed-package runs outside the repo checkout).

Exit-code contract (stable; CI and the tests rely on it):

* ``0`` -- every selected layer is clean;
* ``1`` -- at least one finding: lint diagnostics, race failures, or
  bound fits over tolerance;
* ``2`` -- usage error (a given path does not exist); no checks ran.

``--json`` replaces the line-oriented output with one JSON object
(``{"lint": ..., "races": ..., "corpus": ..., "bounds": ..., "slabs":
..., "parsafe": ..., "interleaving": ..., "ok": ..., "exit_code":
...}``) on stdout; the exit code is unchanged.
"""

from __future__ import annotations

import json
import runpy
from pathlib import Path
from typing import Any

from repro.checkers.lint import LintDiagnostic, lint_paths
from repro.errors import RaceConditionError

__all__ = [
    "run_check",
    "run_race_battery",
    "run_corpus_replay",
    "run_dynamic_fixture",
    "DEFAULT_BOUNDS_REPORT",
]

#: Where ``--bounds`` writes its JSON artifact unless overridden.
DEFAULT_BOUNDS_REPORT = "results/bounds_report.json"


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).parent


def run_race_battery() -> list[str]:
    """Run the built-in dynamic race checks; return failure descriptions."""
    import numpy as np

    from repro.checkers.access import RoundRecorder, install, record_write, uninstall
    from repro.checkers.races import check_recorder
    from repro.core.brute import brute_force_sld
    from repro.core.paruf_sync import paruf_sync
    from repro.core.rctt import rctt
    from repro.runtime.cost_model import CostTracker
    from repro.trees.generators import caterpillar, path_tree, random_tree

    failures: list[str] = []

    # 1. Self-test: two tasks writing the same cell MUST be caught.
    recorder = RoundRecorder(where="self-test round")
    install(recorder)
    try:
        recorder.begin_task(0)
        record_write("shared", 0)
        recorder.begin_task(1)
        record_write("shared", 0)
        recorder.end_task()
    finally:
        uninstall(recorder)
    try:
        check_recorder(recorder)
        failures.append(
            "race detector self-test: conflicting writes were NOT detected"
        )
    except RaceConditionError:
        pass

    # 2./3. Race-checked algorithms against the definition-level oracle.
    trees = [random_tree(48, seed=s) for s in range(3)]
    trees += [path_tree(33), caterpillar(9, 3), path_tree(2)]
    for i, tree in enumerate(trees):
        expected = brute_force_sld(tree)
        try:
            got = paruf_sync(tree, race_check=True, shuffle=True, seed=i)
        except RaceConditionError as exc:
            failures.append(f"paruf_sync race on battery tree {i}: {exc}")
            continue
        if not np.array_equal(got, expected):
            failures.append(f"paruf_sync disagrees with oracle on battery tree {i}")
        try:
            got = rctt(tree, seed=i, race_check=True)
        except RaceConditionError as exc:
            failures.append(f"rctt race on battery tree {i}: {exc}")
            continue
        if not np.array_equal(got, expected):
            failures.append(f"rctt disagrees with oracle on battery tree {i}")

    # 4. CostTracker.parallel_round hook: clean round passes, racy raises.
    tracker = CostTracker(race_check=True)
    with tracker.parallel_round() as rnd:
        record_write("cell", 0)
        rnd.task(1.0)
        record_write("cell", 1)
        rnd.task(1.0)
    caught = False
    try:
        tracker = CostTracker(race_check=True)
        with tracker.parallel_round() as rnd:
            record_write("cell", 7)
            rnd.task(1.0)
            record_write("cell", 7)
            rnd.task(1.0)
    except RaceConditionError:
        caught = True
    if not caught:
        failures.append(
            "CostTracker.parallel_round race hook did not catch a same-cell write"
        )
    return failures


def run_dynamic_fixture(path: Path) -> list[str]:
    """Execute a ``build_round()`` fixture under the race-checked scheduler."""
    from repro.runtime.scheduler import Scheduler

    ns = runpy.run_path(str(path))
    build_round = ns.get("build_round")
    if build_round is None:
        return []
    failures: list[str] = []
    try:
        tasks = build_round()
        Scheduler(race_check=True, shuffle=True, seed=0).run_round(
            list(tasks), where=f"fixture {path.name}"
        )
    except RaceConditionError as exc:
        failures.append(f"{path}: {exc}")
    except Exception as exc:  # fixture bugs are failures too, not crashes
        failures.append(f"{path}: fixture error: {type(exc).__name__}: {exc}")
    return failures


def run_corpus_replay(corpus_dir: str | Path | None = None) -> list[str]:
    """Replay the committed fuzz corpus; return regression descriptions.

    Returns ``[]`` both when every entry is clean and when the corpus
    directory does not exist (nothing to replay is not a failure).
    """
    from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, replay_corpus

    corpus_dir = Path(corpus_dir) if corpus_dir is not None else DEFAULT_CORPUS_DIR
    if not corpus_dir.is_dir():
        return []
    failures: list[str] = []
    for path, findings in replay_corpus(corpus_dir):
        for finding in findings:
            failures.append(f"{path.name}: {finding.describe()}")
    return failures


def run_check(
    paths: list[str] | None = None,
    lint: bool = True,
    races: bool = True,
    bounds: bool = False,
    slabs: bool = False,
    parsafe: bool = False,
    json_output: bool = False,
    bounds_report: str | Path = DEFAULT_BOUNDS_REPORT,
) -> int:
    """Run the selected checker layers; print a report; return exit status.

    See the module docstring for the exit-code contract.
    """
    explicit = bool(paths)
    targets = [Path(p) for p in paths] if paths else [_package_root()]
    missing = [t for t in targets if not t.exists()]
    if missing:
        if json_output:
            print(
                json.dumps(
                    {"error": [f"no such file or directory: {t}" for t in missing],
                     "ok": False, "exit_code": 2}
                )
            )
        else:
            for t in missing:
                print(f"repro check: no such file or directory: {t}")
        return 2

    emit = (lambda *a, **k: None) if json_output else print

    diagnostics: list[LintDiagnostic] = []
    if lint:
        diagnostics = lint_paths(list(targets))
        for d in diagnostics:
            emit(d.format())

    race_failures: list[str] = []
    if races:
        if explicit:
            for t in targets:
                if t.is_file() and t.suffix == ".py":
                    race_failures.extend(run_dynamic_fixture(t))
        else:
            race_failures = run_race_battery()
        for f in race_failures:
            emit(f"RACE {f}")

    corpus_failures: list[str] = []
    if races and not explicit:
        corpus_failures = run_corpus_replay()
        for f in corpus_failures:
            emit(f"CORPUS {f}")

    slab_findings: list[LintDiagnostic] = []
    if slabs:
        from repro.checkers.slabs import default_slab_paths, slab_lint_paths

        slab_targets = list(targets) if explicit else default_slab_paths()
        slab_findings = slab_lint_paths(slab_targets)
        for d in slab_findings:
            emit(d.format())

    parsafe_findings: list[LintDiagnostic] = []
    interleave_failures: list[str] = []
    if parsafe:
        from repro.checkers.parsafe import (
            default_parsafe_paths,
            parsafe_lint_paths,
            run_interleaving_battery,
        )

        parsafe_targets = list(targets) if explicit else default_parsafe_paths()
        parsafe_findings = parsafe_lint_paths(parsafe_targets)
        for d in parsafe_findings:
            emit(d.format())
        if not explicit:
            interleave_failures = run_interleaving_battery()
            for f in interleave_failures:
                emit(f"INTERLEAVE {f}")

    fit_report = None
    if bounds:
        from repro.checkers.fit import run_fit

        fit_report = run_fit()
        artifact = fit_report.write_json(bounds_report)
        emit(fit_report.summary())
        emit(f"bounds report written to {artifact}")

    n_lint = len(diagnostics)
    n_race = len(race_failures)
    n_corpus = len(corpus_failures)
    n_slab = len(slab_findings)
    n_parsafe = len(parsafe_findings)
    n_inter = len(interleave_failures)
    n_bound = len(fit_report.failures) if fit_report is not None else 0
    ok = (
        n_lint == 0
        and n_race == 0
        and n_corpus == 0
        and n_slab == 0
        and n_parsafe == 0
        and n_inter == 0
        and n_bound == 0
    )
    exit_code = 0 if ok else 1

    if json_output:
        payload: dict[str, Any] = {
            "lint": {
                "enabled": lint,
                "count": n_lint,
                "findings": [vars(d) | {} for d in diagnostics],
            },
            "races": {"enabled": races, "count": n_race, "failures": race_failures},
            "corpus": {
                "enabled": races and not explicit,
                "count": n_corpus,
                "failures": corpus_failures,
            },
            "slabs": {
                "enabled": slabs,
                "count": n_slab,
                "findings": [vars(d) | {} for d in slab_findings],
            },
            "parsafe": {
                "enabled": parsafe,
                "count": n_parsafe,
                "findings": [vars(d) | {} for d in parsafe_findings],
            },
            "interleaving": {
                "enabled": parsafe and not explicit,
                "count": n_inter,
                "failures": interleave_failures,
            },
            "bounds": fit_report.to_dict() if fit_report is not None else None,
            "ok": ok,
            "exit_code": exit_code,
        }
        print(json.dumps(payload, indent=2))
        return exit_code

    if ok:
        print("repro check: OK")
        return 0
    parts = [f"{n_lint} lint finding(s)", f"{n_race} race failure(s)"]
    if n_corpus:
        parts.append(f"{n_corpus} corpus regression(s)")
    if slabs:
        parts.append(f"{n_slab} slab finding(s)")
    if parsafe:
        parts.append(f"{n_parsafe} parsafe finding(s)")
        if n_inter:
            parts.append(f"{n_inter} interleaving failure(s)")
    if fit_report is not None:
        parts.append(f"{n_bound} bound fit(s) over tolerance")
    print(f"repro check: {', '.join(parts)}")
    return 1
