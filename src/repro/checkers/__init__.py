"""Correctness tooling: round-race sanitizer and repo-invariant lint.

Two layers, both surfaced through ``python -m repro check``:

* **Dynamic round-race detector** (:mod:`repro.checkers.access`,
  :mod:`repro.checkers.races`) -- a TSan analog for the simulated
  parallelism runtime.  Instrumented structures record per-task shadow
  read/write sets during a scheduler round; conflicting accesses raise
  :class:`~repro.errors.RaceConditionError` with task and cell provenance.
  Activated by ``Scheduler(race_check=True)``,
  ``CostTracker(race_check=True)``, or the ``race_check=`` flag of the
  round-structured core algorithms.

* **Static invariant lint** (:mod:`repro.checkers.lint`) -- AST checks
  RPR001..RPR005 enforcing repo invariants (no wall clock or unseeded
  randomness outside the runtime/bench layers, cost-tracker threading in
  ``repro.core``, :class:`~repro.trees.wtree.WeightedTree` immutability,
  and annotated round-task closures).

* **Slab & effect analysis** (:mod:`repro.checkers.slabs`,
  :mod:`repro.checkers.contracts`) -- AST checks RPR201..RPR209 over the
  flat-array backends (dtype discipline, copy-vs-view hazards,
  object-layer leaks, effect purity) paired with the runtime
  ``@slab_contract`` decorator that verifies declared slab dtypes /
  contiguity / write footprints when ``REPRO_SLAB_CONTRACTS`` is set.

* **Parallel-safety analysis** (:mod:`repro.checkers.parsafe`,
  :mod:`repro.checkers.ownership`) -- AST checks RPR301..RPR308 over the
  concurrency layers (closure capture, undeclared shared-slab writes,
  order-dependent reductions, fork-unsafe resources, missing barriers,
  GIL-atomicity assumptions, completion-order merges) paired with the
  runtime ``@owns`` ownership-window decorator (verified when
  ``REPRO_OWNERSHIP_CHECKS`` is set) and the adversarial-interleaving
  battery of :func:`repro.checkers.parsafe.run_interleaving_battery`.

This module must stay import-light: the instrumented structures import
:mod:`repro.checkers.access` at module load.
"""

from repro.checkers.access import (
    RoundRecorder,
    TaskAccessLog,
    commit_phase,
    record_atomic,
    record_read,
    record_write,
)
from repro.checkers.contracts import (
    SlabContract,
    checked,
    contracts_enabled,
    get_contract,
    slab_contract,
)
from repro.checkers.ownership import (
    OwnsDecl,
    WindowSpec,
    checked_owns,
    get_owns,
    owns,
    ownership_enabled,
)
from repro.checkers.races import Conflict, check_recorder, find_conflicts

__all__ = [
    "RoundRecorder",
    "TaskAccessLog",
    "commit_phase",
    "record_read",
    "record_write",
    "record_atomic",
    "Conflict",
    "find_conflicts",
    "check_recorder",
    "SlabContract",
    "slab_contract",
    "checked",
    "contracts_enabled",
    "get_contract",
    "OwnsDecl",
    "WindowSpec",
    "owns",
    "checked_owns",
    "get_owns",
    "ownership_enabled",
]
