"""Round-race conflict detection over recorded shadow access sets.

Given the per-task :class:`~repro.checkers.access.TaskAccessLog` sets of
one parallel round, :func:`find_conflicts` reports every cell that two
different tasks touched in an unserializable way:

* ``write-write`` -- two tasks both plain-wrote the cell;
* ``read-write``  -- one task plain-wrote a cell another task read;
* ``atomic-plain`` -- one task used a declared atomic RMW on a cell that
  another task read or wrote non-atomically (a real CAS/fetch-add racing a
  plain load/store is still a data race).

Two atomic accesses to the same cell never conflict: commutative RMWs are
exactly the operations the paper's implementation performs with hardware
atomics, and the round result does not depend on their order.

A conflict means the round's tasks are not independent, so the work-depth
charge for that round (parallel composition) is unsound and any
``shuffle=True`` order-insensitivity claim is void.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.checkers.access import RoundRecorder, TaskAccessLog
from repro.errors import RaceConditionError

__all__ = ["Conflict", "find_conflicts", "check_recorder", "format_conflicts"]

WRITE_WRITE = "write-write"
READ_WRITE = "read-write"
ATOMIC_PLAIN = "atomic-plain"


@dataclass(frozen=True)
class Conflict:
    """One unserializable pair of same-round accesses to one cell."""

    kind: str
    obj: str
    field: Any
    task_a: str
    task_b: str

    def describe(self) -> str:
        field = self.field if isinstance(self.field, str) else repr(self.field)
        return (
            f"{self.kind} conflict on {self.obj}[{field}] "
            f"between {self.task_a} and {self.task_b}"
        )


#: One interval participant: ``(lo, hi, log, is_write, is_window)``.
_Span = tuple[int, int, TaskAccessLog, bool, bool]


def _window_conflicts(logs: Sequence[TaskAccessLog]) -> list[Conflict]:
    """Conflicts involving half-open slab windows (``parents[lo:hi]``).

    Two same-round accesses to one slab label conflict when their index
    intervals overlap, the tasks differ, at least one access is a plain
    write, and at least one side is a genuine window (point-cell pairs are
    the existing cell pass's job).  Point cells with integer fields join
    as degenerate ``[i, i+1)`` intervals so a scalar ``status[7]`` write
    races against another task's declared ``status[0:16]`` partition.
    """
    spans: dict[str, list[_Span]] = {}
    for log in logs:
        for label, lo, hi in log.slab_writes:
            spans.setdefault(label, []).append((lo, hi, log, True, True))
        for label, lo, hi in log.slab_reads:
            spans.setdefault(label, []).append((lo, hi, log, False, True))
        for label, field in log.writes:
            if isinstance(field, int):
                spans.setdefault(label, []).append((field, field + 1, log, True, False))
        for label, field in log.reads:
            if isinstance(field, int):
                spans.setdefault(label, []).append((field, field + 1, log, False, False))

    conflicts: list[Conflict] = []
    seen: set[tuple[str, str]] = set()
    for label in sorted(spans):
        entries = sorted(spans[label], key=lambda s: (s[0], s[1], s[2].index))
        for i, (alo, ahi, alog, awrite, awin) in enumerate(entries):
            for blo, bhi, blog, bwrite, bwin in entries[i + 1 :]:
                if blo >= ahi:
                    break  # sorted by lo: nothing further overlaps a
                if blog is alog or not (awin or bwin) or not (awrite or bwrite):
                    continue
                kind = WRITE_WRITE if (awrite and bwrite) else READ_WRITE
                if (label, kind) in seen:
                    continue
                seen.add((label, kind))
                overlap = f"{max(alo, blo)}:{min(ahi, bhi)}"
                first, second = (alog, blog) if awrite else (blog, alog)
                conflicts.append(Conflict(kind, label, overlap, first.label, second.label))
    return conflicts


def find_conflicts(logs: Sequence[TaskAccessLog]) -> list[Conflict]:
    """All conflicts among the task access sets of one round.

    Reports at most one conflict per ``(cell, kind)`` (the first offending
    task pair in log order) so pathological rounds stay readable.  Slab
    windows are checked for interval overlap against other windows and
    against integer point cells of the same label (at most one conflict
    per ``(label, kind)``).
    """
    if len(logs) < 2:
        return []
    writers: dict[tuple[str, Any], list[TaskAccessLog]] = {}
    readers: dict[tuple[str, Any], list[TaskAccessLog]] = {}
    atomics: dict[tuple[str, Any], list[TaskAccessLog]] = {}
    for log in logs:
        for cell in log.writes:
            writers.setdefault(cell, []).append(log)
        for cell in log.reads:
            readers.setdefault(cell, []).append(log)
        for cell in log.atomics:
            atomics.setdefault(cell, []).append(log)

    conflicts: list[Conflict] = []
    cells = set(writers) | set(atomics)
    for cell in sorted(cells, key=repr):
        obj, field = cell
        ws = writers.get(cell, [])
        rs = readers.get(cell, [])
        ats = atomics.get(cell, [])
        if len(ws) >= 2:
            conflicts.append(Conflict(WRITE_WRITE, obj, field, ws[0].label, ws[1].label))
        for w in ws:
            other = next((r for r in rs if r is not w), None)
            if other is not None:
                conflicts.append(Conflict(READ_WRITE, obj, field, w.label, other.label))
                break
        if ats:
            plain = next(
                (p for p in ws + rs if all(p is not a for a in ats)),
                None,
            )
            if plain is not None:
                conflicts.append(
                    Conflict(ATOMIC_PLAIN, obj, field, ats[0].label, plain.label)
                )
    conflicts.extend(_window_conflicts(logs))
    return conflicts


def check_recorder(recorder: RoundRecorder, where: str | None = None) -> None:
    """Raise :class:`~repro.errors.RaceConditionError` if the recorded
    round contains conflicts."""
    conflicts = find_conflicts(recorder.logs)
    if conflicts:
        raise RaceConditionError(conflicts, where=where or recorder.where)


def format_conflicts(conflicts: Sequence[Conflict]) -> str:
    """Human-readable multi-line report of ``conflicts``."""
    if not conflicts:
        return "no conflicts"
    return "\n".join(c.describe() for c in conflicts)
