"""Parallel-safety static analysis (codes RPR301..RPR308) + interleaving battery.

ROADMAP item 4 (real multicore execution on the slabs) needs the
discipline GBBS-style codebases enforce by convention: every worker owns
a declared, disjoint partition of each shared slab, results are merged in
submission order, and nothing order- or fork-sensitive crosses a worker
boundary.  This pass walks the concurrency surface (thread pool,
scheduler, the ParUF family, the flat-array backends) and flags the
hazards that survive review because CPython's GIL hides them:

* **RPR301** (late-binding capture) -- a ``lambda`` submitted to a
  parallel primitive from inside a loop that closes over the loop
  variable: every task sees the *final* value, the classic
  ``pool.submit(lambda: f(i))`` bug.  Bind eagerly with
  ``functools.partial`` or default arguments.
* **RPR302** (undeclared slab write) -- a worker function that carries an
  ``@owns(...)`` declaration writes a *different* shared slab than it
  declared (plain subscript stores and ``out=`` kwargs count; writes
  under a lock are exempt).  The declaration is the license; an
  undeclared write voids it.
* **RPR303** (order-dependent reduction) -- a worker accumulates into a
  shared scalar (``total += part``).  Float addition does not commute
  robustly and the merge order is the thread schedule; reduce per-worker
  and combine after the barrier.
* **RPR304** (fork-unsafe resource) -- a worker uses global RNG state
  (``random.random``/``np.random.shuffle`` and friends -- seeded
  ``Random``/``default_rng`` instances are fine) or a file handle opened
  outside the worker.  Both break under fork start methods and make
  results schedule-dependent.
* **RPR305** (missing barrier) -- a function starts threads
  (``t.start()``) but never joins them (no ``.join()``/``.result()``/
  ``.shutdown()``): the dependent phase races the workers it spawned.
* **RPR306** (GIL-atomicity assumption) -- a worker performs a
  read-modify-write on a shared container (``counts[i] += 1``) outside a
  lock and outside its declared ``@owns`` partition.  Bytecode-level
  atomicity is an implementation accident, not a memory model.
* **RPR307** (completion-order merge) -- results collected by iterating
  ``as_completed(...)`` into an ordered container; the output order is
  the thread schedule.  Collect by submission index instead.
* **RPR308** (missing ownership declaration) -- a worker function writes
  shared slabs but declares no ``@owns`` partition at all; every public
  parallel kernel must state *which* slab regions it may write (see
  :mod:`repro.checkers.ownership`).

A *worker function* is one handed to a parallel primitive --
``parallel_map``/``parallel_for`` (first argument), ``pool.submit``
(first argument), ``threading.Thread(target=...)`` -- or any function
already carrying ``@owns`` (the decorator self-declares it parallel).
Analysis is per-function and name-based, the same
soundness-for-signal trade as :mod:`repro.checkers.slabs`; suppression
reuses the shared noqa machinery (``# noqa: RPR30x`` on the logical
line, ``# noqa-module: RPR30x`` file-wide).  Run it via
``python -m repro check --parsafe``.

The runtime half of the gate lives in :func:`run_interleaving_battery`:
it replays every parallel algorithm under >= 20 seeded hostile schedules
(:mod:`repro.runtime.interleave`: permuted task orders plus injected
delays) and demands bit-identical dendrograms -- the dynamic counterpart
of the static claims above.
"""

from __future__ import annotations

import ast
from collections.abc import Callable
from pathlib import Path

from repro.checkers.lint import LintDiagnostic, _ImportMap, apply_noqa

__all__ = [
    "PARSAFE_CODES",
    "DEFAULT_PARSAFE_TARGETS",
    "parsafe_lint_source",
    "parsafe_lint_file",
    "parsafe_lint_paths",
    "default_parsafe_paths",
    "run_interleaving_battery",
]

PARSAFE_CODES = (
    "RPR301",
    "RPR302",
    "RPR303",
    "RPR304",
    "RPR305",
    "RPR306",
    "RPR307",
    "RPR308",
)

#: The concurrency surface swept by ``repro check --parsafe`` when no
#: explicit paths are given; relative to the installed ``repro`` root.
DEFAULT_PARSAFE_TARGETS = (
    "runtime/pool.py",
    "runtime/scheduler.py",
    "runtime/interleave.py",
    "core/paruf.py",
    "core/paruf_sync.py",
    "core/paruf_threaded.py",
    "core/fast.py",
    "core/fast_contraction.py",
    "core/fast_merge.py",
    "structures/heap_pool.py",
    "cluster/knn.py",
    "trees/boruvka_fast.py",
)

#: Module-level functions that accept a task function as first argument.
_SUBMIT_FNS = {"parallel_map", "parallel_for"}

#: Seeded RNG constructors that are safe to use inside workers; anything
#: else reached through the ``random``/``numpy.random`` module namespaces
#: is global-state RNG (RPR304).
_SAFE_RNG = {
    "Random",
    "SystemRandom",
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
}

#: Calls that act as a barrier for started/submitted workers (RPR305).
_BARRIER_METHODS = {"join", "result", "shutdown"}

#: Ordered-container mutators that make an as_completed loop a
#: completion-order merge (RPR307).
_ORDERED_SINKS = {"append", "extend", "insert", "add"}

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _decorator_call_name(dec: ast.expr) -> str | None:
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


def _owns_targets(node: _FunctionNode) -> set[str] | None:
    """Declared slab head-names of ``@owns`` on ``node``; None if absent."""
    for dec in node.decorator_list:
        if _decorator_call_name(dec) != "owns":
            continue
        targets: set[str] = set()
        if isinstance(dec, ast.Call):
            for arg in dec.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    head = arg.value.split("[", 1)[0].strip()
                    targets.add(head.partition(".")[0])
        return targets
    return None


def _bound_names(target: ast.expr) -> list[str]:
    """Names *bound* by an assignment/loop target (subscript bases are not)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        return [name for elt in target.elts for name in _bound_names(elt)]
    if isinstance(target, ast.Starred):
        return _bound_names(target.value)
    return []


def _own_nodes(fn: _FunctionNode) -> list[ast.AST]:
    """Every AST node of ``fn``'s body, not descending into nested defs."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _is_lockish(expr: ast.expr) -> bool:
    """Heuristic: a ``with`` context whose name mentions a lock."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = None
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    return name is not None and "lock" in name.lower()


class _WorkerChecker:
    """RPR302/303/304/306/308 over one worker function's own body."""

    def __init__(
        self,
        fn: _FunctionNode,
        imports: _ImportMap,
        open_names: set[str],
        report: Callable[[ast.AST, str, str], None],
    ) -> None:
        self.fn = fn
        self.imports = imports
        self.open_names = open_names
        self.report = report
        self.owns = _owns_targets(fn)
        self.locals = self._collect_locals()
        #: Shared slab names plain-written without any @owns (RPR308).
        self.undeclared_writes: set[str] = set()

    def _collect_locals(self) -> set[str]:
        args = self.fn.args
        names = {
            a.arg
            for a in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *((args.vararg,) if args.vararg else ()),
                *((args.kwarg,) if args.kwarg else ()),
            )
        }
        for node in _own_nodes(self.fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    names.update(_bound_names(target))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                names.update(_bound_names(node.target))
            elif isinstance(node, ast.NamedExpr):
                names.add(node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                names.update(_bound_names(node.optional_vars))
            elif isinstance(node, ast.comprehension):
                names.update(_bound_names(node.target))
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add((alias.asname or alias.name).partition(".")[0])
        # Direct child defs are locals even though _own_nodes skips them.
        for stmt in self.fn.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(stmt.name)
        # nonlocal/global declarations make a name shared no matter how
        # often it is assigned here.
        for node in _own_nodes(self.fn):
            if isinstance(node, (ast.Nonlocal, ast.Global)):
                names.difference_update(node.names)
        return names

    def _shared(self, name: str) -> bool:
        return name not in self.locals

    def _shared_sub_base(self, expr: ast.expr) -> str | None:
        """The shared base name of ``name[...]``, else None."""
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Name)
            and self._shared(expr.value.id)
        ):
            return expr.value.id
        return None

    def _check_plain_write(self, node: ast.AST, base: str, locked: bool) -> None:
        if locked:
            return
        if self.owns is None:
            self.undeclared_writes.add(base)
            return
        if base not in self.owns:
            self.report(
                node,
                "RPR302",
                f"worker {self.fn.name!r} writes shared slab {base!r} which "
                f"is not in its @owns declaration ({sorted(self.owns)}); "
                "declare the partition or stop writing it",
            )

    def run(self) -> None:
        self._scan(self.fn.body, locked=False)
        if self.owns is None and self.undeclared_writes:
            slabs = ", ".join(sorted(self.undeclared_writes))
            self.report(
                self.fn,
                "RPR308",
                f"parallel worker {self.fn.name!r} writes shared slab(s) "
                f"{slabs} but declares no @owns ownership partition; "
                "annotate with @owns(\"name[lo:hi]\", ...)",
            )

    def _scan(self, stmts, locked: bool) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt, locked)

    def _scan_stmt(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or any(_is_lockish(item.context_expr) for item in node.items)
            for item in node.items:
                self._scan_expr(item.context_expr, locked)
            self._scan(node.body, inner)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                base = self._shared_sub_base(target)
                if base is not None:
                    self._check_plain_write(node, base, locked)
            self._scan_expr(node.value, locked)
            return
        if isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and self._shared(node.target.id):
                if not locked:
                    self.report(
                        node,
                        "RPR303",
                        f"worker {self.fn.name!r} accumulates into shared "
                        f"{node.target.id!r}; the merge order is the thread "
                        "schedule (float addition does not commute robustly) "
                        "-- reduce per-worker and combine after the barrier",
                    )
            base = self._shared_sub_base(node.target)
            if base is not None and not locked and (self.owns is None or base not in self.owns):
                self.report(
                    node,
                    "RPR306",
                    f"worker {self.fn.name!r} read-modify-writes shared "
                    f"{base!r}[...] outside a lock; GIL bytecode atomicity "
                    "is not a memory model -- guard with a lock or own the "
                    "partition exclusively",
                )
            self._scan_expr(node.value, locked)
            return
        # Generic node: dispatch children (covers If/Try/ExceptHandler/...).
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, locked)
            else:
                self._scan_stmt(child, locked)

    def _scan_expr(self, expr: ast.expr, locked: bool) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                self._check_call(node, locked)
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and self._shared(node.id)
                and node.id in self.open_names
            ):
                self.report(
                    node,
                    "RPR304",
                    f"worker {self.fn.name!r} uses file handle {node.id!r} "
                    "opened outside the worker; handles are fork-unsafe and "
                    "their cursors are shared -- open per worker",
                )

    def _check_call(self, node: ast.Call, locked: bool) -> None:
        dotted = self.imports.resolve_call(node.func)
        if dotted is not None:
            tail: str | None = None
            if dotted.startswith("numpy.random."):
                tail = dotted[len("numpy.random."):]
            elif dotted.startswith("random."):
                tail = dotted[len("random."):]
            if tail is not None and "." not in tail and tail not in _SAFE_RNG:
                self.report(
                    node,
                    "RPR304",
                    f"worker {self.fn.name!r} calls {dotted}(): module-level "
                    "RNG state is shared across workers and fork-unsafe; "
                    "pass a seeded Generator/Random instance instead",
                )
        for kw in node.keywords:
            if kw.arg != "out":
                continue
            value = kw.value
            base = self._shared_sub_base(value)
            if base is None and isinstance(value, ast.Name) and self._shared(value.id):
                base = value.id
            if base is not None:
                self._check_plain_write(node, base, locked)


class _ParsafeChecker(ast.NodeVisitor):
    """Module pass: submission sites, RPR301/305/307, worker collection."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.imports = _ImportMap()
        self.diagnostics: list[LintDiagnostic] = []
        #: Names submitted to a parallel primitive somewhere in the module.
        self.worker_names: set[str] = set()
        #: Names assigned from open(...) anywhere in the module.
        self.open_names: set[str] = set()
        #: Loop-variable names of the enclosing for-loops at this point.
        self._loop_targets: list[list[str]] = []

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.diagnostics.append(
            LintDiagnostic(
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0) + 1,
                code,
                message,
            )
        )

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit_import_from(node)
        self.generic_visit(node)

    # -- loop context for RPR301 -------------------------------------------
    def _visit_for(self, node: ast.For | ast.AsyncFor) -> None:
        self.visit(node.iter)
        self._loop_targets.append(_bound_names(node.target))
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self._loop_targets.pop()

    def visit_For(self, node: ast.For) -> None:
        self._visit_for(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_for(node)

    # -- assignments: track open() handles ----------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "open"
        ):
            for target in node.targets:
                self.open_names.update(_bound_names(target))
        self.generic_visit(node)

    # -- submission sites ----------------------------------------------------
    def _submitted_exprs(self, node: ast.Call) -> list[ast.expr]:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        dotted = self.imports.resolve_call(func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else name
        out: list[ast.expr] = []
        if tail in _SUBMIT_FNS and node.args:
            out.append(node.args[0])
        elif isinstance(func, ast.Attribute) and name == "submit" and node.args:
            out.append(node.args[0])
        elif tail == "Thread" or dotted == "threading.Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    out.append(kw.value)
        return out

    def visit_Call(self, node: ast.Call) -> None:
        for expr in self._submitted_exprs(node):
            if isinstance(expr, ast.Lambda):
                self._check_lambda_capture(expr)
            elif isinstance(expr, ast.Name):
                self.worker_names.add(expr.id)
        self.generic_visit(node)

    def _check_lambda_capture(self, lam: ast.Lambda) -> None:
        params = {
            a.arg
            for a in (
                *lam.args.posonlyargs,
                *lam.args.args,
                *lam.args.kwonlyargs,
                *((lam.args.vararg,) if lam.args.vararg else ()),
                *((lam.args.kwarg,) if lam.args.kwarg else ()),
            )
        }
        # Loop vars bound through default values land in ``params`` via the
        # arg list, so the sanctioned ``lambda i=i: ...`` fix passes.
        active = {name for frame in self._loop_targets for name in frame}
        captured = sorted(
            {
                sub.id
                for sub in ast.walk(lam.body)
                if isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id in active
                and sub.id not in params
            }
        )
        if captured:
            self.report(
                lam,
                "RPR301",
                f"lambda submitted to a parallel primitive captures loop "
                f"variable(s) {', '.join(captured)} by reference; every task "
                "sees the final value -- bind eagerly with functools.partial "
                "or a default argument",
            )

    # -- RPR305 / RPR307: per-function structural checks ---------------------
    def _check_barriers(self, fn: _FunctionNode) -> None:
        has_start = False
        has_barrier = False
        for node in _own_nodes(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "start" and not node.args:
                    has_start = True
                elif node.func.attr in _BARRIER_METHODS:
                    has_barrier = True
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                # "with ThreadPoolExecutor(...)" joins at block exit.
                for item in node.items:
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Call):
                        ctx_dotted = self.imports.resolve_call(ctx.func)
                        ctx_tail = (
                            ctx_dotted.rsplit(".", 1)[-1]
                            if ctx_dotted
                            else getattr(ctx.func, "attr", getattr(ctx.func, "id", None))
                        )
                        if ctx_tail in ("ThreadPoolExecutor", "ProcessPoolExecutor"):
                            has_barrier = True
        if has_start and not has_barrier:
            self.report(
                fn,
                "RPR305",
                f"{fn.name}() starts workers but never joins them (no "
                ".join()/.result()/.shutdown()); the dependent phase races "
                "the workers it spawned -- add a round barrier",
            )

    def _check_completion_merge(self, fn: _FunctionNode) -> None:
        for node in _own_nodes(fn):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            it = node.iter
            if not isinstance(it, ast.Call):
                continue
            dotted = self.imports.resolve_call(it.func)
            tail = (
                dotted.rsplit(".", 1)[-1]
                if dotted
                else getattr(it.func, "attr", getattr(it.func, "id", None))
            )
            if tail != "as_completed":
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _ORDERED_SINKS
                ):
                    self.report(
                        node,
                        "RPR307",
                        f"{fn.name}() merges as_completed() results into an "
                        "ordered container; the output order is the thread "
                        "schedule -- collect by submission index instead",
                    )
                    break

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_barriers(node)
        self._check_completion_merge(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_barriers(node)
        self._check_completion_merge(node)
        self.generic_visit(node)


def parsafe_lint_source(source: str, path: str = "<string>") -> list[LintDiagnostic]:
    """Parsafe-lint one source string; returns surviving (non-noqa) findings."""
    norm = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                path, exc.lineno or 0, (exc.offset or 0), "RPR000", f"syntax error: {exc.msg}"
            )
        ]
    checker = _ParsafeChecker(norm)
    checker.visit(tree)
    # Second pass: analyze every worker function's body.  A worker is a
    # function whose name was submitted to a parallel primitive anywhere
    # in the module, or one that carries @owns (self-declared parallel).
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in checker.worker_names or _owns_targets(node) is not None:
            _WorkerChecker(
                node, checker.imports, checker.open_names, checker.report
            ).run()
    checker.diagnostics.sort(key=lambda d: (d.line, d.col, d.code))
    return apply_noqa(source, checker.diagnostics)


def parsafe_lint_file(path: str | Path) -> list[LintDiagnostic]:
    p = Path(path)
    return parsafe_lint_source(p.read_text(encoding="utf-8"), str(p))


def parsafe_lint_paths(paths: list[str | Path] | list[Path]) -> list[LintDiagnostic]:
    """Parsafe-lint files and directory trees (``*.py``, recursively)."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    out: list[LintDiagnostic] = []
    for f in files:
        out.extend(parsafe_lint_file(f))
    return out


def default_parsafe_paths() -> list[Path]:
    """The concurrency surface swept when no explicit paths are given."""
    import repro

    root = Path(repro.__file__).parent
    return [root / rel for rel in DEFAULT_PARSAFE_TARGETS]


# ---------------------------------------------------------------------------
# Runtime half: the adversarial-interleaving battery.
# ---------------------------------------------------------------------------


def run_interleaving_battery(seeds: int = 20, num_threads: int = 4) -> list[str]:
    """Replay every parallel algorithm under seeded hostile schedules.

    For each of a small family of adversarial trees, computes the
    reference dendrogram (``sequf``) once, then for every seed in
    ``range(seeds)`` activates :func:`repro.runtime.interleave.hostile_schedule`
    and re-runs each parallel algorithm -- ``paruf`` with randomized
    worklist order, ``paruf_sync`` (scheduler rounds hostile-permuted),
    ``paruf_threaded`` on real threads with injected delays, and ``rctt``
    (contraction rounds hostile-permuted) -- plus the thread-pool path
    (:func:`repro.cluster.knn.pairwise_distances`).  Any deviation from
    the reference is returned as a human-readable failure string; an
    empty list is the pass verdict.
    """
    import numpy as np

    from repro.cluster.knn import pairwise_distances
    from repro.core import paruf, paruf_sync, paruf_threaded, rctt, sequf
    from repro.runtime.interleave import hostile_schedule
    from repro.trees.generators import caterpillar, path_tree, random_tree
    from repro.trees.wtree import WeightedTree

    rng = np.random.default_rng(20240613)

    def with_distinct_weights(tree: WeightedTree) -> WeightedTree:
        w = rng.permutation(tree.m).astype(np.float64) + 1.0
        return WeightedTree(tree.n, tree.edges, w)

    trees = [
        ("path-17", with_distinct_weights(path_tree(17))),
        ("caterpillar-24", with_distinct_weights(caterpillar(24))),
        ("random-33", with_distinct_weights(random_tree(33, seed=7))),
    ]

    failures: list[str] = []

    def check(label: str, tree_name: str, seed: int, got: np.ndarray, want: np.ndarray) -> None:
        if not np.array_equal(got, want):
            bad = int(np.flatnonzero(got != want)[0])
            failures.append(
                f"{label} on {tree_name} diverged under hostile schedule "
                f"seed={seed}: parents[{bad}] = {int(got[bad])}, expected "
                f"{int(want[bad])}"
            )

    for tree_name, tree in trees:
        want = sequf(tree)
        for seed in range(seeds):
            with hostile_schedule(seed):
                check(
                    "paruf(order=random)", tree_name, seed,
                    paruf(tree, order="random", seed=seed), want,
                )
                check(
                    "paruf_sync(shuffle)", tree_name, seed,
                    paruf_sync(tree, shuffle=True, seed=seed), want,
                )
                check(
                    "paruf_sync", tree_name, seed,
                    paruf_sync(tree), want,
                )
                check(
                    "paruf_threaded", tree_name, seed,
                    paruf_threaded(tree, num_threads=num_threads), want,
                )
                check("rctt", tree_name, seed, rctt(tree, seed=seed), want)

    # The pool path: chunked pairwise distances must not depend on the
    # submission permutation or injected delays.
    pts = np.asarray(rng.standard_normal((48, 4)), dtype=np.float64)
    want_d = pairwise_distances(pts, chunk=8, workers=1)
    for seed in range(seeds):
        with hostile_schedule(seed):
            got_d = pairwise_distances(pts, chunk=8, workers=4)
        if not np.array_equal(got_d, want_d):
            failures.append(
                f"pairwise_distances diverged under hostile schedule "
                f"seed={seed} (max abs diff "
                f"{float(np.max(np.abs(got_d - want_d)))})"
            )
    return failures
