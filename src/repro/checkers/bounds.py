"""Declared asymptotic cost bounds: the ``@cost_bound`` contract layer.

The paper's results are *asymptotic* -- Theorem 3.7 (SLD-TreeContraction:
``O(n log h)`` work, polylog depth), Theorem 4.3 (ParUF), Section 4.2
(RCTT), Lemma 3.6 (the ``Omega(n log h)`` lower bound).  This module lets
every implementation *declare* the bound it claims, in a tiny closed
expression grammar, so that two independent verifiers can hold it to the
claim:

* the static lint (:mod:`repro.checkers.lint`, codes RPR101..RPR105)
  checks declarations structurally -- presence, parseability, loop shape,
  recursion shape;
* the empirical fit gate (:mod:`repro.checkers.fit`) runs the algorithm
  over a size ladder and rejects measured work/depth that grows faster
  than the declared bound.

Grammar
-------
A bound expression is arithmetic (``+ - * / **``, numeric literals,
parentheses) over the declared variables and the functions ``log``/
``log2`` (both base-2), ``sqrt``, ``min`` and ``max``.  Conventional
variables: ``n`` (vertices), ``m`` (edges), ``h`` (dendrogram height),
``s`` (container size), ``k`` (filtered/removed count), ``b`` (batch
size).

Evaluation clamps every ``log`` to at least ``1`` (``log(x) :=
log2(x) if x >= 2 else 1``), so a declared ``n * log(h)`` is well-defined
-- and nonzero -- on degenerate inputs with ``h <= 1``; the fit layer
never divides by ``log(1) = 0``.

The decorator stores the parsed bound on the function
(``fn.__cost_bound__``) and in the central :data:`REGISTRY`; it does
**not** wrap the function -- zero call-time overhead, signatures and
introspection untouched.
"""

from __future__ import annotations

import ast
import math
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any, TypeVar

__all__ = [
    "BoundParseError",
    "BoundExpr",
    "CostBound",
    "cost_bound",
    "parse_bound_expr",
    "get_bound",
    "registered_bounds",
    "safe_log2",
    "REGISTRY",
    "BOUND_KINDS",
]

#: Recognized declaration kinds.  ``"algorithm"`` entries are eligible for
#: the empirical fit gate and the structural loop/recursion lint;
#: ``"structure_op"`` marks per-operation data-structure bounds (heap ops),
#: ``"helper"`` marks internal subroutines declared for RPR105, and
#: ``"dispatcher"`` marks entry points whose bound is the sup over the
#: algorithms they can select.
BOUND_KINDS = ("algorithm", "structure_op", "helper", "dispatcher")


class BoundParseError(ValueError):
    """A declared bound expression failed to parse or used unknown names."""


def safe_log2(x: float) -> float:
    """Base-2 log clamped to at least 1 (``log(1)`` must never be 0)."""
    return math.log2(x) if x >= 2.0 else 1.0


def _safe_sqrt(x: float) -> float:
    return math.sqrt(x) if x > 0.0 else 0.0


_ALLOWED_FUNCS: dict[str, Callable[..., float]] = {
    "log": safe_log2,
    "log2": safe_log2,
    "sqrt": _safe_sqrt,
    "min": min,
    "max": max,
}

_ALLOWED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Pow)
_ALLOWED_UNARYOPS = (ast.USub, ast.UAdd)


def _validate_node(node: ast.expr, variables: tuple[str, ...], src: str) -> None:
    """Recursively whitelist-check one expression node."""
    if isinstance(node, ast.Constant):
        if not isinstance(node.value, (int, float)):
            raise BoundParseError(f"non-numeric constant {node.value!r} in bound {src!r}")
        return
    if isinstance(node, ast.Name):
        if node.id not in variables:
            raise BoundParseError(
                f"bound {src!r} references {node.id!r}, not among declared vars {variables}"
            )
        return
    if isinstance(node, ast.BinOp):
        if not isinstance(node.op, _ALLOWED_BINOPS):
            raise BoundParseError(f"operator {type(node.op).__name__} not allowed in bound {src!r}")
        _validate_node(node.left, variables, src)
        _validate_node(node.right, variables, src)
        return
    if isinstance(node, ast.UnaryOp):
        if not isinstance(node.op, _ALLOWED_UNARYOPS):
            raise BoundParseError(f"operator {type(node.op).__name__} not allowed in bound {src!r}")
        _validate_node(node.operand, variables, src)
        return
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_FUNCS:
            raise BoundParseError(
                f"bound {src!r} calls a function other than {sorted(_ALLOWED_FUNCS)}"
            )
        if node.keywords:
            raise BoundParseError(f"keyword arguments not allowed in bound {src!r}")
        if not node.args:
            raise BoundParseError(f"empty call {node.func.id}() in bound {src!r}")
        for arg in node.args:
            _validate_node(arg, variables, src)
        return
    raise BoundParseError(f"disallowed syntax {type(node).__name__} in bound {src!r}")


def _names_all_logged(node: ast.expr, inside_log: bool) -> bool:
    """True iff every variable occurrence sits inside a ``log``/``log2`` call."""
    if isinstance(node, ast.Name):
        return inside_log
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        entering = inside_log or node.func.id in ("log", "log2")
        return all(_names_all_logged(a, entering) for a in node.args)
    return all(
        _names_all_logged(child, inside_log)
        for child in ast.iter_child_nodes(node)
        if isinstance(child, ast.expr)
    )


@dataclass(frozen=True)
class BoundExpr:
    """One parsed, validated bound expression."""

    src: str
    variables: tuple[str, ...]
    _code: Any = field(repr=False, compare=False, default=None)

    def evaluate(self, **env: float) -> float:
        """Evaluate at a concrete point; unknown extra vars are ignored."""
        scope: dict[str, Any] = {name: env[name] for name in self.variables}
        scope.update(_ALLOWED_FUNCS)
        return float(eval(self._code, {"__builtins__": {}}, scope))

    @property
    def is_polylog(self) -> bool:
        """True iff every variable appears only under a ``log`` call.

        ``log(n)**2`` is polylog; ``n * log(h)`` and ``h`` are not.
        """
        node = ast.parse(self.src, mode="eval").body
        return _names_all_logged(node, False)


def parse_bound_expr(src: str, variables: tuple[str, ...]) -> BoundExpr:
    """Parse and validate one bound expression against its declared vars."""
    if not isinstance(src, str) or not src.strip():
        raise BoundParseError(f"bound expression must be a non-empty string, got {src!r}")
    try:
        tree = ast.parse(src, mode="eval")
    except SyntaxError as exc:
        raise BoundParseError(f"bound {src!r} does not parse: {exc.msg}") from None
    _validate_node(tree.body, variables, src)
    code = compile(tree, filename=f"<bound {src!r}>", mode="eval")
    return BoundExpr(src, tuple(variables), code)


@dataclass(frozen=True)
class CostBound:
    """A declared work/depth bound attached to one function."""

    name: str  #: registry key, ``module.qualname``
    work: BoundExpr
    depth: BoundExpr
    variables: tuple[str, ...]
    kind: str = "algorithm"
    theorem: str = ""  #: paper statement this bound encodes (for reports/docs)

    def evaluate_work(self, **env: float) -> float:
        return self.work.evaluate(**env)

    def evaluate_depth(self, **env: float) -> float:
        return self.depth.evaluate(**env)

    def describe(self) -> str:
        src = f"W = O({self.work.src}), D = O({self.depth.src})"
        return f"{src} [{self.theorem}]" if self.theorem else src


#: Central registry: ``module.qualname`` -> :class:`CostBound`.  Populated
#: as the annotated modules import; :func:`registered_bounds` imports the
#: annotated layers first so the view is complete.
REGISTRY: dict[str, CostBound] = {}

_F = TypeVar("_F", bound=Callable[..., Any])


def cost_bound(
    *,
    work: str,
    depth: str,
    vars: tuple[str, ...] = ("n",),
    kind: str = "algorithm",
    theorem: str = "",
) -> Callable[[_F], _F]:
    """Declare the asymptotic work/depth bound of the decorated function.

    Parameters
    ----------
    work, depth:
        Bound expressions in the module grammar (see module docstring),
        e.g. ``work="n * log(h)", depth="log(n)**2"``.
    vars:
        Variable names the expressions may reference.
    kind:
        One of :data:`BOUND_KINDS`; only ``"algorithm"`` entries are run
        by the empirical fit gate.
    theorem:
        The paper statement the bound encodes (``"Theorem 3.7"`` ...).

    The decorator validates the expressions eagerly (a bad declaration
    fails at import, mirroring lint code RPR104), registers the bound,
    and returns the function unchanged.
    """
    if kind not in BOUND_KINDS:
        raise BoundParseError(f"unknown bound kind {kind!r}; expected one of {BOUND_KINDS}")
    variables = tuple(vars)
    work_expr = parse_bound_expr(work, variables)
    depth_expr = parse_bound_expr(depth, variables)

    def decorate(fn: _F) -> _F:
        name = f"{fn.__module__}.{fn.__qualname__}"
        bound = CostBound(name, work_expr, depth_expr, variables, kind, theorem)
        fn.__cost_bound__ = bound  # type: ignore[attr-defined]
        REGISTRY[name] = bound
        return fn

    return decorate


def get_bound(target: Callable[..., Any] | str) -> CostBound | None:
    """Look up the declared bound of a function (or registry key)."""
    if isinstance(target, str):
        return REGISTRY.get(target)
    return getattr(target, "__cost_bound__", None)


def registered_bounds(import_annotated: bool = True) -> Mapping[str, CostBound]:
    """A read-only view of every registered bound.

    With ``import_annotated`` (the default) the annotated layers are
    imported first, so the registry is fully populated even when the
    caller has not touched :mod:`repro.core` yet.
    """
    if import_annotated:
        import repro.contraction  # noqa: F401
        import repro.core  # noqa: F401
        import repro.structures.binomial_heap  # noqa: F401
        import repro.structures.pairing_heap  # noqa: F401
        import repro.structures.skew_heap  # noqa: F401
        import repro.structures.unionfind  # noqa: F401
    return dict(REGISTRY)
