"""Empirical complexity-fit gate: measured cost growth vs declared bounds.

The third layer of the cost-bound contract (after the ``@cost_bound``
declarations and the RPR1xx structural lint): actually *run* every
registered ``kind="algorithm"`` function over a size ladder, read the
charged work/depth off its :class:`~repro.runtime.cost_model.CostTracker`,
and reject any algorithm whose measured cost grows asymptotically faster
than its declaration.

Method
------
For each (algorithm, input family) and metric ``work``/``depth``, compute
the ratio ``measured / declared_bound(n, h)`` at every ladder size and fit
the least-squares slope of ``log(ratio)`` against ``log(n)``.  If the
declaration is correct (up to constants), the ratio is asymptotically flat
and the slope is ~0; a slope above :data:`DEFAULT_TOLERANCE` means the
measurement grows at least ``n^tolerance`` *faster* than declared -- e.g.
the ``O(n h)`` list-mode ablation of SLD-TreeContraction fitted against
the heap mode's declared ``O(n log h)`` shows slope ~1 on chain inputs.

Degenerate inputs are safe by construction: bound evaluation clamps every
``log`` to at least 1 (so ``n log h`` never divides by ``log(1) = 0``),
zero-cost measurements (e.g. ``n = 1``) are dropped, and a family with
fewer than :data:`MIN_POINTS` usable measurements is skipped -- reported,
not fitted, never failed.
"""

from __future__ import annotations

import importlib
import json
import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.checkers.bounds import CostBound, registered_bounds
from repro.datasets.ladders import DEFAULT_SIZES, FAMILY_BUILDERS
from repro.dendrogram.metrics import dendrogram_height
from repro.runtime.cost_model import CostTracker

__all__ = [
    "DEFAULT_TOLERANCE",
    "MIN_POINTS",
    "FAMILY_RESTRICTIONS",
    "FitPoint",
    "FitResult",
    "FitReport",
    "fit_slope",
    "fit_target",
    "run_fit",
]

#: Maximum admissible log-log slope of measured/declared cost ratios.
DEFAULT_TOLERANCE = 0.25

#: Minimum usable ladder points before a fit is attempted at all.
MIN_POINTS = 3

#: Registered algorithms that only accept certain input families.
FAMILY_RESTRICTIONS: dict[str, tuple[str, ...]] = {
    "repro.core.cartesian.sld_path": ("path",),
}


@dataclass(frozen=True)
class FitPoint:
    """One measurement: charged cost and evaluated bound at one input."""

    family: str
    n: int
    h: int
    work: float
    depth: float
    bound_work: float
    bound_depth: float


@dataclass(frozen=True)
class FitResult:
    """Fit verdict for one (target, family, metric) combination."""

    target: str
    family: str
    metric: str  #: ``"work"`` or ``"depth"``
    slope: float | None  #: ``None`` when skipped (too few points)
    tolerance: float
    passed: bool
    reason: str
    points: list[FitPoint] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "family": self.family,
            "metric": self.metric,
            "slope": self.slope,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "reason": self.reason,
            "points": [vars(p) | {} for p in self.points],
        }


@dataclass
class FitReport:
    """All fit results of one run, JSON-serializable for CI artifacts."""

    results: list[FitResult]
    sizes: tuple[int, ...] = DEFAULT_SIZES
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[FitResult]:
        return [r for r in self.results if not r.passed]

    def to_dict(self) -> dict[str, Any]:
        return {
            "sizes": list(self.sizes),
            "tolerance": self.tolerance,
            "passed": self.passed,
            "results": [r.to_dict() for r in self.results],
        }

    def write_json(self, path: str | Path) -> Path:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return p

    def summary(self) -> str:
        lines = []
        for r in self.results:
            mark = "ok  " if r.passed else "FAIL"
            slope = "  skip" if r.slope is None else f"{r.slope:+.3f}"
            lines.append(f"  {mark} {slope}  {r.target} [{r.family}/{r.metric}] {r.reason}")
        verdict = "PASSED" if self.passed else "FAILED"
        lines.append(f"bounds fit {verdict}: {len(self.results)} fits, {len(self.failures)} over bound")
        return "\n".join(lines)


def fit_slope(ns: Sequence[int], ratios: Sequence[float]) -> float:
    """Least-squares slope of ``log(ratio)`` against ``log(n)``."""
    x = np.log(np.asarray(ns, dtype=np.float64))
    y = np.log(np.maximum(np.asarray(ratios, dtype=np.float64), 1e-12))
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def _measure(
    fn: Callable[..., Any], bound: CostBound, family: str, n: int
) -> FitPoint:
    """Run ``fn`` on one ladder rung and evaluate the declared bound there."""
    tree = FAMILY_BUILDERS[family](n)
    tracker = CostTracker()
    result = fn(tree, tracker=tracker)
    h = 0
    if isinstance(result, np.ndarray) and result.ndim == 1 and result.shape[0] == tree.m:
        h = int(dendrogram_height(result, tree.ranks))
    env = {"n": float(tree.n), "m": float(max(tree.m, 1)), "h": float(max(h, 1))}
    return FitPoint(
        family=family,
        n=tree.n,
        h=h,
        work=float(tracker.work),
        depth=float(tracker.depth),
        bound_work=bound.evaluate_work(**env),
        bound_depth=bound.evaluate_depth(**env),
    )


def fit_target(
    fn: Callable[..., Any],
    bound: CostBound,
    *,
    target: str | None = None,
    families: Sequence[str] | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[FitResult]:
    """Fit one callable against one declared bound over the ladder.

    Exposed separately from :func:`run_fit` so tests can fit *mismatched*
    pairs -- e.g. the deliberately super-bound list-mode ablation against
    the heap mode's declaration -- and watch the gate reject them.
    """
    name = target if target is not None else bound.name
    if families is None:
        families = FAMILY_RESTRICTIONS.get(name, tuple(FAMILY_BUILDERS))
    results: list[FitResult] = []
    for family in families:
        points = [_measure(fn, bound, family, int(n)) for n in sizes]
        for metric in ("work", "depth"):
            usable = [p for p in points if getattr(p, metric) > 0.0]
            if len(usable) < MIN_POINTS:
                results.append(
                    FitResult(
                        name,
                        family,
                        metric,
                        None,
                        tolerance,
                        True,
                        f"skipped: {len(usable)} usable points < {MIN_POINTS}",
                        points,
                    )
                )
                continue
            ratios = [
                getattr(p, metric) / getattr(p, f"bound_{metric}") for p in usable
            ]
            slope = fit_slope([p.n for p in usable], ratios)
            if math.isnan(slope):
                results.append(
                    FitResult(name, family, metric, None, tolerance, True,
                              "skipped: degenerate fit", points)
                )
                continue
            passed = slope <= tolerance
            reason = (
                "within declared bound"
                if passed
                else f"measured {metric} grows ~n^{slope:.2f} beyond O({getattr(bound, metric).src})"
            )
            results.append(
                FitResult(name, family, metric, slope, tolerance, passed, reason, points)
            )
    return results


def _resolve(name: str) -> Callable[..., Any] | None:
    """Import the function behind a registry key (``module.qualname``)."""
    parts = name.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        try:
            obj: Any = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return None
        return obj
    return None


def _selected(key: str, targets: Sequence[str]) -> bool:
    return key in targets or key.rsplit(".", 1)[-1] in targets


def run_fit(
    targets: Sequence[str] | None = None,
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    families: Sequence[str] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> FitReport:
    """Fit every registered ``kind="algorithm"`` bound (or the named subset).

    ``targets`` accepts full registry keys or bare function names.
    """
    report = FitReport([], tuple(int(s) for s in sizes), tolerance)
    for key, bound in sorted(registered_bounds().items()):
        if bound.kind != "algorithm":
            continue
        if targets is not None and not _selected(key, targets):
            continue
        fn = _resolve(key)
        if fn is None:
            report.results.append(
                FitResult(key, "-", "work", None, tolerance, False,
                          "registered bound does not resolve to an importable function")
            )
            continue
        report.results.extend(
            fit_target(
                fn, bound, target=key, families=families, sizes=sizes, tolerance=tolerance
            )
        )
    return report
