"""Version information for the ``repro`` package."""

__version__ = "1.2.0"
