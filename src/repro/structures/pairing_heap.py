"""Meldable pairing min-heap.

A lighter alternative to the binomial heap for ParUF's neighbor-heaps: meld
is ``O(1)`` and delete-min is ``O(log n)`` amortized (two-pass pairing).
It does not support the paper's ``filter`` operation, so SLD-TreeContraction
cannot use it -- that trade-off is exactly the ablation in
``benchmarks/test_ablation.py``.

All operations are iterative (no recursion), so adversarial shapes such as
paths cannot hit Python's recursion limit.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound
from repro.errors import EmptyHeapError

__all__ = ["PairingHeap"]


class _PNode:
    __slots__ = ("key", "item", "child", "sibling")

    def __init__(self, key: int, item: object) -> None:
        self.key = key
        self.item = item
        self.child: _PNode | None = None
        self.sibling: _PNode | None = None


def _meld_nodes(a: _PNode | None, b: _PNode | None) -> _PNode | None:
    if a is None:
        return b
    if b is None:
        return a
    if b.key < a.key:
        a, b = b, a
    b.sibling = a.child
    a.child = b
    return a


class PairingHeap:
    """A meldable pairing min-heap over ``(key, item)`` pairs."""

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: _PNode | None = None
        self._size = 0

    def __len__(self) -> int:
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        return self._size

    @property
    def is_empty(self) -> bool:
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        return self._root is None

    @classmethod
    def from_items(cls, pairs: Iterable[tuple[int, object]]) -> "PairingHeap":
        heap = cls()
        for k, v in pairs:
            heap.insert(k, v)
        return heap

    @cost_bound(work="1", depth="1", vars=("s",), kind="structure_op",
                theorem="pairing heap: O(1) insert (one comparison-link)")
    def insert(self, key: int, item: object) -> None:
        if _access.RECORDER is not None:
            _access.record_write(self, "heap")
        self._root = _meld_nodes(self._root, _PNode(key, item))
        self._size += 1

    def find_min(self) -> tuple[int, object]:
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        if self._root is None:
            raise EmptyHeapError("heap is empty")
        return self._root.key, self._root.item

    @cost_bound(work="log(s)", depth="log(s)", vars=("s",), kind="structure_op",
                theorem="pairing heap: O(log s) amortized delete-min (two-pass pairing)")
    def delete_min(self) -> tuple[int, object]:
        if _access.RECORDER is not None:
            _access.record_write(self, "heap")
        root = self._root
        if root is None:
            raise EmptyHeapError("heap is empty")
        # Two-pass pairing: left-to-right pair adjacent children, then
        # right-to-left meld the pairs.
        pairs: list[_PNode] = []
        c = root.child
        while c is not None:
            first = c
            second = first.sibling
            if second is None:
                first.sibling = None
                pairs.append(first)
                break
            nxt = second.sibling
            first.sibling = None
            second.sibling = None
            pairs.append(_meld_nodes(first, second))  # type: ignore[arg-type]
            c = nxt
        new_root: _PNode | None = None
        for node in reversed(pairs):
            new_root = _meld_nodes(node, new_root)
        self._root = new_root
        self._size -= 1
        return root.key, root.item

    @cost_bound(work="1", depth="1", vars=("s",), kind="structure_op",
                theorem="pairing heap: O(1) meld (one comparison-link)")
    def meld(self, other: "PairingHeap") -> "PairingHeap":
        """Destructively meld ``other`` into ``self``; returns ``self``."""
        if other is self:
            raise ValueError("cannot meld a heap with itself")
        if _access.RECORDER is not None:
            _access.record_write(self, "heap")
        if _access.RECORDER is not None:
            _access.record_write(other, "heap")
        self._root = _meld_nodes(self._root, other._root)
        self._size += other._size
        other._root = None
        other._size = 0
        return self

    def items(self) -> Iterator[tuple[int, object]]:
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node.key, node.item
            c = node.child
            while c is not None:
                stack.append(c)
                c = c.sibling

    def _validate(self) -> None:
        """Check heap order and size (test hook)."""
        count = 0
        if self._root is not None:
            stack = [self._root]
            while stack:
                node = stack.pop()
                count += 1
                c = node.child
                while c is not None:
                    assert c.key > node.key, "heap order violated"
                    stack.append(c)
                    c = c.sibling
        assert count == self._size, f"size mismatch: counted {count}, recorded {self._size}"
