"""Meldable binomial min-heap with the paper's ``filter`` extension.

Implements the interface of paper Section 2.2:

* ``insert(key, item)``        -- ``O(log s)``
* ``delete_min()``             -- ``O(log s)``
* ``meld(other)``              -- ``O(log s)``, destructive on both inputs
* ``filter(threshold)``        -- remove and return every element with
  ``key < threshold``; ``O(k log s)`` work where ``k`` elements leave.
* ``filter_and_insert(key, item)`` -- insert then filter at that key
  (used by the optimized rake/compress, Algs. 3-4).

Keys are edge *ranks* -- distinct integers -- so min-heap order is strict.
The filter walks only nodes that leave plus their immediate surviving
children (heap order guarantees a node ``>= threshold`` has no descendant
``< threshold``), then rebuilds the surviving binomial trees with the
binary-carry grouping procedure the paper describes (counting-sort by
degree + pairwise linking).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound
from repro.errors import EmptyHeapError

__all__ = ["BinomialHeap"]


class _Node:
    __slots__ = ("key", "item", "degree", "child", "sibling")

    def __init__(self, key: int, item: object) -> None:
        self.key = key
        self.item = item
        self.degree = 0
        self.child: _Node | None = None  # leftmost (highest-degree) child
        self.sibling: _Node | None = None  # next in child chain / root list


def _link(a: _Node, b: _Node) -> _Node:
    """Link two binomial trees of equal degree; smaller key becomes root."""
    if b.key < a.key:
        a, b = b, a
    b.sibling = a.child
    a.child = b
    a.degree += 1
    return a


class BinomialHeap:
    """A meldable binomial min-heap over ``(key, item)`` pairs."""

    __slots__ = ("_roots", "_size")

    def __init__(self) -> None:
        # Root list kept sorted by strictly increasing degree.
        self._roots: list[_Node] = []
        self._size = 0

    # -- basics -------------------------------------------------------------
    def __len__(self) -> int:
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        return self._size

    @property
    def is_empty(self) -> bool:
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        return self._size == 0

    @classmethod
    def from_items(cls, pairs: Iterable[tuple[int, object]]) -> "BinomialHeap":
        """Build a heap from an iterable of ``(key, item)`` pairs."""
        heap = cls()
        trees = [_Node(k, v) for k, v in pairs]
        heap._size = len(trees)
        heap._roots = _rebuild(trees)
        return heap

    @cost_bound(work="log(s)", depth="log(s)", vars=("s",), kind="structure_op",
                theorem="Section 2.2: binomial-heap insert is O(log s)")
    def insert(self, key: int, item: object) -> None:
        if _access.RECORDER is not None:
            _access.record_write(self, "heap")
        node = _Node(key, item)
        self._roots = _merge_root_lists(self._roots, [node])
        self._size += 1

    def find_min(self) -> tuple[int, object]:
        """``(key, item)`` of the minimum element, without removing it."""
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        node = self._min_root()
        return node.key, node.item

    @cost_bound(work="log(s)", depth="log(s)", vars=("s",), kind="structure_op",
                theorem="Section 2.2: binomial-heap delete-min is O(log s)")
    def delete_min(self) -> tuple[int, object]:
        """Remove and return the minimum ``(key, item)``."""
        if _access.RECORDER is not None:
            _access.record_write(self, "heap")
        node = self._min_root()
        self._roots.remove(node)
        # Child chain is ordered by decreasing degree; reversing yields a
        # valid root list (increasing degree).
        children: list[_Node] = []
        c = node.child
        while c is not None:
            nxt = c.sibling
            c.sibling = None
            children.append(c)
            c = nxt
        children.reverse()
        self._roots = _merge_root_lists(self._roots, children)
        self._size -= 1
        return node.key, node.item

    @cost_bound(work="log(s)", depth="log(s)", vars=("s",), kind="structure_op",
                theorem="Section 2.2: meld of binomial heaps is O(log s)")
    def meld(self, other: "BinomialHeap") -> "BinomialHeap":
        """Destructively meld ``other`` into ``self``; returns ``self``.

        ``other`` is emptied; using it afterwards is a caller bug.
        """
        if other is self:
            raise ValueError("cannot meld a heap with itself")
        if _access.RECORDER is not None:
            _access.record_write(self, "heap")
        if _access.RECORDER is not None:
            _access.record_write(other, "heap")
        self._roots = _merge_root_lists(self._roots, other._roots)
        self._size += other._size
        other._roots = []
        other._size = 0
        return self

    @cost_bound(work="k * log(s)", depth="log(s)**2", vars=("k", "s"), kind="structure_op",
                theorem="Section 2.2: filter extracting k of s is O(k log s) work, O(log^2 s) depth")
    def filter(self, threshold: int) -> list[tuple[int, object]]:
        """Remove and return all elements with ``key < threshold``.

        The returned list is unsorted (callers sort by rank, as in the
        update-output step of Algs. 3-4).
        """
        if _access.RECORDER is not None:
            _access.record_write(self, "heap")
        removed: list[tuple[int, object]] = []
        survivors: list[_Node] = []
        for root in self._roots:
            if root.key >= threshold:
                survivors.append(root)
                continue
            stack = [root]
            while stack:
                node = stack.pop()
                removed.append((node.key, node.item))
                c = node.child
                node.child = None
                node.degree = 0
                while c is not None:
                    nxt = c.sibling
                    c.sibling = None
                    if c.key < threshold:
                        stack.append(c)
                    else:
                        survivors.append(c)
                    c = nxt
        if removed:
            self._roots = _rebuild(survivors)
            self._size -= len(removed)
        return removed

    @cost_bound(work="k * log(s)", depth="log(s)**2", vars=("k", "s"), kind="structure_op",
                theorem="Algorithms 3-4, lines 2/5: insert then filter at the same key")
    def filter_and_insert(self, key: int, item: object) -> list[tuple[int, object]]:
        """Insert ``(key, item)`` then filter at ``key`` (Algs. 3-4, line 2/5).

        Returns the filtered-out set ``S``; the inserted element itself
        remains in the heap as the new spine bottom.
        """
        self.insert(key, item)
        return self.filter(key)

    def items(self) -> Iterator[tuple[int, object]]:
        """Iterate all ``(key, item)`` pairs in arbitrary order."""
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        stack = list(self._roots)
        while stack:
            node = stack.pop()
            yield node.key, node.item
            c = node.child
            while c is not None:
                stack.append(c)
                c = c.sibling

    # -- internals ------------------------------------------------------------
    def _min_root(self) -> _Node:
        if not self._roots:
            raise EmptyHeapError("heap is empty")
        best = self._roots[0]
        for node in self._roots[1:]:
            if node.key < best.key:
                best = node
        return best

    def _validate(self) -> None:
        """Check all structural invariants (test hook)."""
        degrees = [r.degree for r in self._roots]
        assert degrees == sorted(degrees), "root degrees not increasing"
        assert len(set(degrees)) == len(degrees), "duplicate root degrees"
        count = 0
        for root in self._roots:
            count += _validate_tree(root)
        assert count == self._size, f"size mismatch: counted {count}, recorded {self._size}"


def _validate_tree(node: _Node) -> int:
    """Validate one binomial tree; return its element count."""
    # Children have degrees degree-1, degree-2, ..., 0 in chain order.
    expected = node.degree - 1
    count = 1
    c = node.child
    while c is not None:
        assert c.key > node.key, "heap order violated"
        assert c.degree == expected, f"child degree {c.degree}, expected {expected}"
        count += _validate_tree(c)
        expected -= 1
        c = c.sibling
    assert expected == -1, "wrong number of children"
    return count


def _merge_root_lists(a: list[_Node], b: list[_Node]) -> list[_Node]:
    """Merge two root lists, linking equal degrees (binary addition).

    Implemented via the same degree-bucket carry procedure used for
    post-filter rebuilds; with ``O(log s)`` trees per input list this is the
    standard ``O(log s)`` binomial meld.
    """
    if not a:
        return b
    if not b:
        return a
    return _rebuild(a + b)


def _rebuild(trees: list[_Node]) -> list[_Node]:
    """Rebuild a root list from arbitrary valid binomial trees.

    This is the paper's heap-rebuild step after a filter: group the
    surviving subtrees by degree (counting sort) and link within each degree
    with binary carries, restoring one-tree-per-degree.
    """
    if not trees:
        return []
    buckets: dict[int, list[_Node]] = {}
    max_deg = 0
    for t in trees:
        buckets.setdefault(t.degree, []).append(t)
        if t.degree > max_deg:
            max_deg = t.degree
    roots: list[_Node] = []
    d = 0
    while d <= max_deg:
        bucket = buckets.get(d, [])
        while len(bucket) >= 2:
            linked = _link(bucket.pop(), bucket.pop())
            buckets.setdefault(d + 1, []).append(linked)
            if d + 1 > max_deg:
                max_deg = d + 1
        if bucket:
            roots.append(bucket[0])
        d += 1
    return roots
