"""Slab-allocated, index-based binomial heap pool (the flat-array twin of
:class:`repro.structures.binomial_heap.BinomialHeap`).

One :class:`HeapPool` owns every node of every heap used by a single
algorithm run.  A node is an index into five parallel int32 slabs --
``key``/``item``/``degree``/``child``/``sibling`` -- and a *heap* is just
the index of the head of its root list (:data:`EMPTY` for the empty
heap), so creating, melding and destroying heaps allocates no Python
objects at all.  The slabs are ``array('i')`` buffers: scalar indexing
yields native ints (no per-access numpy boxing), which is what makes the
pool competitive inside the tree-contraction merge loop.

Semantics are exactly those of ``BinomialHeap`` (paper Section 2.2):

* root lists are kept sorted by strictly increasing degree;
* ``meld`` and post-``filter`` rebuilds use the binary-carry grouping
  procedure (bucket by degree, link equal degrees pairwise, carry);
* ``filter`` visits only the nodes that leave plus their immediate
  surviving children -- heap order guarantees a node ``>= threshold``
  hides nothing below the threshold.

Allocation is a bump pointer: each element is inserted exactly once per
SLD run (one ``filter_and_insert`` per contracted vertex), so a pool
sized to the edge count never recycles nodes and never overflows.

Overflow bound: keys are edge ranks, items are edge ids and node indices
are bounded by ``capacity``, so int32 slabs are safe for ``m < 2**31``
edges -- far beyond the int64 safety bound of the vectorized contraction
builder itself (see ``repro/contraction/fast.py``).
"""

from __future__ import annotations

from array import array

from repro.checkers.bounds import cost_bound
from repro.checkers.contracts import slab_contract

__all__ = ["HeapPool", "EMPTY"]

#: Shared slab declaration of every public method: the five parallel
#: int32 ('i') slabs plus the scalar handle/key/item arguments.
_SLABS = {
    "self.key": "i",
    "self.item": "i",
    "self.degree": "i",
    "self.child": "i",
    "self.sibling": "i",
}

#: Handle of the empty heap.
EMPTY = -1


class HeapPool:
    """A pool of binomial min-heaps over five parallel int32 slabs.

    Heap handles returned by the mutating operations *replace* the handles
    passed in (the structures are destructive, as with ``BinomialHeap``);
    using a stale handle is a caller bug.
    """

    __slots__ = ("key", "item", "degree", "child", "sibling", "capacity", "_next")

    def __init__(self, capacity: int) -> None:
        zeros = array("i", bytes(array("i").itemsize * max(capacity, 1)))
        self.key = array("i", zeros)
        self.item = array("i", zeros)
        self.degree = array("i", zeros)
        self.child = array("i", zeros)
        self.sibling = array("i", zeros)
        self.capacity = max(capacity, 1)
        self._next = 0

    # -- allocation ---------------------------------------------------------
    @slab_contract(
        dtypes=_SLABS | {"key": "int", "item": "int"},
        writes=("self.key", "self.item", "self.degree", "self.child", "self.sibling"),
    )
    def alloc(self, key: int, item: int) -> int:
        """Bump-allocate one singleton node; returns its index."""
        i = self._next
        self._next = i + 1
        self.key[i] = key
        self.item[i] = item
        self.degree[i] = 0
        self.child[i] = -1
        self.sibling[i] = -1
        return i

    @property
    def allocated(self) -> int:
        """Number of nodes handed out so far (test/diagnostic hook)."""
        return self._next

    # -- queries ------------------------------------------------------------
    @slab_contract(dtypes=_SLABS | {"heap": "int"})
    def roots(self, heap: int) -> list[int]:
        """The root list of ``heap`` as node indices (increasing degree)."""
        sibling = self.sibling
        out: list[int] = []
        while heap != -1:  # noqa: RPR102
            out.append(heap)
            heap = sibling[heap]
        return out

    @slab_contract(dtypes=_SLABS | {"heap": "int"})
    def find_min(self, heap: int) -> tuple[int, int]:
        """``(key, item)`` of the minimum element of ``heap``."""
        from repro.errors import EmptyHeapError

        if heap == -1:
            raise EmptyHeapError("heap is empty")
        key = self.key
        best = heap
        for r in self.roots(heap)[1:]:
            if key[r] < key[best]:
                best = r
        return key[best], self.item[best]

    @slab_contract(dtypes=_SLABS | {"heap": "int"})
    def size(self, heap: int) -> int:
        """Element count of ``heap`` (sum of ``2**degree`` over roots)."""
        degree = self.degree
        return sum(1 << degree[r] for r in self.roots(heap))

    @slab_contract(dtypes=_SLABS | {"heap": "int"})
    def items(self, heap: int) -> list[tuple[int, int]]:
        """All ``(key, item)`` pairs of ``heap``, in arbitrary order."""
        key = self.key
        item = self.item
        child = self.child
        sibling = self.sibling
        stack = self.roots(heap)
        out: list[tuple[int, int]] = []
        while stack:  # noqa: RPR102
            node = stack.pop()
            out.append((key[node], item[node]))
            c = child[node]
            while c != -1:  # noqa: RPR102
                stack.append(c)
                c = sibling[c]
        return out

    # -- mutating operations ------------------------------------------------
    @cost_bound(work="log(s)", depth="log(s)", vars=("s",), kind="structure_op",
                theorem="Section 2.2: binomial-heap insert is O(log s)")
    @slab_contract(
        dtypes=_SLABS | {"heap": "int", "key": "int", "item": "int"},
        writes=("self.key", "self.item", "self.degree", "self.child", "self.sibling"),
    )
    def insert(self, heap: int, key: int, item: int) -> int:
        """Insert ``(key, item)``; returns the new heap handle."""
        node = self.alloc(key, item)
        if heap == -1:
            return node
        return self._rebuild(self.roots(heap) + [node])

    @cost_bound(work="log(s)", depth="log(s)", vars=("s",), kind="structure_op",
                theorem="Section 2.2: meld of binomial heaps is O(log s)")
    @slab_contract(
        dtypes=_SLABS | {"a": "int", "b": "int"},
        writes=("self.degree", "self.child", "self.sibling"),
    )
    def meld(self, a: int, b: int) -> int:
        """Meld two heaps; both input handles are consumed."""
        if a == -1:
            return b
        if b == -1:
            return a
        return self._rebuild(self.roots(a) + self.roots(b))

    @cost_bound(work="k * log(s)", depth="log(s)**2", vars=("k", "s"), kind="structure_op",
                theorem="Section 2.2: filter extracting k of s is O(k log s) work")
    @slab_contract(
        dtypes=_SLABS | {"heap": "int", "threshold": "int"},
        writes=("self.degree", "self.child", "self.sibling"),
    )
    def filter(self, heap: int, threshold: int) -> tuple[int, list[tuple[int, int]]]:
        """Remove all elements with ``key < threshold``.

        Returns ``(new_handle, removed)``; ``removed`` is unsorted, as with
        ``BinomialHeap.filter`` (callers sort by rank).
        """
        if heap == -1:
            return -1, []
        key = self.key
        item = self.item
        degree = self.degree
        child = self.child
        sibling = self.sibling
        removed: list[tuple[int, int]] = []
        survivors: list[int] = []
        root = heap
        while root != -1:  # noqa: RPR102
            nxt = sibling[root]
            if key[root] >= threshold:
                survivors.append(root)
            else:
                stack = [root]
                while stack:  # noqa: RPR102
                    node = stack.pop()
                    removed.append((key[node], item[node]))
                    c = child[node]
                    child[node] = -1
                    degree[node] = 0
                    while c != -1:  # noqa: RPR102
                        cn = sibling[c]
                        sibling[c] = -1
                        if key[c] < threshold:
                            stack.append(c)
                        else:
                            survivors.append(c)
                        c = cn
            root = nxt
        if not removed:
            return heap, removed
        return self._rebuild(survivors), removed

    @cost_bound(work="k * log(s)", depth="log(s)**2", vars=("k", "s"), kind="structure_op",
                theorem="Algorithms 3-4, lines 2/5: insert then filter at the same key")
    @slab_contract(
        dtypes=_SLABS | {"heap": "int", "key": "int", "item": "int"},
        writes=("self.key", "self.item", "self.degree", "self.child", "self.sibling"),
    )
    def filter_and_insert(self, heap: int, key: int, item: int) -> tuple[int, list[tuple[int, int]]]:
        """Insert ``(key, item)`` then filter at ``key``; the inserted node
        stays as the new spine bottom.  Fused so the common case (empty or
        all-surviving heap) touches each root once."""
        node = self.alloc(key, item)
        if heap == -1:
            return node, []
        keys = self.key
        itemv = self.item
        degree = self.degree
        child = self.child
        sibling = self.sibling
        removed: list[tuple[int, int]] = []
        survivors: list[int] = [node]
        root = heap
        while root != -1:  # noqa: RPR102
            nxt = sibling[root]
            if keys[root] >= key:
                survivors.append(root)
            else:
                stack = [root]
                while stack:  # noqa: RPR102
                    nd = stack.pop()
                    removed.append((keys[nd], itemv[nd]))
                    c = child[nd]
                    child[nd] = -1
                    degree[nd] = 0
                    while c != -1:  # noqa: RPR102
                        cn = sibling[c]
                        sibling[c] = -1
                        if keys[c] < key:
                            stack.append(c)
                        else:
                            survivors.append(c)
                        c = cn
            root = nxt
        return self._rebuild(survivors), removed

    # -- internals ----------------------------------------------------------
    def _rebuild(self, nodes: list[int]) -> int:
        """Binary-carry rebuild: bucket by degree, link equal degrees
        pairwise (smaller key becomes root), carry into the next bucket;
        relink the surviving roots by increasing degree."""
        if not nodes:
            return -1
        key = self.key
        degree = self.degree
        child = self.child
        sibling = self.sibling
        buckets: dict[int, list[int]] = {}
        max_deg = 0
        for t in nodes:
            d = degree[t]
            b = buckets.get(d)
            if b is None:
                buckets[d] = [t]
            else:
                b.append(t)
            if d > max_deg:
                max_deg = d
        roots: list[int] = []
        d = 0
        while d <= max_deg:  # noqa: RPR102
            bucket = buckets.get(d)
            if bucket:
                while len(bucket) >= 2:  # noqa: RPR102
                    a = bucket.pop()
                    b = bucket.pop()
                    if key[b] < key[a]:
                        a, b = b, a
                    sibling[b] = child[a]
                    child[a] = b
                    degree[a] = d + 1
                    nb = buckets.get(d + 1)
                    if nb is None:
                        buckets[d + 1] = [a]
                    else:
                        nb.append(a)
                    if d + 1 > max_deg:
                        max_deg = d + 1
                if bucket:
                    roots.append(bucket[0])
            d += 1
        head = -1
        for t in reversed(roots):
            sibling[t] = head
            head = t
        return head

    def _validate(self, heap: int) -> None:
        """Check all structural invariants of one heap (test hook)."""
        degree = self.degree
        roots = self.roots(heap)
        degrees = [degree[r] for r in roots]
        assert degrees == sorted(degrees), "root degrees not increasing"
        assert len(set(degrees)) == len(degrees), "duplicate root degrees"
        for root in roots:
            self._validate_tree(root)

    def _validate_tree(self, node: int) -> int:
        """Validate one binomial tree; return its element count."""
        key = self.key
        degree = self.degree
        expected = degree[node] - 1
        count = 1
        c = self.child[node]
        while c != -1:  # noqa: RPR102
            assert key[c] > key[node], "heap order violated"
            assert degree[c] == expected, f"child degree {degree[c]}, expected {expected}"
            count += self._validate_tree(c)
            expected -= 1
            c = self.sibling[c]
        assert expected == -1, "wrong number of children"
        return count
