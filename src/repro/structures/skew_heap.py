"""Meldable skew min-heap (top-down, iterative).

The third neighbor-heap option for ParUF's ablation: meld is ``O(log n)``
amortized with no balance bookkeeping at all.  The merge walks the two
right spines iteratively, always swapping children after attaching, which
is the classic top-down skew-heap merge.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound
from repro.errors import EmptyHeapError

__all__ = ["SkewHeap"]


class _SNode:
    __slots__ = ("key", "item", "left", "right")

    def __init__(self, key: int, item: object) -> None:
        self.key = key
        self.item = item
        self.left: _SNode | None = None
        self.right: _SNode | None = None


def _merge(a: _SNode | None, b: _SNode | None) -> _SNode | None:
    """Iterative top-down skew merge of two heap-ordered trees."""
    if a is None:
        return b
    if b is None:
        return a
    if b.key < a.key:
        a, b = b, a
    root = a
    # Descend the merge path, at each step attaching the loser to the
    # current node's right slot and then swapping children (the skew twist).
    while True:
        a.left, a.right = a.right, a.left  # swap first; merge continues on left
        if a.left is None:
            a.left = b
            break
        if b.key < a.left.key:
            a.left, b = b, a.left
        a = a.left
    return root


class SkewHeap:
    """A meldable skew min-heap over ``(key, item)`` pairs."""

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: _SNode | None = None
        self._size = 0

    def __len__(self) -> int:
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        return self._size

    @property
    def is_empty(self) -> bool:
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        return self._root is None

    @classmethod
    def from_items(cls, pairs: Iterable[tuple[int, object]]) -> "SkewHeap":
        heap = cls()
        for k, v in pairs:
            heap.insert(k, v)
        return heap

    @cost_bound(work="log(s)", depth="log(s)", vars=("s",), kind="structure_op",
                theorem="skew heap: O(log s) amortized insert (singleton merge)")
    def insert(self, key: int, item: object) -> None:
        if _access.RECORDER is not None:
            _access.record_write(self, "heap")
        self._root = _merge(self._root, _SNode(key, item))
        self._size += 1

    def find_min(self) -> tuple[int, object]:
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        if self._root is None:
            raise EmptyHeapError("heap is empty")
        return self._root.key, self._root.item

    @cost_bound(work="log(s)", depth="log(s)", vars=("s",), kind="structure_op",
                theorem="skew heap: O(log s) amortized delete-min (merge of subtrees)")
    def delete_min(self) -> tuple[int, object]:
        if _access.RECORDER is not None:
            _access.record_write(self, "heap")
        root = self._root
        if root is None:
            raise EmptyHeapError("heap is empty")
        self._root = _merge(root.left, root.right)
        self._size -= 1
        return root.key, root.item

    @cost_bound(work="log(s)", depth="log(s)", vars=("s",), kind="structure_op",
                theorem="skew heap: O(log s) amortized meld (right-spine walk)")
    def meld(self, other: "SkewHeap") -> "SkewHeap":
        """Destructively meld ``other`` into ``self``; returns ``self``."""
        if other is self:
            raise ValueError("cannot meld a heap with itself")
        if _access.RECORDER is not None:
            _access.record_write(self, "heap")
        if _access.RECORDER is not None:
            _access.record_write(other, "heap")
        self._root = _merge(self._root, other._root)
        self._size += other._size
        other._root = None
        other._size = 0
        return self

    def items(self) -> Iterator[tuple[int, object]]:
        if _access.RECORDER is not None:
            _access.record_read(self, "heap")
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node.key, node.item
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    def _validate(self) -> None:
        """Check heap order and size (test hook)."""
        count = 0
        if self._root is not None:
            stack = [self._root]
            while stack:
                node = stack.pop()
                count += 1
                for c in (node.left, node.right):
                    if c is not None:
                        assert c.key > node.key, "heap order violated"
                        stack.append(c)
        assert count == self._size, f"size mismatch: counted {count}, recorded {self._size}"
