"""Array-based union-find with path compression and union by size.

Used by SeqUF (Kruskal-style merging), ParUF (Alg. 5's ``F``), the MST
algorithms, and the brute-force test oracle.  Operation counters feed the
work accounting (each find charges its true traversal length).

Race instrumentation: when a :mod:`repro.checkers.access` recorder is
installed, every ``parent``/``size`` cell touched is reported to the open
task's shadow sets -- including the ``parent`` writes of path halving, so
two same-round tasks whose finds overlap are detected.  The statistics
counters (``finds``/``find_steps``/``unions``) are exempt by design: a
real implementation keeps them in per-thread or atomic counters.
"""

from __future__ import annotations

import numpy as np

from repro.checkers import access as _access
from repro.checkers.bounds import cost_bound

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint sets over elements ``0..n-1``.

    ``find`` uses path halving (one-pass compression); ``union`` is by size
    and returns the surviving root, which is what the dendrogram algorithms
    key their per-cluster state on.
    """

    __slots__ = ("_parent", "_size", "n", "num_sets", "finds", "find_steps", "unions")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"element count must be non-negative, got {n}")
        self.n = n
        self._parent = np.arange(n, dtype=np.int64)
        self._size = np.ones(n, dtype=np.int64)
        self.num_sets = n
        self.finds = 0
        self.find_steps = 0
        self.unions = 0

    @cost_bound(work="log(n)", depth="log(n)", vars=("n",), kind="structure_op",
                theorem="path halving + union by size: O(log n) worst-case find")
    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path halving)."""
        parent = self._parent
        self.finds += 1
        steps = 0
        if _access.RECORDER is None:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
                steps += 1
        else:
            # Shadow-recorded variant: identical traversal and compression,
            # with every parent-cell read/write reported.
            while True:
                p = int(parent[x])
                _access.record_read(self, ("parent", int(x)))
                if p == x:
                    break
                gp = int(parent[p])
                _access.record_read(self, ("parent", p))
                parent[x] = gp
                _access.record_write(self, ("parent", int(x)))
                x = gp
                steps += 1
        self.find_steps += steps
        return int(x)

    @cost_bound(work="log(n)", depth="log(n)", vars=("n",), kind="structure_op",
                theorem="union by size: O(log n) worst case (two finds + O(1) link)")
    def union(self, a: int, b: int) -> int:
        """Merge the sets containing ``a`` and ``b``; return the new root.

        ``a`` and ``b`` may be arbitrary members (roots are found first).
        Raises ``ValueError`` if they are already in the same set -- for tree
        edges this indicates a cycle, which is always a caller bug.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            raise ValueError(f"union of already-connected elements {a} and {b}")
        size = self._size
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        if _access.RECORDER is not None:
            _access.record_read(self, ("size", ra))
            _access.record_read(self, ("size", rb))
            _access.record_write(self, ("parent", rb))
            _access.record_write(self, ("size", ra))
        self._parent[rb] = ra
        size[ra] += size[rb]
        self.unions += 1
        self.num_sets -= 1
        return int(ra)

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def set_size(self, x: int) -> int:
        """Number of elements in ``x``'s set."""
        root = self.find(x)
        if _access.RECORDER is not None:
            _access.record_read(self, ("size", root))
        return int(self._size[root])

    @cost_bound(work="k * log(n)", depth="log(n)", vars=("k", "n"), kind="structure_op",
                theorem="k independent finds run as one parallel batch of "
                "pointer-jumping rounds; each round is a vectorized gather")
    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Representatives of every element of ``xs``, as one batch.

        Semantically equivalent to ``[self.find(x) for x in xs]`` but
        vectorized: all queries chase parent pointers simultaneously, one
        numpy gather per round, and finish with full path compression
        (``parent[x] = root(x)``) for every queried element.  The
        ``finds``/``find_steps`` statistics are charged in aggregate (one
        find per query, one step per hop actually taken).

        Under an installed shadow-access recorder this falls back to
        per-element :meth:`find` so the recorded read/write sets stay exact.
        """
        xs = np.asarray(xs, dtype=np.int64)
        if _access.RECORDER is not None:
            return np.fromiter(
                (self.find(int(x)) for x in xs), dtype=np.int64, count=xs.size
            )
        self.finds += xs.size
        if xs.size == 0:
            return np.empty(0, dtype=np.int64)
        parent = self._parent
        roots = parent[xs]
        while True:
            nxt = parent[roots]
            moving = nxt != roots
            hops = int(np.count_nonzero(moving))
            if hops == 0:
                break
            self.find_steps += hops
            roots = nxt
        parent[xs] = roots
        return roots

    def roots(self) -> np.ndarray:
        """Array of current set representatives (one per set).

        A post-hoc reporting helper: the traversal is read-only (no path
        compression), charges nothing to the ``finds``/``find_steps``
        statistics, and reports nothing to an installed shadow-access
        recorder -- calling it must not perturb the run it summarizes.
        """
        parent = self._parent
        roots = parent[parent]
        while True:
            nxt = parent[roots]
            if (nxt == roots).all():
                break
            roots = nxt
        return np.unique(roots)
