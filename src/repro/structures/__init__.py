"""Core data structures: union-find and meldable heaps.

The paper's algorithms need two substrates beyond arrays:

* **Union-Find** with path compression (SeqUF's cluster bookkeeping, and
  ParUF's -- which, per Section 4.1, may be any *sequential* union-find
  because only local-minima edges are processed concurrently).
* **Meldable min-heaps** keyed by edge rank.  Binomial heaps additionally
  support the parallel ``filter`` operation of Section 2.2, required by
  SLD-TreeContraction; pairing and skew heaps are provided as lighter-weight
  alternatives for ParUF's neighbor-heaps (an ablation in the benchmarks).
"""

from repro.structures.binomial_heap import BinomialHeap
from repro.structures.heap_pool import EMPTY, HeapPool
from repro.structures.pairing_heap import PairingHeap
from repro.structures.skew_heap import SkewHeap
from repro.structures.unionfind import UnionFind

__all__ = [
    "UnionFind",
    "BinomialHeap",
    "HeapPool",
    "EMPTY",
    "PairingHeap",
    "SkewHeap",
    "make_heap",
]


def make_heap(kind: str) -> "BinomialHeap | PairingHeap | SkewHeap":
    """Construct an empty meldable heap by name (``binomial``/``pairing``/``skew``)."""
    kinds: dict[str, type[BinomialHeap] | type[PairingHeap] | type[SkewHeap]] = {
        "binomial": BinomialHeap,
        "pairing": PairingHeap,
        "skew": SkewHeap,
    }
    try:
        return kinds[kind]()
    except KeyError:
        raise ValueError(f"unknown heap kind {kind!r}; expected one of {sorted(kinds)}") from None
