"""Small shared helpers used across the package."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "as_int_array",
    "as_float_array",
    "log2ceil",
    "geomean",
    "check_random_state",
]


def as_int_array(values: Iterable[int] | np.ndarray, name: str = "array") -> np.ndarray:
    """Convert ``values`` to a 1-D ``int64`` NumPy array.

    Raises ``ValueError`` if the input is not integral or not 1-D.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if not np.all(arr == np.floor(arr)):
            raise ValueError(f"{name} must contain integers")
    return arr.astype(np.int64, copy=False)


def as_float_array(values: Iterable[float] | np.ndarray, name: str = "array") -> np.ndarray:
    """Convert ``values`` to a 1-D ``float64`` NumPy array."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def log2ceil(n: int) -> int:
    """Smallest ``k`` with ``2**k >= n`` (``0`` for ``n <= 1``).

    Used for spawn-overhead depth charges in the binary-forking model.
    """
    if n <= 1:
        return 0
    return int(math.ceil(math.log2(n)))


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (``nan`` for empty input)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return float("nan")
    return float(math.exp(sum(math.log(v) for v in vals) / len(vals)))


def check_random_state(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
