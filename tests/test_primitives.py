"""Parallel primitives: scans, sorts, reduce, pack -- against NumPy refs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.primitives.pack import pack, pack_indices
from repro.primitives.reduce import parallel_reduce
from repro.primitives.scan import exclusive_scan, inclusive_scan, scan_cost
from repro.primitives.sort import (
    comparison_sort_cost,
    counting_sort,
    rank_sort_indices,
    sort_by_key,
)
from repro.runtime.cost_model import CostTracker, WorkDepth

int_arrays = hnp.arrays(np.int64, hnp.array_shapes(max_dims=1, max_side=200), elements=st.integers(-1000, 1000))


class TestScan:
    @settings(max_examples=50, deadline=None)
    @given(arr=int_arrays)
    def test_inclusive_matches_cumsum(self, arr):
        np.testing.assert_array_equal(inclusive_scan(arr), np.cumsum(arr))

    @settings(max_examples=50, deadline=None)
    @given(arr=int_arrays)
    def test_exclusive_shifts_inclusive(self, arr):
        offsets, total = exclusive_scan(arr)
        assert total == arr.sum()
        if arr.size:
            np.testing.assert_array_equal(offsets[1:], np.cumsum(arr)[:-1])
            assert offsets[0] == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            inclusive_scan(np.zeros((2, 2)))

    def test_charges_log_depth(self):
        tracker = CostTracker()
        inclusive_scan(np.arange(1024), tracker=tracker)
        assert tracker.work == 2048
        assert tracker.depth == 20  # 2 * log2(1024)

    def test_scan_cost_small(self):
        assert scan_cost(0) == WorkDepth(0.0, 0.0)
        assert scan_cost(1) == WorkDepth(1.0, 1.0)


class TestSort:
    @settings(max_examples=50, deadline=None)
    @given(arr=int_arrays)
    def test_sort_by_key(self, arr):
        np.testing.assert_array_equal(sort_by_key(arr), np.sort(arr, kind="stable"))

    @settings(max_examples=50, deadline=None)
    @given(arr=int_arrays)
    def test_sort_carries_values_stably(self, arr):
        values = np.arange(arr.size)
        keys, vals = sort_by_key(arr, values)
        # stability: equal keys keep original index order
        for k in np.unique(keys):
            idx = vals[keys == k]
            assert (np.diff(idx) > 0).all()

    def test_sort_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            sort_by_key(np.arange(3), np.arange(4))

    @settings(max_examples=50, deadline=None)
    @given(arr=int_arrays)
    def test_rank_sort_indices(self, arr):
        order = rank_sort_indices(arr)
        np.testing.assert_array_equal(arr[order], np.sort(arr, kind="stable"))

    def test_comparison_cost_shape(self):
        c = comparison_sort_cost(1024)
        assert c.work == 1024 * 10
        assert c.depth == 100


class TestCountingSort:
    @settings(max_examples=50, deadline=None)
    @given(
        keys=hnp.arrays(np.int64, hnp.array_shapes(max_dims=1, max_side=100), elements=st.integers(0, 15))
    )
    def test_matches_numpy(self, keys):
        np.testing.assert_array_equal(counting_sort(keys, 16), np.sort(keys, kind="stable"))

    def test_values_grouped_stably(self):
        keys = np.array([2, 0, 2, 1, 0])
        vals = np.array([10, 11, 12, 13, 14])
        k, v = counting_sort(keys, 3, values=vals)
        np.testing.assert_array_equal(k, [0, 0, 1, 2, 2])
        np.testing.assert_array_equal(v, [11, 14, 13, 10, 12])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            counting_sort(np.array([0, 5]), 5)
        with pytest.raises(ValueError, match="out of range"):
            counting_sort(np.array([-1]), 5)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError, match="key_range"):
            counting_sort(np.array([0]), 0)

    def test_charges_linear_work(self):
        tracker = CostTracker()
        counting_sort(np.zeros(100, dtype=np.int64), 8, tracker=tracker)
        assert tracker.work == 108


class TestReduce:
    @settings(max_examples=50, deadline=None)
    @given(items=st.lists(st.integers(-100, 100), min_size=1, max_size=64))
    def test_sum_matches(self, items):
        assert parallel_reduce(items, lambda a, b: a + b) == sum(items)

    @settings(max_examples=50, deadline=None)
    @given(items=st.lists(st.text(max_size=3), min_size=1, max_size=32))
    def test_non_commutative_order_preserved(self, items):
        """Concatenation is associative but not commutative: the balanced
        reduction must preserve left-to-right order."""
        assert parallel_reduce(items, lambda a, b: a + b) == "".join(items)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel_reduce([], lambda a, b: a + b)

    def test_cost_has_log_rounds(self):
        tracker = CostTracker()
        parallel_reduce(
            list(range(64)),
            lambda a, b: a + b,
            tracker=tracker,
            op_cost=lambda a, b: WorkDepth(1.0, 1.0),
        )
        assert tracker.work == 63  # one combine per internal node
        assert tracker.depth <= 6 * (1 + 6)  # 6 rounds x (combine + spawn)


class TestPack:
    @settings(max_examples=50, deadline=None)
    @given(arr=int_arrays)
    def test_pack_matches_boolean_indexing(self, arr):
        flags = arr % 2 == 0
        np.testing.assert_array_equal(pack(arr, flags), arr[flags])

    @settings(max_examples=50, deadline=None)
    @given(arr=int_arrays)
    def test_pack_indices(self, arr):
        flags = arr > 0
        np.testing.assert_array_equal(pack_indices(flags), np.flatnonzero(flags))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            pack(np.arange(3), np.array([True]))
