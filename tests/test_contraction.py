"""Tree contraction and RC-tree invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.contraction.rctree import KIND_COMPRESS, KIND_RAKE, KIND_ROOT
from repro.contraction.schedule import CompressEvent, RakeEvent, build_rc_tree
from repro.runtime.cost_model import CostTracker
from repro.trees.weights import apply_scheme


@settings(max_examples=60, deadline=None)
@given(tree=weighted_trees(max_n=40), seed=st.integers(0, 2**31 - 1))
def test_contraction_is_legal(tree, seed):
    """Replay every recorded round and assert all legality conditions
    (degree constraints, independence, lesser-rank compress direction,
    vertex-edge bijection)."""
    rct = build_rc_tree(tree, seed=seed)
    rct.validate(tree)


@settings(max_examples=40, deadline=None)
@given(tree=weighted_trees(max_n=40), seed=st.integers(0, 2**31 - 1))
def test_every_vertex_contracts_once(tree, seed):
    rct = build_rc_tree(tree, seed=seed)
    non_root = [v for v in range(tree.n) if v != rct.root]
    assert all(rct.kind[v] in (KIND_RAKE, KIND_COMPRESS) for v in non_root)
    assert rct.kind[rct.root] == KIND_ROOT
    assert rct.edge[rct.root] == -1
    assert sorted(int(e) for e in rct.edge if e >= 0) == list(range(tree.m))


@settings(max_examples=30, deadline=None)
@given(tree=weighted_trees(max_n=40), seed=st.integers(0, 2**31 - 1))
def test_parents_contract_later(tree, seed):
    """An rcnode's parent must still be alive when the child contracts."""
    rct = build_rc_tree(tree, seed=seed)
    for v in range(tree.n):
        if v != rct.root:
            assert rct.round_of[int(rct.parent[v])] > rct.round_of[v]


@pytest.mark.parametrize("kind", ["path", "star", "knuth", "random", "caterpillar", "binary"])
def test_logarithmic_rounds(kind):
    """Round count must be O(log n) (randomized Miller-Reif bound)."""
    n = 4096
    tree = make_tree(kind, n, seed=0).with_weights(apply_scheme("perm", n - 1, seed=1))
    rct = build_rc_tree(tree, seed=0)
    assert rct.num_rounds <= 8 * math.log2(n)


@pytest.mark.parametrize("kind", ["path", "star", "knuth"])
def test_rc_tree_height_logarithmic(kind):
    n = 4096
    tree = make_tree(kind, n, seed=0).with_weights(apply_scheme("perm", n - 1, seed=1))
    rct = build_rc_tree(tree, seed=0)
    assert rct.height() <= 10 * math.log2(n)


def test_star_contracts_in_one_rake_round_plus_final():
    tree = make_tree("star", 100)
    rct = build_rc_tree(tree, seed=0)
    kinds = [k for k, _ in rct.rounds]
    assert kinds[0] == "rake"
    assert len(rct.rounds[0][1]) == 99  # all leaves rake at once


def test_path_uses_compress():
    tree = make_tree("path", 500).with_weights(apply_scheme("perm", 499, seed=0))
    rct = build_rc_tree(tree, seed=0)
    assert any(k == "compress" and events for k, events in rct.rounds)


def test_compress_direction_is_lesser_rank():
    tree = make_tree("path", 300).with_weights(apply_scheme("perm", 299, seed=2))
    rct = build_rc_tree(tree, seed=0)
    ranks = tree.ranks
    for kind, events in rct.rounds:
        if kind != "compress":
            continue
        for ev in events:
            assert isinstance(ev, CompressEvent)
            # the vertex merges toward the lesser-rank side (edge ids denote
            # surviving identities, so endpoint checks live in rct.validate)
            assert ranks[ev.e1] < ranks[ev.e2]


def test_single_vertex_tree():
    tree = make_tree("path", 1)
    rct = build_rc_tree(tree)
    assert rct.root == 0
    assert rct.num_rounds == 0


def test_two_vertex_tree_rakes_by_priority():
    tree = make_tree("path", 2)
    rct = build_rc_tree(tree, seed=0)
    assert rct.num_rounds == 1
    kind, events = rct.rounds[0]
    assert kind == "rake"
    assert len(events) == 1
    assert isinstance(events[0], RakeEvent)


def test_deterministic_given_seed():
    tree = make_tree("knuth", 200, seed=5).with_weights(apply_scheme("perm", 199, seed=6))
    a = build_rc_tree(tree, seed=3)
    b = build_rc_tree(tree, seed=3)
    np.testing.assert_array_equal(a.parent, b.parent)
    np.testing.assert_array_equal(a.edge, b.edge)


def test_tracker_charges_rounds():
    tree = make_tree("path", 256).with_weights(apply_scheme("perm", 255, seed=1))
    tracker = CostTracker()
    rct = build_rc_tree(tree, seed=0, tracker=tracker)
    assert tracker.work >= tree.n  # every vertex scanned at least once
    # Depth is O(rounds * log n)
    assert tracker.depth <= (rct.num_rounds + 2) * (math.log2(tree.n) + 2)


def test_vertex_of_edge_inverse():
    tree = make_tree("random", 60, seed=7).with_weights(apply_scheme("perm", 59, seed=8))
    rct = build_rc_tree(tree, seed=0)
    voe = rct.vertex_of_edge()
    for e in range(tree.m):
        assert rct.edge[int(voe[e])] == e
