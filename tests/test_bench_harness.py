"""Bench harness plumbing: inputs registry, instrumented runs, simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import (
    AlgoRun,
    format_table,
    fmt_seconds,
    model_time,
    run_algorithm,
    simulated_time,
)
from repro.bench.inputs import (
    BENCH_THREADS,
    SYNTHETIC_FAMILIES,
    bench_sizes,
    make_input,
    realworld_inputs,
)
from repro.runtime.instrumentation import PhaseCost
from repro.trees.validation import validate_tree_edges


class TestInputs:
    @pytest.mark.parametrize("family", SYNTHETIC_FAMILIES)
    def test_every_family_builds(self, family):
        tree = make_input(family, 300, seed=1)
        assert tree.n == 300
        validate_tree_edges(tree.n, tree.edges)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="input family"):
            make_input("torus", 100)

    def test_weight_scheme_applied(self):
        perm = make_input("path-perm", 100, seed=0)
        unit = make_input("path", 100, seed=0)
        assert not np.array_equal(perm.weights, unit.weights)
        assert (unit.weights == 1.0).all()

    def test_low_par_family(self):
        tree = make_input("path-low-par", 50, seed=0)
        w = tree.weights
        assert (np.diff(w[:24]) > 0).all()

    def test_sizes_scale_with_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "3")
        assert bench_sizes() == (30_000, 120_000, 480_000)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
        assert bench_sizes() == (10_000, 40_000, 160_000)

    def test_threads_cover_paper_axis(self):
        assert BENCH_THREADS[0] == 1
        assert BENCH_THREADS[-1] == 192

    def test_realworld_inputs_are_spanning_trees(self):
        trees = realworld_inputs(500, seed=0)
        assert set(trees) == {"rmat-social", "powerlaw-follow", "knn-points"}
        for name, tree in trees.items():
            assert tree.m == tree.n - 1, name
            validate_tree_edges(tree.n, tree.edges)


class TestRuns:
    def test_run_algorithm_populates_everything(self):
        tree = make_input("knuth-perm", 400, seed=0)
        run = run_algorithm("rctt", tree, keep_parents=True)
        assert run.algorithm == "rctt"
        assert run.wall_seconds > 0
        assert run.work > 0
        assert run.depth > 0
        assert run.parallelism > 1
        assert run.parents is not None and run.parents.shape == (399,)
        assert set(run.phases) == {"build", "trace", "sort"}

    def test_parents_dropped_by_default(self):
        tree = make_input("path", 50, seed=0)
        assert run_algorithm("sequf", tree).parents is None

    def test_simulated_time_monotone_in_threads(self):
        tree = make_input("star-perm", 500, seed=0)
        run = run_algorithm("paruf", tree)
        times = [simulated_time(run, p) for p in (1, 2, 8, 64, 192)]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))
        assert times[0] <= run.wall_seconds * 1.01

    def test_simulated_time_fallback_without_phases(self):
        run = AlgoRun("x", 10, wall_seconds=1.0, work=1000.0, depth=10.0)
        assert simulated_time(run, 1) == pytest.approx(1.0)
        assert simulated_time(run, 100) < 0.1

    def test_sequential_run_does_not_speed_up(self):
        run = AlgoRun(
            "x",
            10,
            wall_seconds=1.0,
            work=100.0,
            depth=100.0,
            phase_costs={"loop": PhaseCost(1.0, 100.0, 100.0)},
        )
        assert simulated_time(run, 192) == pytest.approx(1.0)

    def test_model_time(self):
        run = AlgoRun("x", 10, wall_seconds=2.0, work=1000.0, depth=10.0)
        assert model_time(run, 1, 1e-3) == pytest.approx(1.01)
        assert model_time(run, 100, 1e-3) == pytest.approx(0.02)


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(l) for l in lines[2:]}) == 1

    def test_fmt_seconds_ranges(self):
        assert fmt_seconds(123.4) == "123"
        assert fmt_seconds(1.5) == "1.50"
        assert fmt_seconds(0.01234) == "0.012"
