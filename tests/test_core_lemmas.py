"""The paper's structural lemmas, checked as executable properties."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings

from conftest import weighted_trees
from repro.core.brute import brute_force_sld
from repro.dendrogram.structure import Dendrogram
from repro.dendrogram.validate import validate_parents


def _reach_smaller(tree, e):
    """I(e): vertices reachable from e's endpoints over smaller-rank edges."""
    ranks = tree.ranks
    offsets, nbr_vertex, nbr_edge = tree.adjacency()
    seen = {int(tree.edges[e, 0]), int(tree.edges[e, 1])}
    stack = list(seen)
    inferior = set()
    while stack:
        v = stack.pop()
        for s in range(int(offsets[v]), int(offsets[v + 1])):
            f = int(nbr_edge[s])
            if f != e and ranks[f] < ranks[e]:
                inferior.add(f)
                w = int(nbr_vertex[s])
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
    return inferior


@settings(max_examples=50, deadline=None)
@given(tree=weighted_trees(max_n=28))
def test_lemma_3_2_subtree_equals_adjacent_inferiors(tree):
    """Lemma 3.2: the subtree of D rooted at node e contains exactly the
    adjacent-inferior edge set I(e)."""
    parents = brute_force_sld(tree)
    dend = Dendrogram(tree, parents)
    kids = dend.children()
    for e in range(tree.m):
        # collect D(e)'s strict descendants
        desc = set()
        stack = list(kids[e])
        while stack:
            x = stack.pop()
            desc.add(x)
            stack.extend(kids[x])
        assert desc == _reach_smaller(tree, e), f"edge {e}"


@settings(max_examples=50, deadline=None)
@given(tree=weighted_trees(max_n=28))
def test_lemma_3_3_star_edges_share_a_spine(tree):
    """Lemma 3.3: all edges incident to a vertex lie on the spine of the
    minimum-rank incident edge."""
    parents = brute_force_sld(tree)
    dend = Dendrogram(tree, parents)
    ranks = tree.ranks
    for v in range(tree.n):
        _, incident = tree.neighbors(v)
        if incident.size <= 1:
            continue
        e1 = int(incident[np.argmin(ranks[incident])])
        spine = set(dend.spine(e1))
        for f in incident:
            assert int(f) in spine, f"edge {f} of vertex {v} not on spine({e1})"


@settings(max_examples=50, deadline=None)
@given(tree=weighted_trees(max_n=28))
def test_parent_rank_monotonicity(tree):
    """Non-root parents always have strictly greater rank (the invariant
    validate_parents enforces; here proved against the oracle output)."""
    parents = brute_force_sld(tree)
    validate_parents(parents, tree.ranks)


@settings(max_examples=50, deadline=None)
@given(tree=weighted_trees(max_n=28))
def test_lemma_4_1_local_minima_merge_first(tree):
    """Lemma 4.1/4.2: each initial local-minimum edge e is a dendrogram
    leaf-level node whose parent is the min-rank edge incident to the merged
    cluster."""
    parents = brute_force_sld(tree)
    ranks = tree.ranks
    offsets, _, nbr_edge = tree.adjacency()
    for e in range(tree.m):
        u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
        incident = np.concatenate(
            [
                nbr_edge[int(offsets[u]) : int(offsets[u + 1])],
                nbr_edge[int(offsets[v]) : int(offsets[v + 1])],
            ]
        )
        others = incident[incident != e]
        if others.size == 0:
            continue
        if ranks[e] < ranks[others].min():
            # e is a local minimum: its parent is the min-rank other edge
            expected = int(others[np.argmin(ranks[others])])
            assert int(parents[e]) == expected


@settings(max_examples=40, deadline=None)
@given(tree=weighted_trees(max_n=28))
def test_root_is_max_rank_edge(tree):
    parents = brute_force_sld(tree)
    root = int(np.flatnonzero(parents == np.arange(tree.m))[0])
    assert tree.ranks[root] == tree.m - 1


@settings(max_examples=40, deadline=None)
@given(tree=weighted_trees(max_n=24))
def test_dendrogram_children_at_most_two_edges(tree):
    """Each SLD node merges exactly two clusters, so it has at most two
    edge-children (other children are leaves)."""
    parents = brute_force_sld(tree)
    dend = Dendrogram(tree, parents)
    for e, kids in enumerate(dend.children()):
        assert len(kids) <= 2, f"node {e} has {len(kids)} edge children"


def test_star_dendrogram_sorts_edges():
    """Appendix B: the SLD of a star totally orders its edges by rank."""
    from repro.trees.generators import star_tree
    from repro.trees.weights import apply_scheme

    tree = star_tree(40).with_weights(apply_scheme("perm", 39, seed=9))
    parents = brute_force_sld(tree)
    order = np.argsort(tree.ranks)
    for a, b in zip(order, order[1:]):
        assert parents[a] == b
    assert parents[order[-1]] == order[-1]
