"""Extended clustering modules: graph linkage, NN-chain HAC, alpha-trees,
and the LCA-indexed cophenetic queries."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
import scipy.spatial.distance as ssd
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.graph_linkage import graph_single_linkage
from repro.cluster.hac import LINKAGE_METHODS, nn_chain_linkage
from repro.cluster.image import alpha_tree, grid_graph
from repro.cluster.single_linkage import single_linkage
from repro.dendrogram.cophenet import cophenetic_matrix
from repro.dendrogram.lca import DendrogramIndex
from repro.errors import InvalidGraphError


class TestGraphLinkage:
    def test_connected_graph(self, rng):
        n = 20
        from test_trees_mst import random_connected_graph

        n, edges, weights = random_connected_graph(rng, n)
        res = graph_single_linkage(n, edges, weights)
        assert res.n_components == 1
        assert res.bridge_edges.size == 0
        assert res.mst.m == n - 1

    def test_disconnected_components_preserved(self):
        # two triangles, no connection
        edges = np.array([[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]])
        weights = np.array([1.0, 2.0, 3.0, 1.0, 2.0, 3.0])
        res = graph_single_linkage(6, edges, weights)
        assert res.n_components == 2
        assert res.bridge_edges.size == 1
        labels = res.labels_at(3.5)  # above every real weight, below bridge
        assert np.unique(labels).size == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]

    def test_bridges_are_top_merges(self):
        edges = np.array([[0, 1], [2, 3], [4, 5]])
        weights = np.array([1.0, 1.0, 1.0])
        res = graph_single_linkage(6, edges, weights)
        assert res.n_components == 3
        ranks = res.mst.ranks
        bridge_ranks = sorted(int(ranks[e]) for e in res.bridge_edges)
        assert bridge_ranks == [3, 4]  # the two max ranks

    @pytest.mark.parametrize("mst_method", ["kruskal", "prim", "boruvka"])
    def test_mst_methods(self, rng, mst_method):
        from test_trees_mst import random_connected_graph

        n, edges, weights = random_connected_graph(rng, 18)
        res = graph_single_linkage(n, edges, weights, mst_method=mst_method)
        assert res.dendrogram.m == n - 1

    def test_malformed(self):
        with pytest.raises(InvalidGraphError, match="shape"):
            graph_single_linkage(3, np.array([0, 1]), np.ones(1))
        with pytest.raises(InvalidGraphError, match="one weight"):
            graph_single_linkage(3, np.array([[0, 1]]), np.ones(2))


class TestNNChain:
    @pytest.mark.parametrize("method", LINKAGE_METHODS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scipy(self, method, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((40, 3))
        Z = nn_chain_linkage(pts, method=method)
        Zs = sch.linkage(ssd.pdist(pts), method=method)
        np.testing.assert_allclose(Z[:, 2], Zs[:, 2], atol=1e-9)
        for k in (2, 5):
            a = sch.fcluster(Z, k, criterion="maxclust")
            b = sch.fcluster(Zs, k, criterion="maxclust")
            np.testing.assert_array_equal(
                a[:, None] == a[None, :], b[:, None] == b[None, :]
            )

    def test_linkage_is_valid(self, rng):
        pts = rng.random((25, 2))
        Z = nn_chain_linkage(pts, method="complete")
        sch.is_valid_linkage(Z, throw=True)

    def test_single_matches_mst_pipeline(self, rng):
        """NN-chain single linkage == the MST + dendrogram route."""
        pts = rng.random((30, 2))
        Z_chain = nn_chain_linkage(pts, method="single")
        Z_tree = single_linkage(pts).linkage_matrix()
        np.testing.assert_allclose(np.sort(Z_chain[:, 2]), np.sort(Z_tree[:, 2]))

    def test_duplicate_points_terminate(self):
        pts = np.zeros((6, 2))
        Z = nn_chain_linkage(pts, method="average")
        assert Z.shape == (5, 4)
        assert (Z[:, 2] == 0).all()

    def test_bad_method(self):
        with pytest.raises(ValueError, match="linkage"):
            nn_chain_linkage(np.zeros((3, 2)), method="ward")

    def test_too_few_points(self):
        with pytest.raises(InvalidGraphError):
            nn_chain_linkage(np.zeros((1, 2)))


class TestAlphaTree:
    def test_grid_graph_counts(self):
        n, edges, weights = grid_graph(np.zeros((3, 4)))
        assert n == 12
        assert edges.shape[0] == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_step_image_two_segments(self):
        img = np.zeros((6, 8))
        img[:, 4:] = 10.0
        at = alpha_tree(img)
        seg = at.segment(0.5)
        assert np.unique(seg).size == 2
        assert (seg[:, :4] == seg[0, 0]).all()
        assert (seg[:, 4:] == seg[0, 4]).all()

    def test_alpha_monotone_segments(self):
        rng = np.random.default_rng(0)
        img = rng.random((10, 10))
        at = alpha_tree(img)
        counts = [at.n_segments(a) for a in (0.0, 0.2, 0.5, 1.5)]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert counts[-1] == 1

    def test_gradient_image_chains(self):
        img = np.arange(12, dtype=float).reshape(1, 12)
        at = alpha_tree(img)
        assert at.n_segments(0.5) == 12
        assert at.n_segments(1.0) == 1

    def test_multichannel(self):
        img = np.zeros((4, 4, 3))
        img[2:, :, 1] = 5.0
        at = alpha_tree(img)
        assert at.n_segments(1.0) == 2

    def test_single_pixel(self):
        at = alpha_tree(np.zeros((1, 1)))
        assert at.segment(0.0).shape == (1, 1)

    def test_bad_image(self):
        with pytest.raises(InvalidGraphError, match="image"):
            grid_graph(np.zeros((2, 2, 2, 2)))


class TestDendrogramIndex:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_matches_cophenetic_matrix(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((18, 2))
        res = single_linkage(pts)
        idx = DendrogramIndex(res.dendrogram)
        mat = cophenetic_matrix(res.dendrogram)
        iu, ju = np.triu_indices(18, k=1)
        got = idx.merge_heights(np.stack([iu, ju], axis=1))
        np.testing.assert_allclose(got, mat[iu, ju])

    def test_merge_node_is_lca(self, small_tree):
        from repro.core.api import single_linkage_dendrogram

        dend = single_linkage_dendrogram(small_tree)
        idx = DendrogramIndex(dend)
        node = idx.merge_node(0, 7)
        # merging node must be an ancestor of both leaf parents
        from repro.dendrogram.linkage import leaf_parents

        lp = leaf_parents(small_tree)
        assert node in dend.spine(int(lp[0]))
        assert node in dend.spine(int(lp[7]))

    def test_same_vertex(self, small_tree):
        from repro.core.api import single_linkage_dendrogram

        idx = DendrogramIndex(single_linkage_dendrogram(small_tree))
        assert idx.merge_height(3, 3) == 0.0
        with pytest.raises(ValueError, match="itself"):
            idx.merge_node(3, 3)

    def test_out_of_range(self, small_tree):
        from repro.core.api import single_linkage_dendrogram

        idx = DendrogramIndex(single_linkage_dendrogram(small_tree))
        with pytest.raises(ValueError, match="vertices"):
            idx.merge_node(0, 99)

    def test_bad_pairs_shape(self, small_tree):
        from repro.core.api import single_linkage_dendrogram

        idx = DendrogramIndex(single_linkage_dendrogram(small_tree))
        with pytest.raises(ValueError, match="pairs"):
            idx.merge_heights(np.zeros(4, dtype=np.int64))

    def test_cophenetic_correlation_perfect_on_ultrametric(self, rng):
        """Correlating the cophenetic matrix with itself gives 1.0."""
        pts = rng.random((15, 2))
        res = single_linkage(pts)
        idx = DendrogramIndex(res.dendrogram)
        mat = cophenetic_matrix(res.dendrogram)
        assert idx.cophenetic_correlation(mat) == pytest.approx(1.0)

    def test_correlation_bad_shape(self, small_tree):
        from repro.core.api import single_linkage_dendrogram

        idx = DendrogramIndex(single_linkage_dendrogram(small_tree))
        with pytest.raises(ValueError, match="reference"):
            idx.cophenetic_correlation(np.zeros((3, 3)))

    def test_deep_chain_dendrogram(self):
        """Binary lifting must handle h = m (sorted path)."""
        from conftest import make_tree
        from repro.core.api import single_linkage_dendrogram
        from repro.trees.weights import apply_scheme

        tree = make_tree("path", 300).with_weights(apply_scheme("sorted", 299))
        dend = single_linkage_dendrogram(tree)
        idx = DendrogramIndex(dend)
        # vertices 0 and 299 merge at the last (heaviest) edge
        assert idx.merge_node(0, 299) == 298
