"""Every example script must run end to end (with shrunken workloads)."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, argv: list[str] | None = None):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "points_clustering.py",
        "graph_communities.py",
        "scaling_study.py",
        "image_segmentation.py",
        "custom_graph.py",
    } <= names


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "all algorithms agree" in out
    assert "dendrogram height" in out


def test_points_clustering(capsys):
    _run("points_clustering.py")
    out = capsys.readouterr().out
    assert "match scipy" in out
    assert "agreement with ground truth: 1.000" in out


@pytest.mark.slow
def test_graph_communities(capsys):
    _run("graph_communities.py")
    out = capsys.readouterr().out
    assert "Friendster stand-in" in out
    assert "Twitter stand-in" in out


def test_scaling_study(capsys):
    _run("scaling_study.py", argv=["2000"])
    out = capsys.readouterr().out
    assert "scaling study, n=2000" in out
    assert "T(P=192)" in out


def test_image_segmentation(capsys):
    _run("image_segmentation.py")
    out = capsys.readouterr().out
    assert "3 segments" in out
    assert "alpha-tree height" in out


def test_custom_graph(capsys):
    _run("custom_graph.py")
    out = capsys.readouterr().out
    assert "connected components: 2" in out
    assert "B_k agreement" in out
