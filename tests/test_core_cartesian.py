"""Cartesian trees and the path special case of SLD computation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree
from repro.core.brute import brute_force_sld
from repro.core.cartesian import cartesian_tree_parents, sld_path
from repro.errors import AlgorithmError, InvalidTreeError
from repro.trees.weights import apply_scheme
from repro.trees.wtree import WeightedTree


def _reference_cartesian(values):
    """Quadratic reference: parent = min of nearest-greater left/right."""
    k = len(values)
    parents = np.arange(k)
    for i in range(k):
        left = right = None
        for j in range(i - 1, -1, -1):
            if values[j] > values[i]:
                left = j
                break
        for j in range(i + 1, k):
            if values[j] > values[i]:
                right = j
                break
        if left is None and right is None:
            parents[i] = i
        elif left is None:
            parents[i] = right
        elif right is None:
            parents[i] = left
        else:
            parents[i] = left if values[left] < values[right] else right
    return parents


@pytest.mark.parametrize("method", ["stack", "dc"])
@settings(max_examples=80, deadline=None)
@given(perm=st.permutations(list(range(12))))
def test_cartesian_matches_reference(method, perm):
    values = np.array(perm)
    np.testing.assert_array_equal(
        cartesian_tree_parents(values, method=method), _reference_cartesian(values)
    )


@pytest.mark.parametrize("method", ["stack", "dc"])
def test_cartesian_trivial_sizes(method):
    assert cartesian_tree_parents(np.array([]), method=method).shape == (0,)
    np.testing.assert_array_equal(cartesian_tree_parents(np.array([5]), method=method), [0])
    np.testing.assert_array_equal(
        cartesian_tree_parents(np.array([1, 2]), method=method), [1, 1]
    )
    np.testing.assert_array_equal(
        cartesian_tree_parents(np.array([2, 1]), method=method), [0, 0]
    )


def test_cartesian_monotone_sequences():
    inc = cartesian_tree_parents(np.arange(8))
    np.testing.assert_array_equal(inc, [1, 2, 3, 4, 5, 6, 7, 7])
    dec = cartesian_tree_parents(np.arange(8)[::-1].copy())
    np.testing.assert_array_equal(dec, [0, 0, 1, 2, 3, 4, 5, 6])


def test_unknown_method_rejected():
    with pytest.raises(AlgorithmError, match="method"):
        cartesian_tree_parents(np.array([1, 2]), method="treap")


@pytest.mark.parametrize("method", ["stack", "dc"])
@pytest.mark.parametrize("scheme", ["unit", "perm", "low-par", "uniform"])
def test_sld_path_matches_oracle(method, scheme):
    tree = make_tree("path", 60).with_weights(apply_scheme(scheme, 59, seed=3))
    np.testing.assert_array_equal(
        sld_path(tree, method=method), brute_force_sld(tree)
    )


def test_sld_path_relabeled_vertices(rng):
    """The walk must recover edge order for any vertex labeling."""
    n = 40
    base = make_tree("path", n).with_weights(apply_scheme("perm", n - 1, seed=8))
    perm = rng.permutation(n)
    tree = WeightedTree(n, perm[base.edges], base.weights)
    np.testing.assert_array_equal(sld_path(tree), brute_force_sld(tree))


def test_sld_path_rejects_non_path():
    tree = make_tree("star", 5)
    with pytest.raises(InvalidTreeError, match="not a path"):
        sld_path(tree)


def test_sld_path_equals_cartesian_tree_directly():
    """On the identity-labeled path, SLD parents are exactly the Cartesian
    tree parents of the rank sequence."""
    n = 30
    tree = make_tree("path", n).with_weights(apply_scheme("perm", n - 1, seed=1))
    np.testing.assert_array_equal(
        sld_path(tree), cartesian_tree_parents(tree.ranks)
    )
