"""Synthetic datasets: point clouds, social graphs, triangle weights."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.points import gaussian_blobs, noisy_rings
from repro.datasets.synthetic_graphs import (
    preferential_attachment_graph,
    rmat_graph,
    social_mst,
)
from repro.datasets.triangles import triangle_counts, triangle_weights
from repro.errors import InvalidGraphError
from repro.trees.validation import validate_tree_edges


class TestPoints:
    def test_blobs_shapes(self):
        pts, labels = gaussian_blobs(100, centers=4, dim=3, seed=0)
        assert pts.shape == (100, 3)
        assert labels.shape == (100,)
        assert np.unique(labels).size == 4

    def test_blobs_deterministic(self):
        a, _ = gaussian_blobs(50, seed=1)
        b, _ = gaussian_blobs(50, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_blobs_too_few(self):
        with pytest.raises(ValueError, match="centers"):
            gaussian_blobs(2, centers=4)

    def test_rings_radii(self):
        pts, labels = noisy_rings(200, rings=2, noise=0.0, seed=2)
        radii = np.linalg.norm(pts, axis=1)
        np.testing.assert_allclose(radii[labels == 0], 1.0, atol=1e-9)
        np.testing.assert_allclose(radii[labels == 1], 2.0, atol=1e-9)

    def test_rings_too_few(self):
        with pytest.raises(ValueError, match="rings"):
            noisy_rings(1, rings=2)


class TestTriangles:
    def test_triangle_in_k3(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]])
        np.testing.assert_array_equal(triangle_counts(3, edges), [1, 1, 1])

    def test_k4_counts(self):
        edges = np.array([[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]])
        np.testing.assert_array_equal(triangle_counts(4, edges), [2] * 6)

    def test_tree_has_no_triangles(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        assert triangle_counts(4, edges).sum() == 0

    def test_weights_formula(self):
        edges = np.array([[0, 1], [1, 2], [0, 2], [2, 3]])
        w = triangle_weights(4, edges)
        np.testing.assert_allclose(w, [0.5, 0.5, 0.5, 1.0])

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidGraphError, match="self loop"):
            triangle_counts(2, np.array([[1, 1]]))

    def test_bad_shape(self):
        with pytest.raises(InvalidGraphError, match="shape"):
            triangle_counts(2, np.array([0, 1, 2]))


class TestRmat:
    def test_basic_shape(self):
        n, edges = rmat_graph(8, edge_factor=4, seed=0)
        assert n == 256
        assert edges.shape[1] == 2
        assert edges.shape[0] > 100
        # simple: no loops, no duplicates, canonical orientation
        assert (edges[:, 0] < edges[:, 1]).all()
        keys = edges[:, 0] * n + edges[:, 1]
        assert np.unique(keys).size == keys.size

    def test_degree_skew(self):
        """Social-graph stand-in must have heavy-tailed degrees."""
        n, edges = rmat_graph(10, edge_factor=8, seed=1)
        deg = np.bincount(edges.reshape(-1), minlength=n)
        assert deg.max() > 10 * max(deg[deg > 0].mean(), 1)

    def test_bad_params(self):
        with pytest.raises(ValueError, match="scale"):
            rmat_graph(0)
        with pytest.raises(ValueError, match="distribution"):
            rmat_graph(4, a=0.9, b=0.2, c=0.2)

    def test_deterministic(self):
        _, a = rmat_graph(7, seed=5)
        _, b = rmat_graph(7, seed=5)
        np.testing.assert_array_equal(a, b)


class TestPreferentialAttachment:
    def test_connected_and_simple(self):
        n, edges = preferential_attachment_graph(300, m_attach=3, seed=0)
        assert n == 300
        present = np.zeros(n, dtype=bool)
        present[edges.reshape(-1)] = True
        assert present.all()
        keys = np.minimum(edges[:, 0], edges[:, 1]) * n + np.maximum(edges[:, 0], edges[:, 1])
        assert np.unique(keys).size == keys.size

    def test_power_law_hubs(self):
        n, edges = preferential_attachment_graph(1000, m_attach=3, seed=1)
        deg = np.bincount(edges.reshape(-1), minlength=n)
        assert deg.max() > 8 * deg.mean()

    def test_bad_params(self):
        with pytest.raises(ValueError, match="two vertices"):
            preferential_attachment_graph(1)
        with pytest.raises(ValueError, match="m_attach"):
            preferential_attachment_graph(10, m_attach=0)


class TestSocialMst:
    @pytest.mark.parametrize("gen", ["rmat", "pa"])
    def test_produces_spanning_tree(self, gen):
        if gen == "rmat":
            n, edges = rmat_graph(8, seed=2)
        else:
            n, edges = preferential_attachment_graph(200, seed=2)
        tree = social_mst(n, edges, seed=0)
        assert tree.n == n
        assert tree.m == n - 1
        validate_tree_edges(tree.n, tree.edges)

    def test_dense_edges_merge_first(self):
        """Within a triangle-rich clique attached to a sparse path, the
        clique edges carry lower weights."""
        # K4 on {0..3} plus path 3-4-5
        edges = np.array(
            [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3], [3, 4], [4, 5]]
        )
        tree = social_mst(6, edges)
        w = dict()
        for e in range(tree.m):
            u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
            w[(min(u, v), max(u, v))] = tree.weights[e]
        assert w[(3, 4)] == 1.0  # no triangles on the path
        clique_weights = [v for k, v in w.items() if max(k) <= 3]
        assert all(cw < 1.0 for cw in clique_weights)

    def test_rejects_empty(self):
        with pytest.raises(InvalidGraphError, match="no edges"):
            social_mst(3, np.zeros((0, 2), dtype=np.int64))

    def test_all_algorithms_agree_on_social_tree(self):
        from repro.core.api import ALGORITHMS
        from repro.core.brute import brute_force_sld

        n, edges = preferential_attachment_graph(120, seed=3)
        tree = social_mst(n, edges, seed=1)
        expected = brute_force_sld(tree)
        for alg in ("sequf", "paruf", "rctt", "tree-contraction"):
            np.testing.assert_array_equal(ALGORITHMS[alg](tree), expected, err_msg=alg)
