"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.trees.generators import (
    balanced_binary,
    broom,
    caterpillar,
    knuth_tree,
    path_tree,
    random_tree,
    star_tree,
)
from repro.trees.weights import WEIGHT_SCHEMES, apply_scheme
from repro.trees.wtree import WeightedTree

TREE_KINDS = {
    "path": path_tree,
    "star": star_tree,
    "knuth": lambda n, seed=0: knuth_tree(n, seed=seed),
    "random": lambda n, seed=0: random_tree(n, seed=seed),
    "caterpillar": caterpillar,
    "broom": broom,
    "binary": balanced_binary,
}

SEEDED_KINDS = ("knuth", "random")


def make_tree(kind: str, n: int, seed: int = 0) -> WeightedTree:
    fn = TREE_KINDS[kind]
    if kind in SEEDED_KINDS:
        return fn(n, seed=seed)
    return fn(n)


def random_weighted_tree(
    rng: np.random.Generator, n: int | None = None, max_n: int = 40
) -> WeightedTree:
    """A random topology with random-permutation weights (non-hypothesis)."""
    if n is None:
        n = int(rng.integers(2, max_n))
    kind = list(TREE_KINDS)[int(rng.integers(len(TREE_KINDS)))]
    tree = make_tree(kind, n, seed=int(rng.integers(2**31)))
    return tree.with_weights(rng.permutation(tree.m).astype(float))


@st.composite
def weighted_trees(draw, min_n: int = 2, max_n: int = 40):
    """Hypothesis strategy: arbitrary topology x arbitrary weight scheme."""
    n = draw(st.integers(min_n, max_n))
    kind = draw(st.sampled_from(sorted(TREE_KINDS)))
    seed = draw(st.integers(0, 2**31 - 1))
    tree = make_tree(kind, n, seed=seed)
    scheme = draw(st.sampled_from(sorted(WEIGHT_SCHEMES)))
    wseed = draw(st.integers(0, 2**31 - 1))
    return tree.with_weights(apply_scheme(scheme, tree.m, seed=wseed))


@st.composite
def arbitrary_weighted_trees(draw, min_n: int = 2, max_n: int = 24):
    """Hypothesis strategy: fully arbitrary tree (random Pruefer-free
    attachment) with possibly-tied float weights."""
    n = draw(st.integers(min_n, max_n))
    parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    edges = np.array([[p, i + 1] for i, p in enumerate(parents)], dtype=np.int64)
    weights = draw(
        st.lists(
            st.integers(0, max(1, n // 2)),  # small range forces many ties
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    return WeightedTree(n, edges, np.asarray(weights, dtype=np.float64))


@pytest.fixture(autouse=True)
def no_leaked_race_recorder():
    """Every test starts and ends with no shadow access recorder installed.

    A leaked recorder would silently attribute one test's accesses to
    another's round; failing here pinpoints the leaking test.
    """
    from repro.checkers import access

    assert access.RECORDER is None, "a race recorder leaked into this test"
    yield
    assert access.RECORDER is None, "test leaked an installed race recorder"


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_tree() -> WeightedTree:
    """The 8-vertex example-sized tree used across unit tests."""
    edges = np.array(
        [[0, 1], [1, 2], [2, 3], [2, 4], [4, 5], [4, 6], [6, 7]], dtype=np.int64
    )
    weights = np.array([3.0, 1.0, 6.0, 2.0, 5.0, 0.5, 4.0])
    return WeightedTree(8, edges, weights)
