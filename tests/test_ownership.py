"""Tests for the @owns ownership-window layer (repro.checkers.ownership)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.checkers.ownership import (
    OWNS_REGISTRY,
    OwnsDecl,
    WindowSpec,
    checked_owns,
    get_owns,
    owns,
    ownership_enabled,
)
from repro.errors import OwnershipError

SRC = str(Path(__file__).parent.parent / "src")


class TestZeroCostMode:
    """With REPRO_OWNERSHIP_CHECKS unset, decoration must not wrap."""

    def test_disabled_in_test_environment(self):
        assert not ownership_enabled()

    def test_decorator_returns_function_unchanged(self):
        def kernel(parents, lo, hi):
            parents[lo:hi] = 0

        decorated = owns("parents[lo:hi]")(kernel)
        assert decorated is kernel

    def test_metadata_attached_and_registered(self):
        @owns("parents[lo:hi]", "status[:]")
        def kernel_meta(parents, status, lo, hi):
            parents[lo:hi] = 0

        decl = get_owns(kernel_meta)
        assert isinstance(decl, OwnsDecl)
        assert decl.windows == (
            WindowSpec("parents", "lo", "hi"),
            WindowSpec("status", None, None),
        )
        assert OWNS_REGISTRY[decl.name] is decl
        assert get_owns(decl.name) is decl
        assert decl.describe() == "parents[lo:hi], status[:]"

    def test_unknown_name_fails_at_decoration(self):
        with pytest.raises(OwnershipError, match="neither a parameter nor"):
            @owns("missing[lo:hi]")
            def kernel(lo, hi):
                pass

    def test_unknown_bound_fails_at_decoration(self):
        with pytest.raises(OwnershipError, match="'end'"):
            @owns("parents[lo:end]")
            def kernel(parents, lo):
                pass

    def test_bare_index_rejected(self):
        with pytest.raises(OwnershipError, match="bare index"):
            @owns("parents[i]")
            def kernel(parents, i):
                pass

    def test_malformed_spec_rejected(self):
        with pytest.raises(OwnershipError, match="malformed"):
            @owns("parents[lo:hi")
            def kernel(parents, lo, hi):
                pass

    def test_requires_at_least_one_spec(self):
        with pytest.raises(OwnershipError, match="at least one"):
            owns()

    def test_closure_variable_is_a_valid_target(self):
        out = np.zeros(4, dtype=np.float64)

        @owns("out[lo:hi]")
        def fill(lo, hi):
            out[lo:hi] = 1.0

        assert get_owns(fill) is not None


class TestCheckedMode:
    def test_in_window_write_passes(self):
        parents = np.arange(8, dtype=np.int64)

        @owns("parents[lo:hi]")
        def fill(parents, lo, hi):
            parents[lo:hi] = -1
            return hi - lo

        assert checked_owns(fill)(parents, 2, 5) == 3
        assert np.array_equal(parents[2:5], [-1, -1, -1])

    def test_out_of_window_write_raises(self):
        parents = np.arange(8, dtype=np.int64)

        @owns("parents[lo:hi]")
        def scribble(parents, lo, hi):
            parents[lo:hi] = -1
            parents[0] = 99  # outside [2, 5)

        with pytest.raises(OwnershipError, match="outside its declared"):
            checked_owns(scribble)(parents, 2, 5)

    def test_closure_and_offset_bounds(self):
        status = np.zeros(8, dtype=np.int64)
        cur = 3

        @owns("status[cur:cur+1]")
        def claim():
            status[cur] = -1

        checked_owns(claim)()
        assert status[3] == -1

        @owns("status[cur:cur+1]")
        def overreach():
            status[cur] = -1
            status[cur + 1] = -1

        with pytest.raises(OwnershipError, match="outside its declared"):
            checked_owns(overreach)()

    def test_list_slabs_supported(self):
        counts = [0, 0, 0, 0]

        @owns("counts[lo:hi]")
        def bump(lo, hi):
            for i in range(lo, hi):
                counts[i] += 1

        checked_owns(bump)(1, 3)
        assert counts == [0, 1, 1, 0]

        @owns("counts[lo:hi]")
        def stray(lo, hi):
            counts[0] += 1

        with pytest.raises(OwnershipError, match="outside its declared"):
            checked_owns(stray)(2, 4)

    def test_nan_outside_window_tolerated(self):
        # np.empty slabs legitimately hold NaNs outside the partition.
        out = np.full(6, np.nan, dtype=np.float64)

        @owns("out[lo:hi]")
        def fill(lo, hi):
            out[lo:hi] = 1.0

        checked_owns(fill)(2, 4)
        assert np.array_equal(out[2:4], [1.0, 1.0])

    def test_none_target_skipped(self):
        @owns("maybe[lo:hi]")
        def kernel(maybe, lo, hi):
            return "ran"

        assert checked_owns(kernel)(None, 0, 1) == "ran"

    def test_inverted_window_raises(self):
        parents = np.arange(4, dtype=np.int64)

        @owns("parents[hi:lo]")
        def swapped(parents, lo, hi):
            pass

        with pytest.raises(OwnershipError, match="inverted"):
            checked_owns(swapped)(parents, 1, 3)

    def test_checked_is_idempotent(self):
        @owns("xs[:]")
        def kernel(xs):
            pass

        wrapped = checked_owns(kernel)
        assert checked_owns(wrapped) is wrapped

    def test_checked_requires_a_declaration(self):
        def bare(xs):
            pass

        with pytest.raises(OwnershipError, match="no @owns"):
            checked_owns(bare)

    def test_declared_window_reported_to_race_detector(self):
        from repro.checkers.access import RoundRecorder, install, uninstall
        from repro.checkers.races import find_conflicts
        from repro.errors import RaceConditionError

        parents = np.arange(16, dtype=np.int64)

        @owns("parents[lo:hi]")
        def fill(lo, hi):
            parents[lo:hi] = 0

        fill = checked_owns(fill)
        # Disjoint windows: clean round.
        recorder = RoundRecorder(where="ownership round")
        install(recorder)
        try:
            recorder.begin_task(0)
            fill(0, 8)
            recorder.begin_task(1)
            fill(8, 16)
            recorder.end_task()
        finally:
            uninstall(recorder)
        assert find_conflicts(recorder.logs) == []

        # Overlapping declared windows: a race before any cell-level write.
        recorder = RoundRecorder(where="ownership round")
        install(recorder)
        try:
            recorder.begin_task(0)
            fill(0, 9)
            recorder.begin_task(1)
            fill(8, 16)
            recorder.end_task()
        finally:
            uninstall(recorder)
        conflicts = find_conflicts(recorder.logs)
        assert conflicts, "overlapping @owns windows must conflict"
        with pytest.raises(RaceConditionError):
            from repro.checkers.races import check_recorder

            check_recorder(recorder)


class TestEnabledAtImport:
    def test_env_flag_wraps_and_enforces(self):
        code = (
            "import numpy as np\n"
            "import repro.checkers.ownership as o\n"
            "assert o.ownership_enabled()\n"
            "from repro.errors import OwnershipError\n"
            "parents = np.arange(8, dtype=np.int64)\n"
            "@o.owns('parents[lo:hi]')\n"
            "def scribble(parents, lo, hi):\n"
            "    parents[0] = 99\n"
            "assert getattr(scribble, '__owns_checked__', False)\n"
            "try:\n"
            "    scribble(parents, 2, 5)\n"
            "except OwnershipError:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('out-of-window write not caught')\n"
            "# The shipped kernels stay correct under enforcement.\n"
            "from repro.core.paruf_sync import paruf_sync\n"
            "from repro.core.sequf import sequf\n"
            "from repro.trees.generators import random_tree\n"
            "t = random_tree(40, seed=3)\n"
            "assert np.array_equal(paruf_sync(t), sequf(t))\n"
            "from repro.cluster.knn import pairwise_distances\n"
            "pts = np.random.default_rng(0).standard_normal((24, 3))\n"
            "d1 = pairwise_distances(pts, chunk=8, workers=1)\n"
            "d4 = pairwise_distances(pts, chunk=8, workers=4)\n"
            "assert np.array_equal(d1, d4)\n"
        )
        env = dict(os.environ, REPRO_OWNERSHIP_CHECKS="1", PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr

    def test_env_flag_off_means_unwrapped(self):
        from repro.core.paruf_sync import paruf_sync

        assert not getattr(paruf_sync, "__owns_checked__", False)
