"""Vectorized k-NN graph construction vs the retained scalar oracles.

``knn_graph``'s symmetrize/dedupe pass and ``_bridge_components`` were
vectorized; the original dict/scalar implementations are kept in the
module as ``_knn_pairs_reference`` / ``_bridge_components_reference``
and every test here is a strict equality against them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.knn import (
    _bridge_components,
    _bridge_components_reference,
    _knn_pairs_reference,
    knn_graph,
    pairwise_distances,
)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(4, 40),
    d=st.integers(1, 3),
    k=st.integers(1, 5),
    seed=st.integers(0, 2**31 - 1),
    quantize=st.booleans(),
)
def test_pair_build_matches_dict_oracle(n, d, k, seed, quantize):
    k = min(k, n - 1)
    rng = np.random.default_rng(seed)
    pts = rng.random((n, d))
    if quantize:  # duplicate coordinates: tied distances, repeated pairs
        pts = np.round(pts * 3) / 3.0
    dists = pairwise_distances(pts)
    np.fill_diagonal(dists, np.inf)
    nbrs = np.argpartition(dists, k, axis=1)[:, :k]

    ref_edges, ref_weights = _knn_pairs_reference(n, nbrs, dists)

    got_n, got_edges, got_weights = knn_graph(pts, k, ensure_connected=False)
    assert got_n == n
    assert np.array_equal(got_edges, ref_edges)
    assert got_weights.tobytes() == ref_weights.tobytes()


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 30), seed=st.integers(0, 2**31 - 1), ncomp=st.integers(1, 4))
def test_bridge_components_matches_scalar_oracle(n, seed, ncomp):
    """Drop all edges between ``ncomp`` groups, then bridge: the batched
    union path must produce the identical bridge list (same order)."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    dists = pairwise_distances(pts)
    groups = rng.integers(0, ncomp, size=n)
    rows = []
    for g in range(ncomp):
        members = np.flatnonzero(groups == g)
        rows += [[int(a), int(b)] for a, b in zip(members[:-1], members[1:])]
    edges = (
        np.asarray(rows, dtype=np.int64)
        if rows
        else np.zeros((0, 2), dtype=np.int64)
    )
    got_e, got_w = _bridge_components(n, edges, dists)
    ref_e, ref_w = _bridge_components_reference(n, edges, dists)
    assert got_e == ref_e
    assert got_w == ref_w


def test_knn_graph_connected_end_to_end():
    """With ensure_connected the full output (bridges appended) matches a
    reference recomposition from the two oracles."""
    rng = np.random.default_rng(77)
    # Two well-separated blobs so k=2 leaves the graph disconnected.
    pts = np.concatenate([rng.random((12, 2)), rng.random((12, 2)) + 50.0])
    n = pts.shape[0]
    k = 2
    dists = pairwise_distances(pts)
    np.fill_diagonal(dists, np.inf)
    nbrs = np.argpartition(dists, k, axis=1)[:, :k]
    ref_edges, ref_weights = _knn_pairs_reference(n, nbrs, dists)
    extra_e, extra_w = _bridge_components_reference(n, ref_edges, dists)
    assert extra_e  # the construction must actually need a bridge

    got_n, got_edges, got_weights = knn_graph(pts, k)
    assert got_n == n
    assert np.array_equal(
        got_edges, np.concatenate([ref_edges, np.asarray(extra_e, dtype=np.int64)])
    )
    expected_w = np.concatenate([ref_weights, np.asarray(extra_w)])
    assert got_weights.tobytes() == expected_w.tobytes()
