"""REDG1 binary edge files: roundtrip, error contract, spill/merge order.

The out-of-core MST path (``streaming_kruskal_mst``) is only correct if
``spill_runs`` + ``merge_runs`` reproduce the exact ``(weight, edge id)``
scan order of the in-memory sort, so the merge property is tested as a
strict sequence equality, not a multiset check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.io import FormatError
from repro.io.edgefile import (
    EDGEFILE_HEADER_BYTES,
    EDGEFILE_MAGIC,
    RUN_DTYPE,
    iter_edge_chunks,
    merge_runs,
    read_edge_file,
    read_edge_header,
    spill_runs,
    write_edge_file,
)


def _graph(rng, n, extra=20):
    from test_trees_mst import random_connected_graph

    return random_connected_graph(rng, n, extra=extra)


@pytest.fixture
def sample(tmp_path):
    rng = np.random.default_rng(11)
    n, edges, weights = _graph(rng, 40)
    path = tmp_path / "g.redg"
    write_edge_file(path, n, edges, weights)
    return path, n, edges, weights


class TestRoundTrip:
    def test_header_and_payload(self, sample):
        path, n, edges, weights = sample
        assert read_edge_header(path) == (n, edges.shape[0])
        rn, redges, rweights = read_edge_file(path)
        assert rn == n
        assert np.array_equal(redges, edges)
        assert rweights.tobytes() == weights.tobytes()

    def test_empty_edge_set(self, tmp_path):
        path = tmp_path / "empty.redg"
        write_edge_file(path, 1, np.zeros((0, 2), dtype=np.int64), np.zeros(0))
        n, edges, weights = read_edge_file(path)
        assert (n, edges.shape, weights.shape) == (1, (0, 2), (0,))

    @pytest.mark.parametrize("chunk", [1, 2, 3, 7, 8, 64, 10**6])
    def test_iter_chunks_cover_file_in_order(self, sample, chunk):
        path, n, edges, weights = sample
        start_ids, parts_e, parts_w = [], [], []
        for start, e, w in iter_edge_chunks(path, chunk):
            start_ids.append(start)
            assert 1 <= e.shape[0] <= chunk
            parts_e.append(e)
            parts_w.append(w)
        assert start_ids == list(range(0, edges.shape[0], chunk))
        assert np.array_equal(np.concatenate(parts_e), edges)
        assert np.concatenate(parts_w).tobytes() == weights.tobytes()

    def test_weight_bit_patterns_survive(self, tmp_path):
        """Signed zeros and subnormals must roundtrip bit-exactly: the
        rank order (and therefore the dendrogram) depends on them."""
        path = tmp_path / "bits.redg"
        weights = np.array([-0.0, 0.0, 5e-324, -5e-324, 1e308])
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]], dtype=np.int64)
        write_edge_file(path, 6, edges, weights)
        _, _, rweights = read_edge_file(path)
        assert rweights.tobytes() == weights.tobytes()


class TestErrorContract:
    def test_bad_shapes_rejected_at_write(self, tmp_path):
        path = tmp_path / "bad.redg"
        with pytest.raises(InvalidGraphError):
            write_edge_file(path, 2, np.array([[0, 1, 2]]), np.ones(1))
        with pytest.raises(InvalidGraphError):
            write_edge_file(path, 2, np.array([[0, 1]]), np.ones(2))

    def test_garbage_magic(self, tmp_path):
        path = tmp_path / "junk.redg"
        path.write_bytes(b"not an edge file at all, sorry" * 4)
        with pytest.raises(FormatError, match="magic"):
            read_edge_header(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.redg"
        path.write_bytes(EDGEFILE_MAGIC[:4])
        with pytest.raises(FormatError):
            read_edge_header(path)

    def test_truncated_payload(self, sample, tmp_path):
        path, _, _, _ = sample
        clipped = tmp_path / "clipped.redg"
        clipped.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(FormatError, match="bytes"):
            read_edge_header(clipped)

    def test_trailing_bytes(self, sample, tmp_path):
        path, _, _, _ = sample
        padded = tmp_path / "padded.redg"
        padded.write_bytes(path.read_bytes() + b"\x00" * 8)
        with pytest.raises(FormatError, match="bytes"):
            read_edge_header(padded)

    def test_header_sizes(self, sample):
        path, _, _, _ = sample
        assert EDGEFILE_HEADER_BYTES == len(EDGEFILE_MAGIC) + 16
        assert path.stat().st_size == EDGEFILE_HEADER_BYTES + 24 * read_edge_header(path)[1]

    @pytest.mark.parametrize(
        "mutate,match",
        [
            (lambda e, w: (np.array([[0, 0]] + e.tolist()[1:]), w), "self loop"),
            (lambda e, w: (np.array([[0, 99]] + e.tolist()[1:]), w), "endpoints"),
            (lambda e, w: (e, np.where(np.arange(w.size) == 0, np.nan, w)), "finite"),
        ],
    )
    def test_chunk_validation(self, tmp_path, mutate, match):
        rng = np.random.default_rng(5)
        n, edges, weights = _graph(rng, 12)
        edges, weights = mutate(edges, weights)
        path = tmp_path / "mut.redg"
        write_edge_file(path, n, np.asarray(edges, dtype=np.int64), weights)
        with pytest.raises(InvalidGraphError, match=match):
            for _ in iter_edge_chunks(path, 4):
                pass

    def test_validation_can_be_skipped(self, tmp_path):
        path = tmp_path / "loop.redg"
        write_edge_file(path, 2, np.array([[0, 0]], dtype=np.int64), np.ones(1))
        chunks = list(iter_edge_chunks(path, 4, validate=False))
        assert len(chunks) == 1


class TestSpillMerge:
    @pytest.mark.parametrize("chunk", [1, 2, 5, 8, 9, 64, 10**6])
    @pytest.mark.parametrize("merge_block", [None, 1, 3])
    def test_merge_reproduces_rank_order_exactly(self, tmp_path, chunk, merge_block):
        """Concatenated merge output == the in-memory stable weight sort
        (the exact ``(weight, id)`` rank order Kruskal scans)."""
        rng = np.random.default_rng(chunk * 101 + (merge_block or 0))
        n, edges, weights = _graph(rng, 30)
        weights = rng.integers(0, 4, size=weights.size).astype(np.float64)  # ties
        path = tmp_path / "g.redg"
        write_edge_file(path, n, edges, weights)

        runs = spill_runs(path, tmp_path / "spill", chunk)
        m = edges.shape[0]
        assert len(runs) == -(-m // chunk)

        block = merge_block if merge_block is not None else max(1, chunk // len(runs))
        batches = list(merge_runs(runs, block))
        out = np.concatenate(batches) if batches else np.zeros(0, dtype=RUN_DTYPE)

        order = np.argsort(weights, kind="stable")
        assert np.array_equal(out["id"], order)
        assert out["w"].tobytes() == weights[order].tobytes()
        assert np.array_equal(out["u"], edges[order, 0])
        assert np.array_equal(out["v"], edges[order, 1])

    def test_runs_are_individually_sorted(self, tmp_path):
        rng = np.random.default_rng(3)
        n, edges, weights = _graph(rng, 25)
        path = tmp_path / "g.redg"
        write_edge_file(path, n, edges, weights)
        for run in spill_runs(path, tmp_path / "spill", 7):
            rec = np.fromfile(run, dtype=RUN_DTYPE)
            key = np.stack([rec["w"], rec["id"].astype(np.float64)])
            assert np.array_equal(np.lexsort(key[::-1]), np.arange(rec.size))
