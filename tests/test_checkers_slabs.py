"""Tests for the RPR2xx slab & effect static pass (repro.checkers.slabs)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.checkers.slabs import (
    DEFAULT_SLAB_TARGETS,
    SLAB_CODES,
    default_slab_paths,
    slab_lint_file,
    slab_lint_paths,
    slab_lint_source,
)

FIXTURES = Path(__file__).parent / "fixtures" / "slabs"

ALL_FIXTURE_CODES = tuple(code for code in SLAB_CODES)


class TestFixtures:
    """One fixture file per code: positives fire, noqa'd twins stay quiet."""

    @pytest.mark.parametrize("code", ALL_FIXTURE_CODES)
    def test_fixture_triggers_exactly_its_code(self, code):
        path = FIXTURES / f"{code.lower()}.py"
        findings = slab_lint_file(path)
        assert findings, f"{path.name} produced no findings"
        assert {d.code for d in findings} == {code}

    @pytest.mark.parametrize("code", ALL_FIXTURE_CODES)
    def test_noqa_suppresses_the_twin(self, code):
        path = FIXTURES / f"{code.lower()}.py"
        source = path.read_text(encoding="utf-8")
        findings = slab_lint_file(path)
        flagged_lines = {d.line for d in findings}
        lines = source.splitlines()
        for lineno in flagged_lines:
            assert "noqa" not in lines[lineno - 1], (
                f"{path.name}:{lineno} carries a noqa but still fired"
            )
        # Every fixture contains at least one suppressed twin of its code.
        assert f"noqa: {code}" in source

    @pytest.mark.parametrize("code", ALL_FIXTURE_CODES)
    def test_noqa_module_silences_the_file(self, code):
        path = FIXTURES / f"{code.lower()}.py"
        source = f"# noqa-module: {code}\n" + path.read_text(encoding="utf-8")
        assert slab_lint_source(source, str(path)) == []


class TestRules:
    def test_rpr201_positional_dtype_accepted(self):
        src = "import numpy as np\n\ndef f():\n    return np.full(4, -1, np.int64)\n"
        assert slab_lint_source(src) == []

    def test_rpr201_asarray_exempt(self):
        src = "import numpy as np\n\ndef f(xs):\n    return np.asarray(xs)\n"
        assert slab_lint_source(src) == []

    def test_rpr202_hoisted_conversion_clean(self):
        src = (
            "import numpy as np\n"
            "def f(xs):\n"
            "    ys = xs.astype(np.float64)\n"
            "    for _ in range(3):\n"
            "        ys = ys + 1\n"
            "    return ys\n"
        )
        assert slab_lint_source(src) == []

    def test_rpr202_while_loop_counts(self):
        src = (
            "import numpy as np\n"
            "def f(xs):\n"
            "    while xs.size:\n"
            "        xs = xs[1:].astype(np.int64)\n"
            "    return xs\n"
        )
        assert [d.code for d in slab_lint_source(src)] == ["RPR202"]

    def test_rpr203_plain_slice_store_clean(self):
        src = "def f(a):\n    a[1:3][0] = 1.0\n    return a\n"
        assert slab_lint_source(src) == []

    def test_rpr203_list_of_lists_clean(self):
        src = "def f(grid, i, j, v):\n    grid[i][j] = v\n    return grid\n"
        assert slab_lint_source(src) == []

    def test_rpr204_outside_loop_clean(self):
        src = "import numpy as np\n\ndef f(a, b):\n    return np.concatenate((a, b))\n"
        assert slab_lint_source(src) == []

    def test_rpr204_iterable_expression_not_in_loop(self):
        # The for-iterable is evaluated once, before the loop body runs.
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    for x in np.concatenate((a, b)):\n"
            "        pass\n"
        )
        assert slab_lint_source(src) == []

    def test_rpr205_tracks_through_producers(self):
        src = (
            "import numpy as np\n"
            "def f(mask):\n"
            "    idx = np.flatnonzero(mask)\n"
            "    for i in idx:\n"
            "        print(i)\n"
        )
        assert "RPR205" in {d.code for d in slab_lint_source(src)}

    def test_rpr206_bool_mask_arithmetic_clean(self):
        src = (
            "import numpy as np\n"
            "def f():\n"
            "    d = np.zeros(4, dtype=np.int64)\n"
            "    m = d > 1\n"
            "    return d + m\n"
        )
        assert slab_lint_source(src) == []

    def test_rpr206_reassignment_clears_tracking(self):
        src = (
            "import numpy as np\n"
            "def f(opaque):\n"
            "    a = np.zeros(4, dtype=np.int32)\n"
            "    a = opaque()\n"
            "    b = np.zeros(4, dtype=np.int64)\n"
            "    return a + b\n"
        )
        assert slab_lint_source(src) == []

    def test_rpr207_delegation_guard_exempt(self):
        src = (
            "from repro.checkers.contracts import slab_contract\n"
            "from repro.runtime.cost_model import active_tracker\n"
            "@slab_contract(dtypes={'xs': 'int64'})\n"
            "def k_fast_helper(xs, tracker=None):\n"
            "    if active_tracker(tracker) is not None:\n"
            "        return xs\n"
            "    return xs + 1\n"
        )
        assert slab_lint_source(src) == []

    def test_rpr208_only_inside_contracts(self):
        src = "def f(xs):\n    print(xs)\n    return xs\n"
        assert slab_lint_source(src) == []

    def test_rpr209_private_and_property_exempt(self):
        src = (
            "class ScratchPool:\n"
            "    def _hidden(self):\n"
            "        return 0\n"
            "    @property\n"
            "    def allocated(self):\n"
            "        return 0\n"
        )
        assert slab_lint_source(src) == []

    def test_syntax_error_reported_not_raised(self):
        findings = slab_lint_source("def broken(:\n")
        assert [d.code for d in findings] == ["RPR000"]


class TestSelfLint:
    def test_repo_backends_are_clean(self):
        assert slab_lint_paths(default_slab_paths()) == []

    def test_default_targets_exist(self):
        paths = default_slab_paths()
        assert len(paths) == len(DEFAULT_SLAB_TARGETS)
        for p in paths:
            assert p.exists(), f"default slab target {p} is missing"


class TestRunnerIntegration:
    def test_check_slabs_clean_repo(self, capsys):
        from repro.checkers.runner import run_check

        assert run_check(lint=False, races=False, slabs=True) == 0
        assert "repro check: OK" in capsys.readouterr().out

    @pytest.mark.parametrize("code", ALL_FIXTURE_CODES)
    def test_check_slabs_fails_on_each_fixture(self, code, capsys):
        from repro.checkers.runner import run_check

        path = str(FIXTURES / f"{code.lower()}.py")
        assert run_check(paths=[path], lint=False, races=False, slabs=True) == 1
        assert code in capsys.readouterr().out

    def test_json_report_shape(self, capsys):
        from repro.checkers.runner import run_check

        path = str(FIXTURES / "rpr201.py")
        code = run_check(
            paths=[path], lint=False, races=False, slabs=True, json_output=True
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert payload["ok"] is False
        assert payload["slabs"]["enabled"] is True
        assert payload["slabs"]["count"] == len(payload["slabs"]["findings"])
        assert payload["slabs"]["count"] > 0
        assert {f["code"] for f in payload["slabs"]["findings"]} == {"RPR201"}

    def test_json_clean_repo(self, capsys):
        from repro.checkers.runner import run_check

        code = run_check(lint=False, races=False, slabs=True, json_output=True)
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["slabs"] == {"enabled": True, "count": 0, "findings": []}

    def test_slabs_off_by_default(self, capsys):
        from repro.checkers.runner import run_check

        path = str(FIXTURES / "rpr201.py")
        # Without --slabs the fixture passes the (lint-only) check.
        assert run_check(paths=[path], lint=True, races=False) == 0
        capsys.readouterr()

    def test_cli_slabs_flag(self, capsys):
        from repro.cli import main

        assert main(["check", "--slabs", "--no-lint", "--no-races"]) == 0
        capsys.readouterr()
        path = str(FIXTURES / "rpr209.py")
        assert main(["check", "--slabs", "--no-lint", "--no-races", path]) == 1
        assert "RPR209" in capsys.readouterr().out


class TestContractPresence:
    """Acceptance: every fast kernel and pool method carries a contract."""

    def test_fast_algorithms_all_declared(self):
        from repro.checkers.contracts import get_contract
        from repro.core.api import FAST_ALGORITHMS

        for name, fn in FAST_ALGORITHMS.items():
            contract = get_contract(fn)
            assert contract is not None, f"FAST_ALGORITHMS[{name!r}] lacks @slab_contract"
            assert contract.dtypes.get("tree.edges") == ("int64",)
            assert contract.dtypes.get("tree.weights") == ("float64",)

    def test_heap_pool_public_methods_all_declared(self):
        import inspect

        from repro.checkers.contracts import get_contract
        from repro.structures.heap_pool import HeapPool

        public = [
            (name, member)
            for name, member in vars(HeapPool).items()
            if not name.startswith("_") and inspect.isfunction(member)
        ]
        assert {name for name, _ in public} == {
            "alloc",
            "roots",
            "find_min",
            "size",
            "items",
            "insert",
            "meld",
            "filter",
            "filter_and_insert",
        }
        for name, member in public:
            assert get_contract(member) is not None, f"HeapPool.{name} lacks @slab_contract"

    def test_build_rc_tree_fast_declared(self):
        from repro.checkers.contracts import get_contract
        from repro.contraction.fast import build_rc_tree_fast

        assert get_contract(build_rc_tree_fast) is not None
