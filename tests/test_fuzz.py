"""The repro.fuzz subsystem: determinism, detection power, shrinking, CLI."""

from __future__ import annotations

import numpy as np

from repro.cli import main as cli_main
from repro.fuzz import (
    FUZZ_ALGORITHMS,
    CsvCase,
    DynamicCase,
    GraphCase,
    NpzCase,
    TreeCase,
    case_rng,
    differential_check,
    gen_case,
    relations_check,
    run_fuzz,
    run_selftest,
    shrink_case,
)
from repro.fuzz.corpus import entry_bytes, entry_filename, load_entry, save_finding
from repro.fuzz.oracles import Finding, reference_parse_csv
from repro.fuzz.selftest import (
    MUTANTS,
    mutant_dropped_tiebreak,
    mutant_label_tiebreak,
)


def _case_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, TreeCase):
        return (
            a.n == b.n
            and np.array_equal(a.edges, b.edges)
            and np.array_equal(a.weights, b.weights)
            and a.label == b.label
        )
    if isinstance(a, DynamicCase):
        return (
            a.n == b.n
            and np.array_equal(a.edges, b.edges)
            and np.array_equal(a.weights, b.weights)
            and a.batches == b.batches
            and a.label == b.label
        )
    if isinstance(a, GraphCase):
        return (
            a.n == b.n
            and np.array_equal(a.edges, b.edges)
            and np.array_equal(a.weights, b.weights)
            and a.chunk == b.chunk
            and a.label == b.label
        )
    if isinstance(a, CsvCase):
        return a.text == b.text and a.has_header == b.has_header
    return a.data == b.data


class TestDeterminism:
    def test_same_seed_same_cases(self):
        for index in range(40):
            a = gen_case(case_rng(7, index))
            b = gen_case(case_rng(7, index))
            assert _case_equal(a, b), index

    def test_seed_changes_the_stream(self):
        diff = sum(
            not _case_equal(gen_case(case_rng(1, i)), gen_case(case_rng(2, i)))
            for i in range(20)
        )
        assert diff > 10

    def test_negative_seed_accepted(self):
        gen_case(case_rng(-3, 0))

    def test_corpus_entries_byte_identical_across_runs(self, tmp_path):
        dirs = (tmp_path / "a", tmp_path / "b")
        for d in dirs:
            report = run_fuzz(
                seed=0,
                max_cases=150,
                corpus_dir=d,
                algorithms={"mut": mutant_dropped_tiebreak},
                domains=("tree",),
                tree_checks=("differential",),
                stop_on_finding=True,
            )
            assert report.findings
        files_a = sorted(p.name for p in dirs[0].iterdir())
        files_b = sorted(p.name for p in dirs[1].iterdir())
        assert files_a == files_b
        for name in files_a:
            assert (dirs[0] / name).read_bytes() == (dirs[1] / name).read_bytes()

    def test_budget_never_changes_case_content(self):
        """A wall-clock budget may truncate the stream, never reorder it."""
        a = run_fuzz(seed=3, max_cases=25)
        b = run_fuzz(seed=3, max_cases=25, budget_s=3600.0)
        assert a.cases_run == 25
        assert b.cases_run == 25
        assert a.ok and b.ok


class TestDetectionPower:
    def test_real_algorithms_are_clean(self):
        report = run_fuzz(seed=11, max_cases=60)
        assert report.ok, [f.describe() for f in report.findings]

    def test_differential_catches_planted_mutant(self):
        report = run_fuzz(
            seed=0,
            max_cases=150,
            algorithms={"mut": mutant_dropped_tiebreak},
            domains=("tree",),
            tree_checks=("differential",),
            stop_on_finding=True,
        )
        assert any(f.check == "differential:mut" for f in report.findings)

    def test_relations_alone_catch_label_tiebreak(self):
        report = run_fuzz(
            seed=0,
            max_cases=150,
            algorithms={"mut": mutant_label_tiebreak},
            domains=("tree",),
            tree_checks=("relations",),
            stop_on_finding=True,
        )
        assert report.findings
        assert all(f.check.startswith("relation:") for f in report.findings)

    def test_selftest_catches_every_mutant(self):
        report = run_selftest(seed=0, shrink=False)
        assert report.ok, report.missed
        assert set(report.caught) == {m.name for m in MUTANTS}
        # The io mutants must be caught by io checks, the dynamic mutants
        # by the dynamic oracle, the algorithm mutants by tree checks --
        # not by accident of some other layer.
        for name, check in report.caught.items():
            if name.startswith("csv-"):
                assert check.startswith("io:csv:")
            elif name.startswith("dynamic-"):
                assert check.startswith("dynamic:")
            elif name.startswith("streaming-"):
                assert check.startswith("mst:")
            else:
                assert check.startswith(("differential:", "relation:"))

    def test_selftest_reports_a_missing_catch(self, monkeypatch):
        """A mutant that is never caught must fail the selftest -- guard
        against the selftest degrading into a tautology."""
        from repro.core.sequf import sequf
        from repro.fuzz import selftest as st

        healthy = st.Mutant(
            name="healthy",  # a correct algorithm: nothing to catch
            kwargs={
                "algorithms": {"healthy": sequf},
                "domains": ("tree",),
                "tree_checks": ("differential",),
            },
            max_cases=10,
        )
        monkeypatch.setattr(st, "MUTANTS", (healthy,))
        report = st.run_selftest(seed=0, shrink=False)
        assert not report.ok
        assert report.missed == ["healthy"]
        assert any("MISSED healthy" in line for line in report.format_lines())


class TestOracles:
    def test_paruf_threaded_vs_sequf_stress_8_threads(self):
        """The ISSUE's stress case: the threaded variant through the fuzz
        oracle at 8 OS threads, duplicate-heavy weights included."""
        algs = {"paruf-threaded": FUZZ_ALGORITHMS["paruf-threaded"]}
        for index in range(25):
            rng = case_rng(97, index)
            case = gen_case(rng, domains=("tree",))
            findings = differential_check(case, algs, num_threads=8)
            assert findings == [], [f.describe() for f in findings]

    def test_reference_parser_matches_loader_on_valid_input(self):
        status, payload = reference_parse_csv("0,1,2.5\n1,2,0.5\n", has_header=False)
        assert status == "ok"
        n, edges, weights = payload
        assert n == 3
        assert edges == [(0, 1), (1, 2)]
        assert weights == [2.5, 0.5]

    def test_reference_parser_rejects_what_the_contract_rejects(self):
        for text, tag in [
            ("0,0\n", "self-loop"),
            ("0,1\n1,0\n", "duplicate-edge"),
            ("a,b\n", "bad-int"),
            ("0,1,inf\n", "nonfinite-weight"),
            ("", "no-edges"),
        ]:
            status, got = reference_parse_csv(text, has_header=False)
            assert (status, got) == ("error", tag), text


class TestRelationsOnRealAlgorithms:
    def test_all_relations_clean(self):
        rng = np.random.default_rng(5)
        for index in range(15):
            case = gen_case(case_rng(5, index), domains=("tree",))
            findings = relations_check(case, dict(FUZZ_ALGORITHMS), rng)
            assert findings == [], [f.describe() for f in findings]


class TestShrinking:
    def test_tree_shrinks_to_a_small_witness(self):
        # A large broom with all-equal weights: the tie-break mutant fails
        # on it, and the minimal witness is tiny.
        n = 20
        edges = np.array([[0, v] for v in range(1, n)], dtype=np.int64)
        case = TreeCase(
            n=n, edges=edges, weights=np.zeros(n - 1), label="star/all-equal"
        )

        def still_fails(c):
            return bool(differential_check(c, {"mut": mutant_dropped_tiebreak}))

        assert still_fails(case)
        small = shrink_case(case, still_fails)
        assert still_fails(small)
        assert small.n <= 4
        assert small.label.count("~shrunk") == 1

    def test_csv_shrinks_to_the_failing_line(self):
        case = CsvCase(
            text="0,1,1.0\n1,2,2.0\n3,3,4.0\n2,4,1.5\n", has_header=False, label="t"
        )

        def still_fails(c):
            status, tag = reference_parse_csv(c.text, c.has_header)
            return status == "error" and tag == "self-loop"

        small = shrink_case(case, still_fails)
        assert still_fails(small)
        assert len([ln for ln in small.text.splitlines() if ln]) == 1

    def test_npz_shrinks_by_truncation(self):
        case = NpzCase(data=b"\x00" * 4096, label="junk")
        small = shrink_case(case, lambda c: True)
        assert len(small.data) == 0


class TestCorpusFormat:
    def test_roundtrip_all_kinds(self, tmp_path):
        cases = [
            TreeCase(
                n=3,
                edges=np.array([[0, 1], [1, 2]], dtype=np.int64),
                weights=np.array([0.1, 5e-324]),
                label="t",
            ),
            DynamicCase(
                n=3,
                edges=np.array([[0, 1], [1, 2]], dtype=np.int64),
                weights=np.array([0.1, 5e-324]),
                batches=(
                    (((0, 2, 2.5),), ((0, 1),)),
                    ((), ()),
                ),
                label="d",
            ),
            CsvCase(text="0,0\n", has_header=None, label="c"),
            NpzCase(data=b"\x80\x00\xff", label="n"),
        ]
        for case in cases:
            finding = Finding(check="x:y", message="msg", case=case)
            path = save_finding(finding, tmp_path)
            check, message, loaded = load_entry(path)
            assert (check, message) == ("x:y", "msg")
            assert _case_equal(case, loaded)

    def test_content_addressed_and_stable(self):
        finding = Finding(
            check="io:csv:exception-leak",
            message="m",
            case=CsvCase(text="0,1e3\n", has_header=False, label="l"),
        )
        assert entry_filename(finding) == entry_filename(finding)
        assert entry_bytes(finding) == entry_bytes(finding)
        assert entry_filename(finding).startswith("csv-")
        assert entry_bytes(finding).endswith(b"\n")


class TestCli:
    def test_fuzz_ok_exit_zero(self, tmp_path, capsys):
        rc = cli_main(
            ["fuzz", "--cases", "20", "--seed", "4", "--corpus", str(tmp_path)]
        )
        assert rc == 0
        assert "fuzz: OK" in capsys.readouterr().out

    def test_replay_missing_dir_exit_two(self, tmp_path):
        assert cli_main(["fuzz", "--replay", str(tmp_path / "absent")]) == 2

    def test_replay_clean_and_regressing(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        # A healthy entry replays clean...
        finding = Finding(
            check="io:csv:exception-leak",
            message="m",
            case=CsvCase(text="0,1e3\n", has_header=False, label="l"),
        )
        save_finding(finding, corpus)
        assert cli_main(["fuzz", "--replay", str(corpus)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
        # ...an unreadable one counts as a regression, not a crash.
        bad = corpus / "csv-badformat.json"
        bad.write_text('{"format": "other/1"}\n')
        assert cli_main(["fuzz", "--replay", str(corpus)]) == 1
        assert "corpus:invalid-entry" in capsys.readouterr().out

    def test_selftest_exit_zero(self, capsys):
        assert cli_main(["fuzz", "--selftest", "--no-shrink"]) == 0
        assert "fuzz selftest: OK" in capsys.readouterr().out


class TestGraphDomain:
    def test_clean_engines_produce_no_findings(self):
        report = run_fuzz(seed=3, max_cases=40, domains=("graph",))
        assert report.ok, [f.describe() for f in report.findings]

    def test_graph_corpus_roundtrip_is_byte_stable(self, tmp_path):
        from repro.fuzz.generators import gen_graph_case

        case = gen_graph_case(case_rng(1, 0))
        finding = Finding(check="mst:streaming", message="x", case=case)
        path = save_finding(finding, tmp_path)
        check, message, loaded = load_entry(path)
        assert (check, message) == ("mst:streaming", "x")
        assert _case_equal(case, loaded)
        assert entry_bytes(finding) == path.read_bytes()

    def test_streaming_mutant_shrinks_to_a_small_witness(self):
        """The dropped-window mutant's shrunken case keeps failing and
        only ever shrinks (never grows)."""
        from repro.fuzz.oracles import mst_check
        from repro.fuzz.selftest import _streaming_dropped_window

        report = run_fuzz(
            seed=0,
            max_cases=150,
            domains=("graph",),
            streaming_fn=_streaming_dropped_window,
            stop_on_finding=True,
        )
        assert report.findings
        small = report.findings[0].case
        assert mst_check(small, streaming_fn=_streaming_dropped_window)
        assert not mst_check(small)  # the real engine passes on the witness
