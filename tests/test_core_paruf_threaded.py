"""Threaded ParUF: the status protocol under genuine preemptive threads.

These are stress tests of the paper's race-freedom argument (Theorem
4.3): heap and union-find accesses are deliberately unlocked in
``paruf_threaded``, so any protocol violation shows up as a corrupted
dendrogram (caught by oracle comparison) or a crashed worker (re-raised).
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from conftest import make_tree
from repro.core.brute import brute_force_sld
from repro.core.paruf import ParUFStats
from repro.core.paruf_threaded import paruf_threaded
from repro.trees.weights import apply_scheme


@pytest.mark.parametrize("num_threads", [1, 2, 4, 8])
@pytest.mark.parametrize("kind", ["path", "star", "knuth", "random"])
def test_matches_oracle_across_thread_counts(num_threads, kind):
    tree = make_tree(kind, 90, seed=3).with_weights(apply_scheme("perm", 89, seed=4))
    got = paruf_threaded(tree, num_threads=num_threads)
    np.testing.assert_array_equal(got, brute_force_sld(tree))


def test_repeated_runs_are_deterministic_output(rng):
    """Different interleavings every run, identical dendrogram every run."""
    tree = make_tree("knuth", 150, seed=7).with_weights(apply_scheme("perm", 149, seed=8))
    expected = brute_force_sld(tree)
    for _ in range(10):
        np.testing.assert_array_equal(paruf_threaded(tree, num_threads=4), expected)


def test_fine_grained_switching_stress():
    """Force a GIL switch after (almost) every bytecode: the harshest
    interleaving the protocol must survive."""
    tree = make_tree("random", 120, seed=11).with_weights(apply_scheme("perm", 119, seed=12))
    expected = brute_force_sld(tree)
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        for _ in range(3):
            np.testing.assert_array_equal(paruf_threaded(tree, num_threads=6), expected)
    finally:
        sys.setswitchinterval(old)


@pytest.mark.parametrize("heap_kind", ["pairing", "binomial", "skew"])
def test_heap_kinds(heap_kind):
    tree = make_tree("knuth", 70, seed=1).with_weights(apply_scheme("uniform", 69, seed=2))
    got = paruf_threaded(tree, num_threads=3, heap_kind=heap_kind)
    np.testing.assert_array_equal(got, brute_force_sld(tree))


def test_low_par_adversary_under_threads():
    """Two concurrent chains racing toward the middle -- the maximal-
    contention shape for the activation protocol."""
    tree = make_tree("path", 300).with_weights(apply_scheme("low-par", 299))
    expected = brute_force_sld(tree)
    np.testing.assert_array_equal(paruf_threaded(tree, num_threads=2), expected)


def test_stats_recorded():
    tree = make_tree("path", 40).with_weights(apply_scheme("perm", 39, seed=0))
    stats = ParUFStats()
    paruf_threaded(tree, num_threads=2, stats=stats)
    assert stats.processed_async == 39
    assert stats.initial_ready >= 1


def test_bad_thread_count():
    with pytest.raises(ValueError, match="thread"):
        paruf_threaded(make_tree("path", 4), num_threads=0)


def test_trivial_inputs():
    assert paruf_threaded(make_tree("path", 1)).shape == (0,)
    np.testing.assert_array_equal(paruf_threaded(make_tree("path", 2)), [0])
