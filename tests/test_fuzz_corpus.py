"""The committed regression corpus under tests/fixtures/corpus/.

Every entry pins the shrunken minimal input for a bug the fuzzer caught;
replaying must stay clean forever.  The three ``csv-*`` entries are the
io bugs this subsystem originally found (header row kept, ValueError
leak, self-loop accepted); the ``tree-*`` entries are the minimal
witnesses of the selftest's algorithm mutants.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.checkers.runner import run_corpus_replay
from repro.fuzz.corpus import (
    CORPUS_FORMAT,
    entry_bytes,
    load_entry,
    replay_corpus,
)
from repro.fuzz.generators import CsvCase
from repro.fuzz.oracles import Finding

CORPUS_DIR = Path(__file__).parent / "fixtures" / "corpus"


def test_corpus_is_committed_and_nonempty():
    entries = sorted(CORPUS_DIR.glob("*.json"))
    assert len(entries) >= 6
    kinds = {p.name.split("-")[0] for p in entries}
    assert {"csv", "tree"} <= kinds


def test_every_entry_replays_clean():
    results = replay_corpus(CORPUS_DIR)
    assert results
    for path, findings in results:
        assert findings == [], (
            f"{path.name} regressed: " + "; ".join(f.describe() for f in findings)
        )


def test_entries_are_byte_canonical():
    """Each committed file must be the canonical serialization of its own
    payload and carry the content-addressed name -- guards hand edits."""
    for path in sorted(CORPUS_DIR.glob("*.json")):
        check, message, case = load_entry(path)
        canonical = entry_bytes(Finding(check=check, message=message, case=case))
        assert path.read_bytes() == canonical, path.name


def test_the_three_io_bugs_are_pinned():
    checks = set()
    for path in sorted(CORPUS_DIR.glob("csv-*.json")):
        check, _, case = load_entry(path)
        assert isinstance(case, CsvCase)
        checks.add(check)
    assert checks == {
        "io:csv:result-mismatch",  # header row silently kept
        "io:csv:exception-leak",  # raw ValueError escaped
        "io:csv:accepted-malformed",  # self loop ingested
    }


def test_checkers_integration_replays_this_corpus(monkeypatch):
    """``repro check`` replays the committed corpus in its default battery."""
    monkeypatch.chdir(Path(__file__).parent.parent)
    assert run_corpus_replay() == []


def test_checkers_integration_skips_missing_dir(tmp_path):
    assert run_corpus_replay(tmp_path / "absent") == []


def test_checkers_integration_reports_regressions(tmp_path):
    bad = tmp_path / "corpus"
    bad.mkdir()
    (bad / "csv-deadbeef0000.json").write_text("not json")
    failures = run_corpus_replay(bad)
    assert len(failures) == 1
    assert "csv-deadbeef0000.json" in failures[0]


def test_format_marker_is_versioned():
    assert CORPUS_FORMAT == "repro-fuzz-corpus/1"
    for path in CORPUS_DIR.glob("*.json"):
        assert f'"{CORPUS_FORMAT}"' in path.read_text()


@pytest.mark.parametrize("name_prefix", ["csv", "tree"])
def test_entry_names_are_content_addressed(name_prefix):
    import hashlib

    for path in CORPUS_DIR.glob(f"{name_prefix}-*.json"):
        digest = hashlib.sha256(path.read_bytes()).hexdigest()[:12]
        assert path.name == f"{name_prefix}-{digest}.json"
