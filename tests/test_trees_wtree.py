"""WeightedTree representation, adjacency, validation, weights."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from conftest import weighted_trees
from repro.errors import InvalidTreeError, InvalidWeightsError
from repro.trees.validation import validate_tree_edges, validate_weights
from repro.trees.weights import apply_scheme, ranks_of
from repro.trees.wtree import WeightedTree


class TestConstruction:
    def test_basic(self, small_tree):
        assert small_tree.n == 8
        assert small_tree.m == 7

    def test_from_edge_list(self):
        t = WeightedTree.from_edge_list([(0, 1), (1, 2)], weights=[2.0, 1.0])
        assert t.n == 3
        assert t.weights.tolist() == [2.0, 1.0]

    def test_from_edge_list_defaults(self):
        t = WeightedTree.from_edge_list([(0, 1)])
        assert t.weights.tolist() == [1.0]

    def test_bad_edge_shape(self):
        with pytest.raises(InvalidTreeError, match="shape"):
            WeightedTree(3, np.zeros((2, 3), dtype=np.int64), np.ones(2))

    def test_weight_count_mismatch(self):
        with pytest.raises(InvalidWeightsError):
            WeightedTree(3, np.array([[0, 1], [1, 2]]), np.ones(3))

    def test_single_vertex(self):
        t = WeightedTree(1, np.zeros((0, 2), dtype=np.int64), np.zeros(0))
        assert t.m == 0
        assert t.degrees().tolist() == [0]

    def test_with_weights_shares_topology(self, small_tree):
        t2 = small_tree.with_weights(np.arange(7, dtype=float))
        assert t2.n == small_tree.n
        np.testing.assert_array_equal(t2.edges, small_tree.edges)
        assert t2.weights.tolist() == list(range(7))

    def test_with_weights_wrong_length(self, small_tree):
        with pytest.raises(InvalidWeightsError, match="expected 7"):
            small_tree.with_weights(np.ones(3))


class TestAdjacency:
    def test_neighbors(self, small_tree):
        nbrs, eids = small_tree.neighbors(2)
        assert sorted(nbrs.tolist()) == [1, 3, 4]
        assert sorted(eids.tolist()) == [1, 2, 3]

    def test_degrees_sum_to_2m(self, small_tree):
        assert small_tree.degrees().sum() == 2 * small_tree.m

    @settings(max_examples=40, deadline=None)
    @given(tree=weighted_trees(max_n=30))
    def test_adjacency_consistent_with_edges(self, tree):
        offsets, nbr_vertex, nbr_edge = tree.adjacency()
        seen = set()
        for v in range(tree.n):
            for s in range(int(offsets[v]), int(offsets[v + 1])):
                e = int(nbr_edge[s])
                w = int(nbr_vertex[s])
                assert {v, w} == {int(tree.edges[e, 0]), int(tree.edges[e, 1])}
                seen.add((v, e))
        assert len(seen) == 2 * tree.m  # each edge appears from both sides

    def test_adjacency_lists_match_csr(self, small_tree):
        lists = small_tree.adjacency_lists()
        for v in range(small_tree.n):
            nbrs, eids = small_tree.neighbors(v)
            assert sorted(lists[v]) == sorted(zip(nbrs.tolist(), eids.tolist()))


class TestValidation:
    def test_wrong_edge_count(self):
        with pytest.raises(InvalidTreeError, match="needs 2 edges"):
            validate_tree_edges(3, np.array([[0, 1]]))

    def test_out_of_range(self):
        with pytest.raises(InvalidTreeError, match="outside"):
            validate_tree_edges(3, np.array([[0, 1], [1, 3]]))

    def test_self_loop(self):
        with pytest.raises(InvalidTreeError, match="self loop"):
            validate_tree_edges(3, np.array([[0, 1], [2, 2]]))

    def test_duplicate_edge(self):
        with pytest.raises(InvalidTreeError, match="duplicate"):
            validate_tree_edges(3, np.array([[0, 1], [1, 0]]))

    def test_cycle(self):
        with pytest.raises(InvalidTreeError, match="cycle"):
            validate_tree_edges(4, np.array([[0, 1], [1, 2], [2, 0]]))

    def test_nonpositive_n(self):
        with pytest.raises(InvalidTreeError, match="positive"):
            validate_tree_edges(0, np.zeros((0, 2), dtype=np.int64))

    def test_valid_tree_passes(self, small_tree):
        validate_tree_edges(small_tree.n, small_tree.edges)

    def test_nan_weight(self):
        with pytest.raises(InvalidWeightsError, match="not finite"):
            validate_weights(np.array([1.0, np.nan]))

    def test_inf_weight(self):
        with pytest.raises(InvalidWeightsError, match="not finite"):
            validate_weights(np.array([np.inf]))

    def test_non_numeric_weights(self):
        with pytest.raises(InvalidWeightsError, match="numeric"):
            validate_weights(np.array(["a", "b"]))

    def test_constructor_validates_by_default(self):
        with pytest.raises(InvalidTreeError):
            WeightedTree(4, np.array([[0, 1], [1, 2], [2, 0]]), np.ones(3))


class TestRanks:
    def test_ranks_are_permutation(self, small_tree):
        r = small_tree.ranks
        assert sorted(r.tolist()) == list(range(7))

    def test_ranks_follow_weights(self):
        r = ranks_of(np.array([0.5, 0.1, 0.9]))
        np.testing.assert_array_equal(r, [1, 0, 2])

    def test_ties_broken_by_edge_id(self):
        r = ranks_of(np.array([1.0, 1.0, 0.5, 1.0]))
        np.testing.assert_array_equal(r, [1, 2, 0, 3])

    def test_ranks_cached(self, small_tree):
        assert small_tree.ranks is small_tree.ranks


class TestWeightSchemes:
    @pytest.mark.parametrize("name", ["unit", "perm", "low-par", "uniform", "sorted", "reversed"])
    def test_scheme_lengths(self, name):
        w = apply_scheme(name, 17, seed=0)
        assert w.shape == (17,)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="weight scheme"):
            apply_scheme("zipf", 5)

    def test_negative_m(self):
        with pytest.raises(ValueError, match="non-negative"):
            apply_scheme("unit", -1)

    def test_perm_is_permutation(self):
        w = apply_scheme("perm", 50, seed=1)
        assert sorted(w.tolist()) == list(range(50))

    def test_low_par_shape(self):
        w = apply_scheme("low-par", 10)
        assert (np.diff(w[:5]) > 0).all()
        assert (np.diff(w[5:]) < 0).all()
        # each half is monotone and the maximum sits at the middle
        assert w.argmax() in (4, 5)

    def test_unit_all_ones(self):
        assert (apply_scheme("unit", 9) == 1.0).all()

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(
            apply_scheme("perm", 30, seed=42), apply_scheme("perm", 30, seed=42)
        )
