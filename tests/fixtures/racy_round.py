"""Deliberately racy round fixture.

``python -m repro check tests/fixtures/racy_round.py`` must exit nonzero:
the two tasks union overlapping elements of a shared
:class:`~repro.structures.unionfind.UnionFind`, so their shadow access
sets collide on element 1's parent cell regardless of execution order
(the round *completes* either way -- the bug is invisible without the
detector, which is the point of the fixture).
"""

from repro.runtime.cost_model import WorkDepth
from repro.structures.unionfind import UnionFind

_UF = UnionFind(4)


def _merge(a: int, b: int):
    def task():
        _UF.union(a, b)
        return None, WorkDepth(1.0, 1.0)

    return task


def build_round():
    return [_merge(0, 1), _merge(1, 2)]
